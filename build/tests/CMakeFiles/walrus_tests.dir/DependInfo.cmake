
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/color_histogram_test.cc" "tests/CMakeFiles/walrus_tests.dir/baselines/color_histogram_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/baselines/color_histogram_test.cc.o.d"
  "/root/repo/tests/baselines/jfs_test.cc" "tests/CMakeFiles/walrus_tests.dir/baselines/jfs_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/baselines/jfs_test.cc.o.d"
  "/root/repo/tests/baselines/wbiis_test.cc" "tests/CMakeFiles/walrus_tests.dir/baselines/wbiis_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/baselines/wbiis_test.cc.o.d"
  "/root/repo/tests/cluster/birch_test.cc" "tests/CMakeFiles/walrus_tests.dir/cluster/birch_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/cluster/birch_test.cc.o.d"
  "/root/repo/tests/cluster/cf_test.cc" "tests/CMakeFiles/walrus_tests.dir/cluster/cf_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/cluster/cf_test.cc.o.d"
  "/root/repo/tests/cluster/cf_tree_test.cc" "tests/CMakeFiles/walrus_tests.dir/cluster/cf_tree_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/cluster/cf_tree_test.cc.o.d"
  "/root/repo/tests/cluster/kmeans_test.cc" "tests/CMakeFiles/walrus_tests.dir/cluster/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/cluster/kmeans_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/walrus_tests.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/math_util_test.cc" "tests/CMakeFiles/walrus_tests.dir/common/math_util_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/common/math_util_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/walrus_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/serialize_test.cc" "tests/CMakeFiles/walrus_tests.dir/common/serialize_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/common/serialize_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/walrus_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/walrus_tests.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/core/bitmap_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/bitmap_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/bitmap_test.cc.o.d"
  "/root/repo/tests/core/index_remove_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/index_remove_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/index_remove_test.cc.o.d"
  "/root/repo/tests/core/index_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/index_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/index_test.cc.o.d"
  "/root/repo/tests/core/knn_query_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/knn_query_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/knn_query_test.cc.o.d"
  "/root/repo/tests/core/matcher_property_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/matcher_property_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/matcher_property_test.cc.o.d"
  "/root/repo/tests/core/normalization_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/normalization_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/normalization_test.cc.o.d"
  "/root/repo/tests/core/paged_index_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/paged_index_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/paged_index_test.cc.o.d"
  "/root/repo/tests/core/pair_details_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/pair_details_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/pair_details_test.cc.o.d"
  "/root/repo/tests/core/parallel_index_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/parallel_index_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/parallel_index_test.cc.o.d"
  "/root/repo/tests/core/params_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/params_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/params_test.cc.o.d"
  "/root/repo/tests/core/query_batch_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/query_batch_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/query_batch_test.cc.o.d"
  "/root/repo/tests/core/query_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/query_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/query_test.cc.o.d"
  "/root/repo/tests/core/refinement_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/refinement_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/refinement_test.cc.o.d"
  "/root/repo/tests/core/region_extractor_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/region_extractor_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/region_extractor_test.cc.o.d"
  "/root/repo/tests/core/scene_query_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/scene_query_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/scene_query_test.cc.o.d"
  "/root/repo/tests/core/signature_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/signature_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/signature_test.cc.o.d"
  "/root/repo/tests/core/similarity_test.cc" "tests/CMakeFiles/walrus_tests.dir/core/similarity_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/core/similarity_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/walrus_tests.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/image/color_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/color_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/color_test.cc.o.d"
  "/root/repo/tests/image/dataset_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/dataset_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/dataset_test.cc.o.d"
  "/root/repo/tests/image/image_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/image_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/image_test.cc.o.d"
  "/root/repo/tests/image/pnm_fuzz_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/pnm_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/pnm_fuzz_test.cc.o.d"
  "/root/repo/tests/image/pnm_io_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/pnm_io_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/pnm_io_test.cc.o.d"
  "/root/repo/tests/image/synth_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/synth_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/synth_test.cc.o.d"
  "/root/repo/tests/image/transform_test.cc" "tests/CMakeFiles/walrus_tests.dir/image/transform_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/image/transform_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/walrus_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/spatial/rect_test.cc" "tests/CMakeFiles/walrus_tests.dir/spatial/rect_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/spatial/rect_test.cc.o.d"
  "/root/repo/tests/spatial/rstar_bulkload_test.cc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_bulkload_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_bulkload_test.cc.o.d"
  "/root/repo/tests/spatial/rstar_delete_test.cc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_delete_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_delete_test.cc.o.d"
  "/root/repo/tests/spatial/rstar_policy_test.cc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_policy_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_policy_test.cc.o.d"
  "/root/repo/tests/spatial/rstar_test.cc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/spatial/rstar_test.cc.o.d"
  "/root/repo/tests/storage/catalog_test.cc" "tests/CMakeFiles/walrus_tests.dir/storage/catalog_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/storage/catalog_test.cc.o.d"
  "/root/repo/tests/storage/corruption_test.cc" "tests/CMakeFiles/walrus_tests.dir/storage/corruption_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/storage/corruption_test.cc.o.d"
  "/root/repo/tests/storage/disk_rstar_test.cc" "tests/CMakeFiles/walrus_tests.dir/storage/disk_rstar_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/storage/disk_rstar_test.cc.o.d"
  "/root/repo/tests/storage/page_cache_test.cc" "tests/CMakeFiles/walrus_tests.dir/storage/page_cache_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/storage/page_cache_test.cc.o.d"
  "/root/repo/tests/storage/page_file_test.cc" "tests/CMakeFiles/walrus_tests.dir/storage/page_file_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/storage/page_file_test.cc.o.d"
  "/root/repo/tests/umbrella_test.cc" "tests/CMakeFiles/walrus_tests.dir/umbrella_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/umbrella_test.cc.o.d"
  "/root/repo/tests/wavelet/compress_test.cc" "tests/CMakeFiles/walrus_tests.dir/wavelet/compress_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/wavelet/compress_test.cc.o.d"
  "/root/repo/tests/wavelet/daubechies_test.cc" "tests/CMakeFiles/walrus_tests.dir/wavelet/daubechies_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/wavelet/daubechies_test.cc.o.d"
  "/root/repo/tests/wavelet/haar1d_test.cc" "tests/CMakeFiles/walrus_tests.dir/wavelet/haar1d_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/wavelet/haar1d_test.cc.o.d"
  "/root/repo/tests/wavelet/haar2d_test.cc" "tests/CMakeFiles/walrus_tests.dir/wavelet/haar2d_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/wavelet/haar2d_test.cc.o.d"
  "/root/repo/tests/wavelet/quantize_test.cc" "tests/CMakeFiles/walrus_tests.dir/wavelet/quantize_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/wavelet/quantize_test.cc.o.d"
  "/root/repo/tests/wavelet/sliding_window_test.cc" "tests/CMakeFiles/walrus_tests.dir/wavelet/sliding_window_test.cc.o" "gcc" "tests/CMakeFiles/walrus_tests.dir/wavelet/sliding_window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
