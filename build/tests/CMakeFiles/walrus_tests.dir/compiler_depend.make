# Empty compiler generated dependencies file for walrus_tests.
# This may be replaced when dependencies are built.
