file(REMOVE_RECURSE
  "libwalrus_cluster.a"
)
