
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/birch.cc" "src/CMakeFiles/walrus_cluster.dir/cluster/birch.cc.o" "gcc" "src/CMakeFiles/walrus_cluster.dir/cluster/birch.cc.o.d"
  "/root/repo/src/cluster/cf.cc" "src/CMakeFiles/walrus_cluster.dir/cluster/cf.cc.o" "gcc" "src/CMakeFiles/walrus_cluster.dir/cluster/cf.cc.o.d"
  "/root/repo/src/cluster/cf_tree.cc" "src/CMakeFiles/walrus_cluster.dir/cluster/cf_tree.cc.o" "gcc" "src/CMakeFiles/walrus_cluster.dir/cluster/cf_tree.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/walrus_cluster.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/walrus_cluster.dir/cluster/kmeans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
