file(REMOVE_RECURSE
  "CMakeFiles/walrus_cluster.dir/cluster/birch.cc.o"
  "CMakeFiles/walrus_cluster.dir/cluster/birch.cc.o.d"
  "CMakeFiles/walrus_cluster.dir/cluster/cf.cc.o"
  "CMakeFiles/walrus_cluster.dir/cluster/cf.cc.o.d"
  "CMakeFiles/walrus_cluster.dir/cluster/cf_tree.cc.o"
  "CMakeFiles/walrus_cluster.dir/cluster/cf_tree.cc.o.d"
  "CMakeFiles/walrus_cluster.dir/cluster/kmeans.cc.o"
  "CMakeFiles/walrus_cluster.dir/cluster/kmeans.cc.o.d"
  "libwalrus_cluster.a"
  "libwalrus_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
