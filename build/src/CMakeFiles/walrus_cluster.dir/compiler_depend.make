# Empty compiler generated dependencies file for walrus_cluster.
# This may be replaced when dependencies are built.
