
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/compress.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/compress.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/compress.cc.o.d"
  "/root/repo/src/wavelet/daubechies.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/daubechies.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/daubechies.cc.o.d"
  "/root/repo/src/wavelet/haar1d.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/haar1d.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/haar1d.cc.o.d"
  "/root/repo/src/wavelet/haar2d.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/haar2d.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/haar2d.cc.o.d"
  "/root/repo/src/wavelet/naive_window.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/naive_window.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/naive_window.cc.o.d"
  "/root/repo/src/wavelet/quantize.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/quantize.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/quantize.cc.o.d"
  "/root/repo/src/wavelet/sliding_window.cc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/sliding_window.cc.o" "gcc" "src/CMakeFiles/walrus_wavelet.dir/wavelet/sliding_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
