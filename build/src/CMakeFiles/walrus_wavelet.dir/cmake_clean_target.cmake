file(REMOVE_RECURSE
  "libwalrus_wavelet.a"
)
