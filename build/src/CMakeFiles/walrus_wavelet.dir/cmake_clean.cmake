file(REMOVE_RECURSE
  "CMakeFiles/walrus_wavelet.dir/wavelet/compress.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/compress.cc.o.d"
  "CMakeFiles/walrus_wavelet.dir/wavelet/daubechies.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/daubechies.cc.o.d"
  "CMakeFiles/walrus_wavelet.dir/wavelet/haar1d.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/haar1d.cc.o.d"
  "CMakeFiles/walrus_wavelet.dir/wavelet/haar2d.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/haar2d.cc.o.d"
  "CMakeFiles/walrus_wavelet.dir/wavelet/naive_window.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/naive_window.cc.o.d"
  "CMakeFiles/walrus_wavelet.dir/wavelet/quantize.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/quantize.cc.o.d"
  "CMakeFiles/walrus_wavelet.dir/wavelet/sliding_window.cc.o"
  "CMakeFiles/walrus_wavelet.dir/wavelet/sliding_window.cc.o.d"
  "libwalrus_wavelet.a"
  "libwalrus_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
