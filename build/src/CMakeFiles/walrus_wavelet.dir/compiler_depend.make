# Empty compiler generated dependencies file for walrus_wavelet.
# This may be replaced when dependencies are built.
