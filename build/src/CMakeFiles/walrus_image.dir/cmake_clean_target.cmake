file(REMOVE_RECURSE
  "libwalrus_image.a"
)
