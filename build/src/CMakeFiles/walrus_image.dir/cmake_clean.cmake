file(REMOVE_RECURSE
  "CMakeFiles/walrus_image.dir/image/color.cc.o"
  "CMakeFiles/walrus_image.dir/image/color.cc.o.d"
  "CMakeFiles/walrus_image.dir/image/dataset.cc.o"
  "CMakeFiles/walrus_image.dir/image/dataset.cc.o.d"
  "CMakeFiles/walrus_image.dir/image/image.cc.o"
  "CMakeFiles/walrus_image.dir/image/image.cc.o.d"
  "CMakeFiles/walrus_image.dir/image/pnm_io.cc.o"
  "CMakeFiles/walrus_image.dir/image/pnm_io.cc.o.d"
  "CMakeFiles/walrus_image.dir/image/synth.cc.o"
  "CMakeFiles/walrus_image.dir/image/synth.cc.o.d"
  "CMakeFiles/walrus_image.dir/image/transform.cc.o"
  "CMakeFiles/walrus_image.dir/image/transform.cc.o.d"
  "libwalrus_image.a"
  "libwalrus_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
