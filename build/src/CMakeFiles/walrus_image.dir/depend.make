# Empty dependencies file for walrus_image.
# This may be replaced when dependencies are built.
