
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/color.cc" "src/CMakeFiles/walrus_image.dir/image/color.cc.o" "gcc" "src/CMakeFiles/walrus_image.dir/image/color.cc.o.d"
  "/root/repo/src/image/dataset.cc" "src/CMakeFiles/walrus_image.dir/image/dataset.cc.o" "gcc" "src/CMakeFiles/walrus_image.dir/image/dataset.cc.o.d"
  "/root/repo/src/image/image.cc" "src/CMakeFiles/walrus_image.dir/image/image.cc.o" "gcc" "src/CMakeFiles/walrus_image.dir/image/image.cc.o.d"
  "/root/repo/src/image/pnm_io.cc" "src/CMakeFiles/walrus_image.dir/image/pnm_io.cc.o" "gcc" "src/CMakeFiles/walrus_image.dir/image/pnm_io.cc.o.d"
  "/root/repo/src/image/synth.cc" "src/CMakeFiles/walrus_image.dir/image/synth.cc.o" "gcc" "src/CMakeFiles/walrus_image.dir/image/synth.cc.o.d"
  "/root/repo/src/image/transform.cc" "src/CMakeFiles/walrus_image.dir/image/transform.cc.o" "gcc" "src/CMakeFiles/walrus_image.dir/image/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
