file(REMOVE_RECURSE
  "CMakeFiles/walrus_spatial.dir/spatial/rect.cc.o"
  "CMakeFiles/walrus_spatial.dir/spatial/rect.cc.o.d"
  "CMakeFiles/walrus_spatial.dir/spatial/rstar_tree.cc.o"
  "CMakeFiles/walrus_spatial.dir/spatial/rstar_tree.cc.o.d"
  "libwalrus_spatial.a"
  "libwalrus_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
