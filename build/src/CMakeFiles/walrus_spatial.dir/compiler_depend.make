# Empty compiler generated dependencies file for walrus_spatial.
# This may be replaced when dependencies are built.
