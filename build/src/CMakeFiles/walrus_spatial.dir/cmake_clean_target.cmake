file(REMOVE_RECURSE
  "libwalrus_spatial.a"
)
