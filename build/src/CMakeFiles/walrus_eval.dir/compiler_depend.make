# Empty compiler generated dependencies file for walrus_eval.
# This may be replaced when dependencies are built.
