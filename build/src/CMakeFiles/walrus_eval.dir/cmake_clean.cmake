file(REMOVE_RECURSE
  "CMakeFiles/walrus_eval.dir/eval/ground_truth.cc.o"
  "CMakeFiles/walrus_eval.dir/eval/ground_truth.cc.o.d"
  "CMakeFiles/walrus_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/walrus_eval.dir/eval/metrics.cc.o.d"
  "libwalrus_eval.a"
  "libwalrus_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
