file(REMOVE_RECURSE
  "libwalrus_eval.a"
)
