# Empty compiler generated dependencies file for walrus_core.
# This may be replaced when dependencies are built.
