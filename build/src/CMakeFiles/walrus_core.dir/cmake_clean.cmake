file(REMOVE_RECURSE
  "CMakeFiles/walrus_core.dir/core/bitmap.cc.o"
  "CMakeFiles/walrus_core.dir/core/bitmap.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/index.cc.o"
  "CMakeFiles/walrus_core.dir/core/index.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/params.cc.o"
  "CMakeFiles/walrus_core.dir/core/params.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/query.cc.o"
  "CMakeFiles/walrus_core.dir/core/query.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/region.cc.o"
  "CMakeFiles/walrus_core.dir/core/region.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/region_extractor.cc.o"
  "CMakeFiles/walrus_core.dir/core/region_extractor.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/signature.cc.o"
  "CMakeFiles/walrus_core.dir/core/signature.cc.o.d"
  "CMakeFiles/walrus_core.dir/core/similarity.cc.o"
  "CMakeFiles/walrus_core.dir/core/similarity.cc.o.d"
  "libwalrus_core.a"
  "libwalrus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
