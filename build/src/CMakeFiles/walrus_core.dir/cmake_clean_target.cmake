file(REMOVE_RECURSE
  "libwalrus_core.a"
)
