
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitmap.cc" "src/CMakeFiles/walrus_core.dir/core/bitmap.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/bitmap.cc.o.d"
  "/root/repo/src/core/index.cc" "src/CMakeFiles/walrus_core.dir/core/index.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/index.cc.o.d"
  "/root/repo/src/core/params.cc" "src/CMakeFiles/walrus_core.dir/core/params.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/params.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/walrus_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/region.cc" "src/CMakeFiles/walrus_core.dir/core/region.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/region.cc.o.d"
  "/root/repo/src/core/region_extractor.cc" "src/CMakeFiles/walrus_core.dir/core/region_extractor.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/region_extractor.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/CMakeFiles/walrus_core.dir/core/signature.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/signature.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/walrus_core.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/walrus_core.dir/core/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
