file(REMOVE_RECURSE
  "CMakeFiles/walrus_common.dir/common/logging.cc.o"
  "CMakeFiles/walrus_common.dir/common/logging.cc.o.d"
  "CMakeFiles/walrus_common.dir/common/math_util.cc.o"
  "CMakeFiles/walrus_common.dir/common/math_util.cc.o.d"
  "CMakeFiles/walrus_common.dir/common/random.cc.o"
  "CMakeFiles/walrus_common.dir/common/random.cc.o.d"
  "CMakeFiles/walrus_common.dir/common/serialize.cc.o"
  "CMakeFiles/walrus_common.dir/common/serialize.cc.o.d"
  "CMakeFiles/walrus_common.dir/common/status.cc.o"
  "CMakeFiles/walrus_common.dir/common/status.cc.o.d"
  "CMakeFiles/walrus_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/walrus_common.dir/common/thread_pool.cc.o.d"
  "libwalrus_common.a"
  "libwalrus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
