file(REMOVE_RECURSE
  "libwalrus_common.a"
)
