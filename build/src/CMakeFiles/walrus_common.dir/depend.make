# Empty dependencies file for walrus_common.
# This may be replaced when dependencies are built.
