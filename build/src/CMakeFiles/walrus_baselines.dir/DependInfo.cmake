
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/color_histogram.cc" "src/CMakeFiles/walrus_baselines.dir/baselines/color_histogram.cc.o" "gcc" "src/CMakeFiles/walrus_baselines.dir/baselines/color_histogram.cc.o.d"
  "/root/repo/src/baselines/jfs.cc" "src/CMakeFiles/walrus_baselines.dir/baselines/jfs.cc.o" "gcc" "src/CMakeFiles/walrus_baselines.dir/baselines/jfs.cc.o.d"
  "/root/repo/src/baselines/wbiis.cc" "src/CMakeFiles/walrus_baselines.dir/baselines/wbiis.cc.o" "gcc" "src/CMakeFiles/walrus_baselines.dir/baselines/wbiis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_wavelet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
