file(REMOVE_RECURSE
  "CMakeFiles/walrus_baselines.dir/baselines/color_histogram.cc.o"
  "CMakeFiles/walrus_baselines.dir/baselines/color_histogram.cc.o.d"
  "CMakeFiles/walrus_baselines.dir/baselines/jfs.cc.o"
  "CMakeFiles/walrus_baselines.dir/baselines/jfs.cc.o.d"
  "CMakeFiles/walrus_baselines.dir/baselines/wbiis.cc.o"
  "CMakeFiles/walrus_baselines.dir/baselines/wbiis.cc.o.d"
  "libwalrus_baselines.a"
  "libwalrus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
