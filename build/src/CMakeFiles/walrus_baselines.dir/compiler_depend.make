# Empty compiler generated dependencies file for walrus_baselines.
# This may be replaced when dependencies are built.
