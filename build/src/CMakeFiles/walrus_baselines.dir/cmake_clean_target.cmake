file(REMOVE_RECURSE
  "libwalrus_baselines.a"
)
