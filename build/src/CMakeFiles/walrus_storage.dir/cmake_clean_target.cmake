file(REMOVE_RECURSE
  "libwalrus_storage.a"
)
