
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/walrus_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/walrus_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/disk_rstar.cc" "src/CMakeFiles/walrus_storage.dir/storage/disk_rstar.cc.o" "gcc" "src/CMakeFiles/walrus_storage.dir/storage/disk_rstar.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/walrus_storage.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/walrus_storage.dir/storage/page_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
