# Empty dependencies file for walrus_storage.
# This may be replaced when dependencies are built.
