file(REMOVE_RECURSE
  "CMakeFiles/walrus_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/walrus_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/walrus_storage.dir/storage/disk_rstar.cc.o"
  "CMakeFiles/walrus_storage.dir/storage/disk_rstar.cc.o.d"
  "CMakeFiles/walrus_storage.dir/storage/page_file.cc.o"
  "CMakeFiles/walrus_storage.dir/storage/page_file.cc.o.d"
  "libwalrus_storage.a"
  "libwalrus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
