file(REMOVE_RECURSE
  "CMakeFiles/dataset_search.dir/dataset_search.cpp.o"
  "CMakeFiles/dataset_search.dir/dataset_search.cpp.o.d"
  "dataset_search"
  "dataset_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
