
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dataset_search.cpp" "examples/CMakeFiles/dataset_search.dir/dataset_search.cpp.o" "gcc" "examples/CMakeFiles/dataset_search.dir/dataset_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/walrus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/walrus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
