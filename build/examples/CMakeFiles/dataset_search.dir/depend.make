# Empty dependencies file for dataset_search.
# This may be replaced when dependencies are built.
