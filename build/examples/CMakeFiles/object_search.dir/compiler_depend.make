# Empty compiler generated dependencies file for object_search.
# This may be replaced when dependencies are built.
