file(REMOVE_RECURSE
  "CMakeFiles/object_search.dir/object_search.cpp.o"
  "CMakeFiles/object_search.dir/object_search.cpp.o.d"
  "object_search"
  "object_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
