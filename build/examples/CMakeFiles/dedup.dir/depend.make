# Empty dependencies file for dedup.
# This may be replaced when dependencies are built.
