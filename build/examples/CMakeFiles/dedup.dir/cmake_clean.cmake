file(REMOVE_RECURSE
  "CMakeFiles/dedup.dir/dedup.cpp.o"
  "CMakeFiles/dedup.dir/dedup.cpp.o.d"
  "dedup"
  "dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
