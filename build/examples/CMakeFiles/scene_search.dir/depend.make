# Empty dependencies file for scene_search.
# This may be replaced when dependencies are built.
