file(REMOVE_RECURSE
  "CMakeFiles/scene_search.dir/scene_search.cpp.o"
  "CMakeFiles/scene_search.dir/scene_search.cpp.o.d"
  "scene_search"
  "scene_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
