file(REMOVE_RECURSE
  "CMakeFiles/visualize_regions.dir/visualize_regions.cpp.o"
  "CMakeFiles/visualize_regions.dir/visualize_regions.cpp.o.d"
  "visualize_regions"
  "visualize_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
