# Empty compiler generated dependencies file for visualize_regions.
# This may be replaced when dependencies are built.
