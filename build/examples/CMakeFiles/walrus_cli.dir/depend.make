# Empty dependencies file for walrus_cli.
# This may be replaced when dependencies are built.
