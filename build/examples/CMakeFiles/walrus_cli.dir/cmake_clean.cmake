file(REMOVE_RECURSE
  "CMakeFiles/walrus_cli.dir/walrus_cli.cpp.o"
  "CMakeFiles/walrus_cli.dir/walrus_cli.cpp.o.d"
  "walrus_cli"
  "walrus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walrus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
