file(REMOVE_RECURSE
  "../bench/bench_dp_signature"
  "../bench/bench_dp_signature.pdb"
  "CMakeFiles/bench_dp_signature.dir/bench_dp_signature.cc.o"
  "CMakeFiles/bench_dp_signature.dir/bench_dp_signature.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
