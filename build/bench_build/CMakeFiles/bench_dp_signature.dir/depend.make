# Empty dependencies file for bench_dp_signature.
# This may be replaced when dependencies are built.
