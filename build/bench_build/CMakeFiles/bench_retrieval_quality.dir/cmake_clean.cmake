file(REMOVE_RECURSE
  "../bench/bench_retrieval_quality"
  "../bench/bench_retrieval_quality.pdb"
  "CMakeFiles/bench_retrieval_quality.dir/bench_retrieval_quality.cc.o"
  "CMakeFiles/bench_retrieval_quality.dir/bench_retrieval_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retrieval_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
