# Empty dependencies file for bench_retrieval_quality.
# This may be replaced when dependencies are built.
