# Empty dependencies file for bench_disk_index.
# This may be replaced when dependencies are built.
