file(REMOVE_RECURSE
  "../bench/bench_disk_index"
  "../bench/bench_disk_index.pdb"
  "CMakeFiles/bench_disk_index.dir/bench_disk_index.cc.o"
  "CMakeFiles/bench_disk_index.dir/bench_disk_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
