file(REMOVE_RECURSE
  "../bench/bench_rstar"
  "../bench/bench_rstar.pdb"
  "CMakeFiles/bench_rstar.dir/bench_rstar.cc.o"
  "CMakeFiles/bench_rstar.dir/bench_rstar.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
