# Empty dependencies file for bench_rstar.
# This may be replaced when dependencies are built.
