# Empty compiler generated dependencies file for bench_wavelet.
# This may be replaced when dependencies are built.
