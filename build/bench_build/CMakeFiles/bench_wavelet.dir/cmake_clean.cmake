file(REMOVE_RECURSE
  "../bench/bench_wavelet"
  "../bench/bench_wavelet.pdb"
  "CMakeFiles/bench_wavelet.dir/bench_wavelet.cc.o"
  "CMakeFiles/bench_wavelet.dir/bench_wavelet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
