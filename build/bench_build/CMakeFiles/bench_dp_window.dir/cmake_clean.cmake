file(REMOVE_RECURSE
  "../bench/bench_dp_window"
  "../bench/bench_dp_window.pdb"
  "CMakeFiles/bench_dp_window.dir/bench_dp_window.cc.o"
  "CMakeFiles/bench_dp_window.dir/bench_dp_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
