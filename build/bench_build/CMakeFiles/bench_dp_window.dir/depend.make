# Empty dependencies file for bench_dp_window.
# This may be replaced when dependencies are built.
