file(REMOVE_RECURSE
  "../bench/bench_robustness"
  "../bench/bench_robustness.pdb"
  "CMakeFiles/bench_robustness.dir/bench_robustness.cc.o"
  "CMakeFiles/bench_robustness.dir/bench_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
