file(REMOVE_RECURSE
  "../bench/bench_clusterer"
  "../bench/bench_clusterer.pdb"
  "CMakeFiles/bench_clusterer.dir/bench_clusterer.cc.o"
  "CMakeFiles/bench_clusterer.dir/bench_clusterer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clusterer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
