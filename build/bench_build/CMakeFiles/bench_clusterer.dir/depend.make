# Empty dependencies file for bench_clusterer.
# This may be replaced when dependencies are built.
