file(REMOVE_RECURSE
  "../bench/bench_param_sensitivity"
  "../bench/bench_param_sensitivity.pdb"
  "CMakeFiles/bench_param_sensitivity.dir/bench_param_sensitivity.cc.o"
  "CMakeFiles/bench_param_sensitivity.dir/bench_param_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
