# Empty dependencies file for bench_region_count.
# This may be replaced when dependencies are built.
