file(REMOVE_RECURSE
  "../bench/bench_region_count"
  "../bench/bench_region_count.pdb"
  "CMakeFiles/bench_region_count.dir/bench_region_count.cc.o"
  "CMakeFiles/bench_region_count.dir/bench_region_count.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_region_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
