# Empty compiler generated dependencies file for bench_signature_kind.
# This may be replaced when dependencies are built.
