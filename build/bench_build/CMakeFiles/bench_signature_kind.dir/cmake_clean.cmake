file(REMOVE_RECURSE
  "../bench/bench_signature_kind"
  "../bench/bench_signature_kind.pdb"
  "CMakeFiles/bench_signature_kind.dir/bench_signature_kind.cc.o"
  "CMakeFiles/bench_signature_kind.dir/bench_signature_kind.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signature_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
