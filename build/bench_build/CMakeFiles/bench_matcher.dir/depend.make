# Empty dependencies file for bench_matcher.
# This may be replaced when dependencies are built.
