file(REMOVE_RECURSE
  "../bench/bench_query_selectivity"
  "../bench/bench_query_selectivity.pdb"
  "CMakeFiles/bench_query_selectivity.dir/bench_query_selectivity.cc.o"
  "CMakeFiles/bench_query_selectivity.dir/bench_query_selectivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
