# Empty compiler generated dependencies file for bench_query_selectivity.
# This may be replaced when dependencies are built.
