file(REMOVE_RECURSE
  "../bench/bench_birch"
  "../bench/bench_birch.pdb"
  "CMakeFiles/bench_birch.dir/bench_birch.cc.o"
  "CMakeFiles/bench_birch.dir/bench_birch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_birch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
