# Empty dependencies file for bench_birch.
# This may be replaced when dependencies are built.
