#!/usr/bin/env bash
# Format gate, diff mode only: clang-format checks just the C++ files a
# change touches, so formatting is enforced where work happens without
# ever mass-reformatting the tree (which would destroy blame and conflict
# with every open branch).
#
#   scripts/check_format.sh                 # files changed vs origin/main
#   scripts/check_format.sh --base REF      # files changed vs REF
#   scripts/check_format.sh FILE...         # exactly these files
#
# Exits 0 when every checked file is clean or when clang-format is not
# installed (the CI static-analysis job is the gate of record, mirroring
# how check.sh gates clang-tidy); exits 1 listing the dirty files with
# their diffs otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format.sh: clang-format not installed; skipping"
  exit 0
fi

base="origin/main"
files=()
while [ $# -gt 0 ]; do
  case "$1" in
    --base)
      base="${2:?--base needs a ref}"
      shift 2
      ;;
    *)
      files+=("$1")
      shift
      ;;
  esac
done

if [ ${#files[@]} -eq 0 ]; then
  # Everything touched relative to the merge base, plus uncommitted work.
  # `--diff-filter=d` drops deletions (nothing left to format).
  if ! merge_base="$(git merge-base "$base" HEAD 2>/dev/null)"; then
    merge_base=""  # shallow clone or missing ref: check the working tree
  fi
  mapfile -t files < <(
    { [ -n "$merge_base" ] && git diff --name-only --diff-filter=d "$merge_base"; \
      git diff --name-only --diff-filter=d; \
      git diff --name-only --diff-filter=d --cached; } \
    | sort -u | grep -E '\.(h|cc|cpp)$' || true)
fi

if [ ${#files[@]} -eq 0 ]; then
  echo "check_format.sh: no C++ files changed; nothing to check"
  exit 0
fi

failures=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  if ! diff_out="$(diff -u "$f" <(clang-format --style=file "$f"))"; then
    echo "NEEDS FORMAT: $f"
    echo "$diff_out" | head -40
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_format.sh: $failures file(s) need clang-format" >&2
  exit 1
fi
echo "check_format.sh: ${#files[@]} changed file(s) clean"
