#!/usr/bin/env bash
# Correctness gate: static analysis + the full test suite under
# ASan+UBSan + the concurrency tests under TSan. Exits nonzero if any
# stage fails. Run from anywhere; builds live in build-asan/ and
# build-tsan/ next to the primary build/ tree.
#
#   scripts/check.sh            # everything
#   JOBS=4 scripts/check.sh     # cap build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
failures=0

# --- Stage 0: repo invariants (walrus-lint) + format diff ----------------
# Dependency-free, so these never skip: the lint runs anywhere Python 3
# does, and check_format.sh degrades to a no-op without clang-format.
echo "== walrus-lint =="
if ! python3 scripts/walrus_lint.py --self-test; then
  echo "check.sh: FAIL: walrus-lint self-test" >&2
  failures=1
fi
if ! python3 scripts/walrus_lint.py; then
  echo "check.sh: FAIL: walrus-lint findings" >&2
  failures=1
fi
echo "== clang-format (changed files) =="
if ! scripts/check_format.sh; then
  echo "check.sh: FAIL: formatting drift in changed files" >&2
  failures=1
fi

# --- Stage 1: clang-tidy (skipped when the binary is unavailable) --------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t sources < <(find src -name '*.cc' | sort)
  if ! clang-tidy -p build --quiet "${sources[@]}"; then
    echo "check.sh: FAIL: clang-tidy reported findings" >&2
    failures=1
  fi
else
  echo "== clang-tidy not installed; skipping static analysis =="
fi

# --- Stage 2: full test suite under AddressSanitizer + UBSan -------------
echo "== tests under ASan+UBSan =="
cmake -B build-asan -S . \
  -DWALRUS_SANITIZE="address;undefined" \
  -DWALRUS_BUILD_BENCHMARKS=OFF \
  -DWALRUS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
if ! ctest --test-dir build-asan --output-on-failure -j "$JOBS" >/dev/null; then
  echo "check.sh: FAIL: tests under ASan+UBSan" >&2
  failures=1
fi

# --- Stage 3: concurrency tests under ThreadSanitizer --------------------
echo "== concurrency tests under TSan =="
cmake -B build-tsan -S . \
  -DWALRUS_SANITIZE=thread \
  -DWALRUS_BUILD_BENCHMARKS=OFF \
  -DWALRUS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
if ! ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'ThreadPool|ParallelIndex|QueryBatch|PagedConcurrency|WalrusServer|MalformedFrame|MetricsConcurrency|ShardedIndex|ResultCache|BatchedProbe|WalTest|WalCrashRecovery|LiveIndex|FaultInjection|ProtocolPipelineFuzz|SignatureFilter' >/dev/null; then
  echo "check.sh: FAIL: concurrency tests under TSan" >&2
  failures=1
fi

if [ "$failures" -ne 0 ]; then
  echo "check.sh: FAILED" >&2
  exit 1
fi
echo "check.sh: all stages passed"
