#!/usr/bin/env bash
# Documentation link checker: every relative markdown link and every
# `path/file.ext`-style reference in the top-level docs must point at a
# real file in the repo. Catches the classic doc-rot failure (a refactor
# renames a file, the docs keep pointing at the old name). External
# http(s) links and pure anchors are skipped — this is a hermetic check.
#
# Usage: scripts/check_docs.sh   (from anywhere; exits non-zero on rot)
set -u

cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md ROADMAP.md EXPERIMENTS.md CHANGES.md
      docs/ARCHITECTURE.md docs/OPERATIONS.md)

failures=0

check_target() {
  # $1 = doc file, $2 = link target as written. Resolution tries the repo
  # conventions the docs use: paths relative to the doc, to the repo root,
  # and to src/ (`core/index` means src/core/index.h); extensionless
  # module/binary names resolve via .h/.cc/.cpp.
  local doc="$1" target="$2"
  case "$target" in
    http://*|https://*|mailto:*|\#*) return 0 ;;
  esac
  target="${target%%#*}"            # strip anchor
  [ -z "$target" ] && return 0
  local base
  base="$(dirname "$doc")"
  local candidate
  for candidate in "$target" "$base/$target" "src/$target"; do
    [ -e "$candidate" ] && return 0
    local ext
    for ext in .h .cc .cpp; do
      [ -e "$candidate$ext" ] && return 0
    done
  done
  echo "BROKEN: $doc -> $target"
  failures=$((failures + 1))
}

for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || continue

  # Markdown links: [text](target)
  while IFS= read -r target; do
    check_target "$doc" "$target"
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')

  # Inline-code file references: `path/to/file.ext` (with optional :line
  # or trailing glob-ish `.*` / `{...}` expansions, which we expand).
  while IFS= read -r ref; do
    ref="${ref%%:*}"                # drop :line suffixes
    case "$ref" in
      *'*'*)                        # `src/image/*` or `foo.*` style
        compgen -G "$ref" > /dev/null || compgen -G "src/$ref" > /dev/null \
          || {
          echo "BROKEN: $doc -> $ref (glob matches nothing)"
          failures=$((failures + 1))
        } ;;
      *'{'*)                        # `result_cache.{h,cc}` style
        for expanded in $(eval echo "$ref" 2>/dev/null); do
          check_target "$doc" "$expanded"
        done ;;
      *) check_target "$doc" "$ref" ;;
    esac
  done < <(grep -oE '`[A-Za-z0-9_./*{},-]+/[A-Za-z0-9_.*{},-]+`' "$doc" \
           | tr -d '`' | grep -vE '^(walrus|127|0)\.')
done

if [ "$failures" -gt 0 ]; then
  echo "check_docs: $failures broken doc reference(s)"
  exit 1
fi
echo "check_docs: all doc links resolve"
