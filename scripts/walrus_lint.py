#!/usr/bin/env python3
"""walrus-lint: repo-specific invariant checker (DESIGN.md section 13).

Checks the contracts that the compiler cannot (or that only Clang checks,
while this lint must hold on any machine):

  bare-mutex           No direct use of <mutex>/<shared_mutex>/
                       <condition_variable> primitives outside
                       src/common/sync.h. Raw std::mutex fields cannot carry
                       WALRUS_GUARDED_BY contracts, so every lock in the
                       tree must be the annotated wrappers.
  discarded-status     No `(void)` cast applied to a call expression.
                       Status and Result<T> are class-level [[nodiscard]]
                       and the build runs -Werror=unused-result; the only
                       way to silently drop an error is to launder it
                       through a void cast, so that spelling is banned
                       outright ((void)variable marks an unused binding and
                       stays legal). Also verifies the [[nodiscard]]
                       markers themselves are still present on Status and
                       Result in common/status.h.
  metric-docs          Every `walrus.*` metric name literal in src/ appears
                       in the docs/OPERATIONS.md catalog (exact match, a
                       `<i>`-placeholder prefix, or the `a.b.x` / `y` / `z`
                       shorthand the tables use). New metrics must land
                       with their documentation.
  dcheck-side-effect   WALRUS_DCHECK compiles to nothing in release builds,
                       so its argument must not mutate state: no ++/--,
                       no assignment or compound assignment inside the
                       checked expression.
  iwyu-common          Spot include-what-you-use rules for src/common/
                       macros and lock types: a file that names
                       WALRUS_LOG / WALRUS_CHECK / MutexLock / etc. must
                       include the defining header itself (or in its
                       same-named primary header) rather than leaning on a
                       transitive include.

The engine is regex/line based and dependency-free so it runs anywhere
Python 3 does. When the optional libclang bindings are importable the
discarded-status rule additionally walks the AST for unused
Status-returning call statements; absence of libclang only narrows that
one rule, it never fails the lint.

Usage:
  scripts/walrus_lint.py              lint the repo (src/ + docs catalog)
  scripts/walrus_lint.py --self-test  run against tests/static/lint_corpus
                                      and verify every bad_*.cc file
                                      triggers exactly its declared rule
Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.
"""

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class Finding(NamedTuple):
    rule: str
    path: str
    line: int  # 1-based; 0 = whole-file finding
    message: str

    def render(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def _strip_comments_keep_lines(text: str) -> str:
    """Removes // and /* */ comments and string/char literals, preserving
    line structure so findings keep real line numbers. Lint rules must not
    fire on prose or on quoted examples."""
    out: List[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            i += 1
            continue
        elif state == "block_comment":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
            i += 1
            continue
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; resync
                state = "code"
                out.append(c)
            i += 1
            continue
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rule: bare-mutex
# --------------------------------------------------------------------------

_BARE_MUTEX_EXEMPT = {os.path.join("src", "common", "sync.h")}
_BARE_MUTEX_TOKENS = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std::shared_(?:mutex|timed_mutex|lock)\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
)
_BARE_MUTEX_INCLUDE = re.compile(
    r"#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)


def check_bare_mutex(path: str, rel: str, code: str) -> List[Finding]:
    if rel.replace(os.sep, "/") in {p.replace(os.sep, "/")
                                    for p in _BARE_MUTEX_EXEMPT}:
        return []
    findings = []
    for lineno, line in enumerate(code.splitlines(), 1):
        m = _BARE_MUTEX_INCLUDE.search(line)
        if m:
            findings.append(Finding(
                "bare-mutex", rel, lineno,
                f"#include <{m.group(1)}> outside common/sync.h; "
                "use the annotated wrappers in common/sync.h"))
            continue
        m = _BARE_MUTEX_TOKENS.search(line)
        if m:
            findings.append(Finding(
                "bare-mutex", rel, lineno,
                f"raw {m.group(0)} outside common/sync.h; "
                "use walrus::Mutex / MutexLock / CondVar so the lock "
                "carries thread-safety annotations"))
    return findings


# --------------------------------------------------------------------------
# Rule: discarded-status
# --------------------------------------------------------------------------

# `(void)` immediately applied to something that is (or leads to) a call:
# (void)Foo(...), (void)obj.Method(...), (void)ns::Fn(...),
# (void)ptr->Method(...). `(void)identifier;` (unused binding) stays legal.
_VOID_CAST_CALL = re.compile(
    r"\(\s*void\s*\)\s*[A-Za-z_][\w:.\->]*\s*\(")


def check_discarded_status(path: str, rel: str, code: str) -> List[Finding]:
    findings = []
    for lineno, line in enumerate(code.splitlines(), 1):
        if _VOID_CAST_CALL.search(line):
            findings.append(Finding(
                "discarded-status", rel, lineno,
                "(void)-cast of a call expression; if the callee returns "
                "Status, handle or propagate it — there is no sanctioned "
                "discard spelling"))
    return findings


def check_status_nodiscard(root: str) -> List[Finding]:
    """Whole-repo half of discarded-status: the [[nodiscard]] markers that
    make -Werror=unused-result bite must stay on Status and Result."""
    rel = os.path.join("src", "common", "status.h")
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return []
    text = open(path, encoding="utf-8").read()
    findings = []
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", text):
        findings.append(Finding(
            "discarded-status", rel, 0,
            "class Status has lost its [[nodiscard]] marker"))
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Result\b", text):
        findings.append(Finding(
            "discarded-status", rel, 0,
            "class Result has lost its [[nodiscard]] marker"))
    return findings


# --------------------------------------------------------------------------
# Rule: metric-docs
# --------------------------------------------------------------------------

_METRIC_LITERAL = re.compile(r'"(walrus\.[a-zA-Z0-9_.]+)"')
_DOC_METRIC = re.compile(r"(walrus\.[a-zA-Z0-9_.]*[a-zA-Z0-9_])(<[a-z]+>)?")
_DOC_SHORTHAND = re.compile(r"`([a-z0-9_]+)`")


def load_documented_metrics(doc_path: str) -> Tuple[set, List[str]]:
    """Returns (exact names, placeholder prefixes) documented in the
    operations catalog. Handles the two table shorthands:
      `walrus.birch.runs` / `points` / `clusters`   (same-prefix family)
      `walrus.sharded.probe_regions.s<i>`           (indexed series)
    """
    exact: set = set()
    prefixes: List[str] = []
    for line in open(doc_path, encoding="utf-8"):
        full_names = _DOC_METRIC.findall(line)
        for name, placeholder in full_names:
            if placeholder:
                # `walrus.x.s<i>`: everything up to the placeholder is the
                # documented prefix of an indexed metric family.
                prefixes.append(name)
            else:
                exact.add(name)
        if full_names:
            # `walrus.a.b` / `c` / `d`  documents walrus.a.c and walrus.a.d.
            first = full_names[0][0]
            family = first.rsplit(".", 1)[0]
            for short in _DOC_SHORTHAND.findall(line):
                exact.add(f"{family}.{short}")
    return exact, prefixes


def check_metric_docs(rel: str, code: str, documented: set,
                      prefixes: List[str]) -> List[Finding]:
    findings = []
    for lineno, line in enumerate(code.splitlines(), 1):
        for name in _METRIC_LITERAL.findall(line):
            if name in documented:
                continue
            if any(name.startswith(p) or p.startswith(name)
                   for p in prefixes):
                continue
            findings.append(Finding(
                "metric-docs", rel, lineno,
                f'metric "{name}" is not documented in the '
                "docs/OPERATIONS.md catalog"))
    return findings


# --------------------------------------------------------------------------
# Rule: dcheck-side-effect
# --------------------------------------------------------------------------

_MUTATION = re.compile(
    r"\+\+|--"
    r"|[+\-*/%&|^]="          # compound assignment
    r"|(?<![=!<>+\-*/%&|^])=(?![=])"  # plain =, not ==/!=/<=/>= or compound
)


def _balanced_argument(text: str, start: int) -> Optional[str]:
    """Returns the text between the parens opening at text[start]=='('."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
    return None


def check_dcheck_side_effect(rel: str, code: str) -> List[Finding]:
    findings = []
    for m in re.finditer(r"\bWALRUS_DCHECK\s*\(", code):
        arg = _balanced_argument(code, m.end() - 1)
        if arg is None:
            continue
        lineno = code.count("\n", 0, m.start()) + 1
        if _MUTATION.search(arg):
            findings.append(Finding(
                "dcheck-side-effect", rel, lineno,
                "WALRUS_DCHECK argument mutates state; the macro compiles "
                "out in release builds, so the side effect silently "
                "disappears — hoist the mutation out of the check"))
    return findings


# --------------------------------------------------------------------------
# Rule: iwyu-common
# --------------------------------------------------------------------------

# Macro / lock-type tokens that cannot be forward-declared: naming one
# means the file depends directly on the defining header.
_IWYU_RULES: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bWALRUS_LOG\b"), "common/logging.h"),
    (re.compile(r"\bWALRUS_D?CHECK\b"), "common/check.h"),
    (re.compile(
        r"\bWALRUS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES(?:_SHARED)?|"
        r"ACQUIRE(?:_SHARED)?|RELEASE(?:_SHARED|_GENERIC)?|TRY_ACQUIRE|"
        r"EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY|CAPABILITY|"
        r"SCOPED_CAPABILITY|ACQUIRED_(?:BEFORE|AFTER)|"
        r"NO_THREAD_SAFETY_ANALYSIS)\b"
        r"|\b(?:MutexLock|WriterMutexLock|ReaderMutexLock|CondVar)\b"),
     "common/sync.h"),
    (re.compile(r"\bWALRUS_RETURN_IF_ERROR\b|\bWALRUS_ASSIGN_OR_RETURN\b"),
     "common/status.h"),
]


def _direct_includes(text: str) -> set:
    return set(re.findall(r'#\s*include\s*"([^"]+)"', text))


def check_iwyu_common(root: str, rel: str, code: str,
                      raw_text: str) -> List[Finding]:
    rel_posix = rel.replace(os.sep, "/")
    includes = _direct_includes(raw_text)
    # A foo.cc may rely on its primary header foo.h pulling the dependency:
    # the pair is one module and the header's include list is its contract.
    if rel_posix.endswith(".cc"):
        primary = rel_posix[len("src/"):-len(".cc")] + ".h"
        primary_path = os.path.join(root, "src", primary)
        if primary in includes and os.path.exists(primary_path):
            includes |= _direct_includes(
                open(primary_path, encoding="utf-8").read())
    findings = []
    for pattern, header in _IWYU_RULES:
        if rel_posix == f"src/{header}":
            continue  # the defining header itself
        if header in includes:
            continue
        m = pattern.search(code)
        if m:
            lineno = code.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                "iwyu-common", rel, lineno,
                f"uses {m.group(0)} but does not include \"{header}\" "
                "(directly or via its primary header)"))
    return findings


# --------------------------------------------------------------------------
# Optional libclang refinement (discarded-status)
# --------------------------------------------------------------------------

def libclang_unused_status(root: str, files: List[str]) -> List[Finding]:
    """AST pass: expression statements that call a Status-returning
    function and drop the value. Runs only when the python libclang
    bindings and a compile_commands.json are both available; regex rules
    above remain the gate of record either way."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return []
    db_dir = os.path.join(root, "build")
    if not os.path.exists(os.path.join(db_dir, "compile_commands.json")):
        return []
    try:
        db = cindex.CompilationDatabase.fromDirectory(db_dir)
        index = cindex.Index.create()
    except Exception:
        return []
    findings: List[Finding] = []
    for path in files:
        if not path.endswith(".cc"):
            continue
        cmds = db.getCompileCommands(path)
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:]
                if a not in (path, "-c", "-o") and not a.endswith(".o")]
        try:
            tu = index.parse(path, args=args)
        except Exception:
            continue

        def walk(node, parent_kind):
            if (node.kind == cindex.CursorKind.CALL_EXPR
                    and parent_kind == cindex.CursorKind.COMPOUND_STMT
                    and node.type.spelling.split("::")[-1] == "Status"):
                findings.append(Finding(
                    "discarded-status",
                    os.path.relpath(path, root),
                    node.location.line,
                    "call returns Status but the value is unused (AST)"))
            for child in node.get_children():
                walk(child, node.kind)

        walk(tu.cursor, None)
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def iter_sources(src_root: str) -> List[str]:
    out = []
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def lint_tree(root: str, doc_path: str, files: List[str],
              use_libclang: bool = True) -> List[Finding]:
    documented, prefixes = (set(), [])
    if os.path.exists(doc_path):
        documented, prefixes = load_documented_metrics(doc_path)
    findings: List[Finding] = list(check_status_nodiscard(root))
    for path in files:
        rel = os.path.relpath(path, root)
        raw = open(path, encoding="utf-8").read()
        code = _strip_comments_keep_lines(raw)
        findings += check_bare_mutex(path, rel, code)
        findings += check_discarded_status(path, rel, code)
        findings += check_metric_docs(rel, raw, documented, prefixes)
        findings += check_dcheck_side_effect(rel, code)
        findings += check_iwyu_common(root, rel, code, raw)
    if use_libclang:
        findings += libclang_unused_status(root, files)
    return findings


# --------------------------------------------------------------------------
# Self test
# --------------------------------------------------------------------------

_EXPECT = re.compile(r"lint-expect:\s*([a-z-]+)")


def self_test(root: str) -> int:
    corpus = os.path.join(root, "tests", "static", "lint_corpus")
    if not os.path.isdir(corpus):
        print(f"walrus-lint: self-test corpus missing: {corpus}",
              file=sys.stderr)
        return 2
    doc_path = os.path.join(corpus, "operations.md")
    failures = 0
    for name in sorted(os.listdir(corpus)):
        if not name.endswith((".h", ".cc")):
            continue
        path = os.path.join(corpus, name)
        raw = open(path, encoding="utf-8").read()
        expected = sorted(set(_EXPECT.findall(raw)))
        # Corpus files stand in for files under src/, so lint them with
        # corpus-relative paths and the corpus's own metric catalog.
        findings = lint_tree(corpus, doc_path, [path], use_libclang=False)
        # Whole-repo status.h marker check doesn't apply to corpus files.
        findings = [f for f in findings if f.line != 0]
        got = sorted({f.rule for f in findings})
        if got != expected:
            failures += 1
            print(f"SELF-TEST FAIL {name}: expected rules {expected}, "
                  f"got {got}", file=sys.stderr)
            for f in findings:
                print(f"    {f.render()}", file=sys.stderr)
    if failures:
        print(f"walrus-lint self-test: {failures} corpus file(s) "
              "misclassified", file=sys.stderr)
        return 1
    print("walrus-lint self-test: corpus classified correctly")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the linter against its corpus")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: all of src/)")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    src_root = os.path.join(args.root, "src")
    files = ([os.path.abspath(f) for f in args.files]
             if args.files else iter_sources(src_root))
    doc_path = os.path.join(args.root, "docs", "OPERATIONS.md")
    findings = lint_tree(args.root, doc_path, files)
    for f in sorted(findings):
        print(f.render())
    if findings:
        print(f"walrus-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"walrus-lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
