#ifndef WALRUS_BENCH_BENCH_JSON_H_
#define WALRUS_BENCH_BENCH_JSON_H_

// Machine-readable benchmark reports: each experiment binary that opts in
// writes BENCH_<name>.json next to its stdout tables so CI can archive the
// numbers and trend them across commits. Header-only on purpose — bench
// binaries link the core libraries but have no bench library of their own.
//
// Layout:
//   { "name": "...", "params": {...}, "rows": [ {...}, ... ] }
// where params hold the workload knobs and each row is one measured
// configuration (one printed table line).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace walrus {
namespace bench {

/// Flat JSON object rendered as insertion-ordered key/value pairs.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
    return *this;
  }
  JsonObject& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonObject& Set(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    fields_.emplace_back(key, buffer);
    return *this;
  }
  JsonObject& Set(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += Quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Quote(const std::string& raw) {
    std::string out = "\"";
    for (char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// One benchmark's report; destructor-less, call WriteFile() at the end of
/// main after all rows are recorded.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Workload knobs (dataset size, iteration counts, ...).
  JsonObject& params() { return params_; }

  /// Appends and returns one measured configuration.
  JsonObject& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes BENCH_<name>.json into `dir` (default: current directory, or
  /// $WALRUS_BENCH_JSON_DIR when set). Returns the path, empty on failure.
  std::string WriteFile(std::string dir = "") const {
    if (dir.empty()) {
      const char* env = std::getenv("WALRUS_BENCH_JSON_DIR");
      dir = env != nullptr ? env : ".";
    }
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.good()) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return "";
    }
    out << "{\"name\":\"" << name_ << "\",\"params\":" << params_.Render()
        << ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out << ",";
      out << rows_[i].Render();
    }
    out << "]}\n";
    std::printf("# wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  JsonObject params_;
  std::vector<JsonObject> rows_;
};

}  // namespace bench
}  // namespace walrus

#endif  // WALRUS_BENCH_BENCH_JSON_H_
