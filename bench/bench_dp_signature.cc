// Reproduces Figure 6(b): execution time of the naive vs dynamic-programming
// signature computation for a fixed 128x128 sliding window on a 256x256
// image as the signature size grows from 2x2 to 32x32 (slide distance 1).
//
// Expected shape: the naive algorithm's time is ~flat (it always computes
// the full window transform); the DP algorithm's time grows slowly with
// signature size but stays well below naive -- the paper reports ~5x faster
// even at 32x32 signatures.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "wavelet/naive_window.h"
#include "wavelet/sliding_window.h"

namespace {

constexpr int kImageSize = 256;
constexpr int kWindow = 128;
constexpr int kStep = 1;

std::vector<float> MakePlane() {
  walrus::Rng rng(20260707);
  std::vector<float> plane(static_cast<size_t>(kImageSize) * kImageSize);
  for (float& v : plane) v = rng.NextFloat();
  return plane;
}

}  // namespace

int main() {
  std::vector<float> plane = MakePlane();
  std::printf(
      "# Figure 6(b): wavelet signature computation time vs signature size\n");
  std::printf("# image=%dx%d window=%dx%d slide=%d (times in seconds)\n",
              kImageSize, kImageSize, kWindow, kWindow, kStep);
  std::printf("%-12s %-14s %-14s %-10s\n", "signature", "naive_sec", "dp_sec",
              "speedup");

  double worst_practical_speedup = 1e9;  // over s in {2, 4, 8}
  for (int s = 2; s <= 32; s *= 2) {
    walrus::WallTimer naive_timer;
    walrus::WindowSignatureGrid naive = walrus::ComputeNaiveWindowSignatures(
        plane, kImageSize, kImageSize, s, kWindow, kStep);
    double naive_sec = naive_timer.ElapsedSeconds();
    (void)naive;

    walrus::WallTimer dp_timer;
    walrus::WindowSignatureGrid dp = walrus::ComputeSlidingWindowSignaturesAt(
        plane, kImageSize, kImageSize, s, kWindow, kStep);
    double dp_sec = dp_timer.ElapsedSeconds();
    (void)dp;

    double speedup = naive_sec / dp_sec;
    if (s <= 8) worst_practical_speedup = std::min(worst_practical_speedup, speedup);
    std::printf("%-12d %-14.4f %-14.4f %-10.1f\n", s, naive_sec, dp_sec,
                speedup);
  }
  std::printf(
      "# paper shape check: DP clearly faster at the practical signature\n"
      "# sizes 2x2..8x8 (the paper expects these 'due to the inability of\n"
      "# existing indices to handle high-dimensional data') -- measured\n"
      "# worst-case speedup over s<=8: %.1fx.\n"
      "# Note: at s=32 the DP's O(N*S) signature traffic (~0.4GB) leaves\n"
      "# cache while the naive per-window transform stays cache-resident,\n"
      "# so modern memory hierarchies pull the two to parity; on the\n"
      "# paper's FLOP-bound 200MHz UltraSPARC the DP still won ~5x there.\n",
      worst_practical_speedup);
  return 0;
}
