// Ablation: centroid vs bounding-box region signatures (both variants of
// Definition 4.1). Measures index size/selectivity, query latency and
// retrieval quality on the labelled synthetic dataset. The paper uses
// centroids in its experiments and mentions bounding boxes as the
// alternative; this quantifies the trade-off: boxes match more generously
// (higher recall, more candidates retrieved), centroids are tighter.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct KindReport {
  double build_sec = 0.0;
  double avg_query_ms = 0.0;
  double avg_candidates = 0.0;
  double avg_regions_retrieved = 0.0;
  double p5 = 0.0;
};

KindReport Evaluate(walrus::RegionSignatureKind kind,
                    const std::vector<walrus::LabeledImage>& dataset,
                    const walrus::GroundTruth& truth, int num_queries) {
  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;
  params.slide_step = 8;
  params.signature_kind = kind;
  walrus::WalrusIndex index(params);

  KindReport report;
  walrus::WallTimer build_timer;
  for (const walrus::LabeledImage& scene : dataset) {
    if (!index.AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
             .ok()) {
      std::exit(1);
    }
  }
  report.build_sec = build_timer.ElapsedSeconds();

  std::vector<double> precisions;
  for (int q = 0; q < num_queries; ++q) {
    walrus::QueryOptions options;
    options.epsilon = 0.085f;
    walrus::QueryStats stats;
    auto matches =
        walrus::ExecuteQuery(index, dataset[q].image, options, &stats);
    if (!matches.ok()) std::exit(1);
    report.avg_query_ms += stats.seconds * 1e3;
    report.avg_candidates += stats.distinct_images;
    report.avg_regions_retrieved += stats.avg_regions_per_query_region;
    std::vector<uint64_t> ids;
    for (const walrus::QueryMatch& m : *matches) {
      if (m.image_id != static_cast<uint64_t>(q)) ids.push_back(m.image_id);
    }
    precisions.push_back(walrus::PrecisionAtK(
        ids, truth.ForQuery(static_cast<uint64_t>(q)), 5));
  }
  report.avg_query_ms /= num_queries;
  report.avg_candidates /= num_queries;
  report.avg_regions_retrieved /= num_queries;
  report.p5 = walrus::MeanOf(precisions);
  return report;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_KIND_IMAGES", 90);
  const int num_queries = EnvInt("WALRUS_BENCH_KIND_QUERIES", 18);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 31337;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);
  walrus::GroundTruth truth(dataset);

  std::printf(
      "# ablation: centroid vs bounding-box region signatures "
      "(%d images, %d queries, eps=0.085)\n",
      num_images, num_queries);
  std::printf("%-14s %-11s %-12s %-12s %-16s %-8s\n", "kind", "build_s",
              "query_ms", "candidates", "regions/region", "P@5");
  KindReport centroid = Evaluate(walrus::RegionSignatureKind::kCentroid,
                                 dataset, truth, num_queries);
  std::printf("%-14s %-11.2f %-12.2f %-12.1f %-16.1f %-8.3f\n", "centroid",
              centroid.build_sec, centroid.avg_query_ms,
              centroid.avg_candidates, centroid.avg_regions_retrieved,
              centroid.p5);
  KindReport bbox = Evaluate(walrus::RegionSignatureKind::kBoundingBox,
                             dataset, truth, num_queries);
  std::printf("%-14s %-11.2f %-12.2f %-12.1f %-16.1f %-8.3f\n", "bbox",
              bbox.build_sec, bbox.avg_query_ms, bbox.avg_candidates,
              bbox.avg_regions_retrieved, bbox.p5);
  std::printf(
      "# expected shape: bounding boxes retrieve more regions/candidates "
      "per query (looser Definition 4.1) -- %s\n",
      bbox.avg_regions_retrieved >= centroid.avg_regions_retrieved
          ? "HOLDS"
          : "VIOLATED");
  return 0;
}
