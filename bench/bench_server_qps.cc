// walrusd loopback throughput/latency: QPS and client-observed p50/p99 vs.
// client concurrency, for both index backends. Every client thread runs its
// own connection and issues QUERY requests back-to-back, so the measurement
// covers the full stack: framing, CRC, dispatch, the query pipeline, and
// the response path.
//
//   WALRUS_BENCH_SERVER_IMAGES=300 WALRUS_BENCH_SERVER_QUERIES=40
//   are the dataset/load knobs; run ./build/bench/bench_server_qps

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/timer.h"
#include "core/index.h"
#include "image/dataset.h"
#include "server/client.h"
#include "server/server.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(
                                            values->size() - 1));
  return (*values)[rank];
}

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

RunResult RunLoad(const walrus::WalrusIndex& index,
                  const std::vector<walrus::LabeledImage>& dataset,
                  int num_clients, int queries_per_client) {
  walrus::ServerOptions server_options;
  server_options.max_pending = 4 * num_clients + 8;
  walrus::WalrusServer server(index, server_options);
  if (!server.Start().ok()) std::exit(1);

  std::vector<std::vector<double>> latencies(num_clients);
  walrus::WallTimer wall;
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        auto client = walrus::WalrusClient::Connect("127.0.0.1",
                                                    server.port());
        if (!client.ok()) std::exit(1);
        walrus::QueryOptions options;
        options.epsilon = 0.07f;
        options.top_k = 10;
        for (int q = 0; q < queries_per_client; ++q) {
          const walrus::ImageF& image =
              dataset[(c * queries_per_client + q) % dataset.size()].image;
          walrus::WallTimer timer;
          auto result = client->Query(image, options);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
          latencies[c].push_back(timer.ElapsedMillis());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  double seconds = wall.ElapsedSeconds();
  server.Stop();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  RunResult result;
  result.qps = static_cast<double>(all.size()) / seconds;
  result.p50_ms = Quantile(&all, 0.50);
  result.p99_ms = Quantile(&all, 0.99);
  return result;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_SERVER_IMAGES", 200);
  const int queries_per_client = EnvInt("WALRUS_BENCH_SERVER_QUERIES", 20);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 1999;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::WalrusParams params;
  params.slide_step = 8;
  walrus::WalrusIndex memory_index(params);
  std::vector<walrus::WalrusIndex::PendingImage> batch;
  for (const walrus::LabeledImage& scene : dataset) {
    batch.push_back({static_cast<uint64_t>(scene.id), "img", scene.image});
  }
  if (!memory_index.AddImages(std::move(batch)).ok()) return 1;

  std::string prefix = "/tmp/walrus_bench_server";
  if (!memory_index.SavePaged(prefix).ok()) return 1;
  auto paged = walrus::WalrusIndex::OpenPaged(prefix);
  if (!paged.ok()) return 1;

  std::printf("# walrusd loopback QPS: %d images, %zu regions, %d queries "
              "per client\n",
              num_images, memory_index.RegionCount(), queries_per_client);
  std::printf("%-12s %-10s %-12s %-10s %-10s\n", "backend", "clients",
              "qps", "p50_ms", "p99_ms");
  walrus::bench::BenchReport report("server_qps");
  report.params()
      .Set("num_images", num_images)
      .Set("queries_per_client", queries_per_client)
      .Set("regions", static_cast<int64_t>(memory_index.RegionCount()));
  for (int clients : {1, 2, 4, 8}) {
    RunResult mem = RunLoad(memory_index, dataset, clients,
                            queries_per_client);
    std::printf("%-12s %-10d %-12.1f %-10.2f %-10.2f\n", "in-memory",
                clients, mem.qps, mem.p50_ms, mem.p99_ms);
    report.AddRow()
        .Set("backend", "in-memory")
        .Set("clients", clients)
        .Set("qps", mem.qps)
        .Set("p50_ms", mem.p50_ms)
        .Set("p99_ms", mem.p99_ms);
  }
  for (int clients : {1, 2, 4, 8}) {
    RunResult disk = RunLoad(*paged, dataset, clients, queries_per_client);
    std::printf("%-12s %-10d %-12.1f %-10.2f %-10.2f\n", "paged", clients,
                disk.qps, disk.p50_ms, disk.p99_ms);
    report.AddRow()
        .Set("backend", "paged")
        .Set("clients", clients)
        .Set("qps", disk.qps)
        .Set("p50_ms", disk.p50_ms)
        .Set("p99_ms", disk.p99_ms);
  }
  report.WriteFile();
  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
  return 0;
}
