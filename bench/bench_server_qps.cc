// walrusd loopback throughput/latency: QPS and client-observed p50/p99 vs.
// client concurrency, for both index backends and for the sharded engine.
// Every client thread runs its own connection and issues QUERY requests
// back-to-back, so the measurement covers the full stack: framing, CRC,
// dispatch, the query pipeline, and the response path.
//
// Two reports:
//   BENCH_server_qps.json   backend (in-memory / paged) x client sweep
//   BENCH_sharded_qps.json  shards x cache sweep (fan-out + result cache)
//
//   WALRUS_BENCH_SERVER_IMAGES=300 WALRUS_BENCH_SERVER_QUERIES=40
//   are the dataset/load knobs; run ./build/bench/bench_server_qps
//   [--shards N] [--cache M] restrict the sharded sweep to one
//   configuration (e.g. for A/B-ing --shards 1 vs --shards 4).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/query_engine.h"
#include "core/sharded_index.h"
#include "image/dataset.h"
#include "server/client.h"
#include "server/server.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(
                                            values->size() - 1));
  return (*values)[rank];
}

struct LoadOptions {
  int num_clients = 4;
  int queries_per_client = 20;
  /// Size of the distinct-query pool the clients cycle through. Smaller
  /// than the total request count -> repeats -> result-cache hits.
  int distinct_queries = 0;  // 0 = whole dataset, no repeats
  float epsilon = 0.07f;
  int top_k = 10;
};

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

RunResult RunLoad(const walrus::QueryEngine& engine,
                  const std::vector<walrus::LabeledImage>& dataset,
                  const LoadOptions& load) {
  walrus::ServerOptions server_options;
  server_options.max_pending = 4 * load.num_clients + 8;
  walrus::WalrusServer server(engine, server_options);
  if (!server.Start().ok()) std::exit(1);

  int pool = load.distinct_queries > 0
                 ? std::min<int>(load.distinct_queries,
                                 static_cast<int>(dataset.size()))
                 : static_cast<int>(dataset.size());
  std::vector<std::vector<double>> latencies(load.num_clients);
  walrus::WallTimer wall;
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < load.num_clients; ++c) {
      clients.emplace_back([&, c] {
        auto client = walrus::WalrusClient::Connect("127.0.0.1",
                                                    server.port());
        if (!client.ok()) std::exit(1);
        walrus::QueryOptions options;
        options.epsilon = load.epsilon;
        options.top_k = load.top_k;
        for (int q = 0; q < load.queries_per_client; ++q) {
          const walrus::ImageF& image =
              dataset[(c * load.queries_per_client + q) % pool].image;
          walrus::WallTimer timer;
          auto result = client->Query(image, options);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
          latencies[c].push_back(timer.ElapsedMillis());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  double seconds = wall.ElapsedSeconds();
  walrus::ServerStats stats = server.Snapshot();
  server.Stop();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  RunResult result;
  result.qps = static_cast<double>(all.size()) / seconds;
  result.p50_ms = Quantile(&all, 0.50);
  result.p99_ms = Quantile(&all, 0.99);
  result.cache_hits = stats.result_cache_hits;
  result.cache_misses = stats.result_cache_misses;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_images = EnvInt("WALRUS_BENCH_SERVER_IMAGES", 200);
  const int queries_per_client = EnvInt("WALRUS_BENCH_SERVER_QUERIES", 20);
  // Sharding pays off when probe+match dominate; the sharded sweep uses a
  // wider envelope than the backend sweep to model the selective-but-heavy
  // regime (more candidates per probe).
  const float sharded_epsilon = 0.30f;
  int only_shards = 0;
  int only_cache = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      only_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      only_cache = std::atoi(argv[++i]);
    }
  }

  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 1999;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::WalrusParams params;
  params.slide_step = 8;
  walrus::WalrusIndex memory_index(params);
  std::vector<walrus::WalrusIndex::PendingImage> batch;
  for (const walrus::LabeledImage& scene : dataset) {
    batch.push_back({static_cast<uint64_t>(scene.id), "img", scene.image});
  }
  if (!memory_index.AddImages(std::move(batch)).ok()) return 1;

  std::string prefix = "/tmp/walrus_bench_server";
  if (!memory_index.SavePaged(prefix).ok()) return 1;
  auto paged = walrus::WalrusIndex::OpenPaged(prefix);
  if (!paged.ok()) return 1;

  std::printf("# walrusd loopback QPS: %d images, %zu regions, %d queries "
              "per client\n",
              num_images, memory_index.RegionCount(), queries_per_client);
  std::printf("%-12s %-10s %-12s %-10s %-10s\n", "backend", "clients",
              "qps", "p50_ms", "p99_ms");
  walrus::bench::BenchReport report("server_qps");
  report.params()
      .Set("num_images", num_images)
      .Set("queries_per_client", queries_per_client)
      .Set("regions", static_cast<int64_t>(memory_index.RegionCount()));
  walrus::SingleIndexEngine memory_engine(memory_index);
  walrus::SingleIndexEngine paged_engine(*paged);
  for (int clients : {1, 2, 4, 8}) {
    LoadOptions load;
    load.num_clients = clients;
    load.queries_per_client = queries_per_client;
    RunResult mem = RunLoad(memory_engine, dataset, load);
    std::printf("%-12s %-10d %-12.1f %-10.2f %-10.2f\n", "in-memory",
                clients, mem.qps, mem.p50_ms, mem.p99_ms);
    report.AddRow()
        .Set("backend", "in-memory")
        .Set("clients", clients)
        .Set("qps", mem.qps)
        .Set("p50_ms", mem.p50_ms)
        .Set("p99_ms", mem.p99_ms);
  }
  for (int clients : {1, 2, 4, 8}) {
    LoadOptions load;
    load.num_clients = clients;
    load.queries_per_client = queries_per_client;
    RunResult disk = RunLoad(paged_engine, dataset, load);
    std::printf("%-12s %-10d %-12.1f %-10.2f %-10.2f\n", "paged", clients,
                disk.qps, disk.p50_ms, disk.p99_ms);
    report.AddRow()
        .Set("backend", "paged")
        .Set("clients", clients)
        .Set("qps", disk.qps)
        .Set("p50_ms", disk.p50_ms)
        .Set("p99_ms", disk.p99_ms);
  }
  report.WriteFile();

  // Shards x cache sweep. Same loopback protocol path; the engine behind
  // the server changes. Clients cycle a small distinct-query pool so the
  // cached configurations see repeats (and therefore hits).
  std::printf("\n# sharded engine: shards x cache (epsilon %.2f)\n",
              sharded_epsilon);
  std::printf("%-8s %-8s %-10s %-12s %-10s %-10s %-12s\n", "shards",
              "cache", "clients", "qps", "p50_ms", "p99_ms", "hit_ratio");
  walrus::bench::BenchReport sharded_report("sharded_qps");
  sharded_report.params()
      .Set("num_images", num_images)
      .Set("queries_per_client", queries_per_client)
      .Set("regions", static_cast<int64_t>(memory_index.RegionCount()))
      .Set("epsilon", static_cast<double>(sharded_epsilon));
  std::vector<int> shard_counts = {1, 2, 4};
  if (only_shards > 0) shard_counts = {only_shards};
  std::vector<int> cache_sizes = {0, 64};
  if (only_cache >= 0) cache_sizes = {only_cache};
  for (int shards : shard_counts) {
    for (int cache : cache_sizes) {
      walrus::ShardedIndex::Options shard_options;
      shard_options.num_shards = shards;
      shard_options.cache_capacity = static_cast<size_t>(cache);
      auto engine =
          walrus::ShardedIndex::Partition(memory_index, shard_options);
      if (!engine.ok()) {
        std::fprintf(stderr, "partition failed: %s\n",
                     engine.status().ToString().c_str());
        return 1;
      }
      LoadOptions load;
      load.num_clients = 4;
      load.queries_per_client = queries_per_client;
      load.distinct_queries = 8;  // repeats -> cache hits when enabled
      load.epsilon = sharded_epsilon;
      RunResult run = RunLoad(*engine, dataset, load);
      uint64_t lookups = run.cache_hits + run.cache_misses;
      double hit_ratio =
          lookups == 0 ? 0.0
                       : static_cast<double>(run.cache_hits) /
                             static_cast<double>(lookups);
      std::printf("%-8d %-8d %-10d %-12.1f %-10.2f %-10.2f %-12.2f\n",
                  shards, cache, load.num_clients, run.qps, run.p50_ms,
                  run.p99_ms, hit_ratio);
      sharded_report.AddRow()
          .Set("shards", shards)
          .Set("cache", cache)
          .Set("clients", load.num_clients)
          .Set("qps", run.qps)
          .Set("p50_ms", run.p50_ms)
          .Set("p99_ms", run.p99_ms)
          .Set("cache_hits", static_cast<int64_t>(run.cache_hits))
          .Set("cache_misses", static_cast<int64_t>(run.cache_misses))
          .Set("hit_ratio", hit_ratio);
    }
  }
  sharded_report.WriteFile();

  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
  return 0;
}
