// Ablation: sensitivity of retrieval quality and cost to the two knobs the
// reproduction found most load-bearing (EXPERIMENTS.md "lessons"):
//   * slide step t  -- objects placed off the window grid mis-align with
//     every window when t is large, so region signatures drift;
//   * multi-scale windows -- a single window size cannot match objects
//     whose size varies (the paper's scale-invariance needs the range).
// Reports P@5, indexing time and query latency per configuration.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct Config {
  const char* label;
  int min_window;
  int max_window;
  int slide_step;
};

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_SENS_IMAGES", 72);
  const int num_queries = EnvInt("WALRUS_BENCH_SENS_QUERIES", 18);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 555;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);
  walrus::GroundTruth truth(dataset);

  const Config configs[] = {
      {"single-scale w64 t16", 64, 64, 16},
      {"single-scale w64 t4", 64, 64, 4},
      {"multi-scale 16-64 t16", 16, 64, 16},
      {"multi-scale 16-64 t8", 16, 64, 8},
      {"multi-scale 16-64 t4", 16, 64, 4},
  };

  std::printf(
      "# parameter sensitivity: window range and slide step "
      "(%d images, %d queries, eps=0.085)\n",
      num_images, num_queries);
  std::printf("%-24s %-10s %-12s %-10s\n", "config", "build_s", "query_ms",
              "P@5");

  double single_scale_best = 0.0;
  double multi_scale_best = 0.0;
  for (const Config& config : configs) {
    walrus::WalrusParams params;
    params.min_window = config.min_window;
    params.max_window = config.max_window;
    params.slide_step = config.slide_step;
    walrus::WalrusIndex index(params);
    walrus::WallTimer build_timer;
    for (const walrus::LabeledImage& scene : dataset) {
      if (!index
               .AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
               .ok()) {
        return 1;
      }
    }
    double build_sec = build_timer.ElapsedSeconds();

    double query_ms = 0.0;
    std::vector<double> precisions;
    for (int q = 0; q < num_queries; ++q) {
      walrus::QueryOptions options;
      options.epsilon = 0.085f;
      walrus::QueryStats stats;
      auto matches =
          walrus::ExecuteQuery(index, dataset[q].image, options, &stats);
      if (!matches.ok()) return 1;
      query_ms += stats.seconds * 1e3;
      std::vector<uint64_t> ids;
      for (const walrus::QueryMatch& m : *matches) {
        if (m.image_id != static_cast<uint64_t>(q)) {
          ids.push_back(m.image_id);
        }
      }
      precisions.push_back(walrus::PrecisionAtK(
          ids, truth.ForQuery(static_cast<uint64_t>(q)), 5));
    }
    double p5 = walrus::MeanOf(precisions);
    std::printf("%-24s %-10.2f %-12.2f %-10.3f\n", config.label, build_sec,
                query_ms / num_queries, p5);
    if (config.min_window == config.max_window) {
      single_scale_best = std::max(single_scale_best, p5);
    } else {
      multi_scale_best = std::max(multi_scale_best, p5);
    }
  }
  std::printf(
      "# expected shape: multi-scale windows beat single-scale "
      "(measured best %.3f vs %.3f) -- %s\n",
      multi_scale_best, single_scale_best,
      multi_scale_best >= single_scale_best ? "HOLDS" : "VIOLATED");

  // Color-space sweep (section 6.4 uses YCC; NRS98 carries the other
  // spaces): same pipeline, only the signature color space changes.
  std::printf("\n# color-space sweep (multi-scale 16-64 t8)\n");
  std::printf("%-10s %-10s %-10s\n", "space", "query_ms", "P@5");
  for (walrus::ColorSpace cs :
       {walrus::ColorSpace::kYCC, walrus::ColorSpace::kRGB,
        walrus::ColorSpace::kYIQ, walrus::ColorSpace::kHSV}) {
    walrus::WalrusParams params;
    params.color_space = cs;
    params.min_window = 16;
    params.max_window = 64;
    params.slide_step = 8;
    walrus::WalrusIndex index(params);
    for (const walrus::LabeledImage& scene : dataset) {
      if (!index
               .AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
               .ok()) {
        return 1;
      }
    }
    double query_ms = 0.0;
    std::vector<double> precisions;
    for (int q = 0; q < num_queries; ++q) {
      walrus::QueryOptions options;
      options.epsilon = 0.085f;
      walrus::QueryStats stats;
      auto matches =
          walrus::ExecuteQuery(index, dataset[q].image, options, &stats);
      if (!matches.ok()) return 1;
      query_ms += stats.seconds * 1e3;
      std::vector<uint64_t> ids;
      for (const walrus::QueryMatch& m : *matches) {
        if (m.image_id != static_cast<uint64_t>(q)) {
          ids.push_back(m.image_id);
        }
      }
      precisions.push_back(walrus::PrecisionAtK(
          ids, truth.ForQuery(static_cast<uint64_t>(q)), 5));
    }
    std::printf("%-10s %-10.2f %-10.3f\n", walrus::ColorSpaceName(cs),
                query_ms / num_queries, walrus::MeanOf(precisions));
  }
  return 0;
}
