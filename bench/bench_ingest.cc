// Durable live-ingest benchmark (DESIGN.md section 14): insert throughput
// through the WAL group-commit path, and query tail latency while a
// sustained mutation stream runs — the acceptance number is that p99 stays
// bounded under ingest, since mutations only hold the state writer lock
// for the in-memory apply, never across extraction or fsync.
//
// Report: BENCH_ingest.json
//   phase "throughput"  writers x inserts/sec + group-commit amortization
//   phase "query"       quiescent vs under-ingest p50/p99
//
//   WALRUS_BENCH_INGEST_IMAGES=160 WALRUS_BENCH_INGEST_QUERIES=48
//   are the dataset/load knobs.

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"
#include "wal/live_index.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t rank =
      static_cast<size_t>(q * static_cast<double>(values->size() - 1));
  return (*values)[rank];
}

std::string FreshDir(const std::string& name) {
  std::string dir = "/tmp/walrus_bench_ingest_" + name;
  std::string command = "rm -rf " + dir;
  if (std::system(command.c_str()) != 0) std::exit(1);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

walrus::WalrusParams BenchParams() {
  walrus::WalrusParams params;
  params.slide_step = 8;
  return params;
}

/// Seed index over the first half of the dataset (serial, deterministic).
walrus::WalrusIndex BuildSeed(const std::vector<walrus::LabeledImage>& dataset,
                              size_t count) {
  walrus::WalrusIndex seed(BenchParams());
  for (size_t i = 0; i < count; ++i) {
    if (!seed.AddImage(static_cast<uint64_t>(dataset[i].id), "img",
                       dataset[i].image)
             .ok()) {
      std::exit(1);
    }
  }
  return seed;
}

struct ThroughputResult {
  double inserts_per_sec = 0.0;
  double appends_per_sync = 0.0;
  uint64_t merges = 0;
};

/// Splits the back half of the dataset across `writers` threads, each
/// inserting with fresh ids through the full WAL append + group-commit
/// path. More writers => more appends share each fsync.
ThroughputResult RunThroughput(const std::vector<walrus::LabeledImage>& dataset,
                               int writers) {
  size_t half = dataset.size() / 2;
  walrus::WalrusIndex seed = BuildSeed(dataset, half);
  walrus::LiveIndex::Options options;
  options.num_shards = 2;
  options.merge_threshold = 64;
  auto live = walrus::LiveIndex::Open(
      FreshDir("tput_" + std::to_string(writers)), BenchParams(), options,
      &seed);
  if (!live.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 live.status().ToString().c_str());
    std::exit(1);
  }

  size_t per_writer = (dataset.size() - half) / static_cast<size_t>(writers);
  walrus::WallTimer wall;
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        for (size_t i = 0; i < per_writer; ++i) {
          size_t slot = half + static_cast<size_t>(w) * per_writer + i;
          uint64_t id = 1000000 + static_cast<uint64_t>(slot);
          if (!(*live)->InsertImage(id, "img", dataset[slot].image).ok()) {
            std::exit(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double seconds = wall.ElapsedSeconds();
  (*live)->WaitForMerge();

  walrus::IngestStats stats = (*live)->IngestStatsSnapshot();
  ThroughputResult result;
  result.inserts_per_sec = static_cast<double>(stats.inserts) / seconds;
  result.appends_per_sync =
      stats.wal_syncs == 0 ? 0.0
                           : static_cast<double>(stats.wal_records) /
                                 static_cast<double>(stats.wal_syncs);
  result.merges = stats.merges;
  return result;
}

struct LatencyResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mutations_per_sec = 0.0;
};

/// Runs the query workload; when `mutate` is set, a background thread
/// cycles insert/delete pairs the whole time (each one a durable WAL
/// commit), modeling steady-state live traffic.
LatencyResult RunQueries(const walrus::LiveIndex& live,
                         walrus::IngestEngine* ingest,
                         const std::vector<walrus::LabeledImage>& dataset,
                         int num_queries, bool mutate) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mutations{0};
  std::thread mutator;
  if (mutate) {
    mutator = std::thread([&] {
      uint64_t next_id = 2000000;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t id = next_id++;
        const walrus::ImageF& image =
            dataset[static_cast<size_t>(id) % dataset.size()].image;
        if (!ingest->InsertImage(id, "churn", image).ok()) std::exit(1);
        if (!ingest->DeleteImage(id).ok()) std::exit(1);
        mutations.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  walrus::QueryOptions options;
  options.epsilon = 0.07f;
  options.top_k = 10;
  std::vector<double> latencies;
  walrus::WallTimer wall;
  for (int q = 0; q < num_queries; ++q) {
    const walrus::ImageF& image =
        dataset[static_cast<size_t>(q) % (dataset.size() / 2)].image;
    walrus::WallTimer timer;
    auto result = live.RunQuery(image, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(timer.ElapsedMillis());
  }
  double seconds = wall.ElapsedSeconds();
  if (mutate) {
    stop.store(true, std::memory_order_relaxed);
    mutator.join();
  }

  LatencyResult result;
  result.qps = static_cast<double>(latencies.size()) / seconds;
  result.p50_ms = Quantile(&latencies, 0.50);
  result.p99_ms = Quantile(&latencies, 0.99);
  result.mutations_per_sec =
      static_cast<double>(mutations.load(std::memory_order_relaxed)) /
      seconds;
  return result;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_INGEST_IMAGES", 160);
  const int num_queries = EnvInt("WALRUS_BENCH_INGEST_QUERIES", 48);

  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 20260808;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::bench::BenchReport report("ingest");
  report.params()
      .Set("num_images", num_images)
      .Set("num_queries", num_queries)
      .Set("merge_threshold", 64);

  std::printf("# live ingest: %d images (half seeded, half inserted "
              "online), durable WAL commits\n",
              num_images);
  std::printf("%-10s %-14s %-18s %-10s\n", "writers", "inserts_per_s",
              "appends_per_sync", "merges");
  for (int writers : {1, 2, 4}) {
    ThroughputResult t = RunThroughput(dataset, writers);
    std::printf("%-10d %-14.1f %-18.2f %-10llu\n", writers,
                t.inserts_per_sec, t.appends_per_sync,
                static_cast<unsigned long long>(t.merges));
    report.AddRow()
        .Set("phase", "throughput")
        .Set("writers", writers)
        .Set("inserts_per_sec", t.inserts_per_sec)
        .Set("appends_per_sync", t.appends_per_sync)
        .Set("merges", static_cast<int64_t>(t.merges));
  }

  // Query tail latency, quiescent vs under a sustained mutation stream on
  // the same engine instance (inserts land in the delta; queries hold the
  // state reader lock across their whole pipeline pass).
  size_t half = dataset.size() / 2;
  walrus::WalrusIndex seed = BuildSeed(dataset, half);
  walrus::LiveIndex::Options options;
  options.num_shards = 2;
  options.merge_threshold = 64;
  auto live = walrus::LiveIndex::Open(FreshDir("latency"), BenchParams(),
                                      options, &seed);
  if (!live.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-14s %-10s %-10s %-10s %-16s\n", "mode", "qps", "p50_ms",
              "p99_ms", "mutations_per_s");
  for (bool mutate : {false, true}) {
    LatencyResult q =
        RunQueries(**live, (*live).get(), dataset, num_queries, mutate);
    const char* mode = mutate ? "under-ingest" : "quiescent";
    std::printf("%-14s %-10.1f %-10.2f %-10.2f %-16.1f\n", mode, q.qps,
                q.p50_ms, q.p99_ms, q.mutations_per_sec);
    report.AddRow()
        .Set("phase", "query")
        .Set("mode", mode)
        .Set("qps", q.qps)
        .Set("p50_ms", q.p50_ms)
        .Set("p99_ms", q.p99_ms)
        .Set("mutations_per_sec", q.mutations_per_sec);
  }
  (*live)->WaitForMerge();
  report.WriteFile();
  return 0;
}
