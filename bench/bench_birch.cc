// Micro-benchmarks for the clustering substrate: BIRCH pre-clustering
// throughput at WALRUS's 12-dimensional window signatures (section 5.3
// requires near-linear clustering) and k-means for comparison.

#include <vector>

#include <benchmark/benchmark.h>

#include "cluster/birch.h"
#include "cluster/kmeans.h"
#include "common/random.h"

namespace walrus {
namespace {

std::vector<float> BlobData(int n, int dim, int blobs, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> points;
  points.reserve(static_cast<size_t>(n) * dim);
  std::vector<std::vector<float>> centers;
  for (int b = 0; b < blobs; ++b) {
    std::vector<float> c(dim);
    for (float& v : c) v = rng.NextFloat();
    centers.push_back(c);
  }
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& c = centers[i % blobs];
    for (int d = 0; d < dim; ++d) {
      points.push_back(c[d] + 0.03f * (rng.NextFloat() - 0.5f));
    }
  }
  return points;
}

void BM_BirchPreCluster(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<float> points = BlobData(n, 12, 12, 7);
  BirchParams params;
  params.threshold = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BirchPreCluster(points.data(), n, 12, params));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BirchPreCluster)->Arg(300)->Arg(3000)->Arg(30000);

void BM_BirchThresholdSweep(benchmark::State& state) {
  std::vector<float> points = BlobData(3000, 12, 12, 8);
  double threshold = state.range(0) / 1000.0;
  BirchParams params;
  params.threshold = threshold;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BirchPreCluster(points.data(), 3000, 12, params));
  }
}
BENCHMARK(BM_BirchThresholdSweep)->Arg(25)->Arg(50)->Arg(100);

void BM_KMeans(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<float> points = BlobData(n, 12, 12, 9);
  KMeansParams params;
  params.k = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KMeansCluster(points.data(), n, 12, params));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeans)->Arg(300)->Arg(3000);

}  // namespace
}  // namespace walrus

BENCHMARK_MAIN();
