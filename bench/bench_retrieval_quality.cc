// Quantifies the Figure 7 vs Figure 8 comparison: retrieval quality of
// WALRUS against the whole-image baselines (WBIIS-style Daubechies
// signatures, JFS95 truncated Haar signatures, QBIC-style color histograms)
// on the synthetic labelled dataset, where two images are relevant iff they
// contain the same dominant object class (at random positions and scales --
// the translation/scaling setting the paper targets).
//
// The paper shows the comparison qualitatively (top-14 grids, ~7/14 bad for
// WBIIS vs ~1/14 bad for WALRUS); with ground truth we report precision@k
// and mean average precision. Expected shape: WALRUS above WBIIS, the
// system the paper compares against. JFS95 and color histograms are extra
// context (the paper only discusses them as related work).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/color_histogram.h"
#include "baselines/jfs.h"
#include "baselines/wbiis.h"
#include "core/index.h"
#include "core/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct SystemScores {
  std::vector<double> p5;
  std::vector<double> p10;
  std::vector<double> ap;
};

void Record(SystemScores* scores, const std::vector<uint64_t>& retrieved,
            const walrus::RelevanceFn& relevant, int total_relevant) {
  scores->p5.push_back(walrus::PrecisionAtK(retrieved, relevant, 5));
  scores->p10.push_back(walrus::PrecisionAtK(retrieved, relevant, 10));
  scores->ap.push_back(
      walrus::AveragePrecision(retrieved, relevant, total_relevant));
}

void Print(const char* name, const SystemScores& scores) {
  std::printf("%-22s %-10.3f %-10.3f %-10.3f\n", name,
              walrus::MeanOf(scores.p5), walrus::MeanOf(scores.p10),
              walrus::MeanOf(scores.ap));
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_QUALITY_IMAGES", 120);
  const int num_queries = EnvInt("WALRUS_BENCH_QUALITY_QUERIES", 24);

  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 20260706;
  dp.min_dominant = 1;
  dp.max_dominant = 2;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);
  walrus::GroundTruth truth(dataset);

  // WALRUS with multi-scale windows (the scale-invariance mechanism).
  walrus::WalrusParams wp;
  wp.min_window = 16;
  wp.max_window = 64;
  wp.slide_step = 8;
  wp.cluster_epsilon = 0.05;
  walrus::WalrusIndex index(wp);

  walrus::WbiisRetriever wbiis;
  walrus::JfsRetriever jfs;
  walrus::ColorHistogramRetriever histogram;

  for (const walrus::LabeledImage& scene : dataset) {
    uint64_t id = static_cast<uint64_t>(scene.id);
    if (!index.AddImage(id, "img", scene.image).ok() ||
        !wbiis.AddImage(id, scene.image).ok() ||
        !jfs.AddImage(id, scene.image).ok() ||
        !histogram.AddImage(id, scene.image).ok()) {
      std::fprintf(stderr, "indexing failed for image %llu\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }

  SystemScores walrus_quick, walrus_greedy, wbiis_scores, jfs_scores,
      histogram_scores;

  for (int q = 0; q < num_queries && q < num_images; ++q) {
    uint64_t query_id = static_cast<uint64_t>(dataset[q].id);
    const walrus::ImageF& query = dataset[q].image;
    walrus::RelevanceFn relevant = truth.ForQuery(query_id);
    int total_relevant = truth.RelevantCount(query_id);

    auto strip_self = [query_id](const std::vector<uint64_t>& ids) {
      std::vector<uint64_t> out;
      for (uint64_t id : ids) {
        if (id != query_id) out.push_back(id);
      }
      return out;
    };

    for (walrus::MatcherKind matcher :
         {walrus::MatcherKind::kQuick, walrus::MatcherKind::kGreedy}) {
      walrus::QueryOptions options;
      options.epsilon = 0.085f;  // the paper's retrieval epsilon
      options.matcher = matcher;
      auto matches = walrus::ExecuteQuery(index, query, options);
      if (!matches.ok()) return 1;
      std::vector<uint64_t> ids;
      for (const walrus::QueryMatch& m : *matches) ids.push_back(m.image_id);
      Record(matcher == walrus::MatcherKind::kQuick ? &walrus_quick
                                                    : &walrus_greedy,
             strip_self(ids), relevant, total_relevant);
    }

    auto wmatches = wbiis.Query(query, 0);
    if (!wmatches.ok()) return 1;
    std::vector<uint64_t> wids;
    for (const auto& m : *wmatches) wids.push_back(m.image_id);
    Record(&wbiis_scores, strip_self(wids), relevant, total_relevant);

    auto jmatches = jfs.Query(query, 0);
    if (!jmatches.ok()) return 1;
    std::vector<uint64_t> jids;
    for (const auto& m : *jmatches) jids.push_back(m.image_id);
    Record(&jfs_scores, strip_self(jids), relevant, total_relevant);

    auto hmatches = histogram.Query(query, 0);
    if (!hmatches.ok()) return 1;
    std::vector<uint64_t> hids;
    for (const auto& m : *hmatches) hids.push_back(m.image_id);
    Record(&histogram_scores, strip_self(hids), relevant, total_relevant);
  }

  std::printf(
      "# Figures 7/8 quantified: retrieval quality, %d queries over %d "
      "images, 6 object classes (random positions/scales)\n",
      num_queries, num_images);
  std::printf("%-22s %-10s %-10s %-10s\n", "system", "P@5", "P@10", "MAP");
  Print("walrus(quick)", walrus_quick);
  Print("walrus(greedy)", walrus_greedy);
  Print("wbiis", wbiis_scores);
  Print("jfs95", jfs_scores);
  Print("color-histogram", histogram_scores);

  // The paper's Figure 7/8 comparison is WALRUS against WBIIS (about 7/14
  // semantically wrong results for WBIIS vs ~1/14 for WALRUS); that is the
  // shape to check. The other baselines are context: on synthetic scenes
  // with parametric color-coded object classes, a global color histogram
  // stays competitive by construction (see EXPERIMENTS.md).
  double best_walrus = std::max(walrus::MeanOf(walrus_quick.p5),
                                walrus::MeanOf(walrus_greedy.p5));
  double wbiis_p5 = walrus::MeanOf(wbiis_scores.p5);
  std::printf(
      "# paper shape check: WALRUS P@5 (%.3f) vs WBIIS P@5 (%.3f) -- %s\n",
      best_walrus, wbiis_p5,
      best_walrus >= wbiis_p5 ? "HOLDS (WALRUS wins)" : "VIOLATED");
  return 0;
}
