// Disk-resident vs in-memory index serving (the paper's R*-tree is a
// "disk-based index structure"; section 5.3). Builds one database, persists
// it both ways, and compares query latency plus page-IO behaviour of the
// paged backend under warm and cold caches.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double AverageQuerySeconds(const walrus::WalrusIndex& index,
                           const std::vector<walrus::LabeledImage>& dataset,
                           int num_queries) {
  walrus::QueryOptions options;
  options.epsilon = 0.07f;
  double total = 0.0;
  for (int q = 0; q < num_queries; ++q) {
    walrus::QueryStats stats;
    auto matches =
        walrus::ExecuteQuery(index, dataset[q].image, options, &stats);
    if (!matches.ok()) std::exit(1);
    total += stats.seconds;
  }
  return total / num_queries;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_DISK_IMAGES", 300);
  const int num_queries = EnvInt("WALRUS_BENCH_DISK_QUERIES", 10);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 616;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::WalrusParams params;  // paper defaults, 64x64 windows
  params.slide_step = 8;
  walrus::WalrusIndex memory_index(params);
  for (const walrus::LabeledImage& scene : dataset) {
    if (!memory_index
             .AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
             .ok()) {
      return 1;
    }
  }

  std::string prefix = "/tmp/walrus_bench_disk";
  if (!memory_index.SavePaged(prefix).ok()) return 1;
  auto paged = walrus::WalrusIndex::OpenPaged(prefix);
  if (!paged.ok()) {
    std::fprintf(stderr, "open paged failed: %s\n",
                 paged.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "# disk-based serving: %d images, %zu regions (12-d signatures)\n",
      num_images, memory_index.RegionCount());
  std::printf("%-26s %-14s\n", "backend", "avg_query_ms");
  double memory_ms =
      1e3 * AverageQuerySeconds(memory_index, dataset, num_queries);
  std::printf("%-26s %-14.2f\n", "in-memory tree", memory_ms);

  // Cold-ish: tiny cache so most probes touch the page file.
  paged->ProbeNearest(std::vector<float>(12, 0.5f), 1).ok();  // warm open
  double paged_ms = 1e3 * AverageQuerySeconds(*paged, dataset, num_queries);
  std::printf("%-26s %-14.2f\n", "paged tree (64-page cache)", paged_ms);

  std::printf(
      "# note: query time is dominated by query-image region extraction; "
      "the probe-only difference shows in the page counters below\n");
  const walrus::DiskRStarTree* disk = paged->disk_tree();
  std::printf(
      "# paged backend IO: %lld pages read, %lld cache hits, %lld misses "
      "(tree height %d, %d entries/node)\n",
      static_cast<long long>(disk->pages_read()),
      static_cast<long long>(disk->cache_hits()),
      static_cast<long long>(disk->cache_misses()), disk->height(),
      disk->NodeCapacity());
  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
  return 0;
}
