// Reproduces section 6.6: average number of regions generated per image as
// the clustering epsilon (epsilon_c) varies from 0.025 to 0.1, for both the
// RGB and YCC color spaces.
//
// Expected shape (paper): the number of clusters decreases as epsilon_c
// increases, and RGB typically produces about four times more clusters than
// YCC (chroma planes carry more inter-window variance in RGB).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/region_extractor.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double AverageRegions(const std::vector<walrus::LabeledImage>& images,
                      walrus::ColorSpace cs, double epsilon_c) {
  walrus::WalrusParams params;  // 64x64 windows, s=2, as in section 6.4
  params.color_space = cs;
  params.slide_step = 4;
  params.cluster_epsilon = epsilon_c;
  double total = 0.0;
  for (const walrus::LabeledImage& scene : images) {
    walrus::ExtractionStats stats;
    auto regions = walrus::ExtractRegions(scene.image, params, &stats);
    if (!regions.ok()) {
      std::fprintf(stderr, "extraction failed: %s\n",
                   regions.status().ToString().c_str());
      std::exit(1);
    }
    total += stats.region_count;
  }
  return total / images.size();
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_REGION_IMAGES", 24);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 99;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  std::printf(
      "# Section 6.6: average regions per image vs clustering epsilon\n");
  std::printf("# %d images (%dx%d), 64x64 windows, s=2\n", num_images,
              dp.width, dp.height);
  std::printf("%-12s %-12s %-12s %-12s\n", "epsilon_c", "rgb_regions",
              "ycc_regions", "rgb/ycc");

  bool decreasing_ycc = true;
  double prev_ycc = 1e18;
  double ratio_sum = 0.0;
  int rows = 0;
  for (double eps : {0.025, 0.05, 0.075, 0.1}) {
    double rgb = AverageRegions(dataset, walrus::ColorSpace::kRGB, eps);
    double ycc = AverageRegions(dataset, walrus::ColorSpace::kYCC, eps);
    std::printf("%-12.3f %-12.2f %-12.2f %-12.2f\n", eps, rgb, ycc,
                rgb / ycc);
    if (ycc > prev_ycc) decreasing_ycc = false;
    prev_ycc = ycc;
    ratio_sum += rgb / ycc;
    ++rows;
  }
  std::printf(
      "# paper shape check: regions decrease with epsilon_c -- %s; RGB/YCC "
      "ratio (paper ~4x) -- measured avg %.1fx\n",
      decreasing_ycc ? "HOLDS" : "VIOLATED", ratio_sum / rows);
  return 0;
}
