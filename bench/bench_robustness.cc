// Robustness study: the paper's introduction claims robustness "with
// respect to resolution changes, dithering effects, color shifts,
// orientation, size, and location". This benchmark quantifies each claim:
// every database image gets a perturbed twin, and we report the WALRUS
// similarity of each twin to its original (higher = more robust) plus how
// often the twin is the top-1 result. 90-degree rotation is included to
// show the model's known limit: Haar signatures swap their horizontal and
// vertical detail coefficients under rotation, so robustness there comes
// only from near-isotropic regions.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "eval/metrics.h"
#include "image/color.h"
#include "image/dataset.h"
#include "image/transform.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct Perturbation {
  const char* name;
  std::function<walrus::ImageF(const walrus::ImageF&, walrus::Rng*)> apply;
};

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_ROBUST_IMAGES", 24);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 808;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  const std::vector<Perturbation> perturbations = {
      {"identity",
       [](const walrus::ImageF& img, walrus::Rng*) { return img; }},
      {"noise(0.02)",
       [](const walrus::ImageF& img, walrus::Rng* rng) {
         return walrus::AddGaussianNoise(img, 0.02f, rng);
       }},
      {"posterize(16)",
       [](const walrus::ImageF& img, walrus::Rng*) {
         return walrus::Posterize(img, 16);
       }},
      {"color-shift(+0.05)",
       [](const walrus::ImageF& img, walrus::Rng*) {
         return walrus::ShiftIntensity(img, 0.05f);
       }},
      {"rescale(0.75x)",
       [](const walrus::ImageF& img, walrus::Rng*) {
         walrus::ImageF down = walrus::Resize(
             img, 72, 72, walrus::ResizeFilter::kBoxAverage);
         return walrus::Resize(down, 96, 96, walrus::ResizeFilter::kBilinear);
       }},
      {"translate(8,4)",
       [](const walrus::ImageF& img, walrus::Rng*) {
         return walrus::TranslateWrap(img, 8, 4);
       }},
      {"flip-horizontal",
       [](const walrus::ImageF& img, walrus::Rng*) {
         return walrus::FlipHorizontal(img);
       }},
      {"rotate90",
       [](const walrus::ImageF& img, walrus::Rng*) {
         return walrus::Rotate90(img);
       }},
      {"rotate10deg",
       [](const walrus::ImageF& img, walrus::Rng*) {
         return walrus::Rotate(img, 10.0f, 0.5f);
       }},
  };

  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;
  params.slide_step = 8;
  walrus::WalrusIndex index(params);
  for (const walrus::LabeledImage& scene : dataset) {
    if (!index.AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
             .ok()) {
      return 1;
    }
  }

  std::printf(
      "# robustness study: similarity of perturbed copies to their "
      "originals (%d images)\n",
      num_images);
  std::printf("%-20s %-16s %-12s\n", "perturbation", "avg_similarity",
              "top1_rate");

  walrus::Rng rng(9);
  for (const Perturbation& perturbation : perturbations) {
    std::vector<double> similarities;
    int top1 = 0;
    for (const walrus::LabeledImage& scene : dataset) {
      walrus::ImageF twin = perturbation.apply(scene.image, &rng);
      walrus::QueryOptions options;
      options.epsilon = 0.085f;
      options.matcher = walrus::MatcherKind::kGreedy;
      auto matches = walrus::ExecuteQuery(index, twin, options);
      if (!matches.ok()) return 1;
      double self_similarity = 0.0;
      double best_other = 0.0;
      for (const walrus::QueryMatch& m : *matches) {
        if (m.image_id == static_cast<uint64_t>(scene.id)) {
          self_similarity = m.similarity;
        } else {
          best_other = std::max(best_other, m.similarity);
        }
      }
      similarities.push_back(self_similarity);
      // Top-1 with tie tolerance: nothing ranks strictly above the original.
      if (self_similarity >= best_other - 1e-9) ++top1;
    }
    std::printf("%-20s %-16.3f %-12.2f\n", perturbation.name,
                walrus::MeanOf(similarities),
                static_cast<double>(top1) / num_images);
  }
  std::printf(
      "# expected shape: near-1 similarity for noise/posterize/color-shift/"
      "rescale/translate; lower for rotate90 (Haar detail coefficients are "
      "orientation sensitive)\n");
  return 0;
}
