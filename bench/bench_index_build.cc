// Ablation benchmark for index construction: serial per-image AddImage vs
// the batched AddImages path (parallel region extraction + STR bulk load),
// and the query-time effect of a bulk-loaded vs incrementally grown R*-tree.
// Not a paper experiment; quantifies engineering choices called out in
// DESIGN.md.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

walrus::WalrusParams Params() {
  walrus::WalrusParams p;
  p.min_window = 16;
  p.max_window = 64;
  p.slide_step = 8;
  return p;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_BUILD_IMAGES", 200);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 4242;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  std::printf("# index build ablation: %d images (%dx%d), %d hw threads\n",
              num_images, dp.width, dp.height,
              walrus::ThreadPool::DefaultThreads());

  // Serial AddImage.
  walrus::WalrusIndex serial(Params());
  walrus::WallTimer serial_timer;
  for (const walrus::LabeledImage& scene : dataset) {
    if (!serial.AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
             .ok()) {
      return 1;
    }
  }
  double serial_sec = serial_timer.ElapsedSeconds();

  // Batched AddImages (parallel extraction + bulk load).
  std::vector<walrus::WalrusIndex::PendingImage> batch;
  batch.reserve(dataset.size());
  for (const walrus::LabeledImage& scene : dataset) {
    batch.push_back(
        {static_cast<uint64_t>(scene.id), "img", scene.image});
  }
  walrus::WalrusIndex batched(Params());
  walrus::WallTimer batch_timer;
  if (!batched.AddImages(std::move(batch)).ok()) return 1;
  double batch_sec = batch_timer.ElapsedSeconds();

  std::printf("%-28s %-12s %-10s %-12s\n", "method", "build_sec", "height",
              "regions");
  std::printf("%-28s %-12.2f %-10d %-12zu\n", "serial AddImage", serial_sec,
              serial.tree().height(), serial.RegionCount());
  std::printf("%-28s %-12.2f %-10d %-12zu\n",
              "AddImages (parallel+bulk)", batch_sec, batched.tree().height(),
              batched.RegionCount());
  std::printf("# speedup: %.1fx\n", serial_sec / batch_sec);

  // Query latency on both trees (same pipeline, different tree shapes).
  walrus::QueryOptions options;
  options.epsilon = 0.07f;
  double serial_query = 0.0;
  double batched_query = 0.0;
  const int kQueries = 10;
  for (int q = 0; q < kQueries; ++q) {
    walrus::QueryStats stats;
    if (!walrus::ExecuteQuery(serial, dataset[q].image, options, &stats)
             .ok()) {
      return 1;
    }
    serial_query += stats.seconds;
    stats = walrus::QueryStats();
    if (!walrus::ExecuteQuery(batched, dataset[q].image, options, &stats)
             .ok()) {
      return 1;
    }
    batched_query += stats.seconds;
  }
  std::printf(
      "# avg query latency over %d queries: incremental tree %.1f ms, "
      "bulk-loaded tree %.1f ms\n",
      kQueries, 1e3 * serial_query / kQueries,
      1e3 * batched_query / kQueries);
  return 0;
}
