// Ablation benchmark for the image-matching step (paper section 5.5): the
// quick union matcher vs the greedy one-to-one heuristic vs the exact
// (exponential) solver, over synthetic matching-pair workloads. Reports both
// wall time (google-benchmark) and, in a header, the similarity quality gap
// between greedy and exact on small instances (Theorem 5.1 context: exact is
// NP-hard, so the greedy gap is what justifies the heuristic).

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/similarity.h"

namespace walrus {
namespace {

struct Workload {
  std::vector<Region> query;
  std::vector<Region> target;
  std::vector<RegionPair> pairs;
};

Workload MakeWorkload(int regions_per_side, double pair_density,
                      uint64_t seed) {
  Rng rng(seed);
  Workload w;
  auto make_regions = [&](int count) {
    std::vector<Region> regions;
    for (int i = 0; i < count; ++i) {
      Region r;
      r.region_id = static_cast<uint32_t>(i);
      r.centroid = {rng.NextFloat(), rng.NextFloat()};
      r.bounding_box = Rect::Point(r.centroid);
      r.bitmap = CoverageBitmap(16);
      int x0 = rng.NextInt(0, 11);
      int y0 = rng.NextInt(0, 11);
      int wdt = rng.NextInt(2, 5);
      int hgt = rng.NextInt(2, 5);
      for (int y = y0; y < y0 + hgt; ++y) {
        for (int x = x0; x < x0 + wdt; ++x) r.bitmap.SetCell(x, y);
      }
      r.window_count = 1;
      regions.push_back(std::move(r));
    }
    return regions;
  };
  w.query = make_regions(regions_per_side);
  w.target = make_regions(regions_per_side);
  for (int q = 0; q < regions_per_side; ++q) {
    for (int t = 0; t < regions_per_side; ++t) {
      if (rng.NextBernoulli(pair_density)) w.pairs.push_back({q, t});
    }
  }
  return w;
}

void BM_QuickMatch(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 0.3, 42);
  for (auto _ : state) {
    MatchResult r = QuickMatch(w.query, w.target, w.pairs, 16384, 16384);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(w.pairs.size()) + " pairs");
}
BENCHMARK(BM_QuickMatch)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_GreedyMatch(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 0.3, 42);
  for (auto _ : state) {
    MatchResult r = GreedyMatch(w.query, w.target, w.pairs, 16384, 16384);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(w.pairs.size()) + " pairs");
}
BENCHMARK(BM_GreedyMatch)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ExactMatch(benchmark::State& state) {
  // Keep pair counts tiny: exact is exponential.
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 0.5, 42);
  while (w.pairs.size() > 18) w.pairs.pop_back();
  for (auto _ : state) {
    MatchResult r = ExactMatch(w.query, w.target, w.pairs, 16384, 16384);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(w.pairs.size()) + " pairs");
}
BENCHMARK(BM_ExactMatch)->Arg(3)->Arg(4)->Arg(6);

/// Quality header: average greedy/exact similarity ratio on small random
/// instances, printed before the timing table.
void ReportGreedyQuality() {
  double ratio_sum = 0.0;
  int cases = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Workload w = MakeWorkload(4, 0.5, seed);
    while (w.pairs.size() > 14) w.pairs.pop_back();
    if (w.pairs.empty()) continue;
    MatchResult greedy =
        GreedyMatch(w.query, w.target, w.pairs, 16384, 16384);
    MatchResult exact = ExactMatch(w.query, w.target, w.pairs, 16384, 16384);
    if (exact.similarity <= 0.0) continue;
    ratio_sum += greedy.similarity / exact.similarity;
    ++cases;
  }
  std::printf(
      "# matcher ablation: greedy achieves %.1f%% of the exact (NP-hard) "
      "covered-area objective on %d small random instances\n",
      100.0 * ratio_sum / cases, cases);
}

}  // namespace
}  // namespace walrus

int main(int argc, char** argv) {
  walrus::ReportGreedyQuality();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
