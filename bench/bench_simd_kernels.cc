// Micro-benchmark for the runtime-dispatched similarity kernels
// (common/simd.h, DESIGN.md section 12): each kernel is timed at every ISA
// level this CPU supports, over workload shapes matching the query path
// (dim-12 signatures, node-sized entry batches). Reports ns/op and the
// speedup of each level over the scalar reference, and writes
// BENCH_simd_kernels.json.
//
// The pair kernels (squared_l2, min_squared_distance) keep an ordered
// scalar reduction for bit-exactness, so their vector speedups are modest;
// the batch kernels (lanes = entries) carry the real throughput gains.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/timer.h"

namespace {

using walrus::Rng;
using walrus::WallTimer;
using walrus::simd::IsaLevel;
using walrus::simd::IsaName;
using walrus::simd::Kernels;
using walrus::simd::MaxSupportedIsa;

constexpr int kDim = 12;     // region signature dim for s=2, 3 channels
constexpr int kCount = 256;  // entries per batch (a few tree nodes)

struct Workload {
  std::vector<float> a, b;          // pair operands, kDim
  std::vector<float> lo, hi;        // SoA planes, kDim * kCount
  std::vector<float> qlo, qhi, q;   // query box / point, kDim
  std::vector<float> row0, row1;    // haar input rows, 2 * kCount
  std::vector<double> out;          // batch distance sink, kCount
  std::vector<float> haar_out;      // haar sink, 4 * kCount
  std::vector<uint64_t> mask;       // batch intersect sink
};

Workload MakeWorkload() {
  Rng rng(20260806);
  Workload w;
  auto fill = [&rng](std::vector<float>* v, size_t n) {
    v->resize(n);
    for (float& x : *v) x = rng.NextFloat();
  };
  fill(&w.a, kDim);
  fill(&w.b, kDim);
  fill(&w.lo, static_cast<size_t>(kDim) * kCount);
  w.hi = w.lo;
  for (float& x : w.hi) x += 0.05f;
  fill(&w.qlo, kDim);
  w.qhi = w.qlo;
  for (float& x : w.qhi) x += 0.3f;
  fill(&w.q, kDim);
  fill(&w.row0, 2 * kCount);
  fill(&w.row1, 2 * kCount);
  w.out.resize(kCount);
  w.haar_out.resize(4 * kCount);
  w.mask.resize((kCount + 63) / 64);
  return w;
}

// Runs `op` until ~20ms elapse and returns ns per call. `sink` defeats DCE.
template <typename Op>
double TimeNs(Op op, double* sink) {
  // Warm up and calibrate.
  int iters = 64;
  for (int i = 0; i < iters; ++i) *sink += op();
  double elapsed = 0.0;
  while (true) {
    WallTimer timer;
    for (int i = 0; i < iters; ++i) *sink += op();
    elapsed = timer.ElapsedSeconds();
    if (elapsed > 0.02) break;
    iters *= 4;
  }
  return elapsed * 1e9 / iters;
}

}  // namespace

int main() {
  Workload w = MakeWorkload();
  walrus::bench::BenchReport report("simd_kernels");
  report.params()
      .Set("dim", kDim)
      .Set("batch_count", kCount)
      .Set("max_isa", IsaName(MaxSupportedIsa()));

  struct KernelCase {
    const char* name;
    double (*run)(const walrus::simd::KernelTable&, Workload&);
    int64_t ops_per_call;  // logical elements processed per call
  };
  const KernelCase cases[] = {
      {"squared_l2_f32",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         return k.squared_l2_f32(wl.a.data(), wl.b.data(), kDim);
       },
       kDim},
      {"min_squared_distance",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         return k.min_squared_distance(wl.lo.data(), wl.hi.data(),
                                       wl.q.data(), kDim);
       },
       kDim},
      {"rect_intersects_expanded",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         return k.rect_intersects_expanded(wl.a.data(), wl.b.data(), 0.05f,
                                           wl.qlo.data(), wl.qhi.data(), kDim)
                    ? 1.0
                    : 0.0;
       },
       kDim},
      {"batch_squared_l2",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         k.batch_squared_l2(wl.lo.data(), kCount, kDim, kCount, wl.q.data(),
                            wl.out.data());
         return wl.out[0];
       },
       static_cast<int64_t>(kDim) * kCount},
      {"batch_min_squared_distance",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         k.batch_min_squared_distance(wl.lo.data(), wl.hi.data(), kCount,
                                      kDim, kCount, wl.q.data(),
                                      wl.out.data());
         return wl.out[0];
       },
       static_cast<int64_t>(kDim) * kCount},
      {"batch_intersects",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         k.batch_intersects(wl.lo.data(), wl.hi.data(), kCount, kDim, kCount,
                            wl.qlo.data(), wl.qhi.data(), wl.mask.data());
         return static_cast<double>(wl.mask[0] & 1);
       },
       static_cast<int64_t>(kDim) * kCount},
      {"haar_base_2x2",
       [](const walrus::simd::KernelTable& k, Workload& wl) {
         k.haar_base_2x2(wl.row0.data(), wl.row1.data(), kCount,
                         wl.haar_out.data());
         return static_cast<double>(wl.haar_out[0]);
       },
       4 * kCount},
  };

  std::printf("%-28s %-8s %14s %10s\n", "kernel", "isa", "ns_per_call",
              "speedup");
  double sink = 0.0;
  for (const KernelCase& kc : cases) {
    double scalar_ns = 0.0;
    for (int l = 0; l <= static_cast<int>(MaxSupportedIsa()); ++l) {
      const IsaLevel level = static_cast<IsaLevel>(l);
      const walrus::simd::KernelTable& table = Kernels(level);
      const double ns = TimeNs([&] { return kc.run(table, w); }, &sink);
      if (level == IsaLevel::kScalar) scalar_ns = ns;
      const double speedup = scalar_ns / ns;
      std::printf("%-28s %-8s %14.1f %9.2fx\n", kc.name, IsaName(level), ns,
                  speedup);
      report.AddRow()
          .Set("kernel", kc.name)
          .Set("isa", IsaName(level))
          .Set("ns_per_call", ns)
          .Set("elements_per_call", kc.ops_per_call)
          .Set("speedup_vs_scalar", speedup);
    }
  }
  if (sink == 42.0) std::printf("# sink %f\n", sink);  // defeat DCE
  report.WriteFile();
  return 0;
}
