// Reproduces Table 1: query response time, average number of regions
// retrieved per query region, and number of distinct images containing
// matching regions, as the querying epsilon grows from 0.05 to 0.09.
//
// Setup mirrors section 6.5: epsilon_c = 0.05, 64x64 sliding windows, 2x2
// signatures per channel, YCC color space, centroid region signatures, quick
// matcher. The database is the synthetic scene collection standing in for
// the 10,000-image `misc` set (DESIGN.md section 2); size is configurable
// via WALRUS_BENCH_IMAGES (default 1000).
//
// Expected shape: all three columns grow monotonically (and sharply) with
// epsilon; the paper measured 5.2s..19.9s, 15..891 avg regions and 65..1287
// distinct images over epsilon in {0.05..0.09} on a 10,000-image database.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_IMAGES", 1000);

  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 77;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::WalrusParams wp;  // paper defaults: YCC, 64x64 windows, s=2
  wp.slide_step = 8;
  std::printf("# Table 1: query selectivity and response time\n");
  std::printf(
      "# database=%d images (%dx%d), cluster_eps=%.2f, window=%d, s=%d, "
      "colorspace=YCC, centroid signatures, quick matcher\n",
      num_images, dp.width, dp.height, wp.cluster_epsilon, wp.min_window,
      wp.signature_size);

  walrus::WalrusIndex index(wp);
  walrus::WallTimer build_timer;
  for (const walrus::LabeledImage& scene : dataset) {
    walrus::Status status = index.AddImage(
        static_cast<uint64_t>(scene.id), "img", scene.image);
    if (!status.ok()) {
      std::fprintf(stderr, "indexing failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("# indexing: %zu images, %zu regions, %.2fs total\n",
              index.ImageCount(), index.RegionCount(),
              build_timer.ElapsedSeconds());

  // The paper queries with its flower image (Figure 8a); we use a fixed
  // scene from the dataset as the query.
  const walrus::ImageF& query = dataset[0].image;

  std::printf("%-10s %-18s %-26s %-18s\n", "epsilon", "response_time_s",
              "avg_regions_retrieved", "distinct_images");
  double prev_images = -1.0;
  bool monotone = true;
  for (double eps : {0.05, 0.06, 0.07, 0.08, 0.09}) {
    walrus::QueryOptions options;
    options.epsilon = static_cast<float>(eps);
    walrus::QueryStats stats;
    walrus::Result<std::vector<walrus::QueryMatch>> matches =
        walrus::ExecuteQuery(index, query, options, &stats);
    if (!matches.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   matches.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10.2f %-18.4f %-26.1f %-18d\n", eps, stats.seconds,
                stats.avg_regions_per_query_region, stats.distinct_images);
    if (stats.distinct_images < prev_images) monotone = false;
    prev_images = stats.distinct_images;
  }
  std::printf(
      "# paper shape check: all columns grow with epsilon -- %s\n",
      monotone ? "HOLDS" : "VIOLATED");

  // A/B: probe-stage throughput of the vectorized batched multi-probe path
  // (native ISA + RangeQueryBatch) against the historical per-region scalar
  // path (WALRUS_SIMD=scalar semantics + one tree descent per query
  // region). Results are byte-identical between the two configurations
  // (the kernel exactness contract in common/simd.h); only probe_seconds
  // moves. Reuses the Table 1 index; queries rotate through the dataset so
  // the probe mix is not a single region set.
  std::printf("\n# A/B: batched+SIMD probe path vs scalar per-region path\n");
  walrus::bench::BenchReport report("batched_probe");
  const double ab_epsilon = 0.09;
  const int num_queries = 8;
  const int repetitions = 15;
  report.params()
      .Set("images", static_cast<int64_t>(index.ImageCount()))
      .Set("regions", static_cast<int64_t>(index.RegionCount()))
      .Set("epsilon", ab_epsilon)
      .Set("queries", num_queries)
      .Set("repetitions", repetitions)
      .Set("max_isa", walrus::simd::IsaName(walrus::simd::MaxSupportedIsa()));

  struct AbConfig {
    const char* name;
    bool batched;
    walrus::simd::IsaLevel isa;
  };
  const AbConfig configs[] = {
      {"scalar_per_region", false, walrus::simd::IsaLevel::kScalar},
      {"simd_batched", true, walrus::simd::MaxSupportedIsa()},
  };

  std::printf("%-20s %-14s %-16s %-18s\n", "config", "probe_s",
              "probes_per_s", "nodes_visited");
  double baseline_probe_s = -1.0;
  double speedup = 0.0;
  for (const AbConfig& config : configs) {
    walrus::simd::TestOnlySetIsa(config.isa);
    double probe_s = 0.0;
    int64_t probes = 0;
    int64_t nodes = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      for (int qi = 0; qi < num_queries; ++qi) {
        walrus::QueryOptions options;
        options.epsilon = static_cast<float>(ab_epsilon);
        options.batched_probe = config.batched;
        walrus::QueryStats stats;
        walrus::Result<std::vector<walrus::QueryMatch>> matches =
            walrus::ExecuteQuery(
                index, dataset[qi % dataset.size()].image, options, &stats);
        if (!matches.ok()) {
          std::fprintf(stderr, "A/B query failed: %s\n",
                       matches.status().ToString().c_str());
          return 1;
        }
        probe_s += stats.probe_seconds;
        probes += stats.query_regions;
        nodes += stats.nodes_visited;
      }
    }
    walrus::simd::TestOnlyResetIsa();
    const double probes_per_s = probes / probe_s;
    if (baseline_probe_s < 0.0) {
      baseline_probe_s = probe_s;
    } else {
      speedup = baseline_probe_s / probe_s;
    }
    std::printf("%-20s %-14.4f %-16.0f %-18lld\n", config.name, probe_s,
                probes_per_s, static_cast<long long>(nodes));
    report.AddRow()
        .Set("config", config.name)
        .Set("batched", config.batched ? 1 : 0)
        .Set("isa", walrus::simd::IsaName(config.isa))
        .Set("probe_seconds", probe_s)
        .Set("probes_per_second", probes_per_s)
        .Set("nodes_visited", nodes);
  }
  report.params().Set("probe_stage_speedup", speedup);
  std::printf("# probe-stage speedup (batched+SIMD over scalar): %.2fx\n",
              speedup);
  report.WriteFile();
  return 0;
}
