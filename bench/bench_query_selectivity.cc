// Reproduces Table 1: query response time, average number of regions
// retrieved per query region, and number of distinct images containing
// matching regions, as the querying epsilon grows from 0.05 to 0.09.
//
// Setup mirrors section 6.5: epsilon_c = 0.05, 64x64 sliding windows, 2x2
// signatures per channel, YCC color space, centroid region signatures, quick
// matcher. The database is the synthetic scene collection standing in for
// the 10,000-image `misc` set (DESIGN.md section 2); size is configurable
// via WALRUS_BENCH_IMAGES (default 1000).
//
// Expected shape: all three columns grow monotonically (and sharply) with
// epsilon; the paper measured 5.2s..19.9s, 15..891 avg regions and 65..1287
// distinct images over epsilon in {0.05..0.09} on a 10,000-image database.
//
// Beyond the paper table, every row now carries the per-stage breakdown
// (extract / probe / filter / match / rank seconds) and the run writes two
// JSON reports:
//   BENCH_prefilter.json      Table 1 per-stage rows + a signature-prefilter
//                             on/off A/B sweep at the default epsilon
//                             (DESIGN.md section 16 acceptance numbers:
//                             match-stage speedup and candidate reduction).
//   BENCH_batched_probe.json  batched+SIMD vs scalar per-region probe A/B.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Per-stage accumulator over a batch of queries (the disjoint stage
/// timers from QueryStats, core/query.h).
struct StageTotals {
  double extract = 0.0;
  double probe = 0.0;
  double filter = 0.0;
  double match = 0.0;
  double rank = 0.0;
  double total = 0.0;
  int64_t prefilter_in = 0;
  int64_t prefilter_pruned = 0;
  int64_t prefilter_out = 0;

  void Add(const walrus::QueryStats& stats) {
    extract += stats.extract_seconds;
    probe += stats.probe_seconds;
    filter += stats.filter_seconds;
    match += stats.match_seconds;
    rank += stats.rank_seconds;
    total += stats.seconds;
    prefilter_in += stats.prefilter_candidates_in;
    prefilter_pruned += stats.prefilter_pruned;
    prefilter_out += stats.prefilter_candidates_out;
  }

  walrus::bench::JsonObject& FillRow(walrus::bench::JsonObject& row) const {
    return row.Set("extract_seconds", extract)
        .Set("probe_seconds", probe)
        .Set("filter_seconds", filter)
        .Set("match_seconds", match)
        .Set("rank_seconds", rank)
        .Set("total_seconds", total)
        .Set("prefilter_candidates_in", prefilter_in)
        .Set("prefilter_pruned", prefilter_pruned)
        .Set("prefilter_candidates_out", prefilter_out);
  }
};

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_IMAGES", 1000);

  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 77;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::WalrusParams wp;  // paper defaults: YCC, 64x64 windows, s=2
  wp.slide_step = 8;
  std::printf("# Table 1: query selectivity and response time\n");
  std::printf(
      "# database=%d images (%dx%d), cluster_eps=%.2f, window=%d, s=%d, "
      "colorspace=YCC, centroid signatures, quick matcher\n",
      num_images, dp.width, dp.height, wp.cluster_epsilon, wp.min_window,
      wp.signature_size);

  walrus::WalrusIndex index(wp);
  walrus::WallTimer build_timer;
  for (const walrus::LabeledImage& scene : dataset) {
    walrus::Status status = index.AddImage(
        static_cast<uint64_t>(scene.id), "img", scene.image);
    if (!status.ok()) {
      std::fprintf(stderr, "indexing failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("# indexing: %zu images, %zu regions, %.2fs total\n",
              index.ImageCount(), index.RegionCount(),
              build_timer.ElapsedSeconds());

  walrus::bench::BenchReport prefilter_report("prefilter");
  prefilter_report.params()
      .Set("images", static_cast<int64_t>(index.ImageCount()))
      .Set("regions", static_cast<int64_t>(index.RegionCount()))
      .Set("width", dp.width)
      .Set("height", dp.height)
      .Set("max_isa", walrus::simd::IsaName(walrus::simd::MaxSupportedIsa()));

  // The paper queries with its flower image (Figure 8a); we use a fixed
  // scene from the dataset as the query.
  const walrus::ImageF& query = dataset[0].image;

  std::printf("%-8s %-12s %-9s %-9s %-9s %-9s %-9s %-22s %-15s\n", "epsilon",
              "response_s", "extract_s", "probe_s", "filter_s", "match_s",
              "rank_s", "avg_regions_retrieved", "distinct_images");
  double prev_images = -1.0;
  bool monotone = true;
  for (double eps : {0.05, 0.06, 0.07, 0.08, 0.09}) {
    walrus::QueryOptions options;
    options.epsilon = static_cast<float>(eps);
    walrus::QueryStats stats;
    walrus::Result<std::vector<walrus::QueryMatch>> matches =
        walrus::ExecuteQuery(index, query, options, &stats);
    if (!matches.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   matches.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8.2f %-12.4f %-9.4f %-9.4f %-9.4f %-9.4f %-9.4f %-22.1f "
                "%-15d\n",
                eps, stats.seconds, stats.extract_seconds,
                stats.probe_seconds, stats.filter_seconds,
                stats.match_seconds, stats.rank_seconds,
                stats.avg_regions_per_query_region, stats.distinct_images);
    StageTotals stages;
    stages.Add(stats);
    walrus::bench::JsonObject& row = prefilter_report.AddRow();
    row.Set("kind", "table1").Set("epsilon", eps);
    stages.FillRow(row)
        .Set("avg_regions_retrieved", stats.avg_regions_per_query_region)
        .Set("distinct_images", stats.distinct_images);
    if (stats.distinct_images < prev_images) monotone = false;
    prev_images = stats.distinct_images;
  }
  std::printf(
      "# paper shape check: all columns grow with epsilon -- %s\n",
      monotone ? "HOLDS" : "VIOLATED");

  // A/B: the binary-signature prefilter tier (DESIGN.md section 16) on vs
  // off, at the paper's default epsilon. Rankings are bit-identical either
  // way (admissible lower bound); what moves is the exact-verification
  // volume (candidate reduction) and the match stage, which with the tier
  // on materializes only the target regions the matcher reads.
  std::printf("\n# A/B: signature prefilter on vs off (epsilon=%.3f)\n",
              static_cast<double>(walrus::QueryOptions{}.epsilon));
  const int num_queries = 8;
  const int repetitions = EnvInt("WALRUS_BENCH_REPS", 15);
  prefilter_report.params()
      .Set("epsilon", static_cast<double>(walrus::QueryOptions{}.epsilon))
      .Set("queries", num_queries)
      .Set("repetitions", repetitions);

  std::printf("%-16s %-9s %-9s %-9s %-9s %-9s %-13s %-13s\n", "config",
              "extract_s", "probe_s", "filter_s", "match_s", "rank_s",
              "candidates_in", "verified_out");
  StageTotals ab[2];
  for (int on = 0; on < 2; ++on) {
    for (int rep = 0; rep < repetitions; ++rep) {
      for (int qi = 0; qi < num_queries; ++qi) {
        walrus::QueryOptions options;  // default epsilon
        options.signature_prefilter = on == 1;
        walrus::QueryStats stats;
        walrus::Result<std::vector<walrus::QueryMatch>> matches =
            walrus::ExecuteQuery(
                index, dataset[qi % dataset.size()].image, options, &stats);
        if (!matches.ok()) {
          std::fprintf(stderr, "prefilter A/B query failed: %s\n",
                       matches.status().ToString().c_str());
          return 1;
        }
        ab[on].Add(stats);
      }
    }
    const char* name = on == 1 ? "prefilter_on" : "prefilter_off";
    std::printf("%-16s %-9.4f %-9.4f %-9.4f %-9.4f %-9.4f %-13lld %-13lld\n",
                name, ab[on].extract, ab[on].probe, ab[on].filter,
                ab[on].match, ab[on].rank,
                static_cast<long long>(ab[on].prefilter_in),
                static_cast<long long>(ab[on].prefilter_out));
    walrus::bench::JsonObject& row = prefilter_report.AddRow();
    row.Set("kind", "ab").Set("config", name);
    ab[on].FillRow(row);
  }
  // Acceptance numbers: with the tier off the matcher exact-verifies every
  // envelope hit, so candidates_in(on) / candidates_out(on) is the
  // exact-distance workload reduction; the match-stage speedup comes from
  // sparse target materialization.
  const double match_speedup =
      ab[1].match > 0.0 ? ab[0].match / ab[1].match : 0.0;
  const double candidate_reduction =
      ab[1].prefilter_out > 0
          ? static_cast<double>(ab[1].prefilter_in) /
                static_cast<double>(ab[1].prefilter_out)
          : 0.0;
  prefilter_report.params()
      .Set("match_stage_speedup", match_speedup)
      .Set("candidate_reduction", candidate_reduction);
  std::printf("# match-stage speedup (prefilter on over off): %.2fx\n",
              match_speedup);
  std::printf("# exact-verification candidate reduction: %.2fx\n",
              candidate_reduction);
  prefilter_report.WriteFile();

  // A/B: probe-stage throughput of the vectorized batched multi-probe path
  // (native ISA + RangeQueryBatch) against the historical per-region scalar
  // path (WALRUS_SIMD=scalar semantics + one tree descent per query
  // region). Results are byte-identical between the two configurations
  // (the kernel exactness contract in common/simd.h); only probe_seconds
  // moves. Reuses the Table 1 index; queries rotate through the dataset so
  // the probe mix is not a single region set.
  std::printf("\n# A/B: batched+SIMD probe path vs scalar per-region path\n");
  walrus::bench::BenchReport report("batched_probe");
  const double ab_epsilon = 0.09;
  report.params()
      .Set("images", static_cast<int64_t>(index.ImageCount()))
      .Set("regions", static_cast<int64_t>(index.RegionCount()))
      .Set("epsilon", ab_epsilon)
      .Set("queries", num_queries)
      .Set("repetitions", repetitions)
      .Set("max_isa", walrus::simd::IsaName(walrus::simd::MaxSupportedIsa()));

  struct AbConfig {
    const char* name;
    bool batched;
    walrus::simd::IsaLevel isa;
  };
  const AbConfig configs[] = {
      {"scalar_per_region", false, walrus::simd::IsaLevel::kScalar},
      {"simd_batched", true, walrus::simd::MaxSupportedIsa()},
  };

  std::printf("%-20s %-14s %-16s %-18s\n", "config", "probe_s",
              "probes_per_s", "nodes_visited");
  double baseline_probe_s = -1.0;
  double speedup = 0.0;
  for (const AbConfig& config : configs) {
    walrus::simd::TestOnlySetIsa(config.isa);
    double probe_s = 0.0;
    int64_t probes = 0;
    int64_t nodes = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      for (int qi = 0; qi < num_queries; ++qi) {
        walrus::QueryOptions options;
        options.epsilon = static_cast<float>(ab_epsilon);
        options.batched_probe = config.batched;
        walrus::QueryStats stats;
        walrus::Result<std::vector<walrus::QueryMatch>> matches =
            walrus::ExecuteQuery(
                index, dataset[qi % dataset.size()].image, options, &stats);
        if (!matches.ok()) {
          std::fprintf(stderr, "A/B query failed: %s\n",
                       matches.status().ToString().c_str());
          return 1;
        }
        probe_s += stats.probe_seconds;
        probes += stats.query_regions;
        nodes += stats.nodes_visited;
      }
    }
    walrus::simd::TestOnlyResetIsa();
    const double probes_per_s = probes / probe_s;
    if (baseline_probe_s < 0.0) {
      baseline_probe_s = probe_s;
    } else {
      speedup = baseline_probe_s / probe_s;
    }
    std::printf("%-20s %-14.4f %-16.0f %-18lld\n", config.name, probe_s,
                probes_per_s, static_cast<long long>(nodes));
    report.AddRow()
        .Set("config", config.name)
        .Set("batched", config.batched ? 1 : 0)
        .Set("isa", walrus::simd::IsaName(config.isa))
        .Set("probe_seconds", probe_s)
        .Set("probes_per_second", probes_per_s)
        .Set("nodes_visited", nodes);
  }
  report.params().Set("probe_stage_speedup", speedup);
  std::printf("# probe-stage speedup (batched+SIMD over scalar): %.2fx\n",
              speedup);
  report.WriteFile();
  return 0;
}
