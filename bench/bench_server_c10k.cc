// walrusd c10k: one server, ~10k idle connections parked on its event
// loops, and a sweep of active pipelined clients doing real QUERY work
// through the crowd. The reactor claim under test: idle connections cost
// a file descriptor and a few KB each -- not a thread -- and throughput
// for the active minority is unaffected by the parked majority.
//
// Reported per active-client count (BENCH_server_c10k.json):
//   qps, p50_ms, p99_ms   client-observed, per pipelined query
// plus the idle-connection footprint:
//   fds_per_idle_conn     descriptors per parked connection (loopback
//                         counts both ends in this process, so ~2)
//   rss_bytes_per_idle_conn  resident-memory delta per parked connection
//
// Environment knobs (CI shrinks these; the defaults are the full sweep):
//   WALRUS_BENCH_C10K_IDLE=10000     parked connections (clamped to the
//                                    fd rlimit with headroom; the bench
//                                    first raises the soft limit to the
//                                    hard limit)
//   WALRUS_BENCH_C10K_CLIENTS=64,256,1024   active-client sweep
//   WALRUS_BENCH_C10K_IMAGES=60      dataset size
//   WALRUS_BENCH_C10K_DEPTH=4        pipeline depth per client
//   WALRUS_BENCH_C10K_ROUNDS=2       pipelined rounds per client

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/socket.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/query_engine.h"
#include "image/dataset.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

std::vector<int> EnvIntList(const char* name,
                            const std::vector<int>& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  std::vector<int> out;
  const char* p = value;
  while (*p != '\0') {
    out.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return out.empty() ? fallback : out;
}

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t rank =
      static_cast<size_t>(q * static_cast<double>(values->size() - 1));
  return (*values)[rank];
}

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count - 1;
}

int64_t ResidentBytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return -1;
  long total = 0;
  long resident = 0;
  int fields = std::fscanf(statm, "%ld %ld", &total, &resident);
  std::fclose(statm);
  if (fields != 2) return -1;
  return static_cast<int64_t>(resident) * ::sysconf(_SC_PAGESIZE);
}

/// Raises the fd soft limit to the hard limit and returns the result.
rlim_t RaiseFdLimit() {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  limit.rlim_cur = limit.rlim_max;
  if (::setrlimit(RLIMIT_NOFILE, &limit) != 0) return limit.rlim_cur;
  return limit.rlim_max;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_C10K_IMAGES", 60);
  const int depth = EnvInt("WALRUS_BENCH_C10K_DEPTH", 4);
  const int rounds = EnvInt("WALRUS_BENCH_C10K_ROUNDS", 2);
  const int idle_requested = EnvInt("WALRUS_BENCH_C10K_IDLE", 10000);
  const std::vector<int> client_sweep =
      EnvIntList("WALRUS_BENCH_C10K_CLIENTS", {64, 256, 1024});
  const int max_active =
      *std::max_element(client_sweep.begin(), client_sweep.end());

  // Each parked loopback connection consumes two descriptors in this
  // process (client end + accepted server end); the active clients need
  // the same, and the index/dataset/logging need slack.
  const rlim_t fd_limit = RaiseFdLimit();
  const int headroom = 2 * max_active + 512;
  int idle_target = idle_requested;
  if (fd_limit < static_cast<rlim_t>(2 * idle_target + headroom)) {
    idle_target = (static_cast<int>(fd_limit) - headroom) / 2;
  }
  if (idle_target < 0) idle_target = 0;

  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 64;
  dp.height = 64;
  dp.seed = 2441;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);

  walrus::WalrusParams params;
  params.slide_step = 8;
  walrus::WalrusIndex index(params);
  std::vector<walrus::WalrusIndex::PendingImage> batch;
  for (const walrus::LabeledImage& scene : dataset) {
    batch.push_back({static_cast<uint64_t>(scene.id), "img", scene.image});
  }
  if (!index.AddImages(std::move(batch)).ok()) return 1;
  walrus::SingleIndexEngine engine(index);

  walrus::ServerOptions server_options;
  server_options.max_pending = max_active * depth + 64;
  walrus::WalrusServer server(engine, server_options);
  if (!server.Start().ok()) return 1;

  // ---- Park the idle crowd and price it ---------------------------------
  const int fds_before = CountOpenFds();
  const int64_t rss_before = ResidentBytes();
  std::vector<walrus::UniqueFd> idle;
  idle.reserve(static_cast<size_t>(idle_target));
  for (int i = 0; i < idle_target; ++i) {
    auto fd = walrus::ConnectTcp("127.0.0.1", server.port());
    if (!fd.ok()) {
      std::fprintf(stderr, "idle connect %d failed: %s\n", i,
                   fd.status().ToString().c_str());
      return 1;
    }
    idle.push_back(std::move(*fd));
  }
  // Wait until the reactor has adopted every parked connection, so the
  // footprint numbers include the server-side state.
  while (server.Snapshot().connections_accepted <
         static_cast<uint64_t>(idle_target)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const int fds_after = CountOpenFds();
  const int64_t rss_after = ResidentBytes();
  const double fds_per_conn =
      idle_target == 0 ? 0.0
                       : static_cast<double>(fds_after - fds_before) /
                             idle_target;
  const double rss_per_conn =
      idle_target == 0 ? 0.0
                       : static_cast<double>(rss_after - rss_before) /
                             idle_target;

  std::printf("# walrusd c10k: %d idle connections (fd limit %llu), "
              "%d images, pipeline depth %d\n",
              idle_target, static_cast<unsigned long long>(fd_limit),
              num_images, depth);
  std::printf("# idle footprint: %.2f fds/conn, %.0f rss bytes/conn\n",
              fds_per_conn, rss_per_conn);

  walrus::bench::BenchReport report("server_c10k");
  report.params()
      .Set("num_images", num_images)
      .Set("idle_connections", idle_target)
      .Set("pipeline_depth", depth)
      .Set("rounds", rounds)
      .Set("fd_limit", static_cast<int64_t>(fd_limit))
      .Set("fds_per_idle_conn", fds_per_conn)
      .Set("rss_bytes_per_idle_conn", rss_per_conn);

  // ---- Active pipelined sweep through the parked crowd ------------------
  std::printf("%-10s %-12s %-10s %-10s\n", "clients", "qps", "p50_ms",
              "p99_ms");
  for (int clients : client_sweep) {
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(clients));
    walrus::WallTimer wall;
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          auto client =
              walrus::WalrusClient::Connect("127.0.0.1", server.port());
          if (!client.ok()) std::exit(1);
          walrus::QueryOptions options;
          options.epsilon = 0.07f;
          options.top_k = 10;
          std::vector<walrus::ImageF> window;
          for (int d = 0; d < depth; ++d) {
            window.push_back(
                dataset[static_cast<size_t>(c * depth + d) % dataset.size()]
                    .image);
          }
          for (int r = 0; r < rounds; ++r) {
            walrus::WallTimer timer;
            auto results = client->QueryPipelined(window, options);
            if (!results.ok()) {
              std::fprintf(stderr, "pipelined query failed: %s\n",
                           results.status().ToString().c_str());
              std::exit(1);
            }
            // Depth queries share one round trip; amortize it per query.
            latencies[static_cast<size_t>(c)].push_back(
                timer.ElapsedMillis() / depth);
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
    double seconds = wall.ElapsedSeconds();

    std::vector<double> all;
    for (auto& per_client : latencies) {
      for (double per_round : per_client) {
        for (int d = 0; d < depth; ++d) all.push_back(per_round);
      }
    }
    double qps = static_cast<double>(all.size()) / seconds;
    double p50 = Quantile(&all, 0.50);
    double p99 = Quantile(&all, 0.99);
    std::printf("%-10d %-12.1f %-10.2f %-10.2f\n", clients, qps, p50, p99);
    report.AddRow()
        .Set("clients", clients)
        .Set("qps", qps)
        .Set("p50_ms", p50)
        .Set("p99_ms", p99);
  }

  // The parked crowd must have survived the storm: a frame sent down the
  // oldest idle connection still gets an answer.
  if (!idle.empty()) {
    std::vector<uint8_t> ping =
        walrus::EncodeFrame(walrus::Opcode::kPing, 424242, {});
    if (!walrus::WriteFull(idle[0].get(), ping.data(), ping.size()).ok()) {
      std::fprintf(stderr, "idle connection died during the sweep\n");
      return 1;
    }
    std::vector<uint8_t> header(walrus::kFrameHeaderBytes);
    if (!walrus::ReadFull(idle[0].get(), header.data(), header.size())
             .ok()) {
      std::fprintf(stderr, "idle connection unanswered after the sweep\n");
      return 1;
    }
  }

  report.WriteFile();
  idle.clear();
  server.Stop();
  return 0;
}
