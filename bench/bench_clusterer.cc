// Ablation: BIRCH pre-clustering vs k-means for window-signature clustering
// (paper section 5.3 argues for BIRCH: linear time, radius-bounded clusters,
// cluster count adapting to image complexity). Reports indexing time,
// regions per image, and retrieval quality under both clusterers.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  const int num_images = EnvInt("WALRUS_BENCH_CLUSTERER_IMAGES", 72);
  const int num_queries = EnvInt("WALRUS_BENCH_CLUSTERER_QUERIES", 18);
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 777;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);
  walrus::GroundTruth truth(dataset);

  std::printf(
      "# ablation: BIRCH pre-clustering vs k-means for region extraction "
      "(%d images, %d queries)\n",
      num_images, num_queries);
  std::printf("%-12s %-10s %-16s %-12s %-8s\n", "clusterer", "build_s",
              "regions/image", "query_ms", "P@5");

  for (walrus::ClustererKind kind :
       {walrus::ClustererKind::kBirch, walrus::ClustererKind::kKMeans}) {
    walrus::WalrusParams params;
    params.min_window = 16;
    params.max_window = 64;
    params.slide_step = 8;
    params.clusterer = kind;
    walrus::WalrusIndex index(params);

    walrus::WallTimer build_timer;
    for (const walrus::LabeledImage& scene : dataset) {
      if (!index
               .AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
               .ok()) {
        return 1;
      }
    }
    double build_sec = build_timer.ElapsedSeconds();

    double query_ms = 0.0;
    std::vector<double> precisions;
    for (int q = 0; q < num_queries; ++q) {
      walrus::QueryOptions options;
      options.epsilon = 0.085f;
      walrus::QueryStats stats;
      auto matches =
          walrus::ExecuteQuery(index, dataset[q].image, options, &stats);
      if (!matches.ok()) return 1;
      query_ms += stats.seconds * 1e3;
      std::vector<uint64_t> ids;
      for (const walrus::QueryMatch& m : *matches) {
        if (m.image_id != static_cast<uint64_t>(q)) {
          ids.push_back(m.image_id);
        }
      }
      precisions.push_back(walrus::PrecisionAtK(
          ids, truth.ForQuery(static_cast<uint64_t>(q)), 5));
    }
    std::printf("%-12s %-10.2f %-16.1f %-12.2f %-8.3f\n",
                kind == walrus::ClustererKind::kBirch ? "birch" : "kmeans",
                build_sec,
                static_cast<double>(index.RegionCount()) / num_images,
                query_ms / num_queries, walrus::MeanOf(precisions));
  }
  std::printf(
      "# note: BIRCH's advantage is structural, not raw speed -- no k to\n"
      "# tune, and every region is radius-bounded (<= epsilon_c) so region\n"
      "# signatures stay homogeneous; k-means with a small heuristic k\n"
      "# merges unrelated windows into broad clusters.\n");
  return 0;
}
