// Micro-benchmarks for the R*-tree substrate: insertion throughput, range
// probes at WALRUS's 12 dimensions (the epsilon-envelope probe of section
// 5.4), and nearest-neighbor search.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "spatial/rstar_tree.h"

namespace walrus {
namespace {

std::vector<float> RandomPoint(Rng* rng, int dim) {
  std::vector<float> p(dim);
  for (float& v : p) v = rng->NextFloat();
  return p;
}

void BM_RStarInsert(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    RStarTree tree(dim);
    std::vector<std::vector<float>> points;
    for (int i = 0; i < 2000; ++i) points.push_back(RandomPoint(&rng, dim));
    state.ResumeTiming();
    for (int i = 0; i < 2000; ++i) {
      tree.Insert(Rect::Point(points[i]), static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RStarInsert)->Arg(2)->Arg(12);

void BM_RStarRangeProbe(benchmark::State& state) {
  int dim = 12;
  int n = static_cast<int>(state.range(0));
  Rng rng(2);
  RStarTree tree(dim);
  for (int i = 0; i < n; ++i) {
    tree.Insert(Rect::Point(RandomPoint(&rng, dim)),
                static_cast<uint64_t>(i));
  }
  float eps = 0.085f;  // the paper's retrieval epsilon
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(RandomPoint(&rng, dim));
  size_t qi = 0;
  for (auto _ : state) {
    Rect probe = Rect::Point(queries[qi]).Expanded(eps);
    qi = (qi + 1) % queries.size();
    benchmark::DoNotOptimize(tree.RangeSearch(probe));
  }
}
BENCHMARK(BM_RStarRangeProbe)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RStarNearestNeighbors(benchmark::State& state) {
  int dim = 12;
  Rng rng(3);
  RStarTree tree(dim);
  for (int i = 0; i < 20000; ++i) {
    tree.Insert(Rect::Point(RandomPoint(&rng, dim)),
                static_cast<uint64_t>(i));
  }
  std::vector<float> q = RandomPoint(&rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.NearestNeighbors(q, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_RStarNearestNeighbors)->Arg(1)->Arg(10)->Arg(100);

void BM_RStarSplitPolicy(benchmark::State& state) {
  // Build + probe under each split policy (0 = R*, 1 = quadratic/no
  // reinsert). Clustered data emphasizes split quality.
  RStarParams params;
  if (state.range(0) == 1) {
    params.split_policy = SplitPolicy::kQuadratic;
    params.use_forced_reinsert = false;
  }
  Rng rng(11);
  RStarTree tree(2, params);
  for (int i = 0; i < 20000; ++i) {
    int blob = rng.NextInt(0, 49);
    std::vector<float> p = {(blob % 7) / 7.0f + 0.04f * rng.NextFloat(),
                            (blob / 7) / 7.0f + 0.04f * rng.NextFloat()};
    tree.Insert(Rect::Point(p), static_cast<uint64_t>(i));
  }
  std::vector<Rect> probes;
  for (int i = 0; i < 64; ++i) {
    std::vector<float> lo = {rng.NextFloat() * 0.9f, rng.NextFloat() * 0.9f};
    probes.push_back(Rect::Bounds(lo, {lo[0] + 0.06f, lo[1] + 0.06f}));
  }
  size_t qi = 0;
  int64_t nodes = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(probes[qi]));
    nodes += tree.last_nodes_visited();
    ++queries;
    qi = (qi + 1) % probes.size();
  }
  state.SetLabel(state.range(0) == 1 ? "quadratic" : "rstar");
  state.counters["nodes/query"] =
      static_cast<double>(nodes) / std::max<int64_t>(1, queries);
}
BENCHMARK(BM_RStarSplitPolicy)->Arg(0)->Arg(1);

void BM_RStarSerialize(benchmark::State& state) {
  Rng rng(4);
  RStarTree tree(12);
  for (int i = 0; i < 10000; ++i) {
    tree.Insert(Rect::Point(RandomPoint(&rng, 12)),
                static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    BinaryWriter writer;
    tree.Serialize(&writer);
    benchmark::DoNotOptimize(writer.size());
  }
}
BENCHMARK(BM_RStarSerialize);

}  // namespace
}  // namespace walrus

BENCHMARK_MAIN();
