// Reproduces Figure 6(a): execution time of the naive algorithm vs the
// dynamic-programming algorithm for computing 2x2 wavelet signatures of all
// sliding windows in a 256x256 image, as the window size grows from 2x2 to
// 128x128 (slide distance t = 1, single color channel -- the paper excludes
// image-reading time, so we time only signature computation).
//
// Expected shape (paper, Sun Ultra-2/200): naive grows ~quadratically with
// window size, reaching ~25s at 128; DP grows ~logarithmically; at 128 the
// naive algorithm is ~17x slower. Absolute times differ on modern hardware;
// the growth shapes and the ratio ordering must hold.

#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/random.h"
#include "common/timer.h"
#include "wavelet/naive_window.h"
#include "wavelet/sliding_window.h"

namespace {

constexpr int kImageSize = 256;
constexpr int kSignature = 2;
constexpr int kStep = 1;

std::vector<float> MakePlane() {
  walrus::Rng rng(20260706);
  std::vector<float> plane(static_cast<size_t>(kImageSize) * kImageSize);
  for (float& v : plane) v = rng.NextFloat();
  return plane;
}

double TimeNaive(const std::vector<float>& plane, int window) {
  walrus::WallTimer timer;
  walrus::WindowSignatureGrid grid = walrus::ComputeNaiveWindowSignatures(
      plane, kImageSize, kImageSize, kSignature, window, kStep);
  (void)grid;
  return timer.ElapsedSeconds();
}

double TimeDp(const std::vector<float>& plane, int window) {
  walrus::WallTimer timer;
  walrus::WindowSignatureGrid grid = walrus::ComputeSlidingWindowSignaturesAt(
      plane, kImageSize, kImageSize, kSignature, window, kStep);
  (void)grid;
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  std::vector<float> plane = MakePlane();
  std::printf(
      "# Figure 6(a): wavelet signature computation time vs window size\n");
  std::printf(
      "# image=%dx%d signature=%dx%d slide=%d (times in seconds)\n",
      kImageSize, kImageSize, kSignature, kSignature, kStep);
  std::printf("%-12s %-14s %-14s %-10s\n", "window", "naive_sec", "dp_sec",
              "speedup");

  walrus::bench::BenchReport report("dp_window");
  report.params()
      .Set("image_size", kImageSize)
      .Set("signature", kSignature)
      .Set("slide_step", kStep);

  double naive_at_128 = 0.0;
  double dp_at_128 = 0.0;
  for (int window = 2; window <= 128; window *= 2) {
    // Warm one small run, then measure (single iteration: these are
    // second-scale workloads at the top end).
    double naive_sec = TimeNaive(plane, window);
    double dp_sec = TimeDp(plane, window);
    if (window == 128) {
      naive_at_128 = naive_sec;
      dp_at_128 = dp_sec;
    }
    std::printf("%-12d %-14.4f %-14.4f %-10.1f\n", window, naive_sec, dp_sec,
                naive_sec / dp_sec);
    report.AddRow()
        .Set("window", window)
        .Set("naive_sec", naive_sec)
        .Set("dp_sec", dp_sec)
        .Set("speedup", naive_sec / dp_sec);
  }
  std::printf(
      "# paper shape check: naive/dp speedup at window=128 was ~17x on the "
      "paper's hardware; measured %.1fx\n",
      naive_at_128 / dp_at_128);
  report.WriteFile();
  return 0;
}
