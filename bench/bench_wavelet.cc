// Micro-benchmarks for the wavelet substrate: 1-D/2-D Haar transforms,
// Daubechies-4, and single-window DP combination. Supports the Figure 6
// experiments by exposing the per-primitive costs.

#include <vector>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "wavelet/daubechies.h"
#include "wavelet/haar1d.h"
#include "wavelet/haar2d.h"
#include "wavelet/naive_window.h"
#include "wavelet/sliding_window.h"

namespace walrus {
namespace {

std::vector<float> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.NextFloat();
  return v;
}

SquareMatrix RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  SquareMatrix m(n);
  for (float& x : m.values) x = rng.NextFloat();
  return m;
}

void BM_Haar1D(benchmark::State& state) {
  std::vector<float> input = RandomVector(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarTransform1D(input));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Haar1D)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Haar2DNonStandard(benchmark::State& state) {
  SquareMatrix m = RandomMatrix(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarNonStandard2D(m));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_Haar2DNonStandard)->Arg(16)->Arg(64)->Arg(256);

void BM_Haar2DStandard(benchmark::State& state) {
  SquareMatrix m = RandomMatrix(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarStandard2D(m));
  }
}
BENCHMARK(BM_Haar2DStandard)->Arg(64)->Arg(256);

void BM_Daub4Transform2D(benchmark::State& state) {
  SquareMatrix m = RandomMatrix(128, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Daub4Transform2D(m, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_Daub4Transform2D)->Arg(1)->Arg(4)->Arg(5);

void BM_ComputeSingleWindow(benchmark::State& state) {
  int s = static_cast<int>(state.range(0));
  std::vector<float> w1 = RandomVector(s * s, 5);
  std::vector<float> w2 = RandomVector(s * s, 6);
  std::vector<float> w3 = RandomVector(s * s, 7);
  std::vector<float> w4 = RandomVector(s * s, 8);
  std::vector<float> out(static_cast<size_t>(s) * s);
  for (auto _ : state) {
    ComputeSingleWindow(w1.data(), w2.data(), w3.data(), w4.data(), s,
                        out.data(), s, s);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ComputeSingleWindow)->Arg(2)->Arg(8)->Arg(32);

void BM_SlidingWindowsDp(benchmark::State& state) {
  int n = 128;
  std::vector<float> plane = RandomVector(static_cast<size_t>(n) * n, 9);
  int omega = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeSlidingWindowSignaturesAt(plane, n, n, 2, omega, 1));
  }
}
BENCHMARK(BM_SlidingWindowsDp)->Arg(8)->Arg(32)->Arg(64);

void BM_SlidingWindowsNaive(benchmark::State& state) {
  int n = 128;
  std::vector<float> plane = RandomVector(static_cast<size_t>(n) * n, 9);
  int omega = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeNaiveWindowSignatures(plane, n, n, 2, omega, 1));
  }
}
BENCHMARK(BM_SlidingWindowsNaive)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace walrus

BENCHMARK_MAIN();
