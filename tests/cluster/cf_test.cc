#include "cluster/cf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(CfVector, EmptyState) {
  CfVector cf(3);
  EXPECT_TRUE(cf.empty());
  EXPECT_EQ(cf.count(), 0);
  EXPECT_EQ(cf.dim(), 3);
}

TEST(CfVector, SinglePoint) {
  float p[] = {1.0f, 2.0f, 3.0f};
  CfVector cf = CfVector::FromPoint(p, 3);
  EXPECT_EQ(cf.count(), 1);
  EXPECT_DOUBLE_EQ(cf.square_sum(), 14.0);
  std::vector<float> centroid = cf.Centroid();
  EXPECT_FLOAT_EQ(centroid[0], 1.0f);
  EXPECT_FLOAT_EQ(centroid[2], 3.0f);
  EXPECT_DOUBLE_EQ(cf.Radius(), 0.0);
  EXPECT_DOUBLE_EQ(cf.Diameter(), 0.0);
}

TEST(CfVector, CentroidOfTwoPoints) {
  float a[] = {0.0f, 0.0f};
  float b[] = {2.0f, 4.0f};
  CfVector cf(2);
  cf.AddPoint(a, 2);
  cf.AddPoint(b, 2);
  std::vector<float> centroid = cf.Centroid();
  EXPECT_FLOAT_EQ(centroid[0], 1.0f);
  EXPECT_FLOAT_EQ(centroid[1], 2.0f);
}

TEST(CfVector, RadiusMatchesDefinition) {
  // Two points at distance 2 from each other: centroid in the middle,
  // radius = RMS distance = 1 (in 1-D).
  float a[] = {-1.0f};
  float b[] = {1.0f};
  CfVector cf(1);
  cf.AddPoint(a, 1);
  cf.AddPoint(b, 1);
  EXPECT_NEAR(cf.Radius(), 1.0, 1e-9);
  // Diameter D = sqrt(avg pairwise squared distance) = 2.
  EXPECT_NEAR(cf.Diameter(), 2.0, 1e-9);
}

TEST(CfVector, MergeEqualsBatchInsert) {
  Rng rng(4);
  CfVector a(4), b(4), all(4);
  for (int i = 0; i < 20; ++i) {
    float p[4];
    for (float& v : p) v = rng.NextFloat();
    (i % 2 == 0 ? a : b).AddPoint(p, 4);
    all.AddPoint(p, 4);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.square_sum(), all.square_sum(), 1e-9);
  for (int d = 0; d < 4; ++d) {
    EXPECT_NEAR(a.linear_sum()[d], all.linear_sum()[d], 1e-9);
  }
  EXPECT_NEAR(a.Radius(), all.Radius(), 1e-9);
}

TEST(CfVector, MergedRadiusPredictsActualMerge) {
  Rng rng(5);
  CfVector a(3), b(3);
  for (int i = 0; i < 10; ++i) {
    float p[3] = {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    a.AddPoint(p, 3);
    float q[3] = {rng.NextFloat() + 1.0f, rng.NextFloat(), rng.NextFloat()};
    b.AddPoint(q, 3);
  }
  double predicted = a.MergedRadius(b);
  CfVector merged = a;
  merged.Merge(b);
  EXPECT_NEAR(predicted, merged.Radius(), 1e-9);
}

TEST(CfVector, MergedRadiusWithPointPredicts) {
  Rng rng(6);
  CfVector cf(2);
  for (int i = 0; i < 5; ++i) {
    float p[2] = {rng.NextFloat(), rng.NextFloat()};
    cf.AddPoint(p, 2);
  }
  float q[2] = {2.0f, -1.0f};
  double predicted = cf.MergedRadiusWithPoint(q, 2);
  cf.AddPoint(q, 2);
  EXPECT_NEAR(predicted, cf.Radius(), 1e-9);
}

TEST(CfVector, CentroidDistance) {
  float a[] = {0.0f, 0.0f};
  float b[] = {3.0f, 4.0f};
  CfVector ca = CfVector::FromPoint(a, 2);
  CfVector cb = CfVector::FromPoint(b, 2);
  EXPECT_NEAR(CfVector::CentroidDistance(ca, cb), 5.0, 1e-9);
}

TEST(CfVector, MergeIntoEmptyAdoptsDim) {
  CfVector empty;
  float p[] = {1.0f, 1.0f};
  CfVector single = CfVector::FromPoint(p, 2);
  empty.Merge(single);
  EXPECT_EQ(empty.dim(), 2);
  EXPECT_EQ(empty.count(), 1);
}

}  // namespace
}  // namespace walrus
