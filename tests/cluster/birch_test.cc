#include "cluster/birch.h"

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

std::vector<float> MakeBlobs(int per_blob, const std::vector<std::pair<float, float>>& centers,
                             float spread, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> points;
  for (int i = 0; i < per_blob; ++i) {
    for (const auto& [cx, cy] : centers) {
      points.push_back(cx + spread * (rng.NextFloat() - 0.5f));
      points.push_back(cy + spread * (rng.NextFloat() - 0.5f));
    }
  }
  return points;
}

TEST(Birch, RecoversWellSeparatedBlobs) {
  std::vector<float> points =
      MakeBlobs(60, {{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 0.1f, 1);
  BirchParams params;
  params.threshold = 0.5;
  BirchResult result = BirchPreCluster(points.data(), 240, 2, params);
  EXPECT_EQ(result.clusters.size(), 4u);
  // Every point assigned; each blob's points share an assignment.
  ASSERT_EQ(result.assignments.size(), 240u);
  for (int blob = 0; blob < 4; ++blob) {
    std::set<int> ids;
    for (int i = blob; i < 240; i += 4) ids.insert(result.assignments[i]);
    EXPECT_EQ(ids.size(), 1u) << "blob " << blob;
  }
}

TEST(Birch, CentroidsNearBlobCenters) {
  std::vector<float> points = MakeBlobs(100, {{0, 0}, {5, 5}}, 0.2f, 2);
  BirchParams params;
  params.threshold = 0.5;
  BirchResult result = BirchPreCluster(points.data(), 200, 2, params);
  ASSERT_EQ(result.centroids.size(), 2u);
  for (const auto& c : result.centroids) {
    bool near_a = std::abs(c[0] - 0.0f) < 0.3f && std::abs(c[1] - 0.0f) < 0.3f;
    bool near_b = std::abs(c[0] - 5.0f) < 0.3f && std::abs(c[1] - 5.0f) < 0.3f;
    EXPECT_TRUE(near_a || near_b);
  }
}

TEST(Birch, ClusterCountDecreasesWithThreshold) {
  // Section 6.6 behaviour: larger epsilon_c -> fewer clusters.
  Rng rng(3);
  std::vector<float> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back(rng.NextFloat());
    points.push_back(rng.NextFloat());
  }
  size_t prev = SIZE_MAX;
  for (double threshold : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    BirchParams params;
    params.threshold = threshold;
    BirchResult result = BirchPreCluster(points.data(), 500, 2, params);
    EXPECT_LE(result.clusters.size(), prev) << threshold;
    prev = result.clusters.size();
  }
}

TEST(Birch, NodeBudgetForcesRebuilds) {
  Rng rng(4);
  std::vector<float> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back(rng.NextFloat());
    points.push_back(rng.NextFloat());
  }
  BirchParams params;
  params.threshold = 0.001;  // tiny: would explode without rebuilds
  params.max_nodes = 32;
  params.branching = 4;
  params.leaf_entries = 4;
  BirchResult result = BirchPreCluster(points.data(), 2000, 2, params);
  EXPECT_GT(result.rebuilds, 0);
  EXPECT_GT(result.final_threshold, params.threshold);
  EXPECT_FALSE(result.clusters.empty());
  int64_t total = 0;
  for (const CfVector& cf : result.clusters) total += cf.count();
  EXPECT_EQ(total, 2000);
}

TEST(Birch, SinglePointDataset) {
  float p[] = {0.3f, 0.7f};
  BirchParams params;
  BirchResult result = BirchPreCluster(p, 1, 2, params);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.assignments[0], 0);
  EXPECT_FLOAT_EQ(result.centroids[0][0], 0.3f);
}

TEST(Birch, VectorOfPointsOverload) {
  std::vector<std::vector<float>> points = {
      {0.0f, 0.0f}, {0.01f, 0.01f}, {5.0f, 5.0f}};
  BirchParams params;
  params.threshold = 0.1;
  BirchResult result = BirchPreCluster(points, params);
  EXPECT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.assignments[0], result.assignments[1]);
  EXPECT_NE(result.assignments[0], result.assignments[2]);
}

TEST(Birch, DeterministicResult) {
  std::vector<float> points = MakeBlobs(50, {{0, 0}, {3, 3}}, 0.3f, 5);
  BirchParams params;
  params.threshold = 0.2;
  BirchResult a = BirchPreCluster(points.data(), 100, 2, params);
  BirchResult b = BirchPreCluster(points.data(), 100, 2, params);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.clusters.size(), b.clusters.size());
}

}  // namespace
}  // namespace walrus
