#include <gtest/gtest.h>

#include "cluster/cf_tree.h"
#include "common/random.h"

namespace walrus {
namespace {

/// A tree with several levels: a tight threshold over scattered points
/// creates many subclusters, forcing leaf and internal splits.
CfTree BuildTree(int num_points) {
  CfTree tree(/*dim=*/2, /*threshold=*/0.01);
  Rng rng(11);
  for (int i = 0; i < num_points; ++i) {
    float p[2] = {rng.NextFloat() * 100.0f, rng.NextFloat() * 100.0f};
    tree.InsertPoint(p);
  }
  return tree;
}

TEST(CfTreeValidate, HealthyTreeValidates) {
  CfTree tree = BuildTree(300);
  EXPECT_GT(tree.node_count(), 1);
  Status status = tree.Validate();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(CfTreeValidate, EmptyTreeValidates) {
  CfTree tree(2, 0.5);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(CfTreeValidate, DetectsCorruptedEntry) {
  CfTree tree = BuildTree(300);
  ASSERT_TRUE(tree.Validate().ok());
  // Perturb one leaf subcluster's square-sum without updating its
  // ancestors: the CF additivity identity no longer holds.
  tree.TestOnlyCorruptFirstLeafCf(1.0e6);
  Status status = tree.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status;
}

TEST(CfTreeValidate, DetectsCorruptionInSingleNodeTree) {
  // With only a root leaf there is no additivity identity to break, but an
  // inflated square-sum pushes the subcluster radius past the threshold.
  CfTree tree(2, 0.5);
  float a[2] = {0.0f, 0.0f};
  float b[2] = {0.1f, 0.1f};
  tree.InsertPoint(a);
  tree.InsertPoint(b);
  ASSERT_TRUE(tree.Validate().ok());
  tree.TestOnlyCorruptFirstLeafCf(1.0e6);
  EXPECT_FALSE(tree.Validate().ok());
}

}  // namespace
}  // namespace walrus
