#include "cluster/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(KMeans, RecoversTwoBlobs) {
  Rng rng(1);
  std::vector<float> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back((i % 2 == 0 ? 0.0f : 8.0f) + 0.1f * rng.NextFloat());
    points.push_back((i % 2 == 0 ? 0.0f : 8.0f) + 0.1f * rng.NextFloat());
  }
  KMeansParams params;
  params.k = 2;
  KMeansResult result = KMeansCluster(points.data(), 100, 2, params);
  ASSERT_EQ(result.centroids.size(), 2u);
  // Points of each blob share an assignment; the blobs differ.
  EXPECT_EQ(result.assignments[0], result.assignments[2]);
  EXPECT_EQ(result.assignments[1], result.assignments[3]);
  EXPECT_NE(result.assignments[0], result.assignments[1]);
  EXPECT_LT(result.inertia, 1.0);
}

TEST(KMeans, KClampedToN) {
  float points[] = {0.0f, 1.0f, 2.0f};
  KMeansParams params;
  params.k = 10;
  KMeansResult result = KMeansCluster(points, 3, 1, params);
  EXPECT_EQ(result.centroids.size(), 3u);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  float points[] = {0.0f, 2.0f, 4.0f, 6.0f};
  KMeansParams params;
  params.k = 1;
  KMeansResult result = KMeansCluster(points, 4, 1, params);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 3.0f, 1e-5f);
}

TEST(KMeans, DeterministicForSeed) {
  Rng rng(2);
  std::vector<float> points;
  for (int i = 0; i < 60; ++i) points.push_back(rng.NextFloat());
  KMeansParams params;
  params.k = 4;
  params.seed = 99;
  KMeansResult a = KMeansCluster(points.data(), 30, 2, params);
  KMeansResult b = KMeansCluster(points.data(), 30, 2, params);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, EveryPointAssignedToNearestCentroid) {
  Rng rng(3);
  std::vector<float> points;
  for (int i = 0; i < 80; ++i) points.push_back(rng.NextFloat());
  KMeansParams params;
  params.k = 5;
  KMeansResult result = KMeansCluster(points.data(), 40, 2, params);
  for (int i = 0; i < 40; ++i) {
    const float* p = &points[2 * i];
    double assigned = 0.0;
    double best = 1e18;
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      double dx = p[0] - result.centroids[c][0];
      double dy = p[1] - result.centroids[c][1];
      double d = dx * dx + dy * dy;
      if (static_cast<int>(c) == result.assignments[i]) assigned = d;
      best = std::min(best, d);
    }
    EXPECT_NEAR(assigned, best, 1e-9) << i;
  }
}

TEST(KMeans, InertiaNonIncreasingWithMoreClusters) {
  Rng rng(4);
  std::vector<float> points;
  for (int i = 0; i < 200; ++i) points.push_back(rng.NextFloat());
  double prev = 1e18;
  for (int k : {1, 2, 4, 8}) {
    KMeansParams params;
    params.k = k;
    params.max_iterations = 100;
    KMeansResult result = KMeansCluster(points.data(), 100, 2, params);
    EXPECT_LE(result.inertia, prev * 1.05) << k;  // allow local-optimum slack
    prev = result.inertia;
  }
}

}  // namespace
}  // namespace walrus
