#include "cluster/cf_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(CfTree, SinglePoint) {
  CfTree tree(2, 0.1);
  float p[] = {0.5f, 0.5f};
  tree.InsertPoint(p);
  EXPECT_EQ(tree.point_count(), 1);
  std::vector<CfVector> clusters = tree.LeafClusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].count(), 1);
}

TEST(CfTree, TightPointsAbsorbIntoOneCluster) {
  CfTree tree(2, 0.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    float p[] = {0.5f + 0.01f * rng.NextFloat(),
                 0.5f + 0.01f * rng.NextFloat()};
    tree.InsertPoint(p);
  }
  EXPECT_EQ(tree.leaf_cluster_count(), 1);
  std::vector<CfVector> clusters = tree.LeafClusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].count(), 100);
  EXPECT_LE(clusters[0].Radius(), 0.5);
}

TEST(CfTree, WellSeparatedBlobsGetSeparateClusters) {
  CfTree tree(2, 0.1);
  Rng rng(2);
  // Three blobs far apart.
  const float centers[3][2] = {{0.0f, 0.0f}, {5.0f, 5.0f}, {-5.0f, 5.0f}};
  for (int i = 0; i < 300; ++i) {
    const float* c = centers[i % 3];
    float p[] = {c[0] + 0.02f * rng.NextFloat(),
                 c[1] + 0.02f * rng.NextFloat()};
    tree.InsertPoint(p);
  }
  EXPECT_EQ(tree.leaf_cluster_count(), 3);
  for (const CfVector& cf : tree.LeafClusters()) {
    EXPECT_EQ(cf.count(), 100);
  }
}

TEST(CfTree, ZeroThresholdSeparatesDistinctPoints) {
  CfTree tree(1, 0.0);
  for (int i = 0; i < 20; ++i) {
    float p[] = {static_cast<float>(i)};
    tree.InsertPoint(p);
  }
  EXPECT_EQ(tree.leaf_cluster_count(), 20);
  EXPECT_GT(tree.node_count(), 1);  // splits happened
}

TEST(CfTree, PointCountConservedThroughSplits) {
  CfTree tree(3, 0.01, /*branching=*/4, /*leaf_entries=*/4);
  Rng rng(3);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    float p[] = {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    tree.InsertPoint(p);
  }
  EXPECT_EQ(tree.point_count(), n);
  int64_t total = 0;
  for (const CfVector& cf : tree.LeafClusters()) total += cf.count();
  EXPECT_EQ(total, n);
}

TEST(CfTree, LeafClusterRadiiRespectThreshold) {
  const double threshold = 0.05;
  CfTree tree(2, threshold);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    float p[] = {rng.NextFloat(), rng.NextFloat()};
    tree.InsertPoint(p);
  }
  for (const CfVector& cf : tree.LeafClusters()) {
    EXPECT_LE(cf.Radius(), threshold + 1e-9);
  }
}

TEST(CfTree, InsertCfMergesWholeSubclusters) {
  CfTree tree(2, 1.0);
  CfVector cf(2);
  float a[] = {0.1f, 0.1f};
  float b[] = {0.2f, 0.2f};
  cf.AddPoint(a, 2);
  cf.AddPoint(b, 2);
  tree.InsertCf(cf);
  tree.InsertCf(cf);
  EXPECT_EQ(tree.point_count(), 4);
  std::vector<CfVector> clusters = tree.LeafClusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].count(), 4);
}

TEST(CfTree, ClusterCountGrowsAsThresholdShrinks) {
  Rng rng(5);
  std::vector<float> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(rng.NextFloat());
    points.push_back(rng.NextFloat());
  }
  int prev = 0;
  for (double threshold : {0.4, 0.2, 0.1, 0.05}) {
    CfTree tree(2, threshold);
    for (int i = 0; i < 400; ++i) tree.InsertPoint(&points[2 * i]);
    EXPECT_GE(tree.leaf_cluster_count(), prev);
    prev = tree.leaf_cluster_count();
  }
}

}  // namespace
}  // namespace walrus
