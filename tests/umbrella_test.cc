// Verifies the umbrella header is self-contained and exposes the whole
// public API surface (compile coverage) plus the version constants.

#include "walrus.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(Umbrella, VersionConstantsConsistent) {
  EXPECT_EQ(kVersionMajor, 1);
  std::string expected = std::to_string(kVersionMajor) + "." +
                         std::to_string(kVersionMinor) + "." +
                         std::to_string(kVersionPatch);
  EXPECT_EQ(expected, kVersionString);
}

TEST(Umbrella, CoreTypesUsableViaSingleInclude) {
  // Touch one symbol from each major module to prove the umbrella header
  // compiles standalone and links.
  WalrusParams params;
  params.min_window = 16;
  params.max_window = 16;
  params.slide_step = 8;
  ASSERT_TRUE(params.Validate().ok());

  WalrusIndex index(params);
  ImageF image = MakeSolid(32, 32, {0.2f, 0.5f, 0.8f});
  ASSERT_TRUE(index.AddImage(1, "x", image).ok());

  QueryOptions options;
  options.epsilon = 0.05f;
  auto matches = ExecuteQuery(index, image, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_FALSE(matches->empty());

  RStarTree tree(2);
  tree.Insert(Rect::Point({0.1f, 0.2f}), 7);
  EXPECT_EQ(tree.size(), 1);

  Rng rng(1);
  EXPECT_LT(rng.NextDouble(), 1.0);
  EXPECT_GT(Psnr(image, image), 1e6);
}

}  // namespace
}  // namespace walrus
