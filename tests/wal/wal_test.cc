#include "wal/wal.h"

#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace walrus {
namespace {

std::string TempWalPath(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<uint8_t> Body(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

TEST(WalTest, CreatesEmptyLogWithHeaderOnly) {
  std::string path = TempWalPath("wal_create.log");
  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.dropped_bytes, 0u);

  WalStats stats = (*wal)->Stats();
  EXPECT_EQ(stats.next_lsn, 1u);
  EXPECT_EQ(stats.synced_lsn, 0u);
  EXPECT_EQ(stats.file_bytes, kWalHeaderBytes);
}

TEST(WalTest, AppendCommitReopenReplaysEverything) {
  std::string path = TempWalPath("wal_roundtrip.log");
  {
    WalScan scan;
    auto wal = WriteAheadLog::Open(path, &scan);
    ASSERT_TRUE(wal.ok()) << wal.status();
    auto lsn1 = (*wal)->Append(WalRecordType::kInsertImage, Body({1, 2, 3}));
    ASSERT_TRUE(lsn1.ok()) << lsn1.status();
    EXPECT_EQ(*lsn1, 1u);
    auto lsn2 = (*wal)->Append(WalRecordType::kDeleteImage, Body({9}));
    ASSERT_TRUE(lsn2.ok()) << lsn2.status();
    EXPECT_EQ(*lsn2, 2u);
    ASSERT_TRUE((*wal)->Commit(*lsn2).ok());
    WalStats stats = (*wal)->Stats();
    EXPECT_EQ(stats.appended_records, 2u);
    EXPECT_GE(stats.synced_lsn, 2u);
  }
  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].lsn, 1u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kInsertImage);
  EXPECT_EQ(scan.records[0].body, Body({1, 2, 3}));
  EXPECT_EQ(scan.records[1].lsn, 2u);
  EXPECT_EQ(scan.records[1].type, WalRecordType::kDeleteImage);
  // Appends continue from the replayed watermark.
  auto lsn3 = (*wal)->Append(WalRecordType::kInsertImage, {});
  ASSERT_TRUE(lsn3.ok());
  EXPECT_EQ(*lsn3, 3u);
}

TEST(WalTest, CommitIsIdempotentAndCoversEarlierLsns) {
  std::string path = TempWalPath("wal_commit.log");
  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();
  auto lsn1 = (*wal)->Append(WalRecordType::kInsertImage, Body({1}));
  auto lsn2 = (*wal)->Append(WalRecordType::kInsertImage, Body({2}));
  ASSERT_TRUE(lsn1.ok() && lsn2.ok());
  // Committing the later LSN makes the earlier one durable too.
  ASSERT_TRUE((*wal)->Commit(*lsn2).ok());
  ASSERT_TRUE((*wal)->Commit(*lsn1).ok());
  ASSERT_TRUE((*wal)->Commit(*lsn2).ok());
  EXPECT_GE((*wal)->Stats().synced_lsn, 2u);
}

TEST(WalTest, ConcurrentAppendersGetDistinctSequentialLsns) {
  std::string path = TempWalPath("wal_concurrent.log");
  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = (*wal)->Append(WalRecordType::kInsertImage,
                                  Body({static_cast<uint8_t>(t)}));
        ASSERT_TRUE(lsn.ok()) << lsn.status();
        ASSERT_TRUE((*wal)->Commit(*lsn).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  WalStats stats = (*wal)->Stats();
  EXPECT_EQ(stats.appended_records,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.synced_lsn, static_cast<uint64_t>(kThreads * kPerThread));
  // Group commit: with 200 concurrent commits there must be far fewer
  // fsyncs than records if batching works at all -- but at least one.
  EXPECT_GE(stats.syncs, 1u);

  auto rescanned = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(rescanned.ok()) << rescanned.status();
  ASSERT_EQ(rescanned->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < rescanned->records.size(); ++i) {
    EXPECT_EQ(rescanned->records[i].lsn, i + 1);
  }
}

TEST(WalTest, ResetStartsFreshAtGivenLsn) {
  std::string path = TempWalPath("wal_reset.log");
  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsertImage, {}).ok());
  }
  ASSERT_TRUE((*wal)->Commit(5).ok());
  ASSERT_TRUE((*wal)->Reset(6).ok());

  WalStats stats = (*wal)->Stats();
  EXPECT_EQ(stats.next_lsn, 6u);
  EXPECT_EQ(stats.file_bytes, kWalHeaderBytes);

  auto lsn = (*wal)->Append(WalRecordType::kDeleteImage, Body({1}));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 6u);
  ASSERT_TRUE((*wal)->Commit(*lsn).ok());

  auto rescanned = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(rescanned.ok()) << rescanned.status();
  EXPECT_EQ(rescanned->start_lsn, 6u);
  ASSERT_EQ(rescanned->records.size(), 1u);
  EXPECT_EQ(rescanned->records[0].lsn, 6u);
}

TEST(WalTest, OversizedAppendIsRejected) {
  std::string path = TempWalPath("wal_oversize.log");
  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();
  std::vector<uint8_t> huge(kMaxWalRecordBytes + 1, 0xAB);
  auto lsn = (*wal)->Append(WalRecordType::kInsertImage, huge);
  EXPECT_EQ(lsn.status().code(), StatusCode::kInvalidArgument);
  // The reject must not burn the LSN.
  EXPECT_EQ((*wal)->Stats().next_lsn, 1u);
}

TEST(WalTest, ScanMissingFileIsError) {
  auto scan = WriteAheadLog::ScanFile(TempWalPath("wal_missing.log"));
  EXPECT_FALSE(scan.ok());
}

}  // namespace
}  // namespace walrus
