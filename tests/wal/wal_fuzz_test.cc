#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"
#include "wal/wal.h"

namespace walrus {
namespace {

/// WAL recovery fuzz suite, mirroring the wire-protocol fuzz discipline
/// (tests/server): build a valid log, mangle it every way a crash or a bad
/// disk can, and require that recovery (a) never crashes or over-reads,
/// (b) keeps exactly the records before the first invalid byte, and
/// (c) reports what it dropped.

std::string TempPath(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// A valid log: header + `n` records with bodies of varying size.
std::vector<uint8_t> BuildLog(int n, uint64_t start_lsn = 1) {
  std::vector<uint8_t> bytes = EncodeWalHeader(start_lsn);
  for (int i = 0; i < n; ++i) {
    std::vector<uint8_t> body(static_cast<size_t>(i * 7 % 23),
                              static_cast<uint8_t>(i));
    WalRecordType type =
        i % 3 == 0 ? WalRecordType::kDeleteImage : WalRecordType::kInsertImage;
    std::vector<uint8_t> record =
        EncodeWalRecord(start_lsn + static_cast<uint64_t>(i), type, body);
    bytes.insert(bytes.end(), record.begin(), record.end());
  }
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  ASSERT_TRUE(WriteFileBytes(path, bytes).ok());
}

TEST(WalFuzzTest, CleanLogScansFully) {
  std::string path = TempPath("wal_fuzz_clean.log");
  std::vector<uint8_t> bytes = BuildLog(17);
  WriteFile(path, bytes);
  auto scan = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records.size(), 17u);
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  EXPECT_EQ(scan->dropped_bytes, 0u);
}

TEST(WalFuzzTest, TornTailTruncatesToLastFullRecord) {
  std::vector<uint8_t> full = BuildLog(8);
  std::vector<uint8_t> seven = BuildLog(7);
  // Cut anywhere strictly inside the 8th record: the first 7 survive.
  for (size_t cut = seven.size() + 1; cut < full.size(); cut += 3) {
    std::string path = TempPath("wal_fuzz_torn.log");
    WriteFile(path, std::vector<uint8_t>(full.begin(),
                                         full.begin() + static_cast<long>(cut)));
    auto scan = WriteAheadLog::ScanFile(path);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": " << scan.status();
    EXPECT_EQ(scan->records.size(), 7u) << "cut=" << cut;
    EXPECT_EQ(scan->valid_bytes, seven.size()) << "cut=" << cut;
    EXPECT_EQ(scan->dropped_bytes, cut - seven.size()) << "cut=" << cut;
  }
}

TEST(WalFuzzTest, BitFlipEndsPrefixAtTheFlippedRecord) {
  std::vector<uint8_t> clean = BuildLog(10);
  std::vector<uint8_t> prefix_sizes;
  // Record boundaries: scan the clean log once to find them.
  std::vector<size_t> boundaries;  // offset past record i
  {
    size_t pos = kWalHeaderBytes;
    for (int i = 0; i < 10; ++i) {
      uint32_t body_len = static_cast<uint32_t>(clean[pos]) |
                          static_cast<uint32_t>(clean[pos + 1]) << 8 |
                          static_cast<uint32_t>(clean[pos + 2]) << 16 |
                          static_cast<uint32_t>(clean[pos + 3]) << 24;
      pos += kWalRecordOverhead + body_len;
      boundaries.push_back(pos);
    }
    ASSERT_EQ(pos, clean.size());
  }

  Rng rng(0xF1295EED);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<uint8_t> corrupted = clean;
    size_t flip = kWalHeaderBytes +
                  static_cast<size_t>(rng.NextInt(
                      0, static_cast<int>(clean.size() - kWalHeaderBytes) - 1));
    corrupted[flip] ^= static_cast<uint8_t>(1 << rng.NextInt(0, 7));

    std::string path = TempPath("wal_fuzz_flip.log");
    WriteFile(path, corrupted);
    auto scan = WriteAheadLog::ScanFile(path);
    ASSERT_TRUE(scan.ok()) << "flip at " << flip << ": " << scan.status();

    // Which record did the flip land in?
    size_t hit = 0;
    while (boundaries[hit] <= flip) ++hit;
    // Every record before it survives verbatim; the flipped one and
    // everything after are dropped (the CRC or framing no longer checks
    // out, and once framing is lost nothing later can be trusted).
    ASSERT_EQ(scan->records.size(), hit) << "flip at " << flip;
    for (size_t i = 0; i < hit; ++i) {
      EXPECT_EQ(scan->records[i].lsn, i + 1);
    }
    size_t expected_valid = hit == 0 ? kWalHeaderBytes : boundaries[hit - 1];
    EXPECT_EQ(scan->valid_bytes, expected_valid) << "flip at " << flip;
    EXPECT_EQ(scan->dropped_bytes, clean.size() - expected_valid);
  }
}

TEST(WalFuzzTest, MidRecordTruncationAtEveryOffsetNeverCrashes) {
  std::vector<uint8_t> clean = BuildLog(5);
  for (size_t len = kWalHeaderBytes; len <= clean.size(); ++len) {
    std::string path = TempPath("wal_fuzz_trunc.log");
    WriteFile(path,
              std::vector<uint8_t>(clean.begin(),
                                   clean.begin() + static_cast<long>(len)));
    auto scan = WriteAheadLog::ScanFile(path);
    ASSERT_TRUE(scan.ok()) << "len=" << len << ": " << scan.status();
    EXPECT_EQ(scan->valid_bytes + scan->dropped_bytes, len);
    // Replayable prefix only: every surviving record is sequential.
    for (size_t i = 0; i < scan->records.size(); ++i) {
      EXPECT_EQ(scan->records[i].lsn, i + 1);
    }
  }
}

TEST(WalFuzzTest, TruncatedOrCorruptHeaderIsAnError) {
  std::vector<uint8_t> clean = BuildLog(3);
  // Shorter than a header: scan must fail, not invent an empty log.
  for (size_t len = 0; len < kWalHeaderBytes; len += 5) {
    std::string path = TempPath("wal_fuzz_short.log");
    WriteFile(path,
              std::vector<uint8_t>(clean.begin(),
                                   clean.begin() + static_cast<long>(len)));
    EXPECT_FALSE(WriteAheadLog::ScanFile(path).ok()) << "len=" << len;
  }
  // A flipped bit anywhere in the header invalidates its CRC.
  for (size_t flip = 0; flip < kWalHeaderBytes; ++flip) {
    std::vector<uint8_t> corrupted = clean;
    corrupted[flip] ^= 0x40;
    std::string path = TempPath("wal_fuzz_badheader.log");
    WriteFile(path, corrupted);
    EXPECT_FALSE(WriteAheadLog::ScanFile(path).ok()) << "flip=" << flip;
  }
}

TEST(WalFuzzTest, LsnGapEndsThePrefix) {
  std::vector<uint8_t> bytes = EncodeWalHeader(1);
  auto r1 = EncodeWalRecord(1, WalRecordType::kInsertImage, {0x01});
  auto r3 = EncodeWalRecord(3, WalRecordType::kInsertImage, {0x03});
  bytes.insert(bytes.end(), r1.begin(), r1.end());
  bytes.insert(bytes.end(), r3.begin(), r3.end());  // gap: 2 missing
  std::string path = TempPath("wal_fuzz_gap.log");
  WriteFile(path, bytes);
  auto scan = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].lsn, 1u);
  EXPECT_EQ(scan->dropped_bytes, r3.size());
}

TEST(WalFuzzTest, UnknownRecordTypeEndsThePrefix) {
  std::vector<uint8_t> bytes = EncodeWalHeader(1);
  auto good = EncodeWalRecord(1, WalRecordType::kInsertImage, {0xAA});
  auto bad = EncodeWalRecord(2, static_cast<WalRecordType>(0x7F), {0xBB});
  bytes.insert(bytes.end(), good.begin(), good.end());
  bytes.insert(bytes.end(), bad.begin(), bad.end());
  std::string path = TempPath("wal_fuzz_type.log");
  WriteFile(path, bytes);
  auto scan = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].lsn, 1u);
}

TEST(WalFuzzTest, OversizedLengthPrefixEndsScanWithoutAllocating) {
  std::vector<uint8_t> bytes = EncodeWalHeader(1);
  auto good = EncodeWalRecord(1, WalRecordType::kInsertImage, {0xAA});
  bytes.insert(bytes.end(), good.begin(), good.end());
  // A fake record claiming a 4 GB body: the scan must stop at the length
  // prefix rather than trying to read (or allocate) past the file.
  size_t garbage_at = bytes.size();
  for (int i = 0; i < 32; ++i) bytes.push_back(0xFF);
  std::string path = TempPath("wal_fuzz_len.log");
  WriteFile(path, bytes);
  auto scan = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, garbage_at);
  EXPECT_EQ(scan->dropped_bytes, 32u);
}

/// End-to-end recovery property: Open() on a log with a torn tail truncates
/// the file in place and appends cleanly after the surviving prefix.
TEST(WalFuzzTest, OpenAfterTornTailTruncatesAndResumesAppending) {
  std::vector<uint8_t> full = BuildLog(6);
  std::vector<uint8_t> five = BuildLog(5);
  std::string path = TempPath("wal_fuzz_reopen.log");
  WriteFile(path, std::vector<uint8_t>(
                      full.begin(),
                      full.begin() + static_cast<long>(full.size() - 2)));

  WalScan scan;
  auto wal = WriteAheadLog::Open(path, &scan);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(scan.records.size(), 5u);
  auto lsn = (*wal)->Append(WalRecordType::kDeleteImage, {0x42});
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 6u);
  ASSERT_TRUE((*wal)->Commit(*lsn).ok());

  auto rescanned = WriteAheadLog::ScanFile(path);
  ASSERT_TRUE(rescanned.ok()) << rescanned.status();
  ASSERT_EQ(rescanned->records.size(), 6u);
  EXPECT_EQ(rescanned->records[5].lsn, 6u);
  EXPECT_EQ(rescanned->records[5].body, std::vector<uint8_t>{0x42});
  EXPECT_EQ(rescanned->valid_bytes, five.size() + rescanned->records[5].body.size() +
                                        kWalRecordOverhead);
  EXPECT_EQ(rescanned->dropped_bytes, 0u);
}

}  // namespace
}  // namespace walrus
