#include "wal/live_index.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include "core/index.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "image/dataset.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

/// Fresh (empty) per-test directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string file = entry->d_name;
      if (file != "." && file != "..") {
        std::remove((dir + "/" + file).c_str());
      }
    }
    ::closedir(d);
  }
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void ExpectIdenticalRankings(const std::vector<QueryMatch>& a,
                             const std::vector<QueryMatch>& b,
                             const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_id, b[i].image_id) << context << " rank " << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << context << " rank " << i;
    EXPECT_EQ(a[i].matching_pairs, b[i].matching_pairs)
        << context << " rank " << i;
  }
}

class LiveIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 14;
    dp.width = 64;
    dp.height = 64;
    dp.seed = 4242;
    dataset_ = GenerateDataset(dp);
  }

  /// Offline reference: one index holding exactly `ids`, built by serial
  /// AddImage (the layout the bit-identity contract is pinned against).
  std::unique_ptr<WalrusIndex> BuildOffline(const std::vector<int>& ids) {
    auto index = std::make_unique<WalrusIndex>(TestParams());
    for (int id : ids) {
      EXPECT_TRUE(index
                      ->AddImage(static_cast<uint64_t>(id), "img",
                                 dataset_[static_cast<size_t>(id)].image)
                      .ok());
    }
    return index;
  }

  void ExpectMatchesOffline(const LiveIndex& live,
                            const std::vector<int>& live_ids,
                            const QueryOptions& options,
                            const std::string& context) {
    std::unique_ptr<WalrusIndex> offline = BuildOffline(live_ids);
    SingleIndexEngine reference(*offline);
    for (size_t q = 0; q < dataset_.size(); q += 3) {
      auto expected = reference.RunQuery(dataset_[q].image, options);
      auto actual = live.RunQuery(dataset_[q].image, options);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      ExpectIdenticalRankings(*expected, *actual,
                              context + " query " + std::to_string(q));
    }
  }

  std::vector<LabeledImage> dataset_;
};

TEST_F(LiveIndexTest, StartsEmptyAndInsertsMatchOfflineBuild) {
  std::string dir = FreshDir("live_empty_insert");
  LiveIndex::Options options;
  options.merge_threshold = 0;  // keep everything in the delta
  auto live = LiveIndex::Open(dir, TestParams(), options);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ((*live)->ImageCount(), 0u);

  std::vector<int> ids;
  for (int id = 0; id < 6; ++id) {
    ASSERT_TRUE((*live)
                    ->InsertImage(static_cast<uint64_t>(id), "img",
                                  dataset_[static_cast<size_t>(id)].image)
                    .ok());
    ids.push_back(id);
  }
  EXPECT_EQ((*live)->ImageCount(), 6u);

  QueryOptions q;
  q.epsilon = 0.09f;
  ExpectMatchesOffline(**live, ids, q, "delta-only");
}

TEST_F(LiveIndexTest, SeededBasePlusInsertsAndDeletesMatchOffline) {
  std::string dir = FreshDir("live_seeded");
  std::unique_ptr<WalrusIndex> seed = BuildOffline({0, 1, 2, 3, 4, 5, 6, 7});

  LiveIndex::Options options;
  options.num_shards = 3;
  options.merge_threshold = 0;
  auto live = LiveIndex::Open(dir, TestParams(), options, seed.get());
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ((*live)->ImageCount(), 8u);

  // Mutate: delete two base images, insert three new ones.
  ASSERT_TRUE((*live)->DeleteImage(2).ok());
  ASSERT_TRUE((*live)->DeleteImage(5).ok());
  for (int id = 8; id < 11; ++id) {
    ASSERT_TRUE((*live)
                    ->InsertImage(static_cast<uint64_t>(id), "img",
                                  dataset_[static_cast<size_t>(id)].image)
                    .ok());
  }
  EXPECT_EQ((*live)->ImageCount(), 9u);

  QueryOptions q;
  q.epsilon = 0.09f;
  ExpectMatchesOffline(**live, {0, 1, 3, 4, 6, 7, 8, 9, 10}, q,
                       "base+delta+tombstones");

  // The kNN probe path composes the same way.
  QueryOptions knn;
  knn.knn_per_region = 4;
  ExpectMatchesOffline(**live, {0, 1, 3, 4, 6, 7, 8, 9, 10}, knn,
                       "knn base+delta+tombstones");
}

TEST_F(LiveIndexTest, DuplicateAndMissingIdsAreRejected) {
  std::string dir = FreshDir("live_dup");
  std::unique_ptr<WalrusIndex> seed = BuildOffline({0, 1});
  LiveIndex::Options options;
  options.merge_threshold = 0;
  auto live = LiveIndex::Open(dir, TestParams(), options, seed.get());
  ASSERT_TRUE(live.ok()) << live.status();

  // Duplicate of a base image and of a delta image.
  EXPECT_EQ((*live)->InsertImage(0, "dup", dataset_[0].image).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE((*live)->InsertImage(7, "new", dataset_[7].image).ok());
  EXPECT_EQ((*live)->InsertImage(7, "dup", dataset_[7].image).code(),
            StatusCode::kAlreadyExists);

  EXPECT_EQ((*live)->DeleteImage(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE((*live)->DeleteImage(0).ok());
  // Double delete of a tombstoned base image.
  EXPECT_EQ((*live)->DeleteImage(0).code(), StatusCode::kNotFound);
  // Re-insert under a tombstoned id: the new version lives in the delta.
  ASSERT_TRUE((*live)->InsertImage(0, "again", dataset_[2].image).ok());
  EXPECT_EQ((*live)->ImageCount(), 3u);
  // And deleting it again removes the delta copy.
  ASSERT_TRUE((*live)->DeleteImage(0).ok());
  EXPECT_EQ((*live)->ImageCount(), 2u);
}

TEST_F(LiveIndexTest, ReopenReplaysWalIntoIdenticalState) {
  std::string dir = FreshDir("live_reopen");
  std::unique_ptr<WalrusIndex> seed = BuildOffline({0, 1, 2, 3});
  LiveIndex::Options options;
  options.num_shards = 2;
  options.merge_threshold = 0;
  {
    auto live = LiveIndex::Open(dir, TestParams(), options, seed.get());
    ASSERT_TRUE(live.ok()) << live.status();
    ASSERT_TRUE((*live)->InsertImage(8, "img", dataset_[8].image).ok());
    ASSERT_TRUE((*live)->InsertImage(9, "img", dataset_[9].image).ok());
    ASSERT_TRUE((*live)->DeleteImage(1).ok());
    // No merge, no clean shutdown handshake: everything past the seed
    // lives only in the WAL when the process "dies" here.
  }
  auto live = LiveIndex::Open(dir, TestParams(), options);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ((*live)->ImageCount(), 5u);
  IngestStats stats = (*live)->IngestStatsSnapshot();
  EXPECT_EQ(stats.delta_images, 2u);
  EXPECT_EQ(stats.tombstones, 1u);

  QueryOptions q;
  q.epsilon = 0.09f;
  ExpectMatchesOffline(**live, {0, 2, 3, 8, 9}, q, "after replay");
}

TEST_F(LiveIndexTest, MergeFoldsDeltaAndSurvivesReopen) {
  std::string dir = FreshDir("live_merge");
  std::unique_ptr<WalrusIndex> seed = BuildOffline({0, 1, 2, 3, 4});
  LiveIndex::Options options;
  options.num_shards = 2;
  options.merge_threshold = 0;  // merge manually below
  auto live = LiveIndex::Open(dir, TestParams(), options, seed.get());
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_TRUE((*live)->InsertImage(10, "img", dataset_[10].image).ok());
  ASSERT_TRUE((*live)->DeleteImage(3).ok());
  EXPECT_EQ((*live)->generation(), 1u);

  ASSERT_TRUE((*live)->Merge().ok());
  EXPECT_EQ((*live)->generation(), 2u);
  IngestStats stats = (*live)->IngestStatsSnapshot();
  EXPECT_EQ(stats.delta_images, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.merges, 1u);
  // The WAL restarted past the folded records.
  EXPECT_EQ(stats.wal_file_bytes, kWalHeaderBytes);

  QueryOptions q;
  q.epsilon = 0.09f;
  ExpectMatchesOffline(**live, {0, 1, 2, 4, 10}, q, "after merge");

  // A second merge with nothing pending is a no-op.
  ASSERT_TRUE((*live)->Merge().ok());
  EXPECT_EQ((*live)->generation(), 2u);

  // Reopen from the merged base (empty WAL) and keep mutating.
  live->reset();
  auto reopened = LiveIndex::Open(dir, TestParams(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->generation(), 2u);
  EXPECT_EQ((*reopened)->ImageCount(), 5u);
  ASSERT_TRUE((*reopened)->InsertImage(11, "img", dataset_[11].image).ok());
  ExpectMatchesOffline(**reopened, {0, 1, 2, 4, 10, 11}, q,
                       "post-merge reopen + insert");
}

TEST_F(LiveIndexTest, BackgroundMergeTriggersAtThreshold) {
  std::string dir = FreshDir("live_auto_merge");
  LiveIndex::Options options;
  options.merge_threshold = 3;
  auto live = LiveIndex::Open(dir, TestParams(), options);
  ASSERT_TRUE(live.ok()) << live.status();
  for (int id = 0; id < 5; ++id) {
    ASSERT_TRUE((*live)
                    ->InsertImage(static_cast<uint64_t>(id), "img",
                                  dataset_[static_cast<size_t>(id)].image)
                    .ok());
  }
  (*live)->WaitForMerge();
  EXPECT_GE((*live)->IngestStatsSnapshot().merges, 1u);
  EXPECT_GE((*live)->generation(), 2u);
  EXPECT_EQ((*live)->ImageCount(), 5u);

  QueryOptions q;
  q.epsilon = 0.09f;
  ExpectMatchesOffline(**live, {0, 1, 2, 3, 4}, q, "after auto merge");
}

TEST_F(LiveIndexTest, ResultCacheIsInvalidatedByMutations) {
  std::string dir = FreshDir("live_cache");
  std::unique_ptr<WalrusIndex> seed = BuildOffline({0, 1, 2});
  LiveIndex::Options options;
  options.cache_capacity = 8;
  options.merge_threshold = 0;
  auto live = LiveIndex::Open(dir, TestParams(), options, seed.get());
  ASSERT_TRUE(live.ok()) << live.status();

  QueryOptions q;
  q.epsilon = 0.09f;
  QueryStats stats;
  ASSERT_TRUE((*live)->RunQuery(dataset_[0].image, q, &stats).ok());
  EXPECT_FALSE(stats.result_cache_hit);
  ASSERT_TRUE((*live)->RunQuery(dataset_[0].image, q, &stats).ok());
  EXPECT_TRUE(stats.result_cache_hit);

  // The mutation wipes the cache; the next query recomputes against the
  // new live set and must see the inserted image.
  ASSERT_TRUE((*live)->InsertImage(0xB0, "img", dataset_[0].image).ok());
  auto matches = (*live)->RunQuery(dataset_[0].image, q, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_FALSE(stats.result_cache_hit);
  bool found = false;
  for (const QueryMatch& m : *matches) found |= m.image_id == 0xB0;
  EXPECT_TRUE(found) << "post-insert query missed the new image";
}

TEST_F(LiveIndexTest, ManifestRoundTripAndCorruptionDetection) {
  std::string dir = FreshDir("live_manifest");
  EXPECT_EQ(ReadLiveManifest(dir).status().code(), StatusCode::kNotFound);

  LiveManifest manifest;
  manifest.generation = 7;
  manifest.last_lsn = 123;
  manifest.num_shards = 4;
  manifest.paged = true;
  ASSERT_TRUE(WriteLiveManifest(dir, manifest).ok());
  auto read = ReadLiveManifest(dir);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->generation, 7u);
  EXPECT_EQ(read->last_lsn, 123u);
  EXPECT_EQ(read->num_shards, 4u);
  EXPECT_TRUE(read->paged);

  // A flipped byte breaks the checksum.
  std::string path = dir + "/MANIFEST";
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 9, SEEK_SET);
  std::fputc(0x5A, f);
  std::fclose(f);
  EXPECT_EQ(ReadLiveManifest(dir).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace walrus
