#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "image/dataset.h"
#include "wal/live_index.h"

namespace walrus {
namespace {

/// SIGKILL crash-recovery property test. A forked child ingests images
/// into a live index and records each *acknowledged* mutation in an ack
/// file (fsync'd append, so the ack itself is durable evidence). The
/// parent kills the child with SIGKILL at an arbitrary point -- possibly
/// mid-append, mid-fsync, or mid-merge -- and then reopens the directory.
/// The properties:
///
///   1. Recovery always succeeds: a torn WAL tail or a half-finished merge
///      never corrupts the directory.
///   2. Durability: every acknowledged insert is present after recovery
///      (InsertImage returned OK => the mutation survives the crash).
///   3. Bounded anticipation: at most one unacknowledged insert may
///      surface (the single in-flight record the kill interrupted).
///   4. Bit-identity: the recovered engine ranks exactly like an offline
///      index rebuilt from the recovered live set.

constexpr int kChildInserts = 28;
constexpr uint64_t kFirstId = 100;

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

std::vector<LabeledImage> MakeDataset() {
  DatasetParams dp;
  dp.num_images = 10;
  dp.width = 64;
  dp.height = 64;
  dp.seed = 987;
  return GenerateDataset(dp);
}

/// Image every inserted id maps to (deterministic, shared by child and
/// parent so the parent can rebuild the offline reference).
const ImageF& ImageForId(const std::vector<LabeledImage>& dataset,
                         uint64_t id) {
  return dataset[static_cast<size_t>(id) % dataset.size()].image;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::string command = "rm -rf " + dir;
  if (std::system(command.c_str()) != 0) ADD_FAILURE() << "cleanup failed";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Child process body: ingest until killed. Never returns normally unless
/// it finishes every insert first. Uses only async-crash-safe plumbing (no
/// gtest) and _exit so no parent state is double-flushed.
void ChildIngestLoop(const std::string& dir, const std::string& ack_path) {
  std::vector<LabeledImage> dataset = MakeDataset();
  LiveIndex::Options options;
  options.num_shards = 2;
  options.merge_threshold = 6;  // crash windows include background merges
  auto live = LiveIndex::Open(dir, TestParams(), options);
  if (!live.ok()) _exit(3);
  int ack_fd = ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _exit(4);
  for (int i = 0; i < kChildInserts; ++i) {
    uint64_t id = kFirstId + static_cast<uint64_t>(i);
    Status status = (*live)->InsertImage(id, "crash", ImageForId(dataset, id));
    if (!status.ok()) _exit(5);
    // The insert is durable; make the ack durable too before moving on.
    char line[32];
    int n = std::snprintf(line, sizeof(line), "%llu\n",
                          static_cast<unsigned long long>(id));
    if (::write(ack_fd, line, static_cast<size_t>(n)) != n) _exit(6);
    if (::fsync(ack_fd) != 0) _exit(7);
  }
  (*live)->WaitForMerge();
  _exit(0);
}

std::vector<uint64_t> ReadAcks(const std::string& ack_path) {
  std::vector<uint64_t> acks;
  FILE* f = std::fopen(ack_path.c_str(), "r");
  if (f == nullptr) return acks;
  unsigned long long id = 0;
  while (std::fscanf(f, "%llu", &id) == 1) acks.push_back(id);
  std::fclose(f);
  return acks;
}

class WalCrashRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(WalCrashRecoveryTest, SigkillMidIngestLosesNoAcknowledgedMutation) {
  const int kill_after_acks = GetParam();
  std::string dir =
      FreshDir("wal_crash_" + std::to_string(kill_after_acks));
  std::string ack_path = dir + ".acks";
  std::remove(ack_path.c_str());

  pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    ChildIngestLoop(dir, ack_path);  // never returns
  }

  // Kill as soon as the child has acknowledged enough inserts. The exact
  // instant is scheduler noise, which is the point: the kill lands at an
  // arbitrary offset inside append/fsync/merge.
  for (;;) {
    if (static_cast<int>(ReadAcks(ack_path).size()) >= kill_after_acks) break;
    int wstatus = 0;
    pid_t done = ::waitpid(child, &wstatus, WNOHANG);
    if (done == child) {
      // Child finished everything before we could kill it; the run
      // degenerates to clean-shutdown recovery, which must also hold.
      ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
          << "child failed with status " << wstatus;
      child = -1;
      break;
    }
    ::usleep(2000);
  }
  if (child > 0) {
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child was not killed";
  }

  std::vector<uint64_t> acked = ReadAcks(ack_path);
  ASSERT_GE(static_cast<int>(acked.size()),
            child == -1 ? kChildInserts : kill_after_acks);

  // Property 1: recovery succeeds.
  LiveIndex::Options options;
  options.num_shards = 2;
  options.merge_threshold = 0;  // audit the recovered state as-is
  auto recovered = LiveIndex::Open(dir, TestParams(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();

  // Property 2: every acknowledged insert survived.
  for (uint64_t id : acked) {
    EXPECT_TRUE((*recovered)->ContainsImage(id))
        << "acked insert " << id << " lost by the crash";
  }

  // Property 3: at most the single in-flight insert surfaces unacked.
  std::vector<uint64_t> live_ids;
  for (int i = 0; i < kChildInserts; ++i) {
    uint64_t id = kFirstId + static_cast<uint64_t>(i);
    if ((*recovered)->ContainsImage(id)) live_ids.push_back(id);
  }
  EXPECT_LE(live_ids.size(), acked.size() + 1);
  EXPECT_EQ((*recovered)->ImageCount(), live_ids.size());

  // Property 4: the recovered engine ranks bit-identically to an offline
  // rebuild of the recovered live set.
  std::vector<LabeledImage> dataset = MakeDataset();
  WalrusIndex offline(TestParams());
  for (uint64_t id : live_ids) {
    ASSERT_TRUE(offline.AddImage(id, "crash", ImageForId(dataset, id)).ok());
  }
  SingleIndexEngine reference(offline);
  QueryOptions q;
  q.epsilon = 0.09f;
  for (size_t i = 0; i < dataset.size(); i += 2) {
    auto expected = reference.RunQuery(dataset[i].image, q);
    auto actual = (*recovered)->RunQuery(dataset[i].image, q);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(expected->size(), actual->size()) << "query " << i;
    for (size_t r = 0; r < expected->size(); ++r) {
      EXPECT_EQ((*expected)[r].image_id, (*actual)[r].image_id)
          << "query " << i << " rank " << r;
      EXPECT_EQ((*expected)[r].similarity, (*actual)[r].similarity)
          << "query " << i << " rank " << r;
    }
  }
}

/// Three kill points: early (WAL barely started), mid (first background
/// merge in flight), late (several merges done). Values are ack counts.
INSTANTIATE_TEST_SUITE_P(KillPoints, WalCrashRecoveryTest,
                         ::testing::Values(2, 7, 16));

}  // namespace
}  // namespace walrus
