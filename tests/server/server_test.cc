// Loopback integration tests for walrusd: a real server over real sockets,
// serving a real index. Covers the acceptance criteria of the server
// subsystem: concurrent correctness (remote results byte-identical to
// in-process ExecuteQuery), bounded admission (OVERLOADED), per-request
// deadlines, protocol robustness (malformed frames never crash the
// process), and graceful drain on shutdown.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/socket.h"
#include "core/index.h"
#include "core/query.h"
#include "core/sharded_index.h"
#include "image/dataset.h"
#include "server/client.h"
#include "server/server.h"
#include "wal/live_index.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

/// Serializes matches the way the wire does, for byte-level comparison.
std::vector<uint8_t> MatchBytes(const std::vector<QueryMatch>& matches) {
  BinaryWriter writer;
  EncodeMatches(matches, &writer);
  return writer.TakeBuffer();
}

class WalrusServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 12;
    dp.width = 64;
    dp.height = 64;
    dp.seed = 99;
    dataset_ = GenerateDataset(dp);
    index_ = std::make_unique<WalrusIndex>(TestParams());
    for (const LabeledImage& scene : dataset_) {
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(scene.id), "img",
                                 scene.image)
                      .ok());
    }
  }

  std::vector<LabeledImage> dataset_;
  std::unique_ptr<WalrusIndex> index_;
};

TEST_F(WalrusServerTest, PingAndStats) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Ping().ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->requests_by_opcode[static_cast<int>(Opcode::kPing)], 2u);
  EXPECT_EQ(stats->connections_accepted, 1u);
  EXPECT_GT(stats->bytes_in, 0u);
  EXPECT_GT(stats->bytes_out, 0u);
  server.Stop();
}

// The headline acceptance test: >= 8 concurrent client threads, every
// remote result byte-identical to the in-process pipeline.
TEST_F(WalrusServerTest, ConcurrentQueriesMatchInProcessByteForByte) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  QueryOptions options;
  options.epsilon = 0.085f;
  options.collect_pairs = true;  // exercise the full payload

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 3;
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto client = WalrusClient::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const ImageF& image =
              dataset_[(t + q * kThreads) % dataset_.size()].image;
          bool scene_query = (t + q) % 2 == 1;
          Result<RemoteQueryResult> remote =
              Status::Internal("unreachable");
          Result<std::vector<QueryMatch>> local =
              Status::Internal("unreachable");
          if (scene_query) {
            PixelRect rect;
            rect.x = 0;
            rect.y = 0;
            rect.width = image.width();
            rect.height = image.height() / 2;
            remote = client->SceneQuery(image, rect, options);
            local = ExecuteSceneQuery(*index_, image, rect, options);
          } else {
            remote = client->Query(image, options);
            local = ExecuteQuery(*index_, image, options);
          }
          if (!remote.ok() || !local.ok() ||
              MatchBytes(remote->matches) != MatchBytes(*local)) {
            ++failures;
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.requests_by_opcode[static_cast<int>(Opcode::kQuery)] +
                stats.requests_by_opcode[static_cast<int>(
                    Opcode::kSceneQuery)],
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  server.Stop();
}

// Works identically against the paged (disk-resident) backend, which is the
// deployment walrusd exists for.
TEST_F(WalrusServerTest, ServesPagedIndexConcurrently) {
  std::string prefix = ::testing::TempDir() + "/walrus_server_paged";
  ASSERT_TRUE(index_->SavePaged(prefix).ok());
  auto paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok());

  WalrusServer server(*paged, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  QueryOptions options;
  options.epsilon = 0.085f;

  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        auto client = WalrusClient::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        const ImageF& image = dataset_[t % dataset_.size()].image;
        auto remote = client->Query(image, options);
        auto local = ExecuteQuery(*index_, image, options);
        if (!remote.ok() || !local.ok() ||
            MatchBytes(remote->matches) != MatchBytes(*local)) {
          ++failures;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
}

// Requests beyond the admission bound are rejected with OVERLOADED
// (Unavailable) instead of queueing. One worker stalled 200ms + bound 2:
// a pipelined burst of 10 pings can admit at most a handful.
TEST_F(WalrusServerTest, RejectsBeyondAdmissionBound) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_pending = 2;
  options.execution_delay_ms = 200;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  constexpr int kBurst = 10;
  for (uint64_t i = 0; i < kBurst; ++i) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, i, {});
    ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  }

  int ok_count = 0;
  int overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    ASSERT_TRUE(
        ReadFull(fd->get(), header_bytes.data(), header_bytes.size()).ok());
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes.data(), &header).ok());
    std::vector<uint8_t> body(header.body_length);
    ASSERT_TRUE(ReadFull(fd->get(), body.data(), body.size()).ok());
    uint8_t trailer[kFrameTrailerBytes];
    ASSERT_TRUE(ReadFull(fd->get(), trailer, sizeof(trailer)).ok());
    BinaryReader reader(body);
    Status remote;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &remote).ok());
    if (remote.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(remote.code(), StatusCode::kUnavailable) << remote;
      EXPECT_EQ(remote.message().rfind("OVERLOADED", 0), 0u) << remote;
      ++overloaded;
    }
  }
  // The reader thread floods the admission queue far faster than the
  // stalled worker drains it: at least the burst minus bound minus one
  // in-execution request must have been rejected.
  EXPECT_GE(ok_count, 1);
  EXPECT_GE(overloaded, kBurst - options.max_pending - 2);
  EXPECT_EQ(server.Snapshot().rejected_overload,
            static_cast<uint64_t>(overloaded));
  server.Stop();
}

// A request that out-waits its deadline in the queue is answered with
// DeadlineExceeded rather than executed.
TEST_F(WalrusServerTest, ExpiresQueuedRequestsPastDeadline) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_pending = 8;
  options.execution_delay_ms = 150;
  options.deadline_ms = 50;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  for (uint64_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, i, {});
    ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  }
  int expired = 0;
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    ASSERT_TRUE(
        ReadFull(fd->get(), header_bytes.data(), header_bytes.size()).ok());
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes.data(), &header).ok());
    std::vector<uint8_t> body(header.body_length);
    ASSERT_TRUE(ReadFull(fd->get(), body.data(), body.size()).ok());
    uint8_t trailer[kFrameTrailerBytes];
    ASSERT_TRUE(ReadFull(fd->get(), trailer, sizeof(trailer)).ok());
    BinaryReader reader(body);
    Status remote;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &remote).ok());
    if (remote.code() == StatusCode::kDeadlineExceeded) ++expired;
  }
  // The first request executes (150ms); the two behind it blow their 50ms
  // deadline waiting for the single worker.
  EXPECT_GE(expired, 2);
  EXPECT_EQ(server.Snapshot().deadline_exceeded,
            static_cast<uint64_t>(expired));
  server.Stop();
}

// Error replies carry the failing request's context (opcode + id), the
// same discipline as ExecuteQueryBatch's per-query annotation.
TEST_F(WalrusServerTest, ErrorRepliesNameTheRequest) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // 4x4 is smaller than min_window: the query pipeline rejects it.
  ImageF tiny(4, 4, 3, ColorSpace::kRGB);
  auto result = client->Query(tiny, QueryOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("QUERY request"),
            std::string::npos)
      << result.status();
  server.Stop();
}

// A v4 client (previous protocol revision) is still served: the server
// decodes the v4 body, runs the query, and answers in v4 — the response
// frame is stamped v4 and carries no v5 stats tail.
TEST_F(WalrusServerTest, V4QueryFrameIsAnsweredInV4) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());

  QueryOptions options;
  options.epsilon = 0.085f;
  BinaryWriter body;
  EncodeQueryOptions(options, &body, /*version=*/4);
  EncodeImage(dataset_[0].image, &body);
  std::vector<uint8_t> frame =
      EncodeFrame(Opcode::kQuery, 41, body.TakeBuffer(), /*version=*/4);
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());

  std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
  ASSERT_TRUE(
      ReadFull(fd->get(), header_bytes.data(), header_bytes.size()).ok());
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(header_bytes.data(), &header).ok());
  EXPECT_EQ(header.version, 4);
  EXPECT_EQ(header.request_id, 41u);
  std::vector<uint8_t> response(header.body_length);
  ASSERT_TRUE(ReadFull(fd->get(), response.data(), response.size()).ok());
  uint8_t trailer[kFrameTrailerBytes];
  ASSERT_TRUE(ReadFull(fd->get(), trailer, sizeof(trailer)).ok());

  BinaryReader reader(response);
  Status remote;
  ASSERT_TRUE(DecodeResponseStatus(&reader, &remote).ok());
  ASSERT_TRUE(remote.ok()) << remote;
  auto matches = DecodeMatches(&reader);
  ASSERT_TRUE(matches.ok()) << matches.status();
  auto stats = DecodeQueryStats(&reader, /*version=*/4);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The v4 decode consumed the whole body: no v5 tail was transmitted.
  EXPECT_EQ(reader.remaining(), 0u);
  // And the query actually ran: it found the indexed copy of the image.
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, static_cast<uint64_t>(dataset_[0].id));
  server.Stop();
}

// ---- Protocol robustness: the malformed-frame suite ---------------------

class MalformedFrameTest : public WalrusServerTest {
 protected:
  void StartServer() {
    server_ = std::make_unique<WalrusServer>(*index_, ServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  Result<UniqueFd> Connect() {
    return ConnectTcp("127.0.0.1", server_->port());
  }

  /// Reads one response frame; returns the embedded status, or the
  /// transport error when the server closed the connection instead.
  Status ReadResponseStatus(int fd) {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    Status read = ReadFull(fd, header_bytes.data(), header_bytes.size());
    if (!read.ok()) return read;
    FrameHeader header;
    Status parsed = DecodeFrameHeader(header_bytes.data(), &header);
    if (!parsed.ok()) return parsed;
    std::vector<uint8_t> body(header.body_length);
    if (!body.empty()) {
      read = ReadFull(fd, body.data(), body.size());
      if (!read.ok()) return read;
    }
    uint8_t trailer[kFrameTrailerBytes];
    read = ReadFull(fd, trailer, sizeof(trailer));
    if (!read.ok()) return read;
    BinaryReader reader(body);
    Status remote;
    Status decoded = DecodeResponseStatus(&reader, &remote);
    if (!decoded.ok()) return decoded;
    return remote;
  }

  /// The server is still alive and serving after whatever was thrown at it.
  void ExpectServerAlive() {
    auto client = WalrusClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    EXPECT_TRUE(client->Ping().ok());
  }

  std::unique_ptr<WalrusServer> server_;
};

TEST_F(MalformedFrameTest, BadMagicGetsErrorAndClose) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 1, {});
  frame[0] ^= 0xFF;
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  Status response = ReadResponseStatus(fd->get());
  EXPECT_EQ(response.code(), StatusCode::kCorruption) << response;
  // Connection is closed after the error reply (framing was lost).
  uint8_t byte;
  EXPECT_FALSE(ReadFull(fd->get(), &byte, 1).ok());
  ExpectServerAlive();
}

TEST_F(MalformedFrameTest, BadVersionKeepsConnectionUsable) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 5, {});
  frame[4] = 9;  // unsupported version; CRC recomputed to keep framing valid
  uint32_t crc = FrameCrc(frame.data(), {});
  for (int i = 0; i < 4; ++i) {
    frame[kFrameHeaderBytes + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  Status response = ReadResponseStatus(fd->get());
  EXPECT_EQ(response.code(), StatusCode::kInvalidArgument) << response;

  // Same connection, valid frame: still served.
  std::vector<uint8_t> good = EncodeFrame(Opcode::kPing, 6, {});
  ASSERT_TRUE(WriteFull(fd->get(), good.data(), good.size()).ok());
  EXPECT_TRUE(ReadResponseStatus(fd->get()).ok());
}

TEST_F(MalformedFrameTest, CorruptedCrcKeepsConnectionUsable) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 7, {});
  frame.back() ^= 0xFF;  // corrupt the CRC trailer
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  Status response = ReadResponseStatus(fd->get());
  EXPECT_EQ(response.code(), StatusCode::kCorruption) << response;

  std::vector<uint8_t> good = EncodeFrame(Opcode::kPing, 8, {});
  ASSERT_TRUE(WriteFull(fd->get(), good.data(), good.size()).ok());
  EXPECT_TRUE(ReadResponseStatus(fd->get()).ok());
  EXPECT_GE(server_->Snapshot().protocol_errors, 1u);
}

TEST_F(MalformedFrameTest, OversizedBodyLengthGetsErrorAndClose) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 9, {});
  uint32_t huge = kMaxBodyBytes + 1;
  for (int i = 0; i < 4; ++i) {
    frame[16 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  Status response = ReadResponseStatus(fd->get());
  EXPECT_EQ(response.code(), StatusCode::kInvalidArgument) << response;
  uint8_t byte;
  EXPECT_FALSE(ReadFull(fd->get(), &byte, 1).ok());
  ExpectServerAlive();
}

TEST_F(MalformedFrameTest, TruncatedFrameClosesCleanly) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kQuery, 10,
                                           std::vector<uint8_t>(100, 0xAB));
  // Send only half the frame, then hang up.
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size() / 2).ok());
  fd->Close();  // hang up mid-frame
  ExpectServerAlive();
}

TEST_F(MalformedFrameTest, UnknownOpcodeErrorsTheRequestOnly) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> frame =
      EncodeFrame(static_cast<Opcode>(200), 11, {});
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  Status response = ReadResponseStatus(fd->get());
  EXPECT_EQ(response.code(), StatusCode::kInvalidArgument) << response;

  std::vector<uint8_t> good = EncodeFrame(Opcode::kPing, 12, {});
  ASSERT_TRUE(WriteFull(fd->get(), good.data(), good.size()).ok());
  EXPECT_TRUE(ReadResponseStatus(fd->get()).ok());
}

TEST_F(MalformedFrameTest, UndecodableQueryBodyErrorsTheRequestOnly) {
  StartServer();
  auto fd = Connect();
  ASSERT_TRUE(fd.ok());
  // Valid frame, garbage query body: checksums fine, decodes to nonsense.
  std::vector<uint8_t> garbage(64, 0xEE);
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kQuery, 13, garbage);
  ASSERT_TRUE(WriteFull(fd->get(), frame.data(), frame.size()).ok());
  Status response = ReadResponseStatus(fd->get());
  EXPECT_FALSE(response.ok());

  std::vector<uint8_t> good = EncodeFrame(Opcode::kPing, 14, {});
  ASSERT_TRUE(WriteFull(fd->get(), good.data(), good.size()).ok());
  EXPECT_TRUE(ReadResponseStatus(fd->get()).ok());
}

// Seeded fuzz-ish loop: random byte blobs thrown at fresh connections. The
// server must reply with a protocol error or close cleanly -- and above
// all, never crash (ASan/UBSan make this bite in scripts/check.sh).
TEST_F(MalformedFrameTest, RandomByteFramesNeverCrashTheServer) {
  StartServer();
  Rng rng(20260806);
  for (int round = 0; round < 60; ++round) {
    auto fd = Connect();
    ASSERT_TRUE(fd.ok()) << fd.status();
    int blobs = rng.NextInt(1, 3);
    for (int b = 0; b < blobs; ++b) {
      std::vector<uint8_t> blob(rng.NextInt(1, 256));
      for (uint8_t& byte : blob) {
        byte = static_cast<uint8_t>(rng.NextBounded(256));
      }
      // Half the rounds lead with a valid magic so the fuzz also reaches
      // the post-magic validation paths.
      if (round % 2 == 0 && blob.size() >= 4) {
        blob[0] = 0x52;
        blob[1] = 0x4C;
        blob[2] = 0x41;
        blob[3] = 0x57;
      }
      if (!WriteFull(fd->get(), blob.data(), blob.size()).ok()) break;
    }
    // Drain whatever the server answers until it closes or goes quiet;
    // all that matters is that the next connection still works.
    ShutdownRead(fd->get());
  }
  ExpectServerAlive();
  server_->Stop();
}

// ---- Graceful shutdown --------------------------------------------------

// A request in flight when shutdown starts still gets its response
// (drain), and the SHUTDOWN opcode itself is acknowledged.
TEST_F(WalrusServerTest, GracefulShutdownDrainsInFlightRequests) {
  ServerOptions options;
  options.num_workers = 2;
  options.execution_delay_ms = 150;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  // Client A: a slow ping that will be mid-execution during shutdown.
  std::atomic<bool> got_response{false};
  std::thread slow([&] {
    auto client = WalrusClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) return;
    if (client->Ping().ok()) got_response.store(true);
  });
  // Give the slow ping time to be admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Client B: SHUTDOWN. The server acknowledges, then drains A's request.
  auto admin = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(admin.ok());
  EXPECT_TRUE(admin->Shutdown().ok());

  server.Wait();  // returns only after the drain
  slow.join();
  EXPECT_TRUE(got_response.load())
      << "in-flight request was dropped during graceful shutdown";
}

// ---- Observability ------------------------------------------------------

// A traced QUERY returns a span tree whose top-level spans account for
// nearly all of the query's measured wall time (the observability
// acceptance bar: untracked time under 5%).
TEST_F(WalrusServerTest, TracedQuerySpansCoverQueryWallTime) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  QueryOptions options;
  options.collect_trace = true;
  auto result = client->Query(dataset_[0].image, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const QueryStats& stats = result->stats;
  ASSERT_FALSE(stats.spans.empty());
  // extract must be present and carry the wavelet/cluster children.
  bool found_extract = false;
  for (const TraceSpan& span : stats.spans) {
    if (span.name != "extract") continue;
    found_extract = true;
    bool wavelet = false;
    bool cluster = false;
    for (const TraceSpan& child : span.children) {
      if (child.name == "wavelet") wavelet = true;
      if (child.name == "cluster") cluster = true;
    }
    EXPECT_TRUE(wavelet) << "extract span lost its wavelet child";
    EXPECT_TRUE(cluster) << "extract span lost its cluster child";
  }
  EXPECT_TRUE(found_extract);

  ASSERT_GT(stats.seconds, 0.0);
  double covered = TraceCoverageSeconds(stats.spans);
  EXPECT_GE(covered, 0.95 * stats.seconds)
      << "spans cover " << covered << "s of " << stats.seconds
      << "s measured (" << RenderTraceText(stats.spans) << ")";
  // Spans also never claim more than the whole query (small slack for
  // clock granularity).
  EXPECT_LE(covered, stats.seconds * 1.001 + 1e-6);

  // The per-stage scalar timings mirror the span tree.
  EXPECT_GT(stats.extract_seconds, 0.0);

  // An untraced query stays span-free (no silent overhead).
  QueryOptions untraced;
  auto plain = client->Query(dataset_[0].image, untraced);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_TRUE(plain->stats.spans.empty());
  server.Stop();
}

// METRICS returns the registry snapshot, and query-path counters move when
// queries execute.
TEST_F(WalrusServerTest, MetricsOpcodeReflectsQueryWork) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  auto before = client->Metrics();
  ASSERT_TRUE(before.ok()) << before.status();

  QueryOptions options;
  ASSERT_TRUE(client->Query(dataset_[0].image, options).ok());
  ASSERT_TRUE(client->Query(dataset_[1].image, options).ok());

  auto after = client->Metrics();
  ASSERT_TRUE(after.ok()) << after.status();

  auto counter_delta = [&](const std::string& name) -> int64_t {
    const MetricValue* b = before->Find(name);
    const MetricValue* a = after->Find(name);
    uint64_t bv = b != nullptr ? b->counter : 0;
    uint64_t av = a != nullptr ? a->counter : 0;
    return static_cast<int64_t>(av) - static_cast<int64_t>(bv);
  };
  EXPECT_EQ(counter_delta("walrus.query.count"), 2);
  EXPECT_GT(counter_delta("walrus.extract.count"), 0);
  EXPECT_GT(counter_delta("walrus.wavelet.plane_computations"), 0);
  EXPECT_GT(counter_delta("walrus.birch.runs"), 0);
  EXPECT_GT(counter_delta("walrus.rstar.range_probes"), 0);
  EXPECT_GT(counter_delta("walrus.match.pairs_scored"), 0);

  // The request-latency histogram in the registry advanced too.
  const MetricValue* latency = after->Find("walrus.server.request_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->type, MetricType::kHistogram);
  const MetricValue* latency_before =
      before->Find("walrus.server.request_seconds");
  uint64_t before_count =
      latency_before != nullptr ? latency_before->count : 0;
  EXPECT_GT(latency->count, before_count);
  server.Stop();
}

TEST_F(WalrusServerTest, StopIsIdempotentAndDestructorSafe) {
  auto server = std::make_unique<WalrusServer>(*index_, ServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  server->Stop();
  server->Stop();      // second stop is a no-op
  server.reset();      // destructor after explicit stop: fine
  // And a never-started server destructs cleanly too.
  WalrusServer unstarted(*index_, ServerOptions{});
}

// ---- Pipelining conformance ---------------------------------------------

// The pipelining acceptance test: K requests in flight on one connection,
// responses in request order and byte-identical to serial execution.
TEST_F(WalrusServerTest, PipelinedQueriesArriveInOrderAndMatchSerial) {
  ServerOptions options;
  options.num_workers = 4;  // out-of-order completion is the point
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  QueryOptions query_options;
  query_options.epsilon = 0.085f;
  query_options.collect_pairs = true;

  constexpr int kPipelined = 9;
  std::vector<ImageF> images;
  for (int q = 0; q < kPipelined; ++q) {
    images.push_back(dataset_[q % dataset_.size()].image);
  }
  // QueryPipelined fails with Corruption if any response id comes back
  // out of request order.
  auto remote = client->QueryPipelined(images, query_options);
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_EQ(remote->size(), images.size());
  for (int q = 0; q < kPipelined; ++q) {
    auto local = ExecuteQuery(*index_, images[q], query_options);
    ASSERT_TRUE(local.ok()) << local.status();
    EXPECT_EQ(MatchBytes((*remote)[q].matches), MatchBytes(*local))
        << "pipelined query " << q << " diverged from serial execution";
  }
  server.Stop();
}

// Mixed opcodes (PING / QUERY / STATS) pipelined on one connection still
// come back strictly in request order, even though a PING behind a QUERY
// finishes executing first.
TEST_F(WalrusServerTest, PipelinedMixedOpcodesStayOrdered) {
  ServerOptions options;
  options.num_workers = 4;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  QueryOptions query_options;
  std::vector<uint64_t> ids;
  for (int round = 0; round < 4; ++round) {
    auto query_id = client->SendQuery(dataset_[round].image, query_options);
    ASSERT_TRUE(query_id.ok()) << query_id.status();
    ids.push_back(*query_id);
    auto ping_id = client->SendPing();
    ASSERT_TRUE(ping_id.ok()) << ping_id.status();
    ids.push_back(*ping_id);
    auto stats_id = client->SendStats();
    ASSERT_TRUE(stats_id.ok()) << stats_id.status();
    ids.push_back(*stats_id);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    auto response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->request_id, ids[i])
        << "response " << i << " out of order";
    EXPECT_TRUE(response->status.ok()) << response->status;
  }
  server.Stop();
}

// Pipelined mutations against a live engine: with a single worker the
// requests execute serially in arrival order, so INSERT -> QUERY ->
// DELETE -> QUERY observes the insert exactly in between.
TEST_F(WalrusServerTest, PipelinedMutationsExecuteInArrivalOrder) {
  std::string dir = ::testing::TempDir() + "/walrus_server_pipeline_wal";
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  LiveIndex::Options live_options;
  live_options.merge_threshold = 0;
  auto live = LiveIndex::Open(dir, TestParams(), live_options, index_.get());
  ASSERT_TRUE(live.ok()) << live.status();

  ServerOptions options;
  options.num_workers = 1;  // serial execution: pipelined order IS the order
  WalrusServer server(**live, live->get(), options);
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  const uint64_t new_id = 9000;
  const ImageF& novel = dataset_[0].image;
  QueryOptions query_options;
  query_options.epsilon = 0.085f;

  std::vector<uint64_t> ids;
  auto push = [&](Result<uint64_t> id) {
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  };
  push(client->SendInsertImage(new_id, "novel", novel));
  push(client->SendQuery(novel, query_options));
  push(client->SendDeleteImage(new_id));
  push(client->SendQuery(novel, query_options));

  std::vector<RemoteResponse> responses;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto response = client->ReceiveResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->request_id, ids[i]) << "response " << i;
    responses.push_back(std::move(*response));
  }
  EXPECT_TRUE(responses[0].status.ok()) << responses[0].status;  // insert
  EXPECT_TRUE(responses[2].status.ok()) << responses[2].status;  // delete

  auto with_insert = WalrusClient::ParseQueryResult(responses[1]);
  ASSERT_TRUE(with_insert.ok()) << with_insert.status();
  auto after_delete = WalrusClient::ParseQueryResult(responses[3]);
  ASSERT_TRUE(after_delete.ok()) << after_delete.status();
  auto contains = [&](const std::vector<QueryMatch>& matches) {
    for (const QueryMatch& match : matches) {
      if (match.image_id == new_id) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(with_insert->matches))
      << "query pipelined behind the insert missed the inserted image";
  EXPECT_FALSE(contains(after_delete->matches))
      << "query pipelined behind the delete still sees the deleted image";
  server.Stop();
}

// Pipelined queries through an 8-shard engine stay byte-identical to the
// single-index pipeline (the reactor sits in front of the same fan-out).
TEST_F(WalrusServerTest, PipelinedShardedQueriesStayByteIdentical) {
  ShardedIndex::Options shard_options;
  shard_options.num_shards = 8;
  auto sharded = ShardedIndex::Partition(*index_, shard_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  WalrusServer server(*sharded, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  QueryOptions options;
  options.epsilon = 0.085f;
  std::vector<ImageF> images;
  for (int q = 0; q < 6; ++q) images.push_back(dataset_[q].image);
  auto remote = client->QueryPipelined(images, options);
  ASSERT_TRUE(remote.ok()) << remote.status();
  for (size_t q = 0; q < images.size(); ++q) {
    auto local = ExecuteQuery(*index_, images[q], options);
    ASSERT_TRUE(local.ok()) << local.status();
    EXPECT_EQ(MatchBytes((*remote)[q].matches), MatchBytes(*local))
        << "sharded pipelined query " << q;
  }
  server.Stop();
}

// A malformed frame (bad magic) mid-pipeline: every response for the
// requests before it arrives intact and in order, then the error reply,
// then the connection closes.
TEST_F(WalrusServerTest, MidPipelineBadMagicPreservesPriorResponses) {
  ServerOptions options;
  options.num_workers = 2;
  options.execution_delay_ms = 30;  // keep the good requests in flight
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  constexpr uint64_t kGood = 3;
  std::vector<uint8_t> burst;
  for (uint64_t i = 0; i < kGood; ++i) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 100 + i, {});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  std::vector<uint8_t> bad = EncodeFrame(Opcode::kPing, 999, {});
  bad[0] ^= 0xFF;  // framing lost from here
  burst.insert(burst.end(), bad.begin(), bad.end());
  ASSERT_TRUE(WriteFull(fd->get(), burst.data(), burst.size()).ok());

  // The three good pings answer OK, in order, despite the poison behind
  // them already being buffered server-side.
  for (uint64_t i = 0; i < kGood; ++i) {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    ASSERT_TRUE(
        ReadFull(fd->get(), header_bytes.data(), header_bytes.size()).ok());
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes.data(), &header).ok());
    EXPECT_EQ(header.request_id, 100 + i) << "response " << i;
    std::vector<uint8_t> body(header.body_length);
    ASSERT_TRUE(ReadFull(fd->get(), body.data(), body.size()).ok());
    uint8_t trailer[kFrameTrailerBytes];
    ASSERT_TRUE(ReadFull(fd->get(), trailer, sizeof(trailer)).ok());
    BinaryReader reader(body);
    Status remote;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &remote).ok());
    EXPECT_TRUE(remote.ok()) << remote;
  }
  // Then the Corruption reply for the poisoned frame, then EOF.
  {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    ASSERT_TRUE(
        ReadFull(fd->get(), header_bytes.data(), header_bytes.size()).ok());
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes.data(), &header).ok());
    std::vector<uint8_t> body(header.body_length);
    ASSERT_TRUE(ReadFull(fd->get(), body.data(), body.size()).ok());
    uint8_t trailer[kFrameTrailerBytes];
    ASSERT_TRUE(ReadFull(fd->get(), trailer, sizeof(trailer)).ok());
    BinaryReader reader(body);
    Status remote;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &remote).ok());
    EXPECT_EQ(remote.code(), StatusCode::kCorruption) << remote;
  }
  uint8_t byte;
  EXPECT_FALSE(ReadFull(fd->get(), &byte, 1).ok());
  server.Stop();
}

// Regression for the drain bug: shutdown must flush responses that are
// queued but not yet written, not just wait for in-flight handlers. A
// tiny client receive buffer keeps most of the 16 METRICS responses
// queued server-side when Stop() begins; all 16 must still arrive.
TEST_F(WalrusServerTest, StopFlushesQueuedResponsesToSlowReader) {
  ServerOptions options;
  options.num_workers = 2;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  ASSERT_TRUE(fd.valid());
  // Shrink the receive window before connecting so the server's writes
  // stall with data still queued in its per-connection outbound queue.
  int tiny = 2048;
  ASSERT_EQ(::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &tiny,
                         sizeof(tiny)),
            0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  constexpr uint64_t kRequests = 16;
  std::vector<uint8_t> burst;
  for (uint64_t i = 0; i < kRequests; ++i) {
    // METRICS responses are multi-KB: 16 of them cannot fit in the tiny
    // receive window, so they pile up in the outbound queue.
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kMetrics, i, {});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(WriteFull(fd.get(), burst.data(), burst.size()).ok());

  // Let the workers execute and the outbound queue fill, then stop the
  // server while the client has read nothing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread stopper([&] { server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Every response must still arrive, in order, followed by EOF.
  for (uint64_t i = 0; i < kRequests; ++i) {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    ASSERT_TRUE(
        ReadFull(fd.get(), header_bytes.data(), header_bytes.size()).ok())
        << "response " << i << " lost in shutdown";
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(header_bytes.data(), &header).ok());
    EXPECT_EQ(header.request_id, i);
    std::vector<uint8_t> body(header.body_length);
    ASSERT_TRUE(ReadFull(fd.get(), body.data(), body.size()).ok());
    uint8_t trailer[kFrameTrailerBytes];
    ASSERT_TRUE(ReadFull(fd.get(), trailer, sizeof(trailer)).ok());
    BinaryReader reader(body);
    Status remote;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &remote).ok());
    EXPECT_TRUE(remote.ok()) << remote;
  }
  uint8_t byte;
  EXPECT_FALSE(ReadFull(fd.get(), &byte, 1).ok());
  stopper.join();
}

}  // namespace
}  // namespace walrus
