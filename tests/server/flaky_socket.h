#ifndef WALRUS_TESTS_SERVER_FLAKY_SOCKET_H_
#define WALRUS_TESTS_SERVER_FLAKY_SOCKET_H_

// Client-side fault-injection transport for reactor tests. A FlakySocket
// connects to a walrusd like any client but misbehaves on purpose, in
// seeded, reproducible ways:
//
//   - SendChunked splits the byte stream at random boundaries (TCP_NODELAY
//     is set, so each chunk lands as its own segment and the server's
//     reader observes genuinely partial frames);
//   - inter_chunk_delay_us paces the chunks, turning a request into a
//     slow-loris drip-feed;
//   - recv_buffer_bytes shrinks SO_RCVBUF before connecting, so a client
//     that stops reading forces the server's writev into EAGAIN and its
//     outbound queue into backpressure;
//   - SendPrefix + Abort cut the connection mid-frame (Abort uses
//     SO_LINGER 0, so the close is an RST, the rudest teardown a peer
//     can deliver).
//
// Every fault is driven by the caller's seed: a failing test prints the
// seed, and re-running with it replays the identical byte schedule.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/socket.h"
#include "server/protocol.h"

namespace walrus {

/// One response frame read off a FlakySocket, CRC already verified.
struct FlakyFrame {
  FrameHeader header;
  std::vector<uint8_t> body;
};

class FlakySocket {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Each send(2) carries 1..max_chunk_bytes bytes.
    size_t max_chunk_bytes = 7;
    /// Sleep between chunks (slow-loris pacing). 0 = back-to-back.
    int inter_chunk_delay_us = 0;
    /// When > 0, shrink SO_RCVBUF to roughly this before connecting so
    /// unread responses stall the server's writes.
    int recv_buffer_bytes = 0;
  };

  [[nodiscard]] static Result<FlakySocket> Connect(uint16_t port,
                                                   const Options& options) {
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return Status::IOError("flaky socket: socket(2) failed");
    if (options.recv_buffer_bytes > 0) {
      int bytes = options.recv_buffer_bytes;
      if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &bytes,
                       sizeof(bytes)) != 0) {
        return Status::IOError("flaky socket: SO_RCVBUF failed");
      }
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) {
      return Status::IOError("flaky socket: inet_pton failed");
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return Status::IOError("flaky socket: connect failed");
    }
    // Without NODELAY the kernel would coalesce our tiny chunks and the
    // server would never see the partial frames we are trying to inject.
    int one = 1;
    if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one)) != 0) {
      return Status::IOError("flaky socket: TCP_NODELAY failed");
    }
    return FlakySocket(std::move(fd), options);
  }

  /// Writes all of `bytes`, split at seeded random boundaries.
  [[nodiscard]] Status SendChunked(const std::vector<uint8_t>& bytes) {
    return SendPrefix(bytes, bytes.size());
  }

  /// Writes only the first `n` bytes of `bytes` (chunked), then returns --
  /// pair with Abort() or Close() for a mid-frame cut.
  [[nodiscard]] Status SendPrefix(const std::vector<uint8_t>& bytes,
                                  size_t n) {
    size_t sent = 0;
    while (sent < n) {
      size_t chunk = static_cast<size_t>(rng_.NextInt(
          1, static_cast<int>(options_.max_chunk_bytes)));
      if (chunk > n - sent) chunk = n - sent;
      WALRUS_RETURN_IF_ERROR(WriteFull(fd_.get(), bytes.data() + sent, chunk));
      sent += chunk;
      if (options_.inter_chunk_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.inter_chunk_delay_us));
      }
    }
    return Status::OK();
  }

  /// Blocks for one whole response frame and verifies its CRC.
  [[nodiscard]] Result<FlakyFrame> ReadFrame() {
    std::vector<uint8_t> header_bytes(kFrameHeaderBytes);
    WALRUS_RETURN_IF_ERROR(
        ReadFull(fd_.get(), header_bytes.data(), header_bytes.size()));
    FlakyFrame frame;
    WALRUS_RETURN_IF_ERROR(
        DecodeFrameHeader(header_bytes.data(), &frame.header));
    frame.body.resize(frame.header.body_length);
    if (!frame.body.empty()) {
      WALRUS_RETURN_IF_ERROR(
          ReadFull(fd_.get(), frame.body.data(), frame.body.size()));
    }
    uint8_t trailer[kFrameTrailerBytes];
    WALRUS_RETURN_IF_ERROR(ReadFull(fd_.get(), trailer, sizeof(trailer)));
    uint32_t stored = static_cast<uint32_t>(trailer[0]) |
                      static_cast<uint32_t>(trailer[1]) << 8 |
                      static_cast<uint32_t>(trailer[2]) << 16 |
                      static_cast<uint32_t>(trailer[3]) << 24;
    if (stored != FrameCrc(header_bytes.data(), frame.body)) {
      return Status::Corruption("flaky socket: response CRC mismatch");
    }
    return frame;
  }

  /// Hard abort: SO_LINGER 0 turns the close into an RST, so the server
  /// sees an error (not an orderly EOF) on its next read or write.
  void Abort() {
    if (!fd_.valid()) return;
    struct linger hard = {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    fd_.Close();
  }

  /// Orderly close (FIN).
  void Close() { fd_.Close(); }

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  FlakySocket(UniqueFd fd, const Options& options)
      : fd_(std::move(fd)), options_(options), rng_(options.seed) {
    if (options_.max_chunk_bytes == 0) options_.max_chunk_bytes = 1;
  }

  UniqueFd fd_;
  Options options_;
  Rng rng_;
};

}  // namespace walrus

#endif  // WALRUS_TESTS_SERVER_FLAKY_SOCKET_H_
