#include "server/protocol.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/random.h"

namespace walrus {
namespace {

TEST(ProtocolTest, FrameRoundTrip) {
  std::vector<uint8_t> body = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kQuery, 42, body);
  ASSERT_EQ(frame.size(),
            kFrameHeaderBytes + body.size() + kFrameTrailerBytes);

  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &header).ok());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.opcode, Opcode::kQuery);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.body_length, body.size());

  // Trailer matches a recomputation over header + body.
  uint32_t stored = static_cast<uint32_t>(frame[frame.size() - 4]) |
                    static_cast<uint32_t>(frame[frame.size() - 3]) << 8 |
                    static_cast<uint32_t>(frame[frame.size() - 2]) << 16 |
                    static_cast<uint32_t>(frame[frame.size() - 1]) << 24;
  EXPECT_EQ(stored, FrameCrc(frame.data(), body));
}

TEST(ProtocolTest, EmptyBodyFrame) {
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 7, {});
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &header).ok());
  EXPECT_EQ(header.body_length, 0u);
  EXPECT_EQ(FrameCrc(frame.data(), {}),
            Crc32(frame.data(), kFrameHeaderBytes));
}

TEST(ProtocolTest, BadMagicIsCorruption) {
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 1, {});
  frame[0] ^= 0xFF;
  FrameHeader header;
  Status status = DecodeFrameHeader(frame.data(), &header);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, BadVersionIsInvalidArgument) {
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 1, {});
  frame[4] = kProtocolVersion + 1;
  FrameHeader header;
  Status status = DecodeFrameHeader(frame.data(), &header);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The rest of the header still parsed: the frame boundary is intact.
  EXPECT_EQ(header.request_id, 1u);
  EXPECT_EQ(header.body_length, 0u);
}

TEST(ProtocolTest, OversizedBodyLengthRejected) {
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 1, {});
  uint32_t huge = kMaxBodyBytes + 1;
  frame[16] = static_cast<uint8_t>(huge);
  frame[17] = static_cast<uint8_t>(huge >> 8);
  frame[18] = static_cast<uint8_t>(huge >> 16);
  frame[19] = static_cast<uint8_t>(huge >> 24);
  FrameHeader header;
  Status status = DecodeFrameHeader(frame.data(), &header);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ResponseStatusRoundTrip) {
  for (const Status& status :
       {Status::OK(), Status::Unavailable("OVERLOADED: full"),
        Status::DeadlineExceeded("late"),
        Status::InvalidArgument("bad frame")}) {
    BinaryWriter writer;
    EncodeResponseStatus(status, &writer);
    BinaryReader reader(writer.buffer());
    Status decoded;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &decoded).ok());
    EXPECT_EQ(decoded, status);
  }
}

TEST(ProtocolTest, ResponseStatusRejectsUnknownCode) {
  BinaryWriter writer;
  writer.PutU8(250);
  writer.PutString("?");
  BinaryReader reader(writer.buffer());
  Status decoded;
  EXPECT_EQ(DecodeResponseStatus(&reader, &decoded).code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, QueryOptionsRoundTrip) {
  QueryOptions options;
  options.epsilon = 0.123f;
  options.tau = 0.25;
  options.matcher = MatcherKind::kGreedy;
  options.normalization = SimilarityNormalization::kSmallerImage;
  options.knn_per_region = 5;
  options.use_refinement = true;
  options.refined_epsilon = 0.2f;
  options.top_k = 9;
  options.collect_pairs = true;
  options.collect_trace = true;
  options.batched_probe = false;         // non-default
  options.signature_prefilter = false;   // non-default

  BinaryWriter writer;
  EncodeQueryOptions(options, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeQueryOptions(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epsilon, options.epsilon);
  EXPECT_EQ(decoded->tau, options.tau);
  EXPECT_EQ(decoded->matcher, options.matcher);
  EXPECT_EQ(decoded->normalization, options.normalization);
  EXPECT_EQ(decoded->knn_per_region, options.knn_per_region);
  EXPECT_EQ(decoded->use_refinement, options.use_refinement);
  EXPECT_EQ(decoded->refined_epsilon, options.refined_epsilon);
  EXPECT_EQ(decoded->top_k, options.top_k);
  EXPECT_EQ(decoded->collect_pairs, options.collect_pairs);
  EXPECT_EQ(decoded->collect_trace, options.collect_trace);
  EXPECT_EQ(decoded->batched_probe, options.batched_probe);
  EXPECT_EQ(decoded->signature_prefilter, options.signature_prefilter);
}

TEST(ProtocolTest, QueryOptionsV4OmitsProbeKnobsAndDecodesToDefaults) {
  QueryOptions options;
  options.batched_probe = false;
  options.signature_prefilter = false;

  // A v4 body does not carry the probe knobs at all...
  BinaryWriter v4;
  EncodeQueryOptions(options, &v4, /*version=*/4);
  BinaryWriter v5;
  EncodeQueryOptions(options, &v5, /*version=*/5);
  EXPECT_EQ(v5.size(), v4.size() + 2);

  // ...so a v4 decode applies this side's defaults (both true).
  BinaryReader reader(v4.buffer());
  auto decoded = DecodeQueryOptions(&reader, /*version=*/4);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->batched_probe);
  EXPECT_TRUE(decoded->signature_prefilter);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ProtocolTest, FrameHeaderAcceptsSupportedVersionWindow) {
  for (uint8_t version = kMinSupportedProtocolVersion;
       version <= kProtocolVersion; ++version) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 7, {}, version);
    FrameHeader header;
    ASSERT_TRUE(DecodeFrameHeader(frame.data(), &header).ok())
        << "version " << static_cast<int>(version);
    EXPECT_EQ(header.version, version);
  }
  std::vector<uint8_t> old_frame =
      EncodeFrame(Opcode::kPing, 7, {}, kMinSupportedProtocolVersion - 1);
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(old_frame.data(), &header).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ImageRoundTrip) {
  ImageF image(17, 9, 3, ColorSpace::kYCC);
  Rng rng(3);
  for (int c = 0; c < 3; ++c) {
    for (float& v : image.Plane(c)) v = rng.NextFloat();
  }
  BinaryWriter writer;
  EncodeImage(image, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeImage(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 17);
  EXPECT_EQ(decoded->height(), 9);
  EXPECT_EQ(decoded->channels(), 3);
  EXPECT_EQ(decoded->color_space(), ColorSpace::kYCC);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(decoded->Plane(c), image.Plane(c));
  }
}

TEST(ProtocolTest, ImageDecodeRejectsBadDimensions) {
  BinaryWriter writer;
  writer.PutU32(0);  // width 0
  writer.PutU32(4);
  writer.PutU32(3);
  writer.PutU8(1);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(DecodeImage(&reader).ok());

  BinaryWriter writer2;
  writer2.PutU32(1u << 20);  // absurd width: refused before allocation
  writer2.PutU32(1u << 20);
  writer2.PutU32(3);
  writer2.PutU8(1);
  BinaryReader reader2(writer2.buffer());
  EXPECT_FALSE(DecodeImage(&reader2).ok());
}

TEST(ProtocolTest, ImageDecodeRejectsTruncatedPlanes) {
  ImageF image(8, 8, 3, ColorSpace::kRGB);
  BinaryWriter writer;
  EncodeImage(image, &writer);
  std::vector<uint8_t> bytes = writer.TakeBuffer();
  bytes.resize(bytes.size() / 2);
  BinaryReader reader(bytes);
  EXPECT_FALSE(DecodeImage(&reader).ok());
}

TEST(ProtocolTest, MatchesRoundTrip) {
  std::vector<QueryMatch> matches(2);
  matches[0].image_id = 11;
  matches[0].similarity = 0.75;
  matches[0].matching_pairs = 3;
  matches[0].pairs_used = 2;
  matches[0].pairs = {{0, 4}, {1, 7}};
  matches[1].image_id = 99;
  matches[1].similarity = 0.5;

  BinaryWriter writer;
  EncodeMatches(matches, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeMatches(&reader);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].image_id, 11u);
  EXPECT_EQ((*decoded)[0].similarity, 0.75);
  EXPECT_EQ((*decoded)[0].matching_pairs, 3);
  EXPECT_EQ((*decoded)[0].pairs_used, 2);
  ASSERT_EQ((*decoded)[0].pairs.size(), 2u);
  EXPECT_EQ((*decoded)[0].pairs[1].query_index, 1);
  EXPECT_EQ((*decoded)[0].pairs[1].target_index, 7);
  EXPECT_EQ((*decoded)[1].image_id, 99u);
}

TEST(ProtocolTest, MatchesDecodeRejectsTruncatedCount) {
  BinaryWriter writer;
  writer.PutU32(1000000);  // claims a million matches, provides none
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodeMatches(&reader).status().code(), StatusCode::kCorruption);
}

TEST(ProtocolTest, ServerStatsRoundTrip) {
  ServerStats stats;
  stats.requests_by_opcode[static_cast<int>(Opcode::kQuery)] = 17;
  stats.rejected_overload = 3;
  stats.deadline_exceeded = 2;
  stats.protocol_errors = 5;
  stats.bytes_in = 1024;
  stats.bytes_out = 2048;
  stats.connections_accepted = 9;
  stats.latency_p50_ms = 1.5;
  stats.latency_p99_ms = 20.0;
  stats.prefilter_candidates_in = 549735;
  stats.prefilter_pruned = 342000;
  stats.prefilter_candidates_out = 109395;

  BinaryWriter writer;
  EncodeServerStats(stats, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeServerStats(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->requests_by_opcode[static_cast<int>(Opcode::kQuery)],
            17u);
  EXPECT_EQ(decoded->rejected_overload, 3u);
  EXPECT_EQ(decoded->deadline_exceeded, 2u);
  EXPECT_EQ(decoded->protocol_errors, 5u);
  EXPECT_EQ(decoded->bytes_in, 1024u);
  EXPECT_EQ(decoded->bytes_out, 2048u);
  EXPECT_EQ(decoded->connections_accepted, 9u);
  EXPECT_EQ(decoded->latency_p50_ms, 1.5);
  EXPECT_EQ(decoded->latency_p99_ms, 20.0);
  EXPECT_EQ(decoded->prefilter_candidates_in, 549735u);
  EXPECT_EQ(decoded->prefilter_pruned, 342000u);
  EXPECT_EQ(decoded->prefilter_candidates_out, 109395u);
  EXPECT_EQ(reader.remaining(), 0u);

  // v4 encoding is a byte-identical prefix: the prefilter funnel is a v5
  // tail, and a v4 decode of a v4 payload leaves the fields at zero.
  BinaryWriter v4;
  EncodeServerStats(stats, &v4, 4);
  ASSERT_EQ(writer.size(), v4.size() + 3 * 8);
  EXPECT_TRUE(std::equal(v4.buffer().begin(), v4.buffer().end(),
                         writer.buffer().begin()));
  BinaryReader v4_reader(v4.buffer());
  auto v4_decoded = DecodeServerStats(&v4_reader, 4);
  ASSERT_TRUE(v4_decoded.ok());
  EXPECT_EQ(v4_decoded->prefilter_candidates_in, 0u);
  EXPECT_EQ(v4_decoded->prefilter_pruned, 0u);
  EXPECT_EQ(v4_decoded->prefilter_candidates_out, 0u);
  EXPECT_EQ(v4_reader.remaining(), 0u);
}

TEST(ProtocolTest, QueryStatsRoundTripCarriesStageBreakdown) {
  QueryStats stats;
  stats.query_regions = 4;
  stats.regions_retrieved = 120;
  stats.avg_regions_per_query_region = 30.0;
  stats.distinct_images = 17;
  stats.seconds = 0.25;
  stats.extract_seconds = 0.125;
  stats.probe_seconds = 0.0625;
  stats.match_seconds = 0.03125;
  stats.rank_seconds = 0.015625;
  stats.nodes_visited = 42;
  stats.pages_read = 13;
  stats.cache_hits = 9;
  stats.cache_misses = 4;
  stats.filter_seconds = 0.0078125;
  stats.prefilter_candidates_in = 36649;
  stats.prefilter_pruned = 28000;
  stats.prefilter_candidates_out = 7293;
  TraceSpan extract;
  extract.name = "extract";
  extract.start_seconds = 0.0;
  extract.duration_seconds = 0.125;
  TraceSpan wavelet;
  wavelet.name = "wavelet";
  wavelet.start_seconds = 0.01;
  wavelet.duration_seconds = 0.09;
  extract.children.push_back(wavelet);
  stats.spans.push_back(extract);

  BinaryWriter writer;
  EncodeQueryStats(stats, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeQueryStats(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->query_regions, 4);
  EXPECT_EQ(decoded->regions_retrieved, 120);
  EXPECT_EQ(decoded->seconds, 0.25);
  EXPECT_EQ(decoded->extract_seconds, 0.125);
  EXPECT_EQ(decoded->probe_seconds, 0.0625);
  EXPECT_EQ(decoded->match_seconds, 0.03125);
  EXPECT_EQ(decoded->rank_seconds, 0.015625);
  EXPECT_EQ(decoded->nodes_visited, 42);
  EXPECT_EQ(decoded->pages_read, 13);
  EXPECT_EQ(decoded->cache_hits, 9);
  EXPECT_EQ(decoded->cache_misses, 4);
  ASSERT_EQ(decoded->spans.size(), 1u);
  EXPECT_EQ(decoded->spans[0].name, "extract");
  EXPECT_EQ(decoded->spans[0].duration_seconds, 0.125);
  ASSERT_EQ(decoded->spans[0].children.size(), 1u);
  EXPECT_EQ(decoded->spans[0].children[0].name, "wavelet");
  EXPECT_EQ(decoded->spans[0].children[0].start_seconds, 0.01);
  EXPECT_EQ(decoded->filter_seconds, 0.0078125);
  EXPECT_EQ(decoded->prefilter_candidates_in, 36649);
  EXPECT_EQ(decoded->prefilter_pruned, 28000);
  EXPECT_EQ(decoded->prefilter_candidates_out, 7293);

  // The v4 encoding is a byte-identical prefix of the v5 one: the new
  // fields ride strictly after the frozen v4 layout, so a v4 peer's
  // decoder never sees them.
  BinaryWriter v4;
  EncodeQueryStats(stats, &v4, /*version=*/4);
  ASSERT_EQ(writer.size(), v4.size() + 8 + 3 * 8);
  EXPECT_TRUE(std::equal(v4.buffer().begin(), v4.buffer().end(),
                         writer.buffer().begin()));
  BinaryReader v4_reader(v4.buffer());
  auto v4_decoded = DecodeQueryStats(&v4_reader, /*version=*/4);
  ASSERT_TRUE(v4_decoded.ok());
  EXPECT_EQ(v4_decoded->probe_seconds, 0.0625);
  EXPECT_EQ(v4_decoded->filter_seconds, 0.0);
  EXPECT_EQ(v4_decoded->prefilter_candidates_in, 0);
  EXPECT_EQ(v4_reader.remaining(), 0u);
}

TEST(ProtocolTest, TraceSpansRoundTripEmpty) {
  BinaryWriter writer;
  EncodeTraceSpans({}, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeTraceSpans(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ProtocolTest, TraceSpansDecodeRejectsTruncatedCount) {
  BinaryWriter writer;
  writer.PutU32(1000000);  // claims a million spans, provides none
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodeTraceSpans(&reader).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, TraceSpansDecodeRejectsExcessiveNesting) {
  // A chain nested one past the limit: each level is one span whose only
  // child is the next level.
  std::vector<TraceSpan> spans(1);
  TraceSpan* tip = &spans[0];
  for (int i = 0; i < kMaxTraceDepth + 1; ++i) {
    tip->name = "s";
    tip->children.resize(1);
    tip = &tip->children[0];
  }
  tip->name = "leaf";
  BinaryWriter writer;
  EncodeTraceSpans(spans, &writer);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodeTraceSpans(&reader).status().code(),
            StatusCode::kCorruption);
}

MetricsSnapshot MakeSnapshot() {
  MetricsSnapshot snapshot;
  MetricValue counter;
  counter.name = "walrus.test.counter";
  counter.type = MetricType::kCounter;
  counter.counter = 123456789;
  snapshot.metrics.push_back(counter);

  MetricValue gauge;
  gauge.name = "walrus.test.gauge";
  gauge.type = MetricType::kGauge;
  gauge.gauge = -42;
  snapshot.metrics.push_back(gauge);

  MetricValue histogram;
  histogram.name = "walrus.test.seconds";
  histogram.type = MetricType::kHistogram;
  histogram.bounds = {0.001, 0.01, 0.1};
  histogram.bucket_counts = {5, 10, 2, 1};
  histogram.count = 18;
  histogram.sum = 0.375;
  snapshot.metrics.push_back(histogram);
  return snapshot;
}

TEST(ProtocolTest, MetricsSnapshotRoundTrip) {
  MetricsSnapshot snapshot = MakeSnapshot();
  BinaryWriter writer;
  EncodeMetricsSnapshot(snapshot, &writer);
  BinaryReader reader(writer.buffer());
  auto decoded = DecodeMetricsSnapshot(&reader);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->metrics.size(), 3u);

  const MetricValue* counter = decoded->Find("walrus.test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->type, MetricType::kCounter);
  EXPECT_EQ(counter->counter, 123456789u);

  const MetricValue* gauge = decoded->Find("walrus.test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->type, MetricType::kGauge);
  EXPECT_EQ(gauge->gauge, -42);

  const MetricValue* histogram = decoded->Find("walrus.test.seconds");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->type, MetricType::kHistogram);
  EXPECT_EQ(histogram->bounds, (std::vector<double>{0.001, 0.01, 0.1}));
  EXPECT_EQ(histogram->bucket_counts, (std::vector<uint64_t>{5, 10, 2, 1}));
  EXPECT_EQ(histogram->count, 18u);
  EXPECT_EQ(histogram->sum, 0.375);
}

TEST(ProtocolTest, MetricsSnapshotDecodeRejectsTruncatedCount) {
  BinaryWriter writer;
  writer.PutU32(1000000);  // claims a million metrics, provides none
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodeMetricsSnapshot(&reader).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, MetricsSnapshotDecodeRejectsUnknownType) {
  BinaryWriter writer;
  writer.PutU32(1);
  writer.PutString("m");
  writer.PutU8(77);  // not a MetricType
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodeMetricsSnapshot(&reader).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, MetricsSnapshotDecodeRejectsOversizedHistogram) {
  BinaryWriter writer;
  writer.PutU32(1);
  writer.PutString("h");
  writer.PutU8(static_cast<uint8_t>(MetricType::kHistogram));
  writer.PutU32(1000000);  // a million bounds, no data behind them
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(DecodeMetricsSnapshot(&reader).status().code(),
            StatusCode::kCorruption);
}

/// Mirror of the server's malformed-frame discipline for the new codecs:
/// arbitrary bytes must produce a Status, never a crash or an OOM
/// allocation.
TEST(ProtocolFuzzTest, RandomBytesNeverCrashTraceSpanDecode) {
  Rng rng(20260806);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> bytes(rng.NextInt(0, 96));
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.NextInt(0, 255));
    }
    BinaryReader reader(bytes);
    auto decoded = DecodeTraceSpans(&reader);  // must not crash
    (void)decoded;
  }
}

TEST(ProtocolFuzzTest, RandomBytesNeverCrashMetricsDecode) {
  Rng rng(8062026);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> bytes(rng.NextInt(0, 96));
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.NextInt(0, 255));
    }
    BinaryReader reader(bytes);
    auto decoded = DecodeMetricsSnapshot(&reader);  // must not crash
    (void)decoded;
  }
}

TEST(ProtocolFuzzTest, TruncatedValidEncodingsFailCleanly) {
  // Every proper prefix of a valid encoding must decode to an error, not a
  // crash (the wire can cut a frame anywhere).
  BinaryWriter span_writer;
  std::vector<TraceSpan> spans(2);
  spans[0].name = "extract";
  spans[0].duration_seconds = 0.5;
  spans[0].children.resize(1);
  spans[0].children[0].name = "wavelet";
  spans[1].name = "probe";
  EncodeTraceSpans(spans, &span_writer);
  const std::vector<uint8_t>& span_bytes = span_writer.buffer();
  for (size_t cut = 0; cut < span_bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(span_bytes.begin(),
                                span_bytes.begin() + cut);
    BinaryReader reader(prefix);
    EXPECT_FALSE(DecodeTraceSpans(&reader).ok()) << "cut at " << cut;
  }

  BinaryWriter metric_writer;
  EncodeMetricsSnapshot(MakeSnapshot(), &metric_writer);
  const std::vector<uint8_t>& metric_bytes = metric_writer.buffer();
  for (size_t cut = 0; cut < metric_bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(metric_bytes.begin(),
                                metric_bytes.begin() + cut);
    BinaryReader reader(prefix);
    EXPECT_FALSE(DecodeMetricsSnapshot(&reader).ok()) << "cut at " << cut;
  }
}

TEST(ProtocolTest, FramePartsMatchContiguousEncodingByteForByte) {
  // MakeFrameParts is the reactor's scatter-gather encoder; the wire bytes
  // must be indistinguishable from EncodeFrame over the concatenated body,
  // whatever the chunking. Cover empty bodies, single chunks, empty chunks
  // interleaved with data, and many small chunks.
  const std::vector<std::vector<std::vector<uint8_t>>> chunkings = {
      {},
      {{}},
      {{9, 8, 7}},
      {{}, {1}, {}, {2, 3, 4}, {}},
      {{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}},
      {{0xAA, 0xBB}, {}, {0xCC}},
  };
  uint64_t request_id = 7000;
  for (const auto& chunks : chunkings) {
    std::vector<uint8_t> flat;
    for (const auto& chunk : chunks) {
      flat.insert(flat.end(), chunk.begin(), chunk.end());
    }
    std::vector<uint8_t> contiguous =
        EncodeFrame(Opcode::kQuery, request_id, flat);

    FrameParts parts = MakeFrameParts(Opcode::kQuery, request_id,
                                      std::vector<std::vector<uint8_t>>(
                                          chunks));
    ASSERT_EQ(parts.TotalBytes(), contiguous.size());
    std::vector<uint8_t> gathered(parts.header.begin(), parts.header.end());
    for (const auto& chunk : parts.body) {
      gathered.insert(gathered.end(), chunk.begin(), chunk.end());
    }
    gathered.insert(gathered.end(), parts.trailer.begin(),
                    parts.trailer.end());
    EXPECT_EQ(gathered, contiguous)
        << "chunking with " << chunks.size() << " chunk(s) diverged";
    ++request_id;
  }
}

TEST(ProtocolTest, Crc32ExtendComposes) {
  std::vector<uint8_t> a = {1, 2, 3};
  std::vector<uint8_t> b = {4, 5, 6, 7};
  std::vector<uint8_t> joined = {1, 2, 3, 4, 5, 6, 7};
  uint32_t incremental =
      Crc32Extend(Crc32Extend(0, a.data(), a.size()), b.data(), b.size());
  EXPECT_EQ(incremental, Crc32(joined.data(), joined.size()));
}

}  // namespace
}  // namespace walrus
