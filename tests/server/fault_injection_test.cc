// Network fault-injection tests for the epoll reactor: a real walrusd
// attacked over loopback by FlakySocket clients that fragment, stall,
// truncate, and corrupt the byte stream in seeded, reproducible ways.
// The acceptance bar, whatever the fault schedule:
//
//   - the server answers every complete request, in request order;
//   - a malformed or truncated frame never crashes or wedges the process;
//   - torn-down connections release their reactor slot and their fd
//     (no leaks, measured against /proc/self/fd and the
//     walrus.server.reactor.connections gauge);
//   - backpressure stalls reads instead of buffering without bound, and
//     stalled responses are still delivered once the peer drains.

#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/socket.h"
#include "core/index.h"
#include "image/dataset.h"
#include "flaky_socket.h"
#include "server/client.h"
#include "server/server.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

/// Open descriptors in this process (the in-process server's sockets
/// included), minus the directory fd used for the scan itself.
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count - 1;
}

int64_t ReactorConnectionsGauge() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricValue* metric =
      snapshot.Find("walrus.server.reactor.connections");
  return metric == nullptr ? 0 : metric->gauge;
}

uint64_t ReactorStalledReads() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricValue* metric =
      snapshot.Find("walrus.server.reactor.stalled_reads");
  return metric == nullptr ? 0 : metric->counter;
}

/// Polls `pred` until it holds or `timeout_ms` elapses (connection
/// teardown is asynchronous: the loop thread notices EOF/RST on its next
/// epoll wake, so leak checks must wait, not sample instantly).
bool PollUntil(const std::function<bool()>& pred, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Recomputes the CRC trailer after a deliberate header/body patch, so the
/// frame exercises the targeted check instead of failing CRC first.
void FixCrc(std::vector<uint8_t>* frame) {
  std::vector<uint8_t> body(frame->begin() + kFrameHeaderBytes,
                            frame->end() - kFrameTrailerBytes);
  uint32_t crc = FrameCrc(frame->data(), body);
  (*frame)[frame->size() - 4] = static_cast<uint8_t>(crc & 0xFF);
  (*frame)[frame->size() - 3] = static_cast<uint8_t>((crc >> 8) & 0xFF);
  (*frame)[frame->size() - 2] = static_cast<uint8_t>((crc >> 16) & 0xFF);
  (*frame)[frame->size() - 1] = static_cast<uint8_t>((crc >> 24) & 0xFF);
}

Status ResponseStatus(const FlakyFrame& frame) {
  BinaryReader reader(frame.body);
  Status remote;
  Status decoded = DecodeResponseStatus(&reader, &remote);
  if (!decoded.ok()) return decoded;
  return remote;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 6;
    dp.width = 48;
    dp.height = 48;
    dp.seed = 41;
    dataset_ = GenerateDataset(dp);
    index_ = std::make_unique<WalrusIndex>(TestParams());
    for (const LabeledImage& scene : dataset_) {
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(scene.id), "img",
                                 scene.image)
                      .ok());
    }
  }

  std::vector<LabeledImage> dataset_;
  std::unique_ptr<WalrusIndex> index_;
};

// A request torn at every possible byte boundary must still be parsed
// once the remainder arrives: the reactor's frame assembly cannot assume
// any alignment between read(2) returns and frame boundaries.
TEST_F(FaultInjectionTest, EveryByteBoundarySplitStillAnswers) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FlakySocket::Options fopts;
  fopts.seed = 11;
  fopts.max_chunk_bytes = 64;  // each half goes out in one or two writes
  auto sock = FlakySocket::Connect(server.port(), fopts);
  ASSERT_TRUE(sock.ok()) << sock.status();

  const size_t frame_bytes = kFrameHeaderBytes + kFrameTrailerBytes;
  for (size_t cut = 1; cut < frame_bytes; ++cut) {
    std::vector<uint8_t> frame =
        EncodeFrame(Opcode::kPing, /*request_id=*/cut, {});
    std::vector<uint8_t> head(frame.begin(), frame.begin() + cut);
    std::vector<uint8_t> tail(frame.begin() + cut, frame.end());
    ASSERT_TRUE(sock->SendChunked(head).ok());
    // Give the reactor a chance to observe (and buffer) the torn prefix.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(sock->SendChunked(tail).ok());
    auto reply = sock->ReadFrame();
    ASSERT_TRUE(reply.ok()) << "cut at byte " << cut << ": "
                            << reply.status();
    EXPECT_EQ(reply->header.request_id, cut);
    EXPECT_TRUE(ResponseStatus(*reply).ok());
  }
  sock->Close();
  server.Stop();
}

// Mid-frame disconnects -- both orderly FIN and hard RST -- must release
// the connection slot and the file descriptor every time. A leak here is
// how a reactor dies in production: each flaky client strands one fd
// until accept(2) starts failing.
TEST_F(FaultInjectionTest, MidFrameDisconnectLeaksNoSlotsOrFds) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const int64_t gauge_before = ReactorConnectionsGauge();
  const int fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0);

  // A query-sized frame with a body we never finish sending.
  std::vector<uint8_t> body(512);
  Rng body_rng(17);
  for (uint8_t& b : body) b = static_cast<uint8_t>(body_rng.NextInt(0, 255));
  std::vector<uint8_t> frame = EncodeFrame(Opcode::kQuery, 5, body);

  int torn = 0;
  for (size_t cut = 1; cut < frame.size(); cut += 29, ++torn) {
    FlakySocket::Options fopts;
    fopts.seed = 1000 + cut;
    auto sock = FlakySocket::Connect(server.port(), fopts);
    ASSERT_TRUE(sock.ok()) << sock.status();
    ASSERT_TRUE(sock->SendPrefix(frame, cut).ok());
    if (cut % 2 == 0) {
      sock->Abort();  // RST: the reactor sees EPOLLERR, not orderly EOF
    } else {
      sock->Close();  // FIN: orderly EOF mid-frame
    }
  }
  ASSERT_GT(torn, 10);

  // Every torn connection must disappear from the reactor and the fd
  // table once the loop notices the hangup.
  EXPECT_TRUE(PollUntil(
      [&] { return ReactorConnectionsGauge() == gauge_before; }, 5000))
      << "reactor connection slots leaked: gauge "
      << ReactorConnectionsGauge() << " vs baseline " << gauge_before;
  EXPECT_TRUE(PollUntil([&] { return CountOpenFds() <= fds_before; }, 5000))
      << "fds leaked: " << CountOpenFds() << " vs baseline " << fds_before;

  // The server is still healthy for well-behaved clients.
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());
  server.Stop();
}

// A slow-loris connection drip-feeding one byte at a time must not stall
// other clients: the reactor multiplexes, so one slow reader costs its
// own connection latency and nothing else.
TEST_F(FaultInjectionTest, SlowLorisDoesNotBlockOtherClients) {
  WalrusServer server(*index_, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> loris_ok{false};
  std::thread loris([&] {
    FlakySocket::Options fopts;
    fopts.seed = 23;
    fopts.max_chunk_bytes = 1;
    fopts.inter_chunk_delay_us = 2000;  // ~50 ms to trickle out one ping
    auto sock = FlakySocket::Connect(server.port(), fopts);
    if (!sock.ok()) return;
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, 77, {});
    if (!sock->SendChunked(frame).ok()) return;
    auto reply = sock->ReadFrame();
    loris_ok = reply.ok() && reply->header.request_id == 77 &&
               ResponseStatus(*reply).ok();
  });

  // While the loris trickles, a normal client round-trips freely.
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(client->Ping().ok()) << "ping " << i << " blocked";
  }
  loris.join();
  // The drip-fed request itself still completes correctly.
  EXPECT_TRUE(loris_ok.load());
  server.Stop();
}

// Seeded random fragmentation of a deep pipeline: 60 requests split at
// arbitrary boundaries must come back as 60 in-order responses.
TEST_F(FaultInjectionTest, RandomChunkedPipelineStaysOrdered) {
  ServerOptions options;
  options.num_workers = 4;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  FlakySocket::Options fopts;
  fopts.seed = 31;
  fopts.max_chunk_bytes = 5;
  auto sock = FlakySocket::Connect(server.port(), fopts);
  ASSERT_TRUE(sock.ok()) << sock.status();

  constexpr uint64_t kRequests = 60;
  std::vector<uint8_t> burst;
  for (uint64_t i = 0; i < kRequests; ++i) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, i, {});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(sock->SendChunked(burst).ok());

  for (uint64_t i = 0; i < kRequests; ++i) {
    auto reply = sock->ReadFrame();
    ASSERT_TRUE(reply.ok()) << "response " << i << ": " << reply.status();
    EXPECT_EQ(reply->header.request_id, i) << "pipelined reply reordered";
    EXPECT_TRUE(ResponseStatus(*reply).ok());
  }
  sock->Close();
  server.Stop();
}

// An EAGAIN storm: the client shrinks its receive window and stops
// reading, so the server's writes stall with multi-KB responses queued.
// The reactor must pause reading that connection (bounded memory, visible
// as stalled_reads) rather than buffer without limit, then deliver every
// response in order once the client drains.
TEST_F(FaultInjectionTest, BackpressureStormDeliversEverythingInOrder) {
  ServerOptions options;
  options.num_workers = 2;
  options.max_conn_outbound_bytes = 8192;  // tiny budget: stall fast
  options.so_sndbuf_bytes = 4096;  // keep the kernel from absorbing it all
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t stalled_before = ReactorStalledReads();

  FlakySocket::Options fopts;
  fopts.seed = 47;
  fopts.max_chunk_bytes = 512;
  fopts.recv_buffer_bytes = 2048;  // keep the peer window tiny
  auto sock = FlakySocket::Connect(server.port(), fopts);
  ASSERT_TRUE(sock.ok()) << sock.status();

  // METRICS responses are multi-KB; 32 of them overflow both the receive
  // window and the 8 KiB outbound budget many times over.
  constexpr uint64_t kRequests = 32;
  std::vector<uint8_t> burst;
  for (uint64_t i = 0; i < kRequests; ++i) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kMetrics, i, {});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(sock->SendChunked(burst).ok());

  // Refuse to read while the storm queues up server-side.
  EXPECT_TRUE(PollUntil(
      [&] { return ReactorStalledReads() > stalled_before; }, 5000))
      << "backpressure never paused the connection's reads";

  // Now drain: every response arrives, in order, none dropped.
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto reply = sock->ReadFrame();
    ASSERT_TRUE(reply.ok()) << "response " << i << ": " << reply.status();
    EXPECT_EQ(reply->header.request_id, i);
    EXPECT_TRUE(ResponseStatus(*reply).ok());
  }
  sock->Close();
  server.Stop();
}

// ---- Protocol fuzz under pipelining -------------------------------------

class ProtocolPipelineFuzzTest : public FaultInjectionTest {};

// Random sequences of valid and malformed frames, fragmented at random
// boundaries. Contract under fuzz:
//   - recoverable garbage (bad CRC, bad version, unknown opcode) earns an
//     error reply and the connection keeps serving;
//   - unrecoverable garbage (bad magic, oversized length) earns an error
//     reply followed by connection close;
//   - every reply arrives in request order; the process never crashes or
//     hangs; protocol_errors counts every malformed frame.
TEST_F(ProtocolPipelineFuzzTest, RandomFrameSequencesNeverCrashOrReorder) {
  ServerOptions options;
  options.num_workers = 2;
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t errors_before = server.Snapshot().protocol_errors;
  uint64_t malformed_sent = 0;

  for (uint64_t round = 0; round < 20; ++round) {
    Rng rng(900 + round);
    FlakySocket::Options fopts;
    fopts.seed = round;
    fopts.max_chunk_bytes = static_cast<size_t>(rng.NextInt(1, 9));
    auto sock = FlakySocket::Connect(server.port(), fopts);
    ASSERT_TRUE(sock.ok()) << sock.status();

    struct Expectation {
      uint64_t request_id;
      bool expect_ok;
    };
    std::vector<Expectation> expected;
    std::vector<uint8_t> burst;

    const int num_frames = rng.NextInt(4, 10);
    for (int f = 0; f < num_frames; ++f) {
      const uint64_t id = round * 100 + static_cast<uint64_t>(f) + 1;
      std::vector<uint8_t> frame;
      switch (rng.NextInt(0, 6)) {
        case 0:
        case 1:
        case 2:  // valid ping
          frame = EncodeFrame(Opcode::kPing, id, {});
          expected.push_back({id, true});
          break;
        case 3:  // valid stats
          frame = EncodeFrame(Opcode::kStats, id, {});
          expected.push_back({id, true});
          break;
        case 4:  // corrupt CRC: recoverable, error reply, stay open
          frame = EncodeFrame(Opcode::kPing, id, {1, 2, 3});
          frame[frame.size() - 1] ^= 0xFF;
          expected.push_back({id, false});
          ++malformed_sent;
          break;
        case 5:  // unsupported version: recoverable
          frame = EncodeFrame(Opcode::kPing, id, {});
          frame[4] = 0x63;
          FixCrc(&frame);
          expected.push_back({id, false});
          ++malformed_sent;
          break;
        case 6:  // unknown opcode: recoverable
          frame = EncodeFrame(static_cast<Opcode>(0x77), id, {});
          expected.push_back({id, false});
          ++malformed_sent;
          break;
      }
      burst.insert(burst.end(), frame.begin(), frame.end());
    }
    ASSERT_TRUE(sock->SendChunked(burst).ok()) << "round " << round;

    for (size_t i = 0; i < expected.size(); ++i) {
      auto reply = sock->ReadFrame();
      ASSERT_TRUE(reply.ok()) << "round " << round << " reply " << i << ": "
                              << reply.status();
      EXPECT_EQ(reply->header.request_id, expected[i].request_id)
          << "round " << round << " reply " << i << " out of order";
      EXPECT_EQ(ResponseStatus(*reply).ok(), expected[i].expect_ok)
          << "round " << round << " reply " << i;
    }

    // Every other round, finish with unrecoverable garbage: bad magic is
    // detected from the 20-byte header alone, so sending just the header
    // leaves nothing in flight to race the server's close. The error
    // reply cannot echo an id (the header was never trusted): id 0.
    if (round % 2 == 0) {
      std::vector<uint8_t> bad =
          EncodeFrame(Opcode::kPing, round * 100 + 99, {});
      bad[0] ^= 0xFF;
      ASSERT_TRUE(sock->SendPrefix(bad, kFrameHeaderBytes).ok())
          << "round " << round;
      ++malformed_sent;
      auto reply = sock->ReadFrame();
      ASSERT_TRUE(reply.ok()) << "round " << round << " bad-magic reply: "
                              << reply.status();
      EXPECT_EQ(reply->header.request_id, 0u);
      EXPECT_FALSE(ResponseStatus(*reply).ok());
      // After the error reply to unrecoverable garbage: EOF, not limbo.
      auto past_eof = sock->ReadFrame();
      EXPECT_FALSE(past_eof.ok()) << "round " << round
                                  << ": connection survived bad magic";
    }
    sock->Close();
  }

  EXPECT_EQ(server.Snapshot().protocol_errors - errors_before,
            malformed_sent);
  ASSERT_GT(malformed_sent, 0u) << "fuzz never generated a malformed frame";

  // The process is intact: a well-behaved client still gets service.
  auto client = WalrusClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());
  server.Stop();
}

// Saturating a tiny admission queue through one pipelined connection must
// produce OVERLOADED replies in-sequence with the successes -- rejection
// is not permission to reorder.
TEST_F(ProtocolPipelineFuzzTest, OverloadRepliesStayOrdered) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_pending = 2;
  options.execution_delay_ms = 5;  // hold the worker so the queue fills
  WalrusServer server(*index_, options);
  ASSERT_TRUE(server.Start().ok());

  FlakySocket::Options fopts;
  fopts.seed = 53;
  fopts.max_chunk_bytes = 48;
  auto sock = FlakySocket::Connect(server.port(), fopts);
  ASSERT_TRUE(sock.ok()) << sock.status();

  constexpr uint64_t kRequests = 40;
  std::vector<uint8_t> burst;
  for (uint64_t i = 0; i < kRequests; ++i) {
    std::vector<uint8_t> frame = EncodeFrame(Opcode::kPing, i, {});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(sock->SendChunked(burst).ok());

  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto reply = sock->ReadFrame();
    ASSERT_TRUE(reply.ok()) << "response " << i << ": " << reply.status();
    EXPECT_EQ(reply->header.request_id, i)
        << "OVERLOADED reply broke response ordering";
    Status remote = ResponseStatus(*reply);
    if (remote.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(remote.code(), StatusCode::kUnavailable) << remote;
      ++rejected;
    }
  }
  EXPECT_EQ(accepted + rejected, kRequests);
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u) << "admission queue never overflowed";
  EXPECT_EQ(server.Snapshot().rejected_overload, rejected);
  sock->Close();
  server.Stop();
}

}  // namespace
}  // namespace walrus
