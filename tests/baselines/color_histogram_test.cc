#include "baselines/color_histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

TEST(ColorHistogram, HistogramSumsToOne) {
  ColorHistogramRetriever retriever;
  Rng rng(1);
  ImageF img = MakeValueNoise(32, 32, 4, {0, 0, 0}, {1, 1, 1}, &rng);
  Result<std::vector<float>> hist = retriever.ComputeHistogram(img);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->size(), 64u);  // 4^3 bins
  double sum = 0.0;
  for (float v : *hist) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(ColorHistogram, SolidImageOneBin) {
  ColorHistogramRetriever retriever;
  ImageF img = MakeSolid(16, 16, {0.9f, 0.1f, 0.1f});
  std::vector<float> hist = retriever.ComputeHistogram(img).value();
  int nonzero = 0;
  for (float v : hist) {
    if (v > 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1);
}

TEST(ColorHistogram, SelfQueryDistanceZero) {
  ColorHistogramRetriever retriever;
  ImageF img = MakeSolid(16, 16, {0.2f, 0.6f, 0.8f});
  ASSERT_TRUE(retriever.AddImage(5, img).ok());
  ASSERT_TRUE(retriever.AddImage(6, MakeSolid(16, 16, {0.9f, 0.9f, 0.1f})).ok());
  Result<std::vector<HistogramMatch>> matches = retriever.Query(img, 2);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ((*matches)[0].image_id, 5u);
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-6);
  EXPECT_GT((*matches)[1].distance, 0.5);
}

TEST(ColorHistogram, TranslationInvariantByConstruction) {
  // Histograms ignore location entirely: translated content scores 0.
  ColorHistogramRetriever retriever;
  ImageF base = MakeSolid(64, 64, {0.1f, 0.5f, 0.1f});
  ImageF left = base;
  Composite(&left, MakeSolid(16, 16, {0.9f, 0.1f, 0.1f}), 0, 0);
  ImageF right = base;
  Composite(&right, MakeSolid(16, 16, {0.9f, 0.1f, 0.1f}), 48, 48);
  ASSERT_TRUE(retriever.AddImage(1, right).ok());
  Result<std::vector<HistogramMatch>> matches = retriever.Query(left, 1);
  ASSERT_TRUE(matches.ok());
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-6);
}

TEST(ColorHistogram, BlindToShapeDifferences) {
  // The QBIC weakness (section 1.1): same color mass, different layout.
  ColorHistogramRetriever retriever;
  // Half red / half green, as stripes vs as halves.
  ImageF halves = MakeSolid(64, 64, {0.9f, 0.05f, 0.05f});
  Composite(&halves, MakeSolid(32, 64, {0.05f, 0.9f, 0.05f}), 32, 0);
  ImageF stripes =
      MakeStripes(64, 64, 8, false, {0.9f, 0.05f, 0.05f}, {0.05f, 0.9f, 0.05f});
  ASSERT_TRUE(retriever.AddImage(1, stripes).ok());
  Result<std::vector<HistogramMatch>> matches = retriever.Query(halves, 1);
  ASSERT_TRUE(matches.ok());
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-5);
}

TEST(ColorHistogram, L2Option) {
  ColorHistogramParams params;
  params.use_l1 = false;
  ColorHistogramRetriever retriever(params);
  ImageF a = MakeSolid(8, 8, {0.1f, 0.1f, 0.1f});
  ImageF b = MakeSolid(8, 8, {0.9f, 0.9f, 0.9f});
  ASSERT_TRUE(retriever.AddImage(1, a).ok());
  ASSERT_TRUE(retriever.AddImage(2, b).ok());
  Result<std::vector<HistogramMatch>> matches = retriever.Query(a, 2);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ((*matches)[0].image_id, 1u);
  EXPECT_NEAR((*matches)[1].distance, std::sqrt(2.0), 1e-5);
}

TEST(ColorHistogram, RejectsEmptyImage) {
  ColorHistogramRetriever retriever;
  EXPECT_FALSE(retriever.AddImage(1, ImageF()).ok());
}

}  // namespace
}  // namespace walrus
