#include "baselines/wbiis.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

ImageF NoisyTexture(uint64_t seed) {
  Rng rng(seed);
  return MakeValueNoise(96, 96, 8,
                        {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()},
                        {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()},
                        &rng);
}

TEST(Wbiis, SelfQueryRanksFirst) {
  WbiisRetriever retriever;
  ImageF target = NoisyTexture(1);
  ASSERT_TRUE(retriever.AddImage(10, target).ok());
  for (uint64_t id = 11; id < 16; ++id) {
    ASSERT_TRUE(retriever.AddImage(id, NoisyTexture(id)).ok());
  }
  Result<std::vector<BaselineMatch>> matches = retriever.Query(target, 3);
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 10u);
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-3);
}

TEST(Wbiis, ToleratesMildRescale) {
  // WBIIS rescales internally, so a resized copy of an image should rank
  // above unrelated textures.
  WbiisRetriever retriever;
  ImageF original = NoisyTexture(21);
  ASSERT_TRUE(retriever.AddImage(1, original).ok());
  for (uint64_t id = 2; id < 8; ++id) {
    ASSERT_TRUE(retriever.AddImage(id, NoisyTexture(100 + id)).ok());
  }
  ImageF resized = Resize(original, 80, 120, ResizeFilter::kBilinear);
  Result<std::vector<BaselineMatch>> matches = retriever.Query(resized, 1);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].image_id, 1u);
}

TEST(Wbiis, FailsOnTranslatedObject) {
  // The motivating weakness (paper Figures 1, 7): a whole-image signature
  // is location sensitive, so moving an object hurts the distance more than
  // swapping in a same-background image without it.
  WbiisRetriever retriever;
  ImageF background = MakeSolid(96, 96, {0.2f, 0.55f, 0.2f});
  ImageF object = MakeSolid(40, 40, {0.9f, 0.1f, 0.1f});

  ImageF object_left = background;
  Composite(&object_left, object, 0, 28);
  ImageF object_right = background;
  Composite(&object_right, object, 56, 28);

  ASSERT_TRUE(retriever.AddImage(1, object_right).ok());
  ASSERT_TRUE(retriever.AddImage(2, background).ok());

  Result<std::vector<BaselineMatch>> matches =
      retriever.Query(object_left, 2);
  ASSERT_TRUE(matches.ok());
  double dist_translated = -1.0;
  double dist_background = -1.0;
  for (const BaselineMatch& m : *matches) {
    if (m.image_id == 1) dist_translated = m.distance;
    if (m.image_id == 2) dist_background = m.distance;
  }
  // The translated object does NOT give WBIIS an advantage proportional to
  // the shared content: its distance stays substantial.
  ASSERT_GE(dist_translated, 0.0);
  EXPECT_GT(dist_translated, 0.3 * dist_background);
}

TEST(Wbiis, TopKRespected) {
  WbiisRetriever retriever;
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(retriever.AddImage(id, NoisyTexture(id)).ok());
  }
  Result<std::vector<BaselineMatch>> matches =
      retriever.Query(NoisyTexture(0), 4);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 4u);
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i].distance, (*matches)[i - 1].distance);
  }
}

TEST(Wbiis, RejectsEmptyImage) {
  WbiisRetriever retriever;
  EXPECT_FALSE(retriever.AddImage(1, ImageF()).ok());
}

}  // namespace
}  // namespace walrus
