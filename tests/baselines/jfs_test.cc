#include "baselines/jfs.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "image/color.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

ImageF NoisyTexture(uint64_t seed) {
  Rng rng(seed);
  return MakeValueNoise(64, 64, 6,
                        {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()},
                        {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()},
                        &rng);
}

TEST(Jfs, SelfQueryRanksFirst) {
  JfsRetriever retriever;
  ImageF target = NoisyTexture(1);
  ASSERT_TRUE(retriever.AddImage(100, target).ok());
  for (uint64_t id = 101; id < 107; ++id) {
    ASSERT_TRUE(retriever.AddImage(id, NoisyTexture(id)).ok());
  }
  EXPECT_EQ(retriever.size(), 7u);
  Result<std::vector<JfsMatch>> matches = retriever.Query(target, 3);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 100u);
}

TEST(Jfs, ScoresAreSorted) {
  JfsRetriever retriever;
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(retriever.AddImage(id, NoisyTexture(50 + id)).ok());
  }
  Result<std::vector<JfsMatch>> matches = retriever.Query(NoisyTexture(51), 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 8u);
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i].score, (*matches)[i - 1].score);
  }
}

TEST(Jfs, RobustToMildIntensityShift) {
  // Quantized sign-only coefficients shrug off small global shifts (the
  // claim in [JFS95]); ranking should keep the shifted copy first.
  JfsRetriever retriever;
  ImageF original = NoisyTexture(9);
  ASSERT_TRUE(retriever.AddImage(1, original).ok());
  for (uint64_t id = 2; id < 8; ++id) {
    ASSERT_TRUE(retriever.AddImage(id, NoisyTexture(200 + id)).ok());
  }
  ImageF shifted = ShiftIntensity(original, 0.05f);
  Result<std::vector<JfsMatch>> matches = retriever.Query(shifted, 1);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].image_id, 1u);
}

TEST(Jfs, KeepCoefficientsBoundsSignature) {
  JfsParams params;
  params.keep_coefficients = 10;
  JfsRetriever retriever(params);
  ASSERT_TRUE(retriever.AddImage(1, NoisyTexture(3)).ok());
  // Behavioural proxy: queries still work with a tiny signature.
  Result<std::vector<JfsMatch>> matches = retriever.Query(NoisyTexture(3), 1);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ((*matches)[0].image_id, 1u);
}

TEST(Jfs, RejectsEmptyImage) {
  JfsRetriever retriever;
  EXPECT_FALSE(retriever.AddImage(1, ImageF()).ok());
}

}  // namespace
}  // namespace walrus
