#include "wavelet/quantize.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(Truncate, KeepsLargestMagnitudes) {
  SquareMatrix t(4);
  t.At(0, 0) = 9.0f;   // average, never kept as a coefficient
  t.At(1, 0) = -5.0f;  // index 1
  t.At(2, 0) = 0.5f;   // index 2
  t.At(3, 0) = 3.0f;   // index 3
  t.At(0, 1) = -4.0f;  // index 4
  TruncatedSignature sig = TruncateTransform(t, 2);
  EXPECT_FLOAT_EQ(sig.average, 9.0f);
  ASSERT_EQ(sig.coefficients.size(), 2u);
  // Largest magnitudes: -5 (index 1) and -4 (index 4); sorted by index.
  EXPECT_EQ(sig.coefficients[0].index, 1);
  EXPECT_EQ(sig.coefficients[0].sign, -1);
  EXPECT_EQ(sig.coefficients[1].index, 4);
  EXPECT_EQ(sig.coefficients[1].sign, -1);
}

TEST(Truncate, SkipsZeros) {
  SquareMatrix t(4);
  t.At(1, 1) = 2.0f;
  TruncatedSignature sig = TruncateTransform(t, 10);
  ASSERT_EQ(sig.coefficients.size(), 1u);
  EXPECT_EQ(sig.coefficients[0].index, 5);
  EXPECT_EQ(sig.coefficients[0].sign, 1);
}

TEST(Truncate, KeepZeroGivesOnlyAverage) {
  SquareMatrix t(4);
  t.At(0, 0) = 1.0f;
  t.At(2, 2) = 4.0f;
  TruncatedSignature sig = TruncateTransform(t, 0);
  EXPECT_TRUE(sig.coefficients.empty());
}

TEST(JfsBin, MapsFrequencyLevels) {
  int n = 128;
  EXPECT_EQ(JfsBin(0, n), 0);                 // DC
  EXPECT_EQ(JfsBin(1, n), 0);                 // x=1,y=0
  EXPECT_EQ(JfsBin(n, n), 0);                 // x=0,y=1
  EXPECT_EQ(JfsBin(3, n), 1);                 // x=3 -> level 1
  EXPECT_EQ(JfsBin(5 * n + 9, n), 3);         // max(log2(9)=3, log2(5)=2)
  EXPECT_EQ(JfsBin(127 * n + 127, n), 5);     // clamped at 5
}

TEST(JfsScore, IdenticalSignaturesScoreLowest) {
  Rng rng(6);
  SquareMatrix t(16);
  for (float& v : t.values) v = rng.NextFloat() - 0.5f;
  TruncatedSignature sig = TruncateTransform(t, 20);
  const float weights[6] = {1.0f, 0.8f, 0.6f, 0.5f, 0.4f, 0.3f};

  double self = JfsScore(sig, sig, 16, weights, 2.0f);

  // A disjoint signature scores higher (no common coefficients).
  SquareMatrix other(16);
  for (float& v : other.values) v = rng.NextFloat() - 0.5f;
  other.At(0, 0) = t.At(0, 0);  // same average isolates coefficient effect
  TruncatedSignature sig2 = TruncateTransform(other, 20);
  double cross = JfsScore(sig, sig2, 16, weights, 2.0f);
  EXPECT_LT(self, cross);
}

TEST(JfsScore, AverageDifferencePenalized) {
  TruncatedSignature a;
  a.average = 0.2f;
  TruncatedSignature b;
  b.average = 0.9f;
  const float weights[6] = {1, 1, 1, 1, 1, 1};
  EXPECT_NEAR(JfsScore(a, b, 8, weights, 3.0f), 3.0 * 0.7, 1e-5);
}

TEST(JfsScore, MatchingSignReducesScoreMismatchDoesNot) {
  TruncatedSignature a;
  a.average = 0.0f;
  a.coefficients = {{5, 1}};
  TruncatedSignature match;
  match.coefficients = {{5, 1}};
  TruncatedSignature mismatch;
  mismatch.coefficients = {{5, -1}};
  const float weights[6] = {1, 1, 1, 1, 1, 1};
  EXPECT_LT(JfsScore(a, match, 8, weights, 1.0f),
            JfsScore(a, mismatch, 8, weights, 1.0f));
}

}  // namespace
}  // namespace walrus
