#include "wavelet/sliding_window.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "wavelet/haar2d.h"
#include "wavelet/naive_window.h"

namespace walrus {
namespace {

std::vector<float> RandomPlane(int w, int h, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> plane(static_cast<size_t>(w) * h);
  for (float& v : plane) v = rng.NextFloat();
  return plane;
}

void ExpectGridsEqual(const WindowSignatureGrid& a,
                      const WindowSignatureGrid& b, float tol = 1e-4f) {
  ASSERT_EQ(a.window_size, b.window_size);
  ASSERT_EQ(a.step, b.step);
  ASSERT_EQ(a.nx, b.nx);
  ASSERT_EQ(a.ny, b.ny);
  ASSERT_EQ(a.sig_n, b.sig_n);
  for (int iy = 0; iy < a.ny; ++iy) {
    for (int ix = 0; ix < a.nx; ++ix) {
      const float* pa = a.SigAt(ix, iy);
      const float* pb = b.SigAt(ix, iy);
      for (int k = 0; k < a.SigFloats(); ++k) {
        ASSERT_NEAR(pa[k], pb[k], tol)
            << "window (" << ix << "," << iy << ") coeff " << k
            << " size " << a.window_size;
      }
    }
  }
}

TEST(ComputeSingleWindow, CombinesFourSubwindowTransforms) {
  // Direct check of Figure 4 against a from-scratch transform.
  Rng rng(5);
  SquareMatrix image(8);
  for (float& v : image.values) v = rng.NextFloat();

  // Subwindow transforms (4x4 each).
  SquareMatrix quads[4];
  int offsets[4][2] = {{0, 0}, {4, 0}, {0, 4}, {4, 4}};
  std::vector<std::vector<float>> sub_sigs(4);
  for (int k = 0; k < 4; ++k) {
    SquareMatrix sub(4);
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        sub.At(x, y) = image.At(offsets[k][0] + x, offsets[k][1] + y);
      }
    }
    quads[k] = HaarNonStandard2D(sub);
    sub_sigs[k] = quads[k].values;
  }

  std::vector<float> out(16, 0.0f);
  ComputeSingleWindow(sub_sigs[0].data(), sub_sigs[1].data(),
                      sub_sigs[2].data(), sub_sigs[3].data(),
                      /*src_stride=*/4, out.data(), /*out_stride=*/4,
                      /*p=*/4);

  SquareMatrix expected = UpperLeftBlock(HaarNonStandard2D(image), 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_NEAR(out[y * 4 + x], expected.At(x, y), 1e-5f) << x << "," << y;
    }
  }
}

struct SweepParam {
  int width;
  int height;
  int s;
  int omega;
  int step;
};

class DpVsNaiveSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DpVsNaiveSweep, DynamicProgrammingMatchesNaive) {
  const SweepParam p = GetParam();
  std::vector<float> plane =
      RandomPlane(p.width, p.height, 1000 + p.width + p.omega + p.s + p.step);
  std::vector<WindowSignatureGrid> levels = ComputeSlidingWindowSignatures(
      plane, p.width, p.height, p.s, p.omega, p.step);
  for (const WindowSignatureGrid& grid : levels) {
    WindowSignatureGrid naive = ComputeNaiveWindowSignatures(
        plane, p.width, p.height, p.s, grid.window_size, p.step);
    ExpectGridsEqual(grid, naive);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpVsNaiveSweep,
    ::testing::Values(
        SweepParam{16, 16, 2, 8, 1},    // dense slide
        SweepParam{16, 16, 2, 16, 1},   // window == image
        SweepParam{32, 16, 2, 8, 2},    // non-square image
        SweepParam{32, 32, 4, 16, 1},   // bigger signature
        SweepParam{32, 32, 8, 16, 4},   // s == omega/2
        SweepParam{32, 32, 16, 16, 8},  // s == omega (full transform)
        SweepParam{64, 64, 2, 64, 16},  // large step
        SweepParam{40, 24, 2, 8, 1}));  // non-power-of-two image dims

TEST(SlidingWindow, SignatureMatchesDownsampledWindowTransform) {
  // A 2x2 signature of any window is exactly the Haar transform of the
  // window averaged down to 2x2 -- the scale-invariance anchor.
  int width = 32;
  int height = 32;
  std::vector<float> plane = RandomPlane(width, height, 321);
  WindowSignatureGrid grid =
      ComputeSlidingWindowSignaturesAt(plane, width, height, 2, 8, 4);
  for (int iy = 0; iy < grid.ny; ++iy) {
    for (int ix = 0; ix < grid.nx; ++ix) {
      int x0 = grid.RootX(ix);
      int y0 = grid.RootY(iy);
      // Average the four 4x4 quadrants of the 8x8 window.
      SquareMatrix down(2);
      for (int qy = 0; qy < 2; ++qy) {
        for (int qx = 0; qx < 2; ++qx) {
          double sum = 0.0;
          for (int dy = 0; dy < 4; ++dy) {
            for (int dx = 0; dx < 4; ++dx) {
              sum += plane[(y0 + qy * 4 + dy) * width + x0 + qx * 4 + dx];
            }
          }
          down.At(qx, qy) = static_cast<float>(sum / 16.0);
        }
      }
      SquareMatrix expected = HaarNonStandard2D(down);
      const float* sig = grid.SigAt(ix, iy);
      EXPECT_NEAR(sig[0], expected.At(0, 0), 1e-4f);
      EXPECT_NEAR(sig[1], expected.At(1, 0), 1e-4f);
      EXPECT_NEAR(sig[2], expected.At(0, 1), 1e-4f);
      EXPECT_NEAR(sig[3], expected.At(1, 1), 1e-4f);
    }
  }
}

TEST(SlidingWindow, ScaledObjectKeepsSignature) {
  // A window over a 2x-upscaled pattern has the same 2x2 signature as the
  // original window over the pattern: exactly the paper's scaling claim.
  const int n = 8;
  Rng rng(9);
  std::vector<float> small(n * n);
  for (float& v : small) v = rng.NextFloat();

  // 2x nearest upscale.
  const int big_n = 2 * n;
  std::vector<float> big(big_n * big_n);
  for (int y = 0; y < big_n; ++y) {
    for (int x = 0; x < big_n; ++x) {
      big[y * big_n + x] = small[(y / 2) * n + x / 2];
    }
  }

  WindowSignatureGrid small_grid =
      ComputeSlidingWindowSignaturesAt(small, n, n, 2, n, n);
  WindowSignatureGrid big_grid =
      ComputeSlidingWindowSignaturesAt(big, big_n, big_n, 2, big_n, big_n);
  ASSERT_EQ(small_grid.WindowCount(), 1);
  ASSERT_EQ(big_grid.WindowCount(), 1);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(small_grid.SigAt(0, 0)[k], big_grid.SigAt(0, 0)[k], 1e-4f);
  }
}

TEST(SlidingWindow, LevelsCoverAllPowersOfTwo) {
  std::vector<float> plane = RandomPlane(64, 32, 55);
  std::vector<WindowSignatureGrid> levels =
      ComputeSlidingWindowSignatures(plane, 64, 32, 2, 16, 4);
  ASSERT_EQ(levels.size(), 4u);
  int expected_size = 2;
  for (const WindowSignatureGrid& grid : levels) {
    EXPECT_EQ(grid.window_size, expected_size);
    EXPECT_EQ(grid.step, std::min(expected_size, 4));
    EXPECT_EQ(grid.nx, (64 - expected_size) / grid.step + 1);
    EXPECT_EQ(grid.ny, (32 - expected_size) / grid.step + 1);
    expected_size *= 2;
  }
}

}  // namespace
}  // namespace walrus
