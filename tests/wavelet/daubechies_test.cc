#include "wavelet/daubechies.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(Daub4, StepRoundTrip) {
  Rng rng(3);
  std::vector<float> input(32);
  for (float& v : input) v = rng.NextFloat();
  std::vector<float> transformed, restored;
  Daub4ForwardStep(input, &transformed);
  Daub4InverseStep(transformed, &restored);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(restored[i], input[i], 1e-5f) << i;
  }
}

TEST(Daub4, PreservesEnergy) {
  // The D4 filter bank is orthonormal: one step preserves the L2 norm.
  Rng rng(4);
  std::vector<float> input(64);
  double energy_in = 0.0;
  for (float& v : input) {
    v = rng.NextFloat();
    energy_in += static_cast<double>(v) * v;
  }
  std::vector<float> transformed;
  Daub4ForwardStep(input, &transformed);
  double energy_out = 0.0;
  for (float v : transformed) energy_out += static_cast<double>(v) * v;
  EXPECT_NEAR(energy_in, energy_out, 1e-3);
}

TEST(Daub4, ConstantSignalHasZeroDetails) {
  std::vector<float> input(16, 0.5f);
  std::vector<float> transformed;
  Daub4ForwardStep(input, &transformed);
  for (size_t i = 8; i < 16; ++i) {
    EXPECT_NEAR(transformed[i], 0.0f, 1e-6f) << i;
  }
}

TEST(Daub4, LinearRampHasZeroDetailsAwayFromWrap) {
  // D4 has two vanishing moments: linear signals produce zero details,
  // except where the periodic boundary wraps.
  std::vector<float> input(32);
  for (size_t i = 0; i < input.size(); ++i) input[i] = 0.01f * i;
  std::vector<float> transformed;
  Daub4ForwardStep(input, &transformed);
  // Detail coefficients i = 16..30 correspond to positions 2i..2i+3; the
  // last one touches the wrap-around.
  for (size_t i = 16; i + 2 < 32; ++i) {
    EXPECT_NEAR(transformed[i], 0.0f, 1e-5f) << i;
  }
}

class Daub4Levels : public ::testing::TestWithParam<int> {};

TEST_P(Daub4Levels, Transform2DRoundTrip) {
  int levels = GetParam();
  Rng rng(100 + levels);
  SquareMatrix image(128);
  for (float& v : image.values) v = rng.NextFloat();
  SquareMatrix restored =
      Daub4Inverse2D(Daub4Transform2D(image, levels), levels);
  EXPECT_TRUE(restored.AlmostEquals(image, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Levels, Daub4Levels, ::testing::Values(1, 2, 4, 5));

TEST(Daub4, Transform2DConcentratesEnergyInLowBand) {
  // Natural-ish smooth content: most energy should land in the low-low band.
  SquareMatrix image(64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      image.At(x, y) = 0.5f + 0.4f * std::sin(x * 0.1f) * std::cos(y * 0.07f);
    }
  }
  SquareMatrix t = Daub4Transform2D(image, 3);
  double low = 0.0;
  double total = 0.0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      double e = static_cast<double>(t.At(x, y)) * t.At(x, y);
      total += e;
      if (x < 8 && y < 8) low += e;
    }
  }
  EXPECT_GT(low / total, 0.95);
}

}  // namespace
}  // namespace walrus
