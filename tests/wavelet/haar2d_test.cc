#include "wavelet/haar2d.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

SquareMatrix RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  SquareMatrix m(n);
  for (float& v : m.values) v = rng.NextFloat();
  return m;
}

TEST(Haar2D, TwoByTwoAveragesAndDetails) {
  SquareMatrix image(2);
  image.At(0, 0) = 1.0f;  // p00
  image.At(1, 0) = 3.0f;  // p10
  image.At(0, 1) = 5.0f;  // p01
  image.At(1, 1) = 7.0f;  // p11
  SquareMatrix w = HaarNonStandard2D(image);
  // Figure 2: average, horizontal, vertical and diagonal differences /4.
  EXPECT_FLOAT_EQ(w.At(0, 0), 4.0f);                      // (1+3+5+7)/4
  EXPECT_FLOAT_EQ(w.At(1, 0), (-1 + 3 - 5 + 7) / 4.0f);   // horizontal = 1
  EXPECT_FLOAT_EQ(w.At(0, 1), (-1 - 3 + 5 + 7) / 4.0f);   // vertical = 2
  EXPECT_FLOAT_EQ(w.At(1, 1), (1 - 3 - 5 + 7) / 4.0f);    // diagonal = 0
}

TEST(Haar2D, DcCoefficientIsImageMean) {
  SquareMatrix image = RandomMatrix(32, 5);
  double mean = 0.0;
  for (float v : image.values) mean += v;
  mean /= image.values.size();
  SquareMatrix w = HaarNonStandard2D(image);
  EXPECT_NEAR(w.At(0, 0), mean, 1e-5);
}

TEST(Haar2D, ConstantImageHasOnlyDc) {
  SquareMatrix image(16);
  for (float& v : image.values) v = 0.75f;
  SquareMatrix w = HaarNonStandard2D(image);
  EXPECT_FLOAT_EQ(w.At(0, 0), 0.75f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (x == 0 && y == 0) continue;
      EXPECT_FLOAT_EQ(w.At(x, y), 0.0f) << x << "," << y;
    }
  }
}

class Haar2DRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Haar2DRoundTrip, NonStandardInverseRestoresImage) {
  SquareMatrix image = RandomMatrix(GetParam(), 17 + GetParam());
  SquareMatrix restored = HaarNonStandard2DInverse(HaarNonStandard2D(image));
  EXPECT_TRUE(restored.AlmostEquals(image, 1e-4f));
}

TEST_P(Haar2DRoundTrip, StandardInverseRestoresImage) {
  SquareMatrix image = RandomMatrix(GetParam(), 23 + GetParam());
  SquareMatrix restored = HaarStandard2DInverse(HaarStandard2D(image));
  EXPECT_TRUE(restored.AlmostEquals(image, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Haar2DRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 128));

TEST(Haar2D, NormalizeRoundTrip) {
  SquareMatrix w = HaarNonStandard2D(RandomMatrix(64, 3));
  SquareMatrix copy = w;
  HaarNormalizeNonStandard(&copy);
  HaarDenormalizeNonStandard(&copy);
  EXPECT_TRUE(copy.AlmostEquals(w, 1e-4f));
}

TEST(Haar2D, NormalizationScalesFinestQuadrantsMost) {
  SquareMatrix w(8);
  for (float& v : w.values) v = 1.0f;
  HaarNormalizeNonStandard(&w);
  EXPECT_FLOAT_EQ(w.At(0, 0), 1.0f);       // DC untouched
  EXPECT_FLOAT_EQ(w.At(1, 0), 1.0f);       // coarsest details: /1
  EXPECT_FLOAT_EQ(w.At(2, 0), 0.5f);       // mid quadrant (m=2): /2
  EXPECT_FLOAT_EQ(w.At(3, 1), 0.5f);
  EXPECT_FLOAT_EQ(w.At(4, 0), 0.25f);      // finest quadrant (m=4): /4
  EXPECT_FLOAT_EQ(w.At(7, 7), 0.25f);
}

TEST(Haar2D, UpperLeftBlockOfTransformIsTransformOfAveragedImage) {
  // The identity that makes WALRUS window signatures comparable across
  // window sizes (DESIGN.md section 5): the upper-left m x m block of the
  // transform equals the full transform of the image average-downsampled
  // to m x m.
  SquareMatrix image = RandomMatrix(32, 77);
  SquareMatrix w = HaarNonStandard2D(image);

  // Average-downsample 32 -> 8 by 4x4 boxes.
  SquareMatrix down(8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double sum = 0.0;
      for (int dy = 0; dy < 4; ++dy) {
        for (int dx = 0; dx < 4; ++dx) {
          sum += image.At(4 * x + dx, 4 * y + dy);
        }
      }
      down.At(x, y) = static_cast<float>(sum / 16.0);
    }
  }
  SquareMatrix down_transform = HaarNonStandard2D(down);
  SquareMatrix corner = UpperLeftBlock(w, 8);
  EXPECT_TRUE(corner.AlmostEquals(down_transform, 1e-4f));
}

TEST(Haar2D, StandardAndNonStandardShareDcCoefficient) {
  SquareMatrix image = RandomMatrix(16, 99);
  SquareMatrix ns = HaarNonStandard2D(image);
  SquareMatrix st = HaarStandard2D(image);
  EXPECT_NEAR(ns.At(0, 0), st.At(0, 0), 1e-5f);
}

}  // namespace
}  // namespace walrus
