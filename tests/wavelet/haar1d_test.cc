#include "wavelet/haar1d.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(Haar1D, PaperExample) {
  // Section 3.1: I = [2, 2, 5, 7] -> I' = [4, 2, 0, 1].
  std::vector<float> transform = HaarTransform1D({2, 2, 5, 7});
  ASSERT_EQ(transform.size(), 4u);
  EXPECT_FLOAT_EQ(transform[0], 4.0f);
  EXPECT_FLOAT_EQ(transform[1], 2.0f);
  EXPECT_FLOAT_EQ(transform[2], 0.0f);
  EXPECT_FLOAT_EQ(transform[3], 1.0f);
}

TEST(Haar1D, PaperExampleNormalized) {
  // Normalized form: [4, 2, 0, 1/sqrt(2)].
  std::vector<float> transform = HaarTransform1D({2, 2, 5, 7});
  HaarNormalize1D(&transform);
  EXPECT_FLOAT_EQ(transform[0], 4.0f);
  EXPECT_FLOAT_EQ(transform[1], 2.0f);
  EXPECT_FLOAT_EQ(transform[2], 0.0f);
  EXPECT_NEAR(transform[3], 1.0f / std::sqrt(2.0f), 1e-6f);
}

TEST(Haar1D, SingleElement) {
  std::vector<float> transform = HaarTransform1D({3.5f});
  ASSERT_EQ(transform.size(), 1u);
  EXPECT_FLOAT_EQ(transform[0], 3.5f);
  EXPECT_FLOAT_EQ(HaarInverse1D(transform)[0], 3.5f);
}

TEST(Haar1D, ConstantSignalHasZeroDetails) {
  std::vector<float> transform = HaarTransform1D(std::vector<float>(16, 0.25f));
  EXPECT_FLOAT_EQ(transform[0], 0.25f);
  for (size_t i = 1; i < transform.size(); ++i) {
    EXPECT_FLOAT_EQ(transform[i], 0.0f) << "detail " << i;
  }
}

TEST(Haar1D, FirstCoefficientIsMean) {
  Rng rng(7);
  std::vector<float> input(64);
  double sum = 0.0;
  for (float& v : input) {
    v = rng.NextFloat();
    sum += v;
  }
  std::vector<float> transform = HaarTransform1D(input);
  EXPECT_NEAR(transform[0], sum / input.size(), 1e-5);
}

TEST(Haar1D, RoundTripRandom) {
  Rng rng(42);
  for (size_t n : {2u, 4u, 8u, 32u, 256u}) {
    std::vector<float> input(n);
    for (float& v : input) v = rng.NextFloat();
    std::vector<float> restored = HaarInverse1D(HaarTransform1D(input));
    ASSERT_EQ(restored.size(), input.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(restored[i], input[i], 1e-5f) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Haar1D, NormalizeDenormalizeRoundTrip) {
  Rng rng(9);
  std::vector<float> input(128);
  for (float& v : input) v = rng.NextFloat();
  std::vector<float> transform = HaarTransform1D(input);
  std::vector<float> copy = transform;
  HaarNormalize1D(&copy);
  HaarDenormalize1D(&copy);
  for (size_t i = 0; i < transform.size(); ++i) {
    EXPECT_NEAR(copy[i], transform[i], 1e-5f);
  }
}

TEST(Haar1D, LinearityOfTransform) {
  Rng rng(11);
  std::vector<float> a(32), b(32), sum(32);
  for (size_t i = 0; i < 32; ++i) {
    a[i] = rng.NextFloat();
    b[i] = rng.NextFloat();
    sum[i] = a[i] + b[i];
  }
  std::vector<float> ta = HaarTransform1D(a);
  std::vector<float> tb = HaarTransform1D(b);
  std::vector<float> tsum = HaarTransform1D(sum);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(tsum[i], ta[i] + tb[i], 1e-5f);
  }
}

class Haar1DSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(Haar1DSizeSweep, TruncatingSmallCoefficientsGivesSmallError) {
  // Lossy-compression property from section 3.1: zeroing the finest detail
  // band reconstructs to within the dropped coefficients' magnitude.
  int n = GetParam();
  Rng rng(1234 + n);
  std::vector<float> input(n);
  for (float& v : input) v = 0.5f + 0.01f * rng.NextFloat();
  std::vector<float> transform = HaarTransform1D(input);
  for (size_t i = n / 2; i < transform.size(); ++i) transform[i] = 0.0f;
  std::vector<float> restored = HaarInverse1D(transform);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(restored[i], input[i], 0.02f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Haar1DSizeSweep,
                         ::testing::Values(4, 8, 16, 64, 128, 512));

}  // namespace
}  // namespace walrus
