#include "wavelet/compress.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "image/synth.h"

namespace walrus {
namespace {

ImageF SmoothScene(uint64_t seed) {
  Rng rng(seed);
  return MakeValueNoise(64, 64, 16, {0.1f, 0.2f, 0.3f}, {0.8f, 0.7f, 0.6f},
                        &rng, 2);
}

TEST(Compress, FullKeepIsLossless) {
  ImageF img = SmoothScene(1);
  ImageF restored = CompressImage(img, 1.0);
  EXPECT_LT(MeanSquaredError(img, restored), 1e-8);
}

TEST(Compress, QualityImprovesWithKeepFraction) {
  ImageF img = SmoothScene(2);
  double prev_psnr = -1.0;
  for (double keep : {0.01, 0.05, 0.2, 0.6}) {
    ImageF restored = CompressImage(img, keep);
    double psnr = Psnr(img, restored);
    EXPECT_GE(psnr, prev_psnr) << keep;
    prev_psnr = psnr;
  }
  EXPECT_GT(prev_psnr, 35.0);  // 60% of coefficients: near-transparent
}

TEST(Compress, SmoothImagesCompressWell) {
  // Energy compaction (section 3): a smooth image keeps high quality with
  // a small fraction of coefficients.
  ImageF img = SmoothScene(3);
  ImageF restored = CompressImage(img, 0.05);
  EXPECT_GT(Psnr(img, restored), 30.0);
}

TEST(Compress, ConstantImageNeedsOneCoefficient) {
  ImageF img(32, 32, 3, ColorSpace::kRGB);
  img.Fill(0.42f);
  ImageF restored = CompressImage(img, 1.0 / (32 * 32));
  EXPECT_LT(MeanSquaredError(img, restored), 1e-8);
}

TEST(Compress, NonSquareImagesSupported) {
  Rng rng(4);
  ImageF img = MakeValueNoise(48, 20, 8, {0, 0, 0}, {1, 1, 1}, &rng);
  ImageF restored = CompressImage(img, 0.3);
  EXPECT_EQ(restored.width(), 48);
  EXPECT_EQ(restored.height(), 20);
  EXPECT_GT(Psnr(img, restored), 18.0);
}

TEST(Compress, MseAndPsnrBasics) {
  ImageF a(2, 2, 1, ColorSpace::kGray);
  ImageF b = a;
  EXPECT_DOUBLE_EQ(MeanSquaredError(a, b), 0.0);
  EXPECT_TRUE(std::isinf(Psnr(a, b)));
  b.At(0, 0, 0) = 1.0f;  // one of four pixels off by 1
  EXPECT_DOUBLE_EQ(MeanSquaredError(a, b), 0.25);
  EXPECT_NEAR(Psnr(a, b), 10.0 * std::log10(4.0), 1e-9);
}

TEST(Compress, SignificantFractionTracksComplexity) {
  ImageF flat(64, 64, 3, ColorSpace::kRGB);
  flat.Fill(0.5f);
  Rng rng(5);
  ImageF busy(64, 64, 3, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& v : busy.Plane(c)) v = rng.NextFloat();
  }
  double flat_fraction = SignificantCoefficientFraction(flat, 0.01f);
  double busy_fraction = SignificantCoefficientFraction(busy, 0.01f);
  EXPECT_LT(flat_fraction, 0.01);
  EXPECT_GT(busy_fraction, 10.0 * (flat_fraction + 1e-9));
}

}  // namespace
}  // namespace walrus
