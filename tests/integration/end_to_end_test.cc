#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/color_histogram.h"
#include "baselines/wbiis.h"
#include "core/index.h"
#include "core/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"

namespace walrus {
namespace {

/// Shared fixture: a small synthetic dataset indexed by WALRUS once for the
/// whole suite (indexing dominates the runtime).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetParams dp;
    dp.num_images = 36;
    dp.width = 96;
    dp.height = 96;
    dp.seed = 11;
    dp.min_dominant = 1;
    dp.max_dominant = 2;
    dataset_ = new std::vector<LabeledImage>(GenerateDataset(dp));
    truth_ = new GroundTruth(*dataset_);

    WalrusParams wp;
    wp.min_window = 16;
    wp.max_window = 64;  // multi-scale windows: the paper's scale story
    wp.slide_step = 8;
    wp.cluster_epsilon = 0.05;
    index_ = new WalrusIndex(wp);
    for (const LabeledImage& scene : *dataset_) {
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(scene.id),
                                 "scene_" + std::to_string(scene.id),
                                 scene.image)
                      .ok());
    }
  }

  static void TearDownTestSuite() {
    delete index_;
    delete truth_;
    delete dataset_;
    index_ = nullptr;
    truth_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<LabeledImage>* dataset_;
  static GroundTruth* truth_;
  static WalrusIndex* index_;
};

std::vector<LabeledImage>* EndToEndTest::dataset_ = nullptr;
GroundTruth* EndToEndTest::truth_ = nullptr;
WalrusIndex* EndToEndTest::index_ = nullptr;

TEST_F(EndToEndTest, EveryImageIndexedWithRegions) {
  EXPECT_EQ(index_->ImageCount(), dataset_->size());
  EXPECT_GE(index_->RegionCount(), dataset_->size());
  for (const LabeledImage& scene : *dataset_) {
    Result<std::vector<Region>> regions =
        index_->ImageRegions(static_cast<uint64_t>(scene.id));
    ASSERT_TRUE(regions.ok());
    EXPECT_FALSE(regions->empty()) << scene.id;
  }
}

TEST_F(EndToEndTest, SelfQueryReturnsSelfFirst) {
  QueryOptions options;
  options.epsilon = 0.03f;
  for (int id : {0, 5, 11}) {
    Result<std::vector<QueryMatch>> matches =
        ExecuteQuery(*index_, (*dataset_)[id].image, options);
    ASSERT_TRUE(matches.ok());
    ASSERT_FALSE(matches->empty()) << id;
    // Self must reach (near) full similarity; another image may tie at 1.0
    // under the quick matcher, but nothing may rank strictly above self.
    double self_similarity = -1.0;
    for (const QueryMatch& m : *matches) {
      if (m.image_id == static_cast<uint64_t>(id)) {
        self_similarity = m.similarity;
      }
    }
    ASSERT_GE(self_similarity, 0.0) << "self not retrieved for " << id;
    EXPECT_GT(self_similarity, 0.95) << id;
    EXPECT_LE((*matches)[0].similarity, self_similarity + 1e-9) << id;
  }
}

TEST_F(EndToEndTest, RetrievalBeatsRandomBaseline) {
  // With 6 balanced classes, random precision@5 = 1/6. WALRUS should be
  // well above that averaged over several queries.
  QueryOptions options;
  options.epsilon = 0.085f;
  std::vector<double> precisions;
  for (int id = 0; id < 12; ++id) {
    Result<std::vector<QueryMatch>> matches =
        ExecuteQuery(*index_, (*dataset_)[id].image, options);
    ASSERT_TRUE(matches.ok());
    std::vector<uint64_t> retrieved;
    for (const QueryMatch& m : *matches) {
      if (m.image_id != static_cast<uint64_t>(id)) {
        retrieved.push_back(m.image_id);
      }
    }
    precisions.push_back(
        PrecisionAtK(retrieved, truth_->ForQuery(id), 5));
  }
  EXPECT_GT(MeanOf(precisions), 1.0 / 6 + 0.1);
}

TEST_F(EndToEndTest, PersistedIndexAnswersIdentically) {
  std::string prefix = ::testing::TempDir() + "/walrus_e2e_index";
  ASSERT_TRUE(index_->Save(prefix).ok());
  Result<WalrusIndex> reopened = WalrusIndex::Open(prefix);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  QueryOptions options;
  options.epsilon = 0.06f;
  for (int id : {1, 7}) {
    Result<std::vector<QueryMatch>> a =
        ExecuteQuery(*index_, (*dataset_)[id].image, options);
    Result<std::vector<QueryMatch>> b =
        ExecuteQuery(*reopened, (*dataset_)[id].image, options);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].image_id, (*b)[i].image_id);
      EXPECT_NEAR((*a)[i].similarity, (*b)[i].similarity, 1e-6);
    }
  }
  std::remove((prefix + ".catalog").c_str());
  std::remove((prefix + ".index").c_str());
}

TEST_F(EndToEndTest, GreedyMatcherEndToEnd) {
  QueryOptions options;
  options.epsilon = 0.085f;
  options.matcher = MatcherKind::kGreedy;
  Result<std::vector<QueryMatch>> matches =
      ExecuteQuery(*index_, (*dataset_)[2].image, options);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 2u);
}

TEST_F(EndToEndTest, WalrusHandlesTranslationBetterThanWbiis) {
  // The Figure 7 vs Figure 8 story, quantified: query with object moved,
  // compare the rank of the ground-truth partner image.
  QueryOptions options;
  options.epsilon = 0.085f;

  WbiisRetriever wbiis;
  ColorHistogramRetriever histogram;
  for (const LabeledImage& scene : *dataset_) {
    ASSERT_TRUE(
        wbiis.AddImage(static_cast<uint64_t>(scene.id), scene.image).ok());
    ASSERT_TRUE(
        histogram.AddImage(static_cast<uint64_t>(scene.id), scene.image)
            .ok());
  }

  std::vector<double> walrus_precisions;
  std::vector<double> wbiis_precisions;
  for (int id = 0; id < 12; ++id) {
    RelevanceFn relevant = truth_->ForQuery(id);

    Result<std::vector<QueryMatch>> wq =
        ExecuteQuery(*index_, (*dataset_)[id].image, options);
    ASSERT_TRUE(wq.ok());
    std::vector<uint64_t> walrus_ids;
    for (const QueryMatch& m : *wq) {
      if (m.image_id != static_cast<uint64_t>(id)) {
        walrus_ids.push_back(m.image_id);
      }
    }

    Result<std::vector<BaselineMatch>> bq =
        wbiis.Query((*dataset_)[id].image, 0);
    ASSERT_TRUE(bq.ok());
    std::vector<uint64_t> wbiis_ids;
    for (const BaselineMatch& m : *bq) {
      if (m.image_id != static_cast<uint64_t>(id)) {
        wbiis_ids.push_back(m.image_id);
      }
    }

    walrus_precisions.push_back(PrecisionAtK(walrus_ids, relevant, 5));
    wbiis_precisions.push_back(PrecisionAtK(wbiis_ids, relevant, 5));
  }
  // WALRUS's region model should not lose to the whole-image baseline on
  // this translation/scale-heavy dataset.
  EXPECT_GE(MeanOf(walrus_precisions), MeanOf(wbiis_precisions) - 0.05);
}

}  // namespace
}  // namespace walrus
