#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "common/status.h"
#include "core/index.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "core/sharded_index.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"
#include "wal/live_index.h"

// Golden file checked into the repo; the build injects its source-tree path
// so the test can both read it and regenerate it in place.
#ifndef WALRUS_GOLDEN_FILE
#define WALRUS_GOLDEN_FILE "retrieval_golden.txt"
#endif

namespace walrus {
namespace {

/// Retrieval-regression suite: runs a pinned query workload over a
/// deterministic synthetic corpus and compares ranking-quality metrics
/// against a checked-in golden file. Rank-based metrics (precision, recall,
/// AP, NDCG, self-rank) are stable under tiny floating-point drift, so any
/// delta here means the retrieval behavior itself changed — a refactor
/// reordered results, a matcher scored differently, an index pruned harder.
///
/// To re-pin after an intentional behavior change:
///   WALRUS_UPDATE_GOLDEN=1 ./walrus_slow_tests
/// then review and commit the diff of the golden file like any other code.
constexpr int kNumQueries = 12;
constexpr int kPrecisionK = 5;
constexpr int kRecallK = 10;

class GoldenRegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetParams dp;
    dp.num_images = 36;
    dp.width = 96;
    dp.height = 96;
    dp.seed = 20260806;  // fixed forever: the corpus IS the contract
    dp.min_dominant = 1;
    dp.max_dominant = 2;
    dataset_ = new std::vector<LabeledImage>(GenerateDataset(dp));
    truth_ = new GroundTruth(*dataset_);

    WalrusParams wp;
    wp.min_window = 16;
    wp.max_window = 64;
    wp.slide_step = 8;
    wp.cluster_epsilon = 0.05;
    index_ = new WalrusIndex(wp);
    // Serial insertion: index layout (and thus tie-breaking inside the
    // R*-tree) must not depend on thread scheduling.
    for (const LabeledImage& scene : *dataset_) {
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(scene.id),
                                 "scene_" + std::to_string(scene.id),
                                 scene.image)
                      .ok());
    }
  }

  static void TearDownTestSuite() {
    delete index_;
    delete truth_;
    delete dataset_;
    index_ = nullptr;
    truth_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<LabeledImage>* dataset_;
  static GroundTruth* truth_;
  static WalrusIndex* index_;
};

std::vector<LabeledImage>* GoldenRegressionTest::dataset_ = nullptr;
GroundTruth* GoldenRegressionTest::truth_ = nullptr;
WalrusIndex* GoldenRegressionTest::index_ = nullptr;

/// Ordered so the golden file (and its diffs) stay stable and reviewable.
using MetricMap = std::map<std::string, double>;

std::string Key(int query_id, const char* metric) {
  std::ostringstream out;
  out << "query_" << query_id << "." << metric;
  return out.str();
}

/// Runs the pinned workload and computes every golden metric.
MetricMap ComputeActualMetrics(const QueryEngine& engine,
                               const std::vector<LabeledImage>& dataset,
                               const GroundTruth& truth) {
  QueryOptions options;
  options.epsilon = 0.085f;

  MetricMap actual;
  std::vector<double> precisions, recalls, aps, ndcgs;
  for (int id = 0; id < kNumQueries; ++id) {
    Result<std::vector<QueryMatch>> matches =
        engine.RunQuery(dataset[id].image, options);
    EXPECT_TRUE(matches.ok()) << matches.status();
    if (!matches.ok()) continue;

    // Self-rank (1-based; 0 = self not retrieved) is the most sensitive
    // single indicator: self should win, and losing that is a bug even
    // when the aggregate metrics barely move.
    double self_rank = 0.0;
    std::vector<uint64_t> retrieved;
    for (const QueryMatch& m : *matches) {
      if (m.image_id == static_cast<uint64_t>(id)) {
        if (self_rank == 0.0) {
          self_rank = static_cast<double>(retrieved.size()) + 1.0;
        }
        continue;
      }
      retrieved.push_back(m.image_id);
    }

    RelevanceFn relevant = truth.ForQuery(id);
    int total_relevant = truth.RelevantCount(id);
    double p = PrecisionAtK(retrieved, relevant,
                            kPrecisionK);
    double r = RecallAtK(retrieved, relevant,
                         kRecallK, total_relevant);
    double ap = AveragePrecision(retrieved, relevant, total_relevant);
    double ndcg = NdcgAtK(retrieved, relevant,
                          kRecallK, total_relevant);

    actual[Key(id, "precision_at_5")] = p;
    actual[Key(id, "recall_at_10")] = r;
    actual[Key(id, "average_precision")] = ap;
    actual[Key(id, "ndcg_at_10")] = ndcg;
    actual[Key(id, "self_rank")] = self_rank;
    actual[Key(id, "results")] = static_cast<double>(matches->size());
    precisions.push_back(p);
    recalls.push_back(r);
    aps.push_back(ap);
    ndcgs.push_back(ndcg);
  }
  actual["mean.precision_at_5"] = MeanOf(precisions);
  actual["mean.recall_at_10"] = MeanOf(recalls);
  actual["mean.average_precision"] = MeanOf(aps);
  actual["mean.ndcg_at_10"] = MeanOf(ndcgs);
  return actual;
}

/// Golden format: one `key value` pair per line; '#' starts a comment.
Result<MetricMap> LoadGolden(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("golden file missing: " + path);
  MetricMap golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    double value = 0.0;
    if (!(fields >> key >> value)) {
      return Status::Corruption("unparseable golden line: " + line);
    }
    golden[key] = value;
  }
  return golden;
}

void WriteGolden(const std::string& path, const MetricMap& metrics) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden file: " << path;
  out << "# Pinned retrieval-quality metrics for the golden regression\n"
         "# workload (36 synthetic images, seed 20260806, epsilon 0.085,\n"
         "# 12 queries). Regenerate with WALRUS_UPDATE_GOLDEN=1 after an\n"
         "# intentional retrieval-behavior change and review the diff.\n";
  char buffer[64];
  for (const auto& [key, value] : metrics) {
    std::snprintf(buffer, sizeof(buffer), "%.9f", value);
    out << key << " " << buffer << "\n";
  }
}

TEST_F(GoldenRegressionTest, RetrievalMetricsMatchGolden) {
  const std::string golden_path = WALRUS_GOLDEN_FILE;
  SingleIndexEngine engine(*index_);
  MetricMap actual = ComputeActualMetrics(engine, *dataset_, *truth_);
  ASSERT_FALSE(actual.empty());

  if (std::getenv("WALRUS_UPDATE_GOLDEN") != nullptr) {
    WriteGolden(golden_path, actual);
    GTEST_SKIP() << "golden file regenerated at " << golden_path
                 << "; review and commit the diff";
  }

  Result<MetricMap> golden = LoadGolden(golden_path);
  ASSERT_TRUE(golden.ok())
      << golden.status() << "\nRun with WALRUS_UPDATE_GOLDEN=1 to create it.";

  // Build one readable diff instead of failing on the first key: a real
  // regression usually moves several metrics and the pattern matters.
  constexpr double kTolerance = 1e-6;
  std::ostringstream diff;
  int mismatches = 0;
  for (const auto& [key, expected] : *golden) {
    auto it = actual.find(key);
    if (it == actual.end()) {
      diff << "  " << key << ": golden=" << expected
           << "  actual=<missing>\n";
      ++mismatches;
      continue;
    }
    if (std::abs(it->second - expected) > kTolerance) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %s: golden=%.9f  actual=%.9f  (delta=%+.9f)\n",
                    key.c_str(), expected, it->second,
                    it->second - expected);
      diff << line;
      ++mismatches;
    }
  }
  for (const auto& [key, value] : actual) {
    if (golden->find(key) == golden->end()) {
      diff << "  " << key << ": golden=<missing>  actual=" << value << "\n";
      ++mismatches;
    }
  }

  EXPECT_EQ(mismatches, 0)
      << "Retrieval metrics drifted from " << golden_path << ":\n"
      << diff.str()
      << "If this change is intentional, regenerate with "
         "WALRUS_UPDATE_GOLDEN=1 and commit the updated golden file.";
}

/// The sharded engine must reproduce the golden metrics bit-for-bit: its
/// rankings are byte-identical to the single index by construction
/// (core/sharded_index.h), so the SAME golden file is its acceptance
/// harness. WALRUS_GOLDEN_SHARDS overrides the shard count (default 4).
TEST_F(GoldenRegressionTest, ShardedRetrievalMetricsMatchGolden) {
  int num_shards = 4;
  if (const char* env = std::getenv("WALRUS_GOLDEN_SHARDS")) {
    num_shards = std::atoi(env);
    ASSERT_GE(num_shards, 1);
  }
  ShardedIndex::Options options;
  options.num_shards = num_shards;
  Result<ShardedIndex> sharded = ShardedIndex::Partition(*index_, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  SingleIndexEngine single(*index_);
  MetricMap expected = ComputeActualMetrics(single, *dataset_, *truth_);
  MetricMap actual = ComputeActualMetrics(*sharded, *dataset_, *truth_);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [key, value] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << key;
    // Exact equality, not a tolerance: sharding must not move a single bit.
    EXPECT_EQ(it->second, value) << key << " (shards=" << num_shards << ")";
  }

  Result<MetricMap> golden = LoadGolden(WALRUS_GOLDEN_FILE);
  if (golden.ok()) {
    constexpr double kTolerance = 1e-6;
    for (const auto& [key, value] : *golden) {
      auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << key;
      EXPECT_NEAR(it->second, value, kTolerance)
          << key << " (shards=" << num_shards << ")";
    }
  }
}

std::string FreshLiveDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::string command = "rm -rf " + dir;
  if (std::system(command.c_str()) != 0) ADD_FAILURE() << "cleanup failed";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Live-ingest acceptance (DESIGN.md section 14): seed a live index with
/// two thirds of the golden corpus, ingest the rest online — including a
/// delete + re-insert and a mid-stream durable merge — and require the
/// pinned workload's metrics to match an offline build of all 36 images
/// EXACTLY. Online arrival order, WAL replay framing, tombstone filtering,
/// and base/delta composition must not move a single bit.
void RunLiveIngestGoldenCheck(int num_shards, const char* dir_name,
                              const std::vector<LabeledImage>& dataset,
                              const GroundTruth& truth,
                              const WalrusIndex& offline) {
  constexpr size_t kSeedImages = 24;
  WalrusIndex seed(offline.params());
  for (size_t i = 0; i < kSeedImages; ++i) {
    const LabeledImage& scene = dataset[i];
    ASSERT_TRUE(seed.AddImage(static_cast<uint64_t>(scene.id),
                              "scene_" + std::to_string(scene.id), scene.image)
                    .ok());
  }

  LiveIndex::Options options;
  options.num_shards = num_shards;
  options.merge_threshold = 0;  // merges happen only where the test says
  auto live =
      LiveIndex::Open(FreshLiveDir(dir_name), offline.params(), options, &seed);
  ASSERT_TRUE(live.ok()) << live.status();

  for (size_t i = kSeedImages; i < dataset.size(); ++i) {
    const LabeledImage& scene = dataset[i];
    ASSERT_TRUE((*live)
                    ->InsertImage(static_cast<uint64_t>(scene.id),
                                  "scene_" + std::to_string(scene.id),
                                  scene.image)
                    .ok());
    if (i == kSeedImages + 5) {
      // A base image leaves and comes back through the tombstone path...
      ASSERT_TRUE((*live)->DeleteImage(7).ok());
      ASSERT_TRUE((*live)
                      ->InsertImage(7, "scene_7", dataset[7].image)
                      .ok());
      // ...then everything so far is folded into base generation 2, so the
      // remaining inserts land in a fresh delta on top of a merged base.
      ASSERT_TRUE((*live)->Merge().ok());
    }
  }
  ASSERT_EQ((*live)->ImageCount(), dataset.size());

  SingleIndexEngine single(offline);
  MetricMap expected = ComputeActualMetrics(single, dataset, truth);
  MetricMap actual = ComputeActualMetrics(**live, dataset, truth);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [key, value] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << key;
    // Exact equality: live ingest must not move a single bit.
    EXPECT_EQ(it->second, value) << key << " (shards=" << num_shards << ")";
  }

  Result<MetricMap> golden = LoadGolden(WALRUS_GOLDEN_FILE);
  if (golden.ok()) {
    constexpr double kTolerance = 1e-6;
    for (const auto& [key, value] : *golden) {
      auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << key;
      EXPECT_NEAR(it->second, value, kTolerance)
          << key << " (shards=" << num_shards << ")";
    }
  }
}

TEST_F(GoldenRegressionTest, LiveIngestRetrievalMetricsMatchGolden) {
  RunLiveIngestGoldenCheck(1, "golden_live_single", *dataset_, *truth_,
                           *index_);
}

/// Sharded-base variant: the live composition over a partitioned base must
/// hold the same bit-identity. WALRUS_GOLDEN_SHARDS overrides the count.
TEST_F(GoldenRegressionTest, LiveIngestShardedRetrievalMetricsMatchGolden) {
  int num_shards = 4;
  if (const char* env = std::getenv("WALRUS_GOLDEN_SHARDS")) {
    num_shards = std::atoi(env);
    ASSERT_GE(num_shards, 1);
  }
  RunLiveIngestGoldenCheck(num_shards, "golden_live_sharded", *dataset_,
                           *truth_, *index_);
}

// ---- Signature-prefilter bit-equality (DESIGN.md section 16) ------------
//
// The binary-signature tier is admissible: it may only discard candidates
// the exact epsilon test would reject, so rankings with the prefilter on
// must equal the prefilter-off rankings EXACTLY — same ids, same
// similarities to the last bit, same pair lists — under every engine
// composition and at every SIMD dispatch level.

std::vector<std::vector<QueryMatch>> RunPrefilterWorkload(
    const QueryEngine& engine, const std::vector<LabeledImage>& dataset,
    bool prefilter) {
  QueryOptions options;
  options.epsilon = 0.085f;
  options.collect_pairs = true;  // compare the full payload
  options.signature_prefilter = prefilter;
  std::vector<std::vector<QueryMatch>> results;
  for (int id = 0; id < kNumQueries; ++id) {
    Result<std::vector<QueryMatch>> matches =
        engine.RunQuery(dataset[id].image, options);
    EXPECT_TRUE(matches.ok()) << matches.status();
    results.push_back(matches.ok() ? std::move(*matches)
                                   : std::vector<QueryMatch>{});
  }
  return results;
}

void ExpectIdenticalResults(const std::vector<std::vector<QueryMatch>>& on,
                            const std::vector<std::vector<QueryMatch>>& off,
                            const char* config) {
  ASSERT_EQ(on.size(), off.size()) << config;
  for (size_t q = 0; q < on.size(); ++q) {
    ASSERT_EQ(on[q].size(), off[q].size()) << config << " query " << q;
    for (size_t m = 0; m < on[q].size(); ++m) {
      const QueryMatch& a = on[q][m];
      const QueryMatch& b = off[q][m];
      EXPECT_EQ(a.image_id, b.image_id) << config << " q" << q << " m" << m;
      // Exact double equality: admissibility is not approximate.
      EXPECT_EQ(a.similarity, b.similarity)
          << config << " q" << q << " m" << m;
      EXPECT_EQ(a.matching_pairs, b.matching_pairs)
          << config << " q" << q << " m" << m;
      EXPECT_EQ(a.pairs_used, b.pairs_used)
          << config << " q" << q << " m" << m;
      ASSERT_EQ(a.pairs.size(), b.pairs.size())
          << config << " q" << q << " m" << m;
      for (size_t p = 0; p < a.pairs.size(); ++p) {
        EXPECT_EQ(a.pairs[p].query_index, b.pairs[p].query_index);
        EXPECT_EQ(a.pairs[p].target_index, b.pairs[p].target_index);
      }
    }
  }
}

TEST_F(GoldenRegressionTest, PrefilterRankingsBitIdenticalSingleIndex) {
  SingleIndexEngine engine(*index_);
  ExpectIdenticalResults(RunPrefilterWorkload(engine, *dataset_, true),
                         RunPrefilterWorkload(engine, *dataset_, false),
                         "single");
}

TEST_F(GoldenRegressionTest, PrefilterRankingsBitIdenticalForcedScalar) {
  // Forcing scalar dispatch exercises the reference Hamming/LB kernels end
  // to end; the results must match the vectorized run bit for bit because
  // every kernel is exactness-contracted (common/simd.h).
  SingleIndexEngine engine(*index_);
  auto native_on = RunPrefilterWorkload(engine, *dataset_, true);
  simd::TestOnlySetIsa(simd::IsaLevel::kScalar);
  auto scalar_on = RunPrefilterWorkload(engine, *dataset_, true);
  auto scalar_off = RunPrefilterWorkload(engine, *dataset_, false);
  simd::TestOnlyResetIsa();
  ExpectIdenticalResults(scalar_on, scalar_off, "scalar on/off");
  ExpectIdenticalResults(native_on, scalar_on, "native/scalar");
}

TEST_F(GoldenRegressionTest, PrefilterRankingsBitIdenticalSharded) {
  ShardedIndex::Options options;
  options.num_shards = 8;
  Result<ShardedIndex> sharded = ShardedIndex::Partition(*index_, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ExpectIdenticalResults(RunPrefilterWorkload(*sharded, *dataset_, true),
                         RunPrefilterWorkload(*sharded, *dataset_, false),
                         "sharded");
}

TEST_F(GoldenRegressionTest, PrefilterRankingsBitIdenticalLiveIndex) {
  // Live composition: delta signatures are computed on the fly at insert
  // time (no offline build), tombstones mask base copies.
  constexpr size_t kSeedImages = 24;
  WalrusIndex seed(index_->params());
  for (size_t i = 0; i < kSeedImages; ++i) {
    const LabeledImage& scene = (*dataset_)[i];
    ASSERT_TRUE(seed.AddImage(static_cast<uint64_t>(scene.id),
                              "scene_" + std::to_string(scene.id), scene.image)
                    .ok());
  }
  LiveIndex::Options options;
  options.merge_threshold = 0;
  auto live = LiveIndex::Open(FreshLiveDir("golden_prefilter_live"),
                              index_->params(), options, &seed);
  ASSERT_TRUE(live.ok()) << live.status();
  for (size_t i = kSeedImages; i < dataset_->size(); ++i) {
    const LabeledImage& scene = (*dataset_)[i];
    ASSERT_TRUE((*live)
                    ->InsertImage(static_cast<uint64_t>(scene.id),
                                  "scene_" + std::to_string(scene.id),
                                  scene.image)
                    .ok());
  }
  ExpectIdenticalResults(RunPrefilterWorkload(**live, *dataset_, true),
                         RunPrefilterWorkload(**live, *dataset_, false),
                         "live");
}

/// The workload itself must stay sane regardless of the pinned numbers:
/// self-retrieval is the floor any index build must clear. If this fails,
/// fix retrieval before re-pinning the golden file.
TEST_F(GoldenRegressionTest, WorkloadSanitySelfRetrievalWorks) {
  SingleIndexEngine engine(*index_);
  MetricMap actual = ComputeActualMetrics(engine, *dataset_, *truth_);
  for (int id = 0; id < kNumQueries; ++id) {
    auto it = actual.find(Key(id, "self_rank"));
    ASSERT_NE(it, actual.end());
    EXPECT_GE(it->second, 1.0) << "query " << id << " did not retrieve self";
    EXPECT_LE(it->second, 3.0) << "query " << id << " ranked self too low";
  }
  EXPECT_GT(actual["mean.precision_at_5"], 1.0 / 6);
}

}  // namespace
}  // namespace walrus
