#include "image/image.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(ImageF, DefaultIsEmpty) {
  ImageF img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.PixelCount(), 0);
}

TEST(ImageF, ConstructZeroFilled) {
  ImageF img(4, 3, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.PixelCount(), 12);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 4; ++x) {
        EXPECT_FLOAT_EQ(img.At(c, x, y), 0.0f);
      }
    }
  }
}

TEST(ImageF, AtReadsWhatWasWritten) {
  ImageF img(8, 8, 3);
  img.At(1, 3, 5) = 0.7f;
  EXPECT_FLOAT_EQ(img.At(1, 3, 5), 0.7f);
  EXPECT_FLOAT_EQ(img.At(0, 3, 5), 0.0f);
  EXPECT_FLOAT_EQ(img.At(1, 5, 3), 0.0f);
}

TEST(ImageF, AtClampedExtendsBorders) {
  ImageF img(2, 2, 1);
  img.At(0, 0, 0) = 0.1f;
  img.At(0, 1, 0) = 0.2f;
  img.At(0, 0, 1) = 0.3f;
  img.At(0, 1, 1) = 0.4f;
  EXPECT_FLOAT_EQ(img.AtClamped(0, -5, -5), 0.1f);
  EXPECT_FLOAT_EQ(img.AtClamped(0, 10, -1), 0.2f);
  EXPECT_FLOAT_EQ(img.AtClamped(0, -1, 10), 0.3f);
  EXPECT_FLOAT_EQ(img.AtClamped(0, 10, 10), 0.4f);
}

TEST(ImageF, FillAndPixelAccessors) {
  ImageF img(3, 3, 3);
  img.Fill(0.25f);
  EXPECT_EQ(img.GetPixel(2, 2), std::vector<float>({0.25f, 0.25f, 0.25f}));
  img.SetPixel(1, 1, {0.1f, 0.2f, 0.3f});
  EXPECT_EQ(img.GetPixel(1, 1), std::vector<float>({0.1f, 0.2f, 0.3f}));
}

TEST(ImageF, ClampToUnit) {
  ImageF img(2, 1, 1);
  img.At(0, 0, 0) = -0.5f;
  img.At(0, 1, 0) = 1.5f;
  img.ClampToUnit();
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.At(0, 1, 0), 1.0f);
}

TEST(ImageF, CropExtractsSubimage) {
  ImageF img(6, 6, 1);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) img.At(0, x, y) = x + 10.0f * y;
  }
  ImageF crop = img.Crop(2, 3, 3, 2);
  EXPECT_EQ(crop.width(), 3);
  EXPECT_EQ(crop.height(), 2);
  EXPECT_FLOAT_EQ(crop.At(0, 0, 0), 2 + 30.0f);
  EXPECT_FLOAT_EQ(crop.At(0, 2, 1), 4 + 40.0f);
}

TEST(ImageF, ChannelMean) {
  ImageF img(2, 2, 1);
  img.At(0, 0, 0) = 0.0f;
  img.At(0, 1, 0) = 1.0f;
  img.At(0, 0, 1) = 1.0f;
  img.At(0, 1, 1) = 0.0f;
  EXPECT_DOUBLE_EQ(img.ChannelMean(0), 0.5);
}

TEST(ImageF, AlmostEquals) {
  ImageF a(2, 2, 1);
  ImageF b(2, 2, 1);
  EXPECT_TRUE(a.AlmostEquals(b));
  b.At(0, 0, 0) = 1e-7f;
  EXPECT_TRUE(a.AlmostEquals(b, 1e-6f));
  b.At(0, 0, 0) = 0.1f;
  EXPECT_FALSE(a.AlmostEquals(b, 1e-6f));
  ImageF c(2, 3, 1);
  EXPECT_FALSE(a.AlmostEquals(c));
}

TEST(ImageF, ColorSpaceTagging) {
  ImageF img(1, 1, 3, ColorSpace::kYCC);
  EXPECT_EQ(img.color_space(), ColorSpace::kYCC);
  img.set_color_space(ColorSpace::kRGB);
  EXPECT_EQ(img.color_space(), ColorSpace::kRGB);
  EXPECT_STREQ(ColorSpaceName(ColorSpace::kYIQ), "YIQ");
  EXPECT_STREQ(ColorSpaceName(ColorSpace::kGray), "Gray");
}

}  // namespace
}  // namespace walrus
