#include "image/transform.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

ImageF Ramp(int w, int h) {
  ImageF img(w, h, 1, ColorSpace::kGray);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.At(0, x, y) = static_cast<float>(x + y * w) / (w * h);
    }
  }
  return img;
}

TEST(Resize, IdentityKeepsImage) {
  ImageF img = Ramp(8, 6);
  for (ResizeFilter f : {ResizeFilter::kNearest, ResizeFilter::kBilinear,
                         ResizeFilter::kBoxAverage}) {
    ImageF out = Resize(img, 8, 6, f);
    EXPECT_TRUE(out.AlmostEquals(img, 1e-5f)) << static_cast<int>(f);
  }
}

TEST(Resize, BoxAveragePreservesMean) {
  Rng rng(2);
  ImageF img(16, 16, 1, ColorSpace::kGray);
  for (float& v : img.Plane(0)) v = rng.NextFloat();
  ImageF down = Resize(img, 4, 4, ResizeFilter::kBoxAverage);
  EXPECT_NEAR(down.ChannelMean(0), img.ChannelMean(0), 1e-5);
}

TEST(Resize, UpscaleConstantStaysConstant) {
  ImageF img(4, 4, 3);
  img.Fill(0.37f);
  for (ResizeFilter f : {ResizeFilter::kNearest, ResizeFilter::kBilinear,
                         ResizeFilter::kBoxAverage}) {
    ImageF up = Resize(img, 13, 9, f);
    EXPECT_EQ(up.width(), 13);
    EXPECT_EQ(up.height(), 9);
    for (int c = 0; c < 3; ++c) {
      for (float v : up.Plane(c)) ASSERT_NEAR(v, 0.37f, 1e-5f);
    }
  }
}

TEST(Flip, HorizontalTwiceIsIdentity) {
  ImageF img = Ramp(7, 5);
  EXPECT_TRUE(FlipHorizontal(FlipHorizontal(img)).AlmostEquals(img));
  EXPECT_FALSE(FlipHorizontal(img).AlmostEquals(img));
}

TEST(Flip, VerticalMovesTopRowToBottom) {
  ImageF img = Ramp(3, 3);
  ImageF flipped = FlipVertical(img);
  for (int x = 0; x < 3; ++x) {
    EXPECT_FLOAT_EQ(flipped.At(0, x, 0), img.At(0, x, 2));
    EXPECT_FLOAT_EQ(flipped.At(0, x, 2), img.At(0, x, 0));
  }
}

TEST(Rotate90, FourTimesIsIdentity) {
  ImageF img = Ramp(6, 4);
  ImageF rotated = Rotate90(Rotate90(Rotate90(Rotate90(img))));
  EXPECT_TRUE(rotated.AlmostEquals(img));
}

TEST(Rotate90, SwapsDimensions) {
  ImageF img = Ramp(6, 4);
  ImageF rotated = Rotate90(img);
  EXPECT_EQ(rotated.width(), 4);
  EXPECT_EQ(rotated.height(), 6);
  // Top-left goes to top-right.
  EXPECT_FLOAT_EQ(rotated.At(0, 3, 0), img.At(0, 0, 0));
}

TEST(Rotate, ZeroDegreesIsIdentity) {
  ImageF img = Ramp(9, 7);
  EXPECT_TRUE(Rotate(img, 0.0f).AlmostEquals(img, 1e-5f));
}

TEST(Rotate, NinetyDegreesMatchesRotate90OnSquare) {
  // Arbitrary-angle rotation at 90 degrees agrees with the exact version
  // away from boundary interpolation.
  ImageF img = Ramp(17, 17);
  ImageF exact = Rotate90(img);
  ImageF interp = Rotate(img, 90.0f);
  int mismatches = 0;
  for (int y = 2; y < 15; ++y) {
    for (int x = 2; x < 15; ++x) {
      if (std::abs(exact.At(0, x, y) - interp.At(0, x, y)) > 1e-3f) {
        ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(Rotate, RoundTripRecoversInterior) {
  ImageF img = Ramp(33, 33);
  ImageF back = Rotate(Rotate(img, 30.0f), -30.0f);
  // The interior survives the round trip (corners get clipped to fill).
  for (int y = 12; y < 21; ++y) {
    for (int x = 12; x < 21; ++x) {
      EXPECT_NEAR(back.At(0, x, y), img.At(0, x, y), 0.02f) << x << "," << y;
    }
  }
}

TEST(Rotate, FillAppearsInCorners) {
  ImageF img(16, 16, 1, ColorSpace::kGray);
  img.Fill(1.0f);
  ImageF rotated = Rotate(img, 45.0f, 0.0f);
  // Rotating a square by 45 degrees clips the corners to the fill value.
  EXPECT_LT(rotated.At(0, 0, 0), 0.5f);
  EXPECT_LT(rotated.At(0, 15, 15), 0.5f);
  // The center is untouched.
  EXPECT_NEAR(rotated.At(0, 8, 8), 1.0f, 1e-3f);
}

TEST(Translate, ShiftsContentAndFills) {
  ImageF img = Ramp(4, 4);
  ImageF shifted = Translate(img, 2, 1, -1.0f);
  EXPECT_FLOAT_EQ(shifted.At(0, 0, 0), -1.0f);  // vacated
  EXPECT_FLOAT_EQ(shifted.At(0, 2, 1), img.At(0, 0, 0));
  EXPECT_FLOAT_EQ(shifted.At(0, 3, 3), img.At(0, 1, 2));
}

TEST(TranslateWrap, IsPeriodic) {
  ImageF img = Ramp(5, 3);
  ImageF wrapped = TranslateWrap(img, 5, 3);
  EXPECT_TRUE(wrapped.AlmostEquals(img));
  ImageF once = TranslateWrap(img, 2, 1);
  ImageF back = TranslateWrap(once, -2, -1);
  EXPECT_TRUE(back.AlmostEquals(img));
}

TEST(Composite, PastesWithClipping) {
  ImageF canvas(4, 4, 1, ColorSpace::kGray);
  ImageF patch(2, 2, 1, ColorSpace::kGray);
  patch.Fill(1.0f);
  Composite(&canvas, patch, 3, 3);  // only 1 pixel lands
  EXPECT_FLOAT_EQ(canvas.At(0, 3, 3), 1.0f);
  EXPECT_FLOAT_EQ(canvas.At(0, 2, 2), 0.0f);
  Composite(&canvas, patch, -1, -1);  // only lower-right pixel lands
  EXPECT_FLOAT_EQ(canvas.At(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(canvas.At(0, 1, 0), 0.0f);
}

TEST(Composite, MaskBlends) {
  ImageF canvas(1, 1, 1, ColorSpace::kGray);
  canvas.Fill(0.0f);
  ImageF patch(1, 1, 1, ColorSpace::kGray);
  patch.Fill(1.0f);
  ImageF mask(1, 1, 1, ColorSpace::kGray);
  mask.Fill(0.25f);
  Composite(&canvas, patch, 0, 0, &mask);
  EXPECT_FLOAT_EQ(canvas.At(0, 0, 0), 0.25f);
}

TEST(Noise, ZeroSigmaIsIdentity) {
  Rng rng(1);
  ImageF img = Ramp(4, 4);
  EXPECT_TRUE(AddGaussianNoise(img, 0.0f, &rng).AlmostEquals(img));
}

TEST(Noise, PerturbsWithinReason) {
  Rng rng(2);
  ImageF img(32, 32, 1, ColorSpace::kGray);
  img.Fill(0.5f);
  ImageF noisy = AddGaussianNoise(img, 0.05f, &rng);
  EXPECT_NEAR(noisy.ChannelMean(0), 0.5, 0.01);
  EXPECT_FALSE(noisy.AlmostEquals(img, 1e-4f));
}

TEST(Posterize, QuantizesToLevels) {
  ImageF img(3, 1, 1, ColorSpace::kGray);
  img.At(0, 0, 0) = 0.1f;
  img.At(0, 1, 0) = 0.5f;
  img.At(0, 2, 0) = 0.8f;
  ImageF p = Posterize(img, 2);  // only 0 or 1
  EXPECT_FLOAT_EQ(p.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p.At(0, 1, 0), 1.0f);  // 0.5 rounds up
  EXPECT_FLOAT_EQ(p.At(0, 2, 0), 1.0f);
  ImageF p3 = Posterize(img, 3);  // 0, 0.5, 1
  EXPECT_FLOAT_EQ(p3.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p3.At(0, 1, 0), 0.5f);
}

}  // namespace
}  // namespace walrus
