#include "image/synth.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(Synth, SolidIsUniform) {
  ImageF img = MakeSolid(8, 8, {0.2f, 0.4f, 0.6f});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_FLOAT_EQ(img.At(0, x, y), 0.2f);
      EXPECT_FLOAT_EQ(img.At(1, x, y), 0.4f);
      EXPECT_FLOAT_EQ(img.At(2, x, y), 0.6f);
    }
  }
}

TEST(Synth, GradientEndpoints) {
  ImageF img = MakeLinearGradient(4, 16, {0, 0, 0}, {1, 1, 1});
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.At(0, 0, 15), 1.0f);
  EXPECT_GT(img.At(0, 0, 10), img.At(0, 0, 3));
  ImageF horizontal = MakeLinearGradient(16, 4, {0, 0, 0}, {1, 1, 1}, true);
  EXPECT_FLOAT_EQ(horizontal.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(horizontal.At(0, 15, 0), 1.0f);
}

TEST(Synth, CheckerboardAlternates) {
  ImageF img = MakeCheckerboard(8, 8, 2, {0, 0, 0}, {1, 1, 1});
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.At(0, 2, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.At(0, 0, 2), 1.0f);
  EXPECT_FLOAT_EQ(img.At(0, 2, 2), 0.0f);
}

TEST(Synth, StripesPeriod) {
  ImageF img = MakeStripes(16, 2, 8, false, {0, 0, 0}, {1, 1, 1});
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.At(0, 4, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.At(0, 8, 0), 0.0f);
}

TEST(Synth, ValueNoiseInRangeAndVaried) {
  Rng rng(5);
  ImageF img = MakeValueNoise(32, 32, 8, {0, 0, 0}, {1, 1, 1}, &rng);
  float lo = 1.0f;
  float hi = 0.0f;
  for (float v : img.Plane(0)) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.2f);  // actually textured, not flat
}

TEST(Synth, ValueNoiseDeterministicPerSeed) {
  Rng rng_a(5);
  Rng rng_b(5);
  ImageF a = MakeValueNoise(16, 16, 4, {0, 0, 0}, {1, 1, 1}, &rng_a);
  ImageF b = MakeValueNoise(16, 16, 4, {0, 0, 0}, {1, 1, 1}, &rng_b);
  EXPECT_TRUE(a.AlmostEquals(b));
}

TEST(Synth, BrickWallHasMortarLines) {
  Rng rng(6);
  Color3 brick{0.6f, 0.25f, 0.15f};
  Color3 grout{0.75f, 0.7f, 0.65f};
  ImageF img = MakeBrickWall(64, 64, 14, 6, 2, brick, grout, &rng);
  // Row 6 (first mortar course) should be mostly grout-colored.
  int groutish = 0;
  for (int x = 0; x < 64; ++x) {
    if (std::abs(img.At(0, x, 6) - grout.r) < 0.08f) ++groutish;
  }
  EXPECT_GT(groutish, 48);
}

TEST(Synth, GrassIsGreenDominant) {
  Rng rng(7);
  ImageF img = MakeGrass(32, 32, {0.2f, 0.55f, 0.15f}, &rng);
  EXPECT_GT(img.ChannelMean(1), img.ChannelMean(0));
  EXPECT_GT(img.ChannelMean(1), img.ChannelMean(2));
}

class ObjectRenderTest : public ::testing::TestWithParam<int> {};

TEST_P(ObjectRenderTest, ProducesNonEmptyMaskInsideBounds) {
  ObjectClass cls = static_cast<ObjectClass>(GetParam());
  Rng rng(100 + GetParam());
  ImageF patch, mask;
  RenderObject(cls, 32, ObjectStyle{}, &rng, &patch, &mask);
  ASSERT_EQ(patch.width(), 32);
  ASSERT_EQ(mask.channels(), 1);
  double coverage = mask.ChannelMean(0);
  EXPECT_GT(coverage, 0.1) << ObjectClassName(cls);
  EXPECT_LT(coverage, 0.95) << ObjectClassName(cls);
  for (float v : mask.Plane(0)) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
  // Colors are valid wherever the mask is set.
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (mask.At(0, x, y) > 0.0f) {
        for (int c = 0; c < 3; ++c) {
          ASSERT_GE(patch.At(c, x, y), 0.0f);
          ASSERT_LE(patch.At(c, x, y), 1.0f);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, ObjectRenderTest,
                         ::testing::Range(0, kNumObjectClasses));

TEST(Synth, ObjectClassesAreChromaticallyDistinct) {
  // Flowers skew red, leaves skew green, balls skew blue.
  Rng rng(8);
  ImageF flower, fmask, leaf, lmask, ball, bmask;
  RenderObject(ObjectClass::kFlower, 32, {}, &rng, &flower, &fmask);
  RenderObject(ObjectClass::kLeaf, 32, {}, &rng, &leaf, &lmask);
  RenderObject(ObjectClass::kBall, 32, {}, &rng, &ball, &bmask);

  auto masked_mean = [](const ImageF& img, const ImageF& mask, int c) {
    double sum = 0.0, weight = 0.0;
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        double m = mask.At(0, x, y);
        sum += m * img.At(c, x, y);
        weight += m;
      }
    }
    return sum / weight;
  };
  EXPECT_GT(masked_mean(flower, fmask, 0), masked_mean(flower, fmask, 2));
  EXPECT_GT(masked_mean(leaf, lmask, 1), masked_mean(leaf, lmask, 0));
  EXPECT_GT(masked_mean(ball, bmask, 2), masked_mean(ball, bmask, 0));
}

TEST(Synth, LerpColor) {
  Color3 mid = LerpColor({0, 0, 0}, {1.0f, 0.5f, 0.0f}, 0.5f);
  EXPECT_FLOAT_EQ(mid.r, 0.5f);
  EXPECT_FLOAT_EQ(mid.g, 0.25f);
  EXPECT_FLOAT_EQ(mid.b, 0.0f);
}

}  // namespace
}  // namespace walrus
