#include "image/color.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

TEST(Color, YccNeutralGray) {
  float y, cb, cr;
  RgbToYccPixel(0.5f, 0.5f, 0.5f, &y, &cb, &cr);
  EXPECT_NEAR(y, 0.5f, 1e-5f);
  EXPECT_NEAR(cb, 0.5f, 1e-5f);  // neutral chroma maps to 0.5
  EXPECT_NEAR(cr, 0.5f, 1e-5f);
}

TEST(Color, YccPureRedHasHighCr) {
  float y, cb, cr;
  RgbToYccPixel(1.0f, 0.0f, 0.0f, &y, &cb, &cr);
  EXPECT_NEAR(y, 0.299f, 1e-4f);
  EXPECT_GT(cr, 0.9f);
  EXPECT_LT(cb, 0.4f);
}

TEST(Color, YccRoundTripPixel) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    float r = rng.NextFloat(), g = rng.NextFloat(), b = rng.NextFloat();
    float y, cb, cr, r2, g2, b2;
    RgbToYccPixel(r, g, b, &y, &cb, &cr);
    YccToRgbPixel(y, cb, cr, &r2, &g2, &b2);
    EXPECT_NEAR(r2, r, 1e-3f);
    EXPECT_NEAR(g2, g, 1e-3f);
    EXPECT_NEAR(b2, b, 1e-3f);
  }
}

TEST(Color, YiqRoundTripPixel) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    float r = rng.NextFloat(), g = rng.NextFloat(), b = rng.NextFloat();
    float y, iq, q, r2, g2, b2;
    RgbToYiqPixel(r, g, b, &y, &iq, &q);
    EXPECT_GE(iq, 0.0f);
    EXPECT_LE(iq, 1.0f);
    YiqToRgbPixel(y, iq, q, &r2, &g2, &b2);
    EXPECT_NEAR(r2, r, 2e-3f);
    EXPECT_NEAR(g2, g, 2e-3f);
    EXPECT_NEAR(b2, b, 2e-3f);
  }
}

TEST(Color, HsvKnownValues) {
  float h, s, v;
  RgbToHsvPixel(1.0f, 0.0f, 0.0f, &h, &s, &v);  // pure red
  EXPECT_NEAR(h, 0.0f, 1e-5f);
  EXPECT_NEAR(s, 1.0f, 1e-5f);
  EXPECT_NEAR(v, 1.0f, 1e-5f);
  RgbToHsvPixel(0.0f, 1.0f, 0.0f, &h, &s, &v);  // pure green
  EXPECT_NEAR(h, 1.0f / 3.0f, 1e-5f);
  RgbToHsvPixel(0.3f, 0.3f, 0.3f, &h, &s, &v);  // gray: no saturation
  EXPECT_NEAR(s, 0.0f, 1e-5f);
  EXPECT_NEAR(v, 0.3f, 1e-5f);
}

TEST(Color, HsvRoundTripPixel) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    float r = rng.NextFloat(), g = rng.NextFloat(), b = rng.NextFloat();
    float h, s, v, r2, g2, b2;
    RgbToHsvPixel(r, g, b, &h, &s, &v);
    HsvToRgbPixel(h, s, v, &r2, &g2, &b2);
    EXPECT_NEAR(r2, r, 1e-4f);
    EXPECT_NEAR(g2, g, 1e-4f);
    EXPECT_NEAR(b2, b, 1e-4f);
  }
}

TEST(Color, ConvertImageRoundTrip) {
  Rng rng(4);
  ImageF rgb(8, 6, 3, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& p : rgb.Plane(c)) p = rng.NextFloat();
  }
  for (ColorSpace cs :
       {ColorSpace::kYCC, ColorSpace::kYIQ, ColorSpace::kHSV}) {
    Result<ImageF> converted = ConvertColorSpace(rgb, cs);
    ASSERT_TRUE(converted.ok());
    EXPECT_EQ(converted->color_space(), cs);
    Result<ImageF> back = ConvertColorSpace(*converted, ColorSpace::kRGB);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->AlmostEquals(rgb, 5e-3f)) << ColorSpaceName(cs);
  }
}

TEST(Color, ConvertToGray) {
  ImageF rgb(2, 1, 3, ColorSpace::kRGB);
  rgb.SetPixel(0, 0, {1.0f, 1.0f, 1.0f});
  rgb.SetPixel(1, 0, {1.0f, 0.0f, 0.0f});
  Result<ImageF> gray = ConvertColorSpace(rgb, ColorSpace::kGray);
  ASSERT_TRUE(gray.ok());
  EXPECT_EQ(gray->channels(), 1);
  EXPECT_NEAR(gray->At(0, 0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(gray->At(0, 1, 0), 0.299f, 1e-5f);
}

TEST(Color, GrayBackToRgbReplicates) {
  ImageF gray(1, 1, 1, ColorSpace::kGray);
  gray.At(0, 0, 0) = 0.6f;
  Result<ImageF> rgb = ConvertColorSpace(gray, ColorSpace::kRGB);
  ASSERT_TRUE(rgb.ok());
  EXPECT_EQ(rgb->channels(), 3);
  for (int c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(rgb->At(c, 0, 0), 0.6f);
}

TEST(Color, IdentityConversionIsNoOp) {
  ImageF rgb(2, 2, 3, ColorSpace::kRGB);
  rgb.Fill(0.3f);
  Result<ImageF> same = ConvertColorSpace(rgb, ColorSpace::kRGB);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->AlmostEquals(rgb));
}

TEST(Color, ShiftIntensityClamps) {
  ImageF img(2, 1, 3, ColorSpace::kRGB);
  img.SetPixel(0, 0, {0.9f, 0.5f, 0.1f});
  img.SetPixel(1, 0, {0.0f, 0.2f, 1.0f});
  ImageF shifted = ShiftIntensity(img, 0.3f);
  EXPECT_FLOAT_EQ(shifted.At(0, 0, 0), 1.0f);  // clamped
  EXPECT_FLOAT_EQ(shifted.At(1, 0, 0), 0.8f);
  EXPECT_FLOAT_EQ(shifted.At(2, 1, 0), 1.0f);
}

TEST(Color, YccIntensityShiftMovesOnlyLuma) {
  // Wavelet robustness to color shifts (section 3) relies on shifts living
  // mostly in the Y channel under YCC.
  ImageF rgb(1, 1, 3, ColorSpace::kRGB);
  rgb.SetPixel(0, 0, {0.4f, 0.5f, 0.6f});
  ImageF shifted = ShiftIntensity(rgb, 0.2f);
  ImageF ycc_a = ConvertColorSpace(rgb, ColorSpace::kYCC).value();
  ImageF ycc_b = ConvertColorSpace(shifted, ColorSpace::kYCC).value();
  EXPECT_NEAR(ycc_b.At(0, 0, 0) - ycc_a.At(0, 0, 0), 0.2f, 1e-3f);
  EXPECT_NEAR(ycc_b.At(1, 0, 0), ycc_a.At(1, 0, 0), 1e-3f);
  EXPECT_NEAR(ycc_b.At(2, 0, 0), ycc_a.At(2, 0, 0), 1e-3f);
}

}  // namespace
}  // namespace walrus
