#include "image/dataset.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

DatasetParams SmallParams() {
  DatasetParams p;
  p.num_images = 12;
  p.width = 64;
  p.height = 64;
  p.seed = 7;
  return p;
}

TEST(Dataset, GeneratesRequestedCount) {
  std::vector<LabeledImage> data = GenerateDataset(SmallParams());
  ASSERT_EQ(data.size(), 12u);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].id, static_cast<int>(i));
    EXPECT_EQ(data[i].image.width(), 64);
    EXPECT_EQ(data[i].image.height(), 64);
    EXPECT_EQ(data[i].image.channels(), 3);
  }
}

TEST(Dataset, LabelsCycleUniformly) {
  std::vector<LabeledImage> data = GenerateDataset(SmallParams());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(static_cast<int>(data[i].label),
              static_cast<int>(i) % kNumObjectClasses);
  }
}

TEST(Dataset, DeterministicForSeed) {
  std::vector<LabeledImage> a = GenerateDataset(SmallParams());
  std::vector<LabeledImage> b = GenerateDataset(SmallParams());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].image.AlmostEquals(b[i].image)) << i;
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  DatasetParams p = SmallParams();
  std::vector<LabeledImage> a = GenerateDataset(p);
  p.seed = 8;
  std::vector<LabeledImage> b = GenerateDataset(p);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].image.AlmostEquals(b[i].image, 1e-3f)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Dataset, PlacementsRecordedAndInRange) {
  DatasetParams p = SmallParams();
  p.min_dominant = 2;
  p.max_dominant = 3;
  std::vector<LabeledImage> data = GenerateDataset(p);
  for (const LabeledImage& scene : data) {
    EXPECT_GE(scene.placements.size(), 2u);
    EXPECT_LE(scene.placements.size(), 3u);
    for (const auto& placement : scene.placements) {
      EXPECT_GE(placement.size, 8);
      EXPECT_LE(placement.size,
                static_cast<int>(p.max_scale * 64) + 1);
    }
  }
}

TEST(Dataset, PixelValuesInUnitRange) {
  std::vector<LabeledImage> data = GenerateDataset(SmallParams());
  for (const LabeledImage& scene : data) {
    for (int c = 0; c < 3; ++c) {
      for (float v : scene.image.Plane(c)) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LE(v, 1.0f);
      }
    }
  }
}

TEST(Dataset, SaveWritesFilesAndManifest) {
  DatasetParams p = SmallParams();
  p.num_images = 3;
  std::vector<LabeledImage> data = GenerateDataset(p);
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveDataset(data, dir).ok());
  for (int i = 0; i < 3; ++i) {
    std::string path = dir + "/img_" + std::to_string(i) + ".ppm";
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    fclose(f);
    std::remove(path.c_str());
  }
  std::string manifest = dir + "/labels.txt";
  FILE* f = fopen(manifest.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  fclose(f);
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace walrus
