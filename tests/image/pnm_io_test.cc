#include "image/pnm_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

ImageF RandomImage(int w, int h, int channels, uint64_t seed) {
  Rng rng(seed);
  ImageF img(w, h, channels,
             channels == 3 ? ColorSpace::kRGB : ColorSpace::kGray);
  for (int c = 0; c < channels; ++c) {
    for (float& v : img.Plane(c)) v = rng.NextFloat();
  }
  return img;
}

TEST(PnmIo, EncodeHeaderP6) {
  ImageF img(5, 7, 3);
  Result<std::vector<uint8_t>> bytes = EncodePnm(img);
  ASSERT_TRUE(bytes.ok());
  std::string head(bytes->begin(), bytes->begin() + 11);
  EXPECT_EQ(head, "P6\n5 7\n255\n");
  EXPECT_EQ(bytes->size(), 11u + 5 * 7 * 3);
}

TEST(PnmIo, RoundTripColor) {
  ImageF img = RandomImage(17, 9, 3, 5);
  Result<ImageF> decoded = DecodePnm(EncodePnm(img).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 17);
  EXPECT_EQ(decoded->height(), 9);
  EXPECT_EQ(decoded->channels(), 3);
  // 8-bit quantization: half-step tolerance.
  EXPECT_TRUE(decoded->AlmostEquals(img, 0.5f / 255.0f + 1e-5f));
}

TEST(PnmIo, RoundTripGray) {
  ImageF img = RandomImage(8, 8, 1, 6);
  Result<ImageF> decoded = DecodePnm(EncodePnm(img).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->channels(), 1);
  EXPECT_EQ(decoded->color_space(), ColorSpace::kGray);
  EXPECT_TRUE(decoded->AlmostEquals(img, 0.5f / 255.0f + 1e-5f));
}

TEST(PnmIo, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/walrus_pnm_test.ppm";
  ImageF img = RandomImage(12, 4, 3, 7);
  ASSERT_TRUE(WritePnm(img, path).ok());
  Result<ImageF> read = ReadPnm(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->AlmostEquals(img, 0.5f / 255.0f + 1e-5f));
  std::remove(path.c_str());
}

TEST(PnmIo, CommentsInHeaderSkipped) {
  std::string data = "P5\n# a comment\n2 1\n# another\n255\n\x10\x20";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  Result<ImageF> img = DecodePnm(bytes);
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->width(), 2);
  EXPECT_NEAR(img->At(0, 0, 0), 0x10 / 255.0f, 1e-5f);
  EXPECT_NEAR(img->At(0, 1, 0), 0x20 / 255.0f, 1e-5f);
}

TEST(PnmIo, AsciiP2Decodes) {
  std::string data = "P2\n3 2\n255\n0 128 255\n64 32 16\n";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  Result<ImageF> img = DecodePnm(bytes);
  ASSERT_TRUE(img.ok()) << img.status();
  EXPECT_EQ(img->width(), 3);
  EXPECT_EQ(img->height(), 2);
  EXPECT_EQ(img->channels(), 1);
  EXPECT_NEAR(img->At(0, 1, 0), 128 / 255.0f, 1e-5f);
  EXPECT_NEAR(img->At(0, 2, 1), 16 / 255.0f, 1e-5f);
}

TEST(PnmIo, AsciiP3DecodesWithCustomMaxval) {
  std::string data = "P3\n2 1\n15\n15 0 0  0 15 0\n";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  Result<ImageF> img = DecodePnm(bytes);
  ASSERT_TRUE(img.ok()) << img.status();
  EXPECT_EQ(img->channels(), 3);
  EXPECT_NEAR(img->At(0, 0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(img->At(1, 1, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(img->At(2, 1, 0), 0.0f, 1e-5f);
}

TEST(PnmIo, AsciiRejectsSampleAboveMaxval) {
  std::string data = "P2\n1 1\n100\n101\n";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  EXPECT_FALSE(DecodePnm(bytes).ok());
}

TEST(PnmIo, AsciiRejectsTruncatedRaster) {
  std::string data = "P3\n2 2\n255\n1 2 3\n";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  EXPECT_FALSE(DecodePnm(bytes).ok());
}

TEST(PnmIo, RejectsBadMagic) {
  std::string data = "P3\n1 1\n255\nxyz";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  EXPECT_FALSE(DecodePnm(bytes).ok());
}

TEST(PnmIo, RejectsTruncatedRaster) {
  std::string data = "P5\n4 4\n255\nxy";  // needs 16 bytes, has 2
  std::vector<uint8_t> bytes(data.begin(), data.end());
  Result<ImageF> img = DecodePnm(bytes);
  ASSERT_FALSE(img.ok());
  EXPECT_EQ(img.status().code(), StatusCode::kCorruption);
}

TEST(PnmIo, RejectsNonUnitMaxval) {
  std::string data = "P5\n1 1\n65535\nxx";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  EXPECT_FALSE(DecodePnm(bytes).ok());
}

TEST(PnmIo, RejectsTwoChannelImage) {
  ImageF img(2, 2, 2);
  EXPECT_FALSE(EncodePnm(img).ok());
}

TEST(PnmIo, RejectsEmptyImage) {
  EXPECT_FALSE(EncodePnm(ImageF()).ok());
}

}  // namespace
}  // namespace walrus
