// Robustness fuzzing for the PNM codec: arbitrary bytes and corrupted valid
// files must produce Status errors, never crashes or out-of-bounds reads.

#include <gtest/gtest.h>

#include "common/random.h"
#include "image/pnm_io.h"

namespace walrus {
namespace {

TEST(PnmFuzz, RandomGarbageNeverCrashes) {
  Rng rng(1001);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes(rng.NextInt(0, 300));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.NextU32());
    Result<ImageF> result = DecodePnm(bytes);
    if (result.ok()) {
      // Astronomically unlikely, but if it parses it must be well-formed.
      EXPECT_GT(result->width(), 0);
      EXPECT_GT(result->height(), 0);
    }
  }
}

TEST(PnmFuzz, GarbageWithValidMagicNeverCrashes) {
  Rng rng(1002);
  for (int trial = 0; trial < 500; ++trial) {
    std::string header = trial % 2 == 0 ? "P6\n" : "P5\n";
    std::vector<uint8_t> bytes(header.begin(), header.end());
    int extra = rng.NextInt(0, 100);
    for (int i = 0; i < extra; ++i) {
      // Mix digits, whitespace and junk to exercise the header parser.
      uint32_t pick = rng.NextBounded(4);
      char c;
      if (pick == 0) {
        c = static_cast<char>('0' + rng.NextBounded(10));
      } else if (pick == 1) {
        c = ' ';
      } else if (pick == 2) {
        c = '\n';
      } else {
        c = static_cast<char>(rng.NextU32());
      }
      bytes.push_back(static_cast<uint8_t>(c));
    }
    (void)DecodePnm(bytes);  // must not crash
  }
}

TEST(PnmFuzz, TruncatedValidFilesReturnErrors) {
  Rng rng(1003);
  ImageF img(13, 9, 3, ColorSpace::kRGB);
  for (float& v : img.Plane(0)) v = rng.NextFloat();
  std::vector<uint8_t> valid = EncodePnm(img).value();
  // Every strict prefix must fail cleanly.
  for (size_t len = 0; len < valid.size(); len += 7) {
    std::vector<uint8_t> prefix(valid.begin(), valid.begin() + len);
    Result<ImageF> result = DecodePnm(prefix);
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
  }
  // The full file still decodes.
  EXPECT_TRUE(DecodePnm(valid).ok());
}

TEST(PnmFuzz, SingleByteCorruptionNeverCrashes) {
  Rng rng(1004);
  ImageF img(8, 8, 1, ColorSpace::kGray);
  for (float& v : img.Plane(0)) v = rng.NextFloat();
  std::vector<uint8_t> valid = EncodePnm(img).value();
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = valid;
    size_t pos = rng.NextBounded(static_cast<uint32_t>(mutated.size()));
    mutated[pos] = static_cast<uint8_t>(rng.NextU32());
    Result<ImageF> result = DecodePnm(mutated);
    if (result.ok()) {
      // Raster corruption still yields a structurally valid image.
      EXPECT_EQ(result->PixelCount(), 64);
    }
  }
}

TEST(PnmFuzz, HugeClaimedDimensionsRejected) {
  std::string data = "P5\n999999999 999999999\n255\nxx";
  std::vector<uint8_t> bytes(data.begin(), data.end());
  Result<ImageF> result = DecodePnm(bytes);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace walrus
