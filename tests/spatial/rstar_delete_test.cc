#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/rstar_tree.h"

namespace walrus {
namespace {

Rect RandomPointRect(Rng* rng, int dim) {
  std::vector<float> p(dim);
  for (float& v : p) v = rng->NextFloat();
  return Rect::Point(p);
}

TEST(RStarDelete, DeleteFromSingleLeaf) {
  RStarTree tree(2);
  Rect r = Rect::Point({0.5f, 0.5f});
  tree.Insert(r, 1);
  tree.Insert(Rect::Point({0.2f, 0.2f}), 2);
  ASSERT_TRUE(tree.Delete(r, 1).ok());
  EXPECT_EQ(tree.size(), 1);
  std::vector<uint64_t> hits =
      tree.RangeSearch(Rect::Bounds({0, 0}, {1, 1}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate();
}

TEST(RStarDelete, MissingEntryIsNotFound) {
  RStarTree tree(2);
  tree.Insert(Rect::Point({0.5f, 0.5f}), 1);
  Status missing_payload = tree.Delete(Rect::Point({0.5f, 0.5f}), 99);
  EXPECT_EQ(missing_payload.code(), StatusCode::kNotFound);
  Status missing_rect = tree.Delete(Rect::Point({0.1f, 0.1f}), 1);
  EXPECT_EQ(missing_rect.code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.size(), 1);
}

TEST(RStarDelete, DrainEntireTree) {
  Rng rng(31);
  RStarTree tree(3);
  std::vector<Rect> rects;
  for (int i = 0; i < 500; ++i) {
    rects.push_back(RandomPointRect(&rng, 3));
    tree.Insert(rects.back(), static_cast<uint64_t>(i));
  }
  // Delete in random order.
  std::vector<int> order = rng.Permutation(500);
  for (int step = 0; step < 500; ++step) {
    int id = order[step];
    ASSERT_TRUE(tree.Delete(rects[id], static_cast<uint64_t>(id)).ok())
        << "step " << step;
    if (step % 50 == 49) {
      ASSERT_TRUE(tree.Validate().ok())
          << step << ": " << tree.Validate();
    }
  }
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(
      tree.RangeSearch(Rect::Bounds({-1, -1, -1}, {2, 2, 2})).empty());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate();
  // Tree remains usable after draining.
  tree.Insert(Rect::Point({0.5f, 0.5f, 0.5f}), 777);
  EXPECT_EQ(tree.size(), 1);
}

TEST(RStarDelete, InterleavedFuzzMatchesBruteForce) {
  Rng rng(77);
  const int dim = 4;
  RStarTree tree(dim);
  std::map<uint64_t, Rect> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    bool do_insert = live.empty() || rng.NextBernoulli(0.6);
    if (do_insert) {
      Rect r = RandomPointRect(&rng, dim);
      tree.Insert(r, next_id);
      live[next_id] = r;
      ++next_id;
    } else {
      // Delete a random live entry.
      auto it = live.begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(live.size())));
      ASSERT_TRUE(tree.Delete(it->second, it->first).ok()) << step;
      live.erase(it);
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(tree.Validate().ok())
          << step << ": " << tree.Validate();
      // Spot-check a range query against the live set.
      std::vector<float> lo(dim), hi(dim);
      for (int d = 0; d < dim; ++d) {
        lo[d] = rng.NextFloat() * 0.7f;
        hi[d] = lo[d] + 0.3f;
      }
      Rect query = Rect::Bounds(lo, hi);
      std::vector<uint64_t> got = tree.RangeSearch(query);
      std::sort(got.begin(), got.end());
      std::vector<uint64_t> want;
      for (const auto& [id, rect] : live) {
        if (rect.Intersects(query)) want.push_back(id);
      }
      ASSERT_EQ(got, want) << step;
    }
  }
  EXPECT_EQ(tree.size(), static_cast<int64_t>(live.size()));
}

TEST(RStarDelete, DeleteIfRemovesMatchingPayloads) {
  Rng rng(5);
  RStarTree tree(2);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  int64_t removed =
      tree.DeleteIf([](uint64_t payload) { return payload % 3 == 0; });
  EXPECT_EQ(removed, 100);
  EXPECT_EQ(tree.size(), 200);
  for (uint64_t payload : tree.RangeSearch(Rect::Bounds({-1, -1}, {2, 2}))) {
    EXPECT_NE(payload % 3, 0u);
  }
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate();
}

TEST(RStarDelete, DuplicateRectsDeleteByPayload) {
  RStarTree tree(2);
  Rect r = Rect::Point({0.5f, 0.5f});
  for (uint64_t id = 0; id < 40; ++id) tree.Insert(r, id);
  ASSERT_TRUE(tree.Delete(r, 17).ok());
  EXPECT_EQ(tree.size(), 39);
  std::vector<uint64_t> hits = tree.RangeSearch(r.Expanded(1e-6f));
  EXPECT_EQ(hits.size(), 39u);
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 17u), 0);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate();
}

TEST(RStarDelete, BoxRectsSurviveCondense) {
  Rng rng(9);
  RStarParams params;
  params.max_entries = 4;  // aggressive underflow
  RStarTree tree(2, params);
  std::vector<Rect> rects;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> lo = {rng.NextFloat(), rng.NextFloat()};
    std::vector<float> hi = {lo[0] + 0.05f * rng.NextFloat(),
                             lo[1] + 0.05f * rng.NextFloat()};
    rects.push_back(Rect::Bounds(lo, hi));
    tree.Insert(rects.back(), static_cast<uint64_t>(i));
  }
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Delete(rects[i], static_cast<uint64_t>(i)).ok()) << i;
  }
  EXPECT_EQ(tree.size(), 50);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate();
  std::vector<uint64_t> all = tree.RangeSearch(Rect::Bounds({-1, -1}, {2, 2}));
  EXPECT_EQ(all.size(), 50u);
}

}  // namespace
}  // namespace walrus
