#include <cstring>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"
#include "spatial/rstar_tree.h"

namespace walrus {
namespace {

/// A multi-level tree (default max_entries = 16, so 200 entries force
/// splits) with deterministic pseudo-random points.
RStarTree BuildTree(int num_entries) {
  RStarTree tree(2);
  Rng rng(7);
  for (int i = 0; i < num_entries; ++i) {
    std::vector<float> p = {rng.NextFloat(), rng.NextFloat()};
    tree.Insert(Rect::Point(p), static_cast<uint64_t>(i));
  }
  return tree;
}

TEST(RStarCorruption, HealthyTreeValidates) {
  RStarTree tree = BuildTree(200);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(RStarCorruption, ValidateDetectsCorruptedMbr) {
  RStarTree tree = BuildTree(200);
  BinaryWriter writer;
  tree.Serialize(&writer);
  std::vector<uint8_t> bytes = writer.buffer();

  // The serialized stream ends with the rightmost leaf's last entry:
  // ... rect(lo floats, hi floats) payload(u64). Grow that entry's last hi
  // coordinate so the rect stays well-formed but escapes every ancestor MBR
  // computed when the tree was healthy.
  ASSERT_GE(bytes.size(), 12u);
  size_t hi_pos = bytes.size() - 8 - 4;
  float hi;
  std::memcpy(&hi, bytes.data() + hi_pos, 4);
  hi += 1000.0f;
  std::memcpy(bytes.data() + hi_pos, &hi, 4);

  BinaryReader reader(bytes);
  Result<RStarTree> corrupted = RStarTree::Deserialize(&reader);
  // Deserialize trusts stored rects (the rect is still well-formed); the
  // deep validator is what must catch the inconsistency.
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  Status status = corrupted->Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status;
}

TEST(RStarCorruption, SerializeRoundTripStaysValid) {
  RStarTree tree = BuildTree(120);
  BinaryWriter writer;
  tree.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Result<RStarTree> loaded = RStarTree::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->Validate().ok());
}

}  // namespace
}  // namespace walrus
