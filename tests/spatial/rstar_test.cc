#include "spatial/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

Rect RandomPointRect(Rng* rng, int dim) {
  std::vector<float> p(dim);
  for (float& v : p) v = rng->NextFloat();
  return Rect::Point(p);
}

Rect RandomBoxRect(Rng* rng, int dim, float max_side) {
  std::vector<float> lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    lo[i] = rng->NextFloat();
    hi[i] = lo[i] + max_side * rng->NextFloat();
  }
  return Rect::Bounds(lo, hi);
}

TEST(RStarTree, EmptyTreeQueries) {
  RStarTree tree(2);
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.RangeSearch(Rect::Bounds({0, 0}, {1, 1})).empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(RStarTree, SingleInsertAndHit) {
  RStarTree tree(2);
  tree.Insert(Rect::Point({0.5f, 0.5f}), 42);
  EXPECT_EQ(tree.size(), 1);
  std::vector<uint64_t> hits = tree.RangeSearch(Rect::Bounds({0, 0}, {1, 1}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(tree.RangeSearch(Rect::Bounds({0.6f, 0.6f}, {1, 1})).empty());
}

class RStarRandomized : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RStarRandomized, RangeSearchMatchesBruteForce) {
  auto [dim, n] = GetParam();
  Rng rng(dim * 1000 + n);
  RStarTree tree(dim);
  std::vector<Rect> rects;
  for (int i = 0; i < n; ++i) {
    Rect r = (i % 2 == 0) ? RandomPointRect(&rng, dim)
                          : RandomBoxRect(&rng, dim, 0.1f);
    rects.push_back(r);
    tree.Insert(r, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate();
  EXPECT_EQ(tree.size(), n);

  for (int trial = 0; trial < 20; ++trial) {
    Rect query = RandomBoxRect(&rng, dim, 0.3f);
    std::vector<uint64_t> got = tree.RangeSearch(query);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (int i = 0; i < n; ++i) {
      if (rects[i].Intersects(query)) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "dim=" << dim << " n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RStarRandomized,
    ::testing::Values(std::make_tuple(2, 50), std::make_tuple(2, 500),
                      std::make_tuple(3, 200), std::make_tuple(12, 300),
                      std::make_tuple(12, 1000)));

TEST(RStarTree, NearestNeighborsMatchBruteForce) {
  const int dim = 4;
  const int n = 400;
  Rng rng(77);
  RStarTree tree(dim);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(dim);
    for (float& v : p) v = rng.NextFloat();
    points.push_back(p);
    tree.Insert(Rect::Point(p), static_cast<uint64_t>(i));
  }
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(dim);
    for (float& v : q) v = rng.NextFloat();
    auto got = tree.NearestNeighbors(q, 5);
    ASSERT_EQ(got.size(), 5u);

    std::vector<std::pair<double, uint64_t>> brute;
    for (int i = 0; i < n; ++i) {
      double d = 0;
      for (int k = 0; k < dim; ++k) {
        double diff = points[i][k] - q[k];
        d += diff * diff;
      }
      brute.emplace_back(std::sqrt(d), i);
    }
    std::sort(brute.begin(), brute.end());
    for (int k = 0; k < 5; ++k) {
      EXPECT_NEAR(got[k].second, brute[k].first, 1e-6) << trial << " " << k;
    }
    // Distances must be non-decreasing.
    for (int k = 1; k < 5; ++k) {
      EXPECT_GE(got[k].second, got[k - 1].second);
    }
  }
}

TEST(RStarTree, DuplicatePointsAllRetrieved) {
  RStarTree tree(2);
  for (int i = 0; i < 50; ++i) {
    tree.Insert(Rect::Point({0.5f, 0.5f}), static_cast<uint64_t>(i));
  }
  std::vector<uint64_t> hits =
      tree.RangeSearch(Rect::Point({0.5f, 0.5f}).Expanded(1e-6f));
  EXPECT_EQ(hits.size(), 50u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(RStarTree, HeightGrowsLogarithmically) {
  Rng rng(5);
  RStarTree tree(2);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  // M = 16, 2000 entries: height should stay small.
  EXPECT_LE(tree.height(), 5);
  EXPECT_GE(tree.height(), 2);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate();
}

TEST(RStarTree, VisitorEarlyStop) {
  Rng rng(6);
  RStarTree tree(2);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  int visited = 0;
  tree.RangeSearchVisit(Rect::Bounds({0, 0}, {1, 1}),
                        [&visited](const Rect&, uint64_t) {
                          ++visited;
                          return visited < 7;
                        });
  EXPECT_EQ(visited, 7);
}

TEST(RStarTree, SerializeDeserializeRoundTrip) {
  Rng rng(9);
  RStarParams params;
  params.max_entries = 8;
  RStarTree tree(3, params);
  std::vector<Rect> rects;
  for (int i = 0; i < 300; ++i) {
    Rect r = RandomBoxRect(&rng, 3, 0.05f);
    rects.push_back(r);
    tree.Insert(r, static_cast<uint64_t>(i * 7));
  }
  BinaryWriter writer;
  tree.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Result<RStarTree> restored = RStarTree::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), tree.size());
  EXPECT_EQ(restored->dim(), 3);
  EXPECT_TRUE(restored->Validate().ok())
      << restored->Validate();

  for (int trial = 0; trial < 10; ++trial) {
    Rect query = RandomBoxRect(&rng, 3, 0.3f);
    std::vector<uint64_t> a = tree.RangeSearch(query);
    std::vector<uint64_t> b = restored->RangeSearch(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(RStarTree, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  BinaryReader reader(garbage);
  EXPECT_FALSE(RStarTree::Deserialize(&reader).ok());
}

TEST(RStarTree, InsertionsAfterDeserialize) {
  Rng rng(11);
  RStarTree tree(2);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  BinaryWriter writer;
  tree.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  RStarTree restored = std::move(RStarTree::Deserialize(&reader)).value();
  for (int i = 100; i < 200; ++i) {
    restored.Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(restored.size(), 200);
  EXPECT_TRUE(restored.Validate().ok()) << restored.Validate();
}

TEST(RStarTree, SmallNodeCapacityStressed) {
  Rng rng(13);
  RStarParams params;
  params.max_entries = 4;  // forces many splits and reinserts
  RStarTree tree(2, params);
  std::vector<Rect> rects;
  for (int i = 0; i < 600; ++i) {
    Rect r = RandomPointRect(&rng, 2);
    rects.push_back(r);
    tree.Insert(r, static_cast<uint64_t>(i));
    if (i % 100 == 99) {
      ASSERT_TRUE(tree.Validate().ok())
          << i << ": " << tree.Validate();
    }
  }
  Rect everything = Rect::Bounds({-1, -1}, {2, 2});
  EXPECT_EQ(tree.RangeSearch(everything).size(), 600u);
}

}  // namespace
}  // namespace walrus
