// The quadratic-split / no-reinsert (classic Guttman R-tree) configuration
// must satisfy the same correctness contract as the default R* policy.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/rstar_tree.h"

namespace walrus {
namespace {

Rect RandomPointRect(Rng* rng, int dim) {
  std::vector<float> p(dim);
  for (float& v : p) v = rng->NextFloat();
  return Rect::Point(p);
}

RStarParams QuadraticParams() {
  RStarParams params;
  params.split_policy = SplitPolicy::kQuadratic;
  params.use_forced_reinsert = false;  // plain Guttman R-tree behaviour
  return params;
}

TEST(RStarPolicy, QuadraticRangeSearchMatchesBruteForce) {
  Rng rng(21);
  const int dim = 3;
  RStarTree tree(dim, QuadraticParams());
  std::vector<Rect> rects;
  for (int i = 0; i < 800; ++i) {
    rects.push_back(RandomPointRect(&rng, dim));
    tree.Insert(rects.back(), static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate();
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat() * 0.7f;
      hi[d] = lo[d] + 0.3f;
    }
    Rect query = Rect::Bounds(lo, hi);
    std::vector<uint64_t> got = tree.RangeSearch(query);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (int i = 0; i < 800; ++i) {
      if (rects[i].Intersects(query)) want.push_back(i);
    }
    EXPECT_EQ(got, want) << trial;
  }
}

TEST(RStarPolicy, QuadraticSupportsDeletes) {
  Rng rng(22);
  RStarTree tree(2, QuadraticParams());
  std::vector<Rect> rects;
  for (int i = 0; i < 300; ++i) {
    rects.push_back(RandomPointRect(&rng, 2));
    tree.Insert(rects.back(), static_cast<uint64_t>(i));
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Delete(rects[i], static_cast<uint64_t>(i)).ok()) << i;
  }
  EXPECT_EQ(tree.size(), 100);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate();
}

TEST(RStarPolicy, PolicySurvivesSerialization) {
  Rng rng(23);
  RStarTree tree(2, QuadraticParams());
  for (int i = 0; i < 100; ++i) {
    tree.Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  BinaryWriter writer;
  tree.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = RStarTree::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // Inserts after reload keep working under the restored policy.
  for (int i = 100; i < 400; ++i) {
    restored->Insert(RandomPointRect(&rng, 2), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(restored->size(), 400);
  EXPECT_TRUE(restored->Validate().ok())
      << restored->Validate();
}

TEST(RStarPolicy, RStarProbesNoMoreNodesThanQuadratic) {
  // The R* split + forced reinsert should yield equal-or-tighter trees:
  // compare nodes visited on identical range probes (clustered data where
  // split quality matters).
  Rng rng(24);
  const int dim = 2;
  RStarParams rstar_params;
  RStarTree rstar(dim, rstar_params);
  RStarTree quadratic(dim, QuadraticParams());
  for (int i = 0; i < 3000; ++i) {
    // Clustered points: 30 blobs.
    int blob = rng.NextInt(0, 29);
    float cx = (blob % 6) / 6.0f;
    float cy = (blob / 6) / 5.0f;
    std::vector<float> p = {cx + 0.05f * rng.NextFloat(),
                            cy + 0.05f * rng.NextFloat()};
    Rect r = Rect::Point(p);
    rstar.Insert(r, static_cast<uint64_t>(i));
    quadratic.Insert(r, static_cast<uint64_t>(i));
  }
  int64_t rstar_nodes = 0;
  int64_t quadratic_nodes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> lo = {rng.NextFloat() * 0.9f, rng.NextFloat() * 0.9f};
    Rect query = Rect::Bounds(lo, {lo[0] + 0.08f, lo[1] + 0.08f});
    std::vector<uint64_t> a = rstar.RangeSearch(query);
    rstar_nodes += rstar.last_nodes_visited();
    std::vector<uint64_t> b = quadratic.RangeSearch(query);
    quadratic_nodes += quadratic.last_nodes_visited();
    // Same answers regardless of structure.
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << trial;
  }
  // Allow a little slack; over 50 probes R* should not be meaningfully
  // worse than the quadratic/no-reinsert build.
  EXPECT_LE(rstar_nodes, quadratic_nodes * 1.15 + 50);
}

}  // namespace
}  // namespace walrus
