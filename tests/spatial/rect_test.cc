#include "spatial/rect.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(Rect, PointRectIsDegenerate) {
  Rect r = Rect::Point({1.0f, 2.0f});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.dim(), 2);
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 0.0);
  EXPECT_TRUE(r.Contains({1.0f, 2.0f}));
  EXPECT_FALSE(r.Contains({1.0f, 2.1f}));
}

TEST(Rect, BoundsBasics) {
  Rect r = Rect::Bounds({0, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
  std::vector<float> c = r.Center();
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 1.5f);
}

TEST(Rect, EmptyBehaviour) {
  Rect e = Rect::Empty(2);
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Intersects(Rect::Point({0, 0})));
  e.ExpandToInclude(Rect::Point({1.0f, 1.0f}));
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_TRUE(e.Contains({1.0f, 1.0f}));
}

TEST(Rect, ExpandToIncludeGrowsMinimally) {
  Rect r = Rect::Point({0.0f, 0.0f});
  r.ExpandToInclude(std::vector<float>{2.0f, -1.0f});
  EXPECT_FLOAT_EQ(r.lo(0), 0.0f);
  EXPECT_FLOAT_EQ(r.hi(0), 2.0f);
  EXPECT_FLOAT_EQ(r.lo(1), -1.0f);
  EXPECT_FLOAT_EQ(r.hi(1), 0.0f);
}

TEST(Rect, ExpandedEpsilonEnvelope) {
  Rect r = Rect::Bounds({1, 1}, {2, 2}).Expanded(0.5f);
  EXPECT_FLOAT_EQ(r.lo(0), 0.5f);
  EXPECT_FLOAT_EQ(r.hi(1), 2.5f);
}

TEST(Rect, IntersectsClosedBounds) {
  Rect a = Rect::Bounds({0, 0}, {1, 1});
  Rect b = Rect::Bounds({1, 1}, {2, 2});  // touch at a corner
  EXPECT_TRUE(a.Intersects(b));
  Rect c = Rect::Bounds({1.01f, 1.01f}, {2, 2});
  EXPECT_FALSE(a.Intersects(c));
}

TEST(Rect, ContainsRect) {
  Rect outer = Rect::Bounds({0, 0}, {10, 10});
  EXPECT_TRUE(outer.ContainsRect(Rect::Bounds({1, 1}, {9, 9})));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect::Bounds({5, 5}, {11, 9})));
}

TEST(Rect, OverlapArea) {
  Rect a = Rect::Bounds({0, 0}, {2, 2});
  Rect b = Rect::Bounds({1, 1}, {3, 3});
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapArea(a), 1.0);
  Rect c = Rect::Bounds({5, 5}, {6, 6});
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
}

TEST(Rect, Enlargement) {
  Rect a = Rect::Bounds({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect::Bounds({1, 1}, {1.5f, 1.5f})), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect::Bounds({0, 0}, {4, 2})), 4.0);
}

TEST(Rect, UnionCoversBoth) {
  Rect u = Rect::Union(Rect::Bounds({0, 0}, {1, 1}),
                       Rect::Bounds({2, -1}, {3, 0.5f}));
  EXPECT_FLOAT_EQ(u.lo(0), 0.0f);
  EXPECT_FLOAT_EQ(u.hi(0), 3.0f);
  EXPECT_FLOAT_EQ(u.lo(1), -1.0f);
  EXPECT_FLOAT_EQ(u.hi(1), 1.0f);
}

TEST(Rect, MinSquaredDistance) {
  Rect r = Rect::Bounds({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance({1.0f, 1.0f}), 0.0);    // inside
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance({3.0f, 1.0f}), 1.0);    // right
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance({-3.0f, -4.0f}), 25.0); // corner
}

TEST(Rect, HighDimensional) {
  std::vector<float> lo(12, 0.0f);
  std::vector<float> hi(12, 1.0f);
  Rect r = Rect::Bounds(lo, hi);
  EXPECT_EQ(r.dim(), 12);
  EXPECT_DOUBLE_EQ(r.Area(), 1.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 12.0);
  std::vector<float> point(12, 0.5f);
  EXPECT_TRUE(r.Contains(point));
}

}  // namespace
}  // namespace walrus
