#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/rstar_tree.h"

namespace walrus {
namespace {

std::vector<std::pair<Rect, uint64_t>> RandomEntries(int n, int dim,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Rect, uint64_t>> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(dim);
    for (float& v : p) v = rng.NextFloat();
    entries.emplace_back(Rect::Point(p), static_cast<uint64_t>(i));
  }
  return entries;
}

TEST(RStarBulkLoad, EmptyAndTiny) {
  RStarTree empty = RStarTree::BulkLoad(2, {});
  EXPECT_EQ(empty.size(), 0);
  EXPECT_TRUE(empty.Validate().ok());

  RStarTree one = RStarTree::BulkLoad(2, RandomEntries(1, 2, 1));
  EXPECT_EQ(one.size(), 1);
  EXPECT_EQ(one.height(), 1);
  EXPECT_TRUE(one.Validate().ok()) << one.Validate();
}

class BulkLoadSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BulkLoadSweep, InvariantsAndQueriesMatchIncremental) {
  auto [n, dim] = GetParam();
  std::vector<std::pair<Rect, uint64_t>> entries =
      RandomEntries(n, dim, 100 + n + dim);

  RStarTree bulk = RStarTree::BulkLoad(dim, entries);
  EXPECT_EQ(bulk.size(), n);
  ASSERT_TRUE(bulk.Validate().ok()) << bulk.Validate();

  RStarTree incremental(dim);
  for (const auto& [rect, payload] : entries) {
    incremental.Insert(rect, payload);
  }

  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat() * 0.8f;
      hi[d] = lo[d] + 0.2f;
    }
    Rect query = Rect::Bounds(lo, hi);
    std::vector<uint64_t> a = bulk.RangeSearch(query);
    std::vector<uint64_t> b = incremental.RangeSearch(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BulkLoadSweep,
    ::testing::Values(std::make_tuple(10, 2), std::make_tuple(17, 2),
                      std::make_tuple(500, 2), std::make_tuple(500, 12),
                      std::make_tuple(5000, 3)));

std::vector<std::pair<Rect, uint64_t>> RandomBoxes(int n, int dim,
                                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Rect, uint64_t>> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat() * 0.9f;
      hi[d] = lo[d] + 0.1f * rng.NextFloat();
    }
    entries.emplace_back(Rect::Bounds(lo, hi), static_cast<uint64_t>(i));
  }
  return entries;
}

TEST(RStarBulkLoad, BoxRectsMatchIncremental) {
  const int dim = 4;
  std::vector<std::pair<Rect, uint64_t>> entries = RandomBoxes(700, dim, 21);
  RStarTree bulk = RStarTree::BulkLoad(dim, entries);
  ASSERT_TRUE(bulk.Validate().ok()) << bulk.Validate();
  RStarTree incremental(dim);
  for (const auto& [rect, payload] : entries) {
    incremental.Insert(rect, payload);
  }
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat() * 0.7f;
      hi[d] = lo[d] + 0.3f;
    }
    Rect query = Rect::Bounds(lo, hi);
    std::vector<uint64_t> a = bulk.RangeSearch(query);
    std::vector<uint64_t> b = incremental.RangeSearch(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << trial;
  }
}

TEST(RStarBulkLoad, DuplicateRectsMatchIncremental) {
  // Many entries sharing the exact same rect: STR tiling must keep them
  // all, and queries must return every duplicate from both build paths.
  std::vector<std::pair<Rect, uint64_t>> entries;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> p = {0.25f * static_cast<float>(i % 3), 0.5f};
    entries.emplace_back(Rect::Point(p), static_cast<uint64_t>(i));
  }
  RStarTree bulk = RStarTree::BulkLoad(2, entries);
  EXPECT_EQ(bulk.size(), 200);
  ASSERT_TRUE(bulk.Validate().ok()) << bulk.Validate();
  RStarTree incremental(2);
  for (const auto& [rect, payload] : entries) {
    incremental.Insert(rect, payload);
  }
  Rect query = Rect::Bounds({0.0f, 0.0f}, {0.3f, 1.0f});
  std::vector<uint64_t> a = bulk.RangeSearch(query);
  std::vector<uint64_t> b = incremental.RangeSearch(query);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 134u);  // i % 3 ∈ {0, 1}: 67 + 67 duplicates
}

TEST(RStarBulkLoad, NearestNeighborsMatchIncrementalUnderTies) {
  // A symmetric grid puts many entries at exactly the same distance from
  // the query point. The neighbor list must be a function of the entry
  // set alone — equal-distance ties break by payload — so the two build
  // paths (different tree layouts) return byte-identical lists.
  std::vector<std::pair<Rect, uint64_t>> entries;
  uint64_t id = 0;
  for (int x = -5; x <= 5; ++x) {
    for (int y = -5; y <= 5; ++y) {
      std::vector<float> p = {static_cast<float>(x), static_cast<float>(y)};
      entries.emplace_back(Rect::Point(p), id++);
    }
  }
  RStarTree bulk = RStarTree::BulkLoad(2, entries);
  RStarTree incremental(2);
  for (const auto& [rect, payload] : entries) {
    incremental.Insert(rect, payload);
  }
  std::vector<float> query = {0.0f, 0.0f};
  for (int k : {1, 4, 9, 25, 60, 121}) {
    auto a = bulk.NearestNeighbors(query, k);
    auto b = incremental.NearestNeighbors(query, k);
    ASSERT_EQ(a.size(), b.size()) << k;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first, b[i].first) << "k=" << k << " i=" << i;
      EXPECT_DOUBLE_EQ(a[i].second, b[i].second) << "k=" << k << " i=" << i;
    }
  }
}

TEST(RStarBulkLoad, NearestNeighborsMatchIncrementalRandom) {
  const int dim = 3;
  std::vector<std::pair<Rect, uint64_t>> entries = RandomEntries(900, dim, 31);
  RStarTree bulk = RStarTree::BulkLoad(dim, entries);
  RStarTree incremental(dim);
  for (const auto& [rect, payload] : entries) {
    incremental.Insert(rect, payload);
  }
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(dim);
    for (float& v : q) v = rng.NextFloat();
    auto a = bulk.NearestNeighbors(q, 12);
    auto b = incremental.NearestNeighbors(q, 12);
    EXPECT_EQ(a, b) << trial;
  }
}

TEST(RStarBulkLoad, TreeIsShallowAndDense) {
  RStarTree bulk = RStarTree::BulkLoad(2, RandomEntries(4000, 2, 3));
  // 4000 entries at 16/node: 250 leaves, 16 internal, 1 root -> height 3.
  EXPECT_LE(bulk.height(), 3);

  RStarTree incremental(2);
  for (const auto& [rect, payload] : RandomEntries(4000, 2, 3)) {
    incremental.Insert(rect, payload);
  }
  EXPECT_LE(bulk.height(), incremental.height());
}

TEST(RStarBulkLoad, SupportsSubsequentInsertAndDelete) {
  std::vector<std::pair<Rect, uint64_t>> entries = RandomEntries(300, 2, 5);
  RStarTree tree = RStarTree::BulkLoad(2, entries);
  Rng rng(6);
  for (int i = 300; i < 400; ++i) {
    std::vector<float> p = {rng.NextFloat(), rng.NextFloat()};
    tree.Insert(Rect::Point(p), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tree.size(), 400);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Delete(entries[i].first, entries[i].second).ok()) << i;
  }
  EXPECT_EQ(tree.size(), 300);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate();
}

TEST(RStarBulkLoad, SerializationRoundTrip) {
  RStarTree tree = RStarTree::BulkLoad(3, RandomEntries(800, 3, 9));
  BinaryWriter writer;
  tree.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = RStarTree::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 800);
  EXPECT_TRUE(restored->Validate().ok());
}

}  // namespace
}  // namespace walrus
