#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "spatial/rstar_tree.h"
#include "storage/disk_rstar.h"

namespace walrus {
namespace {

// RangeQueryBatch contract: the delivered (probe, payload) multiset is
// identical to running RangeSearchVisit once per probe; only the grouping
// (by node instead of by probe) differs. Verified here for the in-memory
// and the disk tree, across ISA levels, plus the early-abort and the
// concurrent-reader behavior (the latter is the TSan target BatchedProbe).

using ProbeHit = std::pair<int, uint64_t>;  // (probe index, payload)

std::vector<std::pair<Rect, uint64_t>> RandomEntries(int n, int dim,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Rect, uint64_t>> entries;
  for (int i = 0; i < n; ++i) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat();
      hi[d] = lo[d] + 0.05f * rng.NextFloat();
    }
    entries.emplace_back(Rect::Bounds(lo, hi), static_cast<uint64_t>(i));
  }
  return entries;
}

std::vector<Rect> RandomProbes(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> probes;
  for (int i = 0; i < n; ++i) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat() * 0.6f;
      hi[d] = lo[d] + 0.2f + 0.3f * rng.NextFloat();
    }
    probes.push_back(Rect::Bounds(lo, hi));
  }
  return probes;
}

std::multiset<ProbeHit> SingleProbeHits(const RStarTree& tree,
                                        const std::vector<Rect>& probes) {
  std::multiset<ProbeHit> hits;
  for (size_t p = 0; p < probes.size(); ++p) {
    tree.RangeSearchVisit(probes[p], [&](const Rect&, uint64_t payload) {
      hits.insert({static_cast<int>(p), payload});
      return true;
    });
  }
  return hits;
}

std::multiset<ProbeHit> BatchHits(const RStarTree& tree,
                                  const std::vector<Rect>& probes) {
  std::multiset<ProbeHit> hits;
  tree.RangeQueryBatch(probes, [&](int p, const Rect&, uint64_t payload) {
    hits.insert({p, payload});
    return true;
  });
  return hits;
}

class RStarBatchSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RStarBatchSweep, BatchMatchesSingleProbes) {
  auto [n, num_probes] = GetParam();
  const int dim = 4;
  RStarTree tree(dim);
  for (const auto& [rect, payload] : RandomEntries(n, dim, 7000 + n)) {
    tree.Insert(rect, payload);
  }
  std::vector<Rect> probes = RandomProbes(num_probes, dim, 8000 + num_probes);
  const std::multiset<ProbeHit> want = SingleProbeHits(tree, probes);
  EXPECT_FALSE(want.empty());

  for (int l = 0; l <= static_cast<int>(simd::MaxSupportedIsa()); ++l) {
    simd::TestOnlySetIsa(static_cast<simd::IsaLevel>(l));
    EXPECT_EQ(want, BatchHits(tree, probes))
        << "isa=" << simd::IsaName(static_cast<simd::IsaLevel>(l));
  }
  simd::TestOnlyResetIsa();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RStarBatchSweep,
                         ::testing::Values(std::make_tuple(50, 1),
                                           std::make_tuple(300, 8),
                                           std::make_tuple(1000, 16),
                                           std::make_tuple(1000, 70)));

TEST(RStarBatch, EmptyAndDegenerateProbes) {
  const int dim = 3;
  RStarTree tree(dim);
  for (const auto& [rect, payload] : RandomEntries(200, dim, 42)) {
    tree.Insert(rect, payload);
  }
  // No probes: no callbacks, no crash.
  int calls = 0;
  tree.RangeQueryBatch({}, [&](int, const Rect&, uint64_t) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 0);
  // Empty probes are skipped; the non-empty one still answers.
  std::vector<Rect> probes = {Rect(), RandomProbes(1, dim, 43)[0], Rect()};
  std::multiset<ProbeHit> batch;
  tree.RangeQueryBatch(probes, [&](int p, const Rect&, uint64_t payload) {
    batch.insert({p, payload});
    return true;
  });
  std::multiset<ProbeHit> want;
  tree.RangeSearchVisit(probes[1], [&](const Rect&, uint64_t payload) {
    want.insert({1, payload});
    return true;
  });
  EXPECT_EQ(want, batch);
}

TEST(RStarBatch, VisitorAbortStopsTraversal) {
  const int dim = 2;
  RStarTree tree(dim);
  for (const auto& [rect, payload] : RandomEntries(500, dim, 77)) {
    tree.Insert(rect, payload);
  }
  std::vector<Rect> probes(
      4, Rect::Bounds(std::vector<float>(dim, 0.0f),
                      std::vector<float>(dim, 1.0f)));
  int calls = 0;
  tree.RangeQueryBatch(probes, [&](int, const Rect&, uint64_t) {
    return ++calls < 10;
  });
  EXPECT_EQ(calls, 10);
}

TEST(RStarBatch, NodesVisitedIsDeduplicated) {
  const int dim = 4;
  RStarTree tree(dim);
  for (const auto& [rect, payload] : RandomEntries(2000, dim, 99)) {
    tree.Insert(rect, payload);
  }
  std::vector<Rect> probes = RandomProbes(12, dim, 100);
  int64_t sum_single = 0;
  for (const Rect& probe : probes) {
    tree.RangeSearchVisit(probe, [](const Rect&, uint64_t) { return true; });
    sum_single += tree.last_nodes_visited();
  }
  tree.RangeQueryBatch(probes, [](int, const Rect&, uint64_t) {
    return true;
  });
  const int64_t batch_visited = tree.last_nodes_visited();
  EXPECT_GT(batch_visited, 0);
  // Shared traversal: a node serving k probes is visited once, not k times.
  EXPECT_LE(batch_visited, sum_single);
}

TEST(DiskRStarBatch, BatchMatchesSingleProbes) {
  const int dim = 4;
  const std::string path =
      ::testing::TempDir() + "/disk_rstar_batch_test.db";
  std::vector<std::pair<Rect, uint64_t>> entries =
      RandomEntries(1200, dim, 1234);
  auto tree = DiskRStarTree::Build(path, dim, entries);
  ASSERT_TRUE(tree.ok()) << tree.status();

  std::vector<Rect> probes = RandomProbes(20, dim, 1235);
  std::multiset<ProbeHit> want;
  for (size_t p = 0; p < probes.size(); ++p) {
    ASSERT_TRUE(tree->RangeSearchVisit(probes[p],
                                       [&](const Rect&, uint64_t payload) {
                                         want.insert(
                                             {static_cast<int>(p), payload});
                                         return true;
                                       })
                    .ok());
  }
  EXPECT_FALSE(want.empty());

  for (int l = 0; l <= static_cast<int>(simd::MaxSupportedIsa()); ++l) {
    simd::TestOnlySetIsa(static_cast<simd::IsaLevel>(l));
    std::multiset<ProbeHit> batch;
    ASSERT_TRUE(tree->RangeQueryBatch(probes,
                                      [&](int p, const Rect&,
                                          uint64_t payload) {
                                        batch.insert({p, payload});
                                        return true;
                                      })
                    .ok());
    EXPECT_EQ(want, batch)
        << "isa=" << simd::IsaName(static_cast<simd::IsaLevel>(l));
  }
  simd::TestOnlyResetIsa();
  std::remove(path.c_str());
}

// TSan target: concurrent batched probes share the tree but no traversal
// state (all batch scratch is call-local).
TEST(BatchedProbeConcurrency, ConcurrentBatchesAreRaceFree) {
  const int dim = 4;
  RStarTree tree(dim);
  for (const auto& [rect, payload] : RandomEntries(1500, dim, 555)) {
    tree.Insert(rect, payload);
  }
  std::vector<Rect> probes = RandomProbes(10, dim, 556);
  const std::multiset<ProbeHit> want = SingleProbeHits(tree, probes);

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::multiset<ProbeHit>> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        got[t] = BatchHits(tree, probes);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(want, got[t]) << "thread " << t;
  }
}

}  // namespace
}  // namespace walrus
