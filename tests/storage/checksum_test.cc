#include <cstdio>

#include <gtest/gtest.h>

#include "storage/disk_rstar.h"
#include "storage/page_file.h"

namespace walrus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// XORs one byte of `path` at `offset` in place.
void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

TEST(PageChecksum, SweepPassesOnHealthyFile) {
  std::string path = TempPath("crc_healthy.db");
  {
    Result<PageFile> pf = PageFile::Create(path, 128);
    ASSERT_TRUE(pf.ok());
    for (int i = 0; i < 4; ++i) {
      uint32_t id = pf->AllocatePage().value();
      std::vector<uint8_t> page(128, static_cast<uint8_t>(0x30 + i));
      ASSERT_TRUE(pf->WritePage(id, page).ok());
    }
    ASSERT_TRUE(pf->Sync().ok());
    EXPECT_TRUE(pf->ValidateChecksums().ok());
  }
  Result<PageFile> reopened = PageFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE(reopened->ValidateChecksums().ok());
  std::remove(path.c_str());
}

TEST(PageChecksum, SweepAndReadDetectBitFlip) {
  std::string path = TempPath("crc_flip.db");
  {
    Result<PageFile> pf = PageFile::Create(path, 128);
    ASSERT_TRUE(pf.ok());
    for (int i = 0; i < 4; ++i) {
      uint32_t id = pf->AllocatePage().value();
      std::vector<uint8_t> page(128, static_cast<uint8_t>(i));
      ASSERT_TRUE(pf->WritePage(id, page).ok());
    }
    ASSERT_TRUE(pf->Sync().ok());
  }
  // Flip one payload byte of page 2 behind the page file's back.
  FlipByteAt(path, 2 * 128 + 17);

  Result<PageFile> pf = PageFile::Open(path);
  ASSERT_TRUE(pf.ok()) << pf.status();
  pf->SetCacheCapacity(0);
  Status sweep = pf->ValidateChecksums();
  EXPECT_FALSE(sweep.ok());
  EXPECT_EQ(sweep.code(), StatusCode::kCorruption) << sweep;

  // A direct read of the damaged page fails; healthy pages still read.
  EXPECT_EQ(pf->ReadPage(2).status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(pf->ReadPage(1).ok());
  EXPECT_TRUE(pf->ReadPage(3).ok());
  std::remove(path.c_str());
}

TEST(PageChecksum, OpenDetectsCorruptHeaderPage) {
  std::string path = TempPath("crc_header.db");
  {
    Result<PageFile> pf = PageFile::Create(path, 128);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE(pf->Sync().ok());
  }
  // Damage a header-page byte past the 12-byte parsed prefix: only the CRC
  // can notice it.
  FlipByteAt(path, 40);
  Result<PageFile> pf = PageFile::Open(path);
  EXPECT_FALSE(pf.ok());
  EXPECT_EQ(pf.status().code(), StatusCode::kCorruption) << pf.status();
  std::remove(path.c_str());
}

TEST(DiskRStarValidate, HealthyTreeValidates) {
  std::string path = TempPath("drst_healthy.db");
  std::vector<std::pair<Rect, uint64_t>> entries;
  for (int i = 0; i < 500; ++i) {
    float x = static_cast<float>(i % 25);
    float y = static_cast<float>(i / 25);
    entries.emplace_back(Rect::Point({x, y}), static_cast<uint64_t>(i));
  }
  {
    Result<DiskRStarTree> built =
        DiskRStarTree::Build(path, 2, entries, /*page_size=*/256);
    ASSERT_TRUE(built.ok()) << built.status();
    EXPECT_GT(built->height(), 1);
    Status status = built->Validate();
    EXPECT_TRUE(status.ok()) << status;
  }
  Result<DiskRStarTree> opened = DiskRStarTree::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE(opened->Validate().ok());
  std::remove(path.c_str());
}

TEST(DiskRStarValidate, DetectsCorruptNodePage) {
  std::string path = TempPath("drst_flip.db");
  std::vector<std::pair<Rect, uint64_t>> entries;
  for (int i = 0; i < 500; ++i) {
    float x = static_cast<float>(i % 25);
    float y = static_cast<float>(i / 25);
    entries.emplace_back(Rect::Point({x, y}), static_cast<uint64_t>(i));
  }
  {
    Result<DiskRStarTree> built =
        DiskRStarTree::Build(path, 2, entries, /*page_size=*/256);
    ASSERT_TRUE(built.ok()) << built.status();
  }
  // Page 1 is the first leaf node (the metadata blob sits on the last
  // pages, so Open still succeeds); the validator's checksum sweep must
  // report the damage.
  FlipByteAt(path, 1 * 256 + 33);
  Result<DiskRStarTree> opened = DiskRStarTree::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Status status = opened->Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status;
  std::remove(path.c_str());
}

TEST(DiskRStarValidate, EmptyTreeValidates) {
  std::string path = TempPath("drst_empty.db");
  Result<DiskRStarTree> built = DiskRStarTree::Build(path, 2, {}, 256);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_TRUE(built->Validate().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace walrus
