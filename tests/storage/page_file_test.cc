#include "storage/page_file.h"

#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PageFile, CreateAndReopenHeader) {
  std::string path = TempPath("pf_header.db");
  {
    Result<PageFile> pf = PageFile::Create(path, 256);
    ASSERT_TRUE(pf.ok()) << pf.status();
    EXPECT_EQ(pf->page_size(), 256u);
    EXPECT_EQ(pf->page_count(), 1u);
  }
  Result<PageFile> reopened = PageFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->page_size(), 256u);
  std::remove(path.c_str());
}

TEST(PageFile, PageWriteReadRoundTrip) {
  std::string path = TempPath("pf_pages.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  uint32_t id = pf->AllocatePage().value();
  EXPECT_EQ(id, 1u);
  std::vector<uint8_t> page(128);
  for (size_t i = 0; i < page.size(); ++i) page[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(pf->WritePage(id, page).ok());
  // Everything up to the CRC-32 trailer round-trips; the trailer itself is
  // stamped by WritePage.
  std::vector<uint8_t> read = pf->ReadPage(id).value();
  size_t body = page.size() - PageFile::kChecksumBytes;
  EXPECT_TRUE(std::equal(read.begin(), read.begin() + body, page.begin()));
  std::remove(path.c_str());
}

TEST(PageFile, RejectsBadPageAccess) {
  std::string path = TempPath("pf_bad.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  EXPECT_FALSE(pf->ReadPage(0).ok());   // header page is reserved
  EXPECT_FALSE(pf->ReadPage(99).ok());  // out of range
  std::vector<uint8_t> wrong_size(64);
  uint32_t id = pf->AllocatePage().value();
  EXPECT_FALSE(pf->WritePage(id, wrong_size).ok());
  std::remove(path.c_str());
}

TEST(PageFile, BlobSmallerThanPage) {
  std::string path = TempPath("pf_blob_small.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  std::vector<uint8_t> blob = {9, 8, 7};
  BlobRef ref = pf->WriteBlob(blob).value();
  EXPECT_EQ(pf->ReadBlob(ref).value(), blob);
  std::remove(path.c_str());
}

TEST(PageFile, BlobSpanningManyPages) {
  std::string path = TempPath("pf_blob_big.db");
  Result<PageFile> pf = PageFile::Create(path, 128);  // 120 payload bytes
  ASSERT_TRUE(pf.ok());
  Rng rng(3);
  std::vector<uint8_t> blob(10000);
  for (uint8_t& b : blob) b = static_cast<uint8_t>(rng.NextU32());
  BlobRef ref = pf->WriteBlob(blob).value();
  EXPECT_GT(pf->page_count(), 80u);
  EXPECT_EQ(pf->ReadBlob(ref).value(), blob);
  std::remove(path.c_str());
}

TEST(PageFile, EmptyBlob) {
  std::string path = TempPath("pf_blob_empty.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  BlobRef ref = pf->WriteBlob({}).value();
  EXPECT_EQ(ref.length, 0u);
  EXPECT_TRUE(pf->ReadBlob(ref).value().empty());
  std::remove(path.c_str());
}

TEST(PageFile, MultipleBlobsIndependent) {
  std::string path = TempPath("pf_blobs.db");
  Result<PageFile> pf = PageFile::Create(path, 256);
  ASSERT_TRUE(pf.ok());
  Rng rng(4);
  std::vector<std::pair<BlobRef, std::vector<uint8_t>>> blobs;
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> data(rng.NextInt(0, 800));
    for (uint8_t& b : data) b = static_cast<uint8_t>(rng.NextU32());
    blobs.emplace_back(pf->WriteBlob(data).value(), data);
  }
  for (const auto& [ref, data] : blobs) {
    EXPECT_EQ(pf->ReadBlob(ref).value(), data);
  }
  std::remove(path.c_str());
}

TEST(PageFile, BlobsSurviveReopen) {
  std::string path = TempPath("pf_reopen.db");
  std::vector<uint8_t> blob(500, 0x5A);
  BlobRef ref;
  {
    Result<PageFile> pf = PageFile::Create(path, 128);
    ASSERT_TRUE(pf.ok());
    ref = pf->WriteBlob(blob).value();
    ASSERT_TRUE(pf->Sync().ok());
  }
  Result<PageFile> reopened = PageFile::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->ReadBlob(ref).value(), blob);
  std::remove(path.c_str());
}

TEST(PageFile, OpenRejectsNonPageFile) {
  std::string path = TempPath("pf_garbage.db");
  FILE* f = fopen(path.c_str(), "wb");
  fputs("this is not a page file at all, definitely not", f);
  fclose(f);
  EXPECT_FALSE(PageFile::Open(path).ok());
  std::remove(path.c_str());
}

TEST(PageFile, CreateRejectsTinyPages) {
  EXPECT_FALSE(PageFile::Create(TempPath("pf_tiny.db"), 16).ok());
}

}  // namespace
}  // namespace walrus
