#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/page_file.h"

namespace walrus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Caller-visible bytes of a page: everything before the CRC-32 trailer,
/// which WritePage stamps over the last kChecksumBytes.
std::vector<uint8_t> Body(std::vector<uint8_t> page) {
  page.resize(page.size() - PageFile::kChecksumBytes);
  return page;
}

TEST(PageCache, RepeatedReadsHit) {
  std::string path = TempPath("cache_hits.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  uint32_t id = pf->AllocatePage().value();
  std::vector<uint8_t> page(128, 0x5A);
  ASSERT_TRUE(pf->WritePage(id, page).ok());

  EXPECT_EQ(Body(pf->ReadPage(id).value()), Body(page));  // miss (first read)
  int64_t misses_after_first = pf->cache_misses();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Body(pf->ReadPage(id).value()), Body(page));
  }
  EXPECT_EQ(pf->cache_misses(), misses_after_first);
  EXPECT_GE(pf->cache_hits(), 10);
  std::remove(path.c_str());
}

TEST(PageCache, WriteInvalidates) {
  std::string path = TempPath("cache_invalidate.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  uint32_t id = pf->AllocatePage().value();
  std::vector<uint8_t> a(128, 0x11);
  std::vector<uint8_t> b(128, 0x22);
  ASSERT_TRUE(pf->WritePage(id, a).ok());
  EXPECT_EQ(Body(pf->ReadPage(id).value()), Body(a));  // cached now
  ASSERT_TRUE(pf->WritePage(id, b).ok());
  EXPECT_EQ(Body(pf->ReadPage(id).value()), Body(b));  // must see the new bytes
  std::remove(path.c_str());
}

TEST(PageCache, EvictionBoundsMemory) {
  std::string path = TempPath("cache_evict.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  pf->SetCacheCapacity(4);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 10; ++i) {
    uint32_t id = pf->AllocatePage().value();
    std::vector<uint8_t> page(128, static_cast<uint8_t>(i));
    ASSERT_TRUE(pf->WritePage(id, page).ok());
    ids.push_back(id);
  }
  // Touch all ten: only the last four stay resident.
  for (uint32_t id : ids) ASSERT_TRUE(pf->ReadPage(id).ok());
  int64_t misses_before = pf->cache_misses();
  // Oldest six were evicted: re-reading the first misses again.
  ASSERT_TRUE(pf->ReadPage(ids[0]).ok());
  EXPECT_EQ(pf->cache_misses(), misses_before + 1);
  // Most recent is still resident.
  int64_t hits_before = pf->cache_hits();
  ASSERT_TRUE(pf->ReadPage(ids[9]).ok());
  EXPECT_EQ(pf->cache_hits(), hits_before + 1);
  std::remove(path.c_str());
}

TEST(PageCache, ZeroCapacityDisables) {
  std::string path = TempPath("cache_off.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  pf->SetCacheCapacity(0);
  uint32_t id = pf->AllocatePage().value();
  std::vector<uint8_t> page(128, 9);
  ASSERT_TRUE(pf->WritePage(id, page).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Body(pf->ReadPage(id).value()), Body(page));
  }
  EXPECT_EQ(pf->cache_hits(), 0);
  EXPECT_EQ(pf->cache_misses(), 5);
  std::remove(path.c_str());
}

TEST(PageCache, LruOrderRespectsRecency) {
  std::string path = TempPath("cache_lru.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  pf->SetCacheCapacity(2);
  uint32_t a = pf->AllocatePage().value();
  uint32_t b = pf->AllocatePage().value();
  uint32_t c = pf->AllocatePage().value();
  std::vector<uint8_t> page(128, 1);
  for (uint32_t id : {a, b, c}) ASSERT_TRUE(pf->WritePage(id, page).ok());

  ASSERT_TRUE(pf->ReadPage(a).ok());  // cache: [a]
  ASSERT_TRUE(pf->ReadPage(b).ok());  // cache: [b, a]
  ASSERT_TRUE(pf->ReadPage(a).ok());  // bump a: [a, b]
  ASSERT_TRUE(pf->ReadPage(c).ok());  // evict b: [c, a]
  int64_t misses = pf->cache_misses();
  ASSERT_TRUE(pf->ReadPage(a).ok());  // hit
  EXPECT_EQ(pf->cache_misses(), misses);
  ASSERT_TRUE(pf->ReadPage(b).ok());  // miss (was evicted)
  EXPECT_EQ(pf->cache_misses(), misses + 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace walrus
