#include "storage/disk_rstar.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::pair<Rect, uint64_t>> RandomEntries(int n, int dim,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Rect, uint64_t>> entries;
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(dim);
    for (float& v : p) v = rng.NextFloat();
    entries.emplace_back(Rect::Point(p), static_cast<uint64_t>(i));
  }
  return entries;
}

TEST(DiskRStar, EmptyTree) {
  std::string path = TempPath("disk_rstar_empty.db");
  auto tree = DiskRStarTree::Build(path, 4, {});
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->size(), 0);
  auto hits = tree->RangeSearch(
      Rect::Bounds({0, 0, 0, 0}, {1, 1, 1, 1}));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  auto nn = tree->NearestNeighbors({0.5f, 0.5f, 0.5f, 0.5f}, 3);
  ASSERT_TRUE(nn.ok());
  EXPECT_TRUE(nn->empty());
  std::remove(path.c_str());
}

class DiskRStarSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DiskRStarSweep, RangeSearchMatchesBruteForce) {
  auto [n, dim] = GetParam();
  std::string path = TempPath("disk_rstar_sweep_" + std::to_string(n) + "_" +
                              std::to_string(dim) + ".db");
  std::vector<std::pair<Rect, uint64_t>> entries =
      RandomEntries(n, dim, 100 + n);
  auto built = DiskRStarTree::Build(path, dim, entries);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->size(), n);

  // Reopen from disk (exercises metadata + page parsing).
  auto tree = DiskRStarTree::Open(path);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->size(), n);
  EXPECT_EQ(tree->dim(), dim);

  Rng rng(999);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      lo[d] = rng.NextFloat() * 0.7f;
      hi[d] = lo[d] + 0.3f;
    }
    Rect query = Rect::Bounds(lo, hi);
    auto got = tree->RangeSearch(query);
    ASSERT_TRUE(got.ok());
    std::sort(got->begin(), got->end());
    std::vector<uint64_t> want;
    for (const auto& [rect, payload] : entries) {
      if (rect.Intersects(query)) want.push_back(payload);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(*got, want) << trial;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiskRStarSweep,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(50, 2),
                      std::make_tuple(2000, 2), std::make_tuple(500, 12),
                      std::make_tuple(5000, 12)));

TEST(DiskRStar, NearestNeighborsMatchBruteForce) {
  std::string path = TempPath("disk_rstar_nn.db");
  const int dim = 12;
  const int n = 1500;
  std::vector<std::pair<Rect, uint64_t>> entries = RandomEntries(n, dim, 7);
  auto tree = DiskRStarTree::Build(path, dim, entries);
  ASSERT_TRUE(tree.ok());

  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<float> q(dim);
    for (float& v : q) v = rng.NextFloat();
    auto got = tree->NearestNeighbors(q, 7);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 7u);

    std::vector<std::pair<double, uint64_t>> brute;
    for (const auto& [rect, payload] : entries) {
      brute.emplace_back(std::sqrt(rect.MinSquaredDistance(q)), payload);
    }
    std::sort(brute.begin(), brute.end());
    for (int k = 0; k < 7; ++k) {
      EXPECT_NEAR((*got)[k].second, brute[k].first, 1e-6) << trial << " " << k;
    }
  }
  std::remove(path.c_str());
}

TEST(DiskRStar, BoxEntriesSupported) {
  std::string path = TempPath("disk_rstar_boxes.db");
  Rng rng(9);
  std::vector<std::pair<Rect, uint64_t>> entries;
  for (int i = 0; i < 400; ++i) {
    std::vector<float> lo = {rng.NextFloat(), rng.NextFloat()};
    std::vector<float> hi = {lo[0] + 0.1f * rng.NextFloat(),
                             lo[1] + 0.1f * rng.NextFloat()};
    entries.emplace_back(Rect::Bounds(lo, hi), static_cast<uint64_t>(i));
  }
  auto tree = DiskRStarTree::Build(path, 2, entries);
  ASSERT_TRUE(tree.ok());
  Rect query = Rect::Bounds({0.4f, 0.4f}, {0.6f, 0.6f});
  auto got = tree->RangeSearch(query);
  ASSERT_TRUE(got.ok());
  std::sort(got->begin(), got->end());
  std::vector<uint64_t> want;
  for (const auto& [rect, payload] : entries) {
    if (rect.Intersects(query)) want.push_back(payload);
  }
  EXPECT_EQ(*got, want);
  std::remove(path.c_str());
}

TEST(DiskRStar, CacheServesRepeatProbes) {
  std::string path = TempPath("disk_rstar_cache.db");
  auto tree = DiskRStarTree::Build(path, 2, RandomEntries(3000, 2, 10));
  ASSERT_TRUE(tree.ok());
  Rect probe = Rect::Bounds({0.4f, 0.4f}, {0.45f, 0.45f});
  ASSERT_TRUE(tree->RangeSearch(probe).ok());
  int64_t misses_after_first = tree->cache_misses();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree->RangeSearch(probe).ok());
  }
  EXPECT_EQ(tree->cache_misses(), misses_after_first);
  EXPECT_GT(tree->cache_hits(), 0);
  // Disabling the cache forces real reads again.
  tree->SetCacheCapacity(0);
  int64_t misses_before = tree->cache_misses();
  ASSERT_TRUE(tree->RangeSearch(probe).ok());
  EXPECT_GT(tree->cache_misses(), misses_before);
  std::remove(path.c_str());
}

TEST(DiskRStar, OpenRejectsGarbage) {
  std::string path = TempPath("disk_rstar_garbage.db");
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a page file", f);
  fclose(f);
  EXPECT_FALSE(DiskRStarTree::Open(path).ok());
  std::remove(path.c_str());
}

TEST(DiskRStar, PagesReadScalesWithSelectivity) {
  std::string path = TempPath("disk_rstar_pages.db");
  auto tree = DiskRStarTree::Build(path, 2, RandomEntries(20000, 2, 11));
  ASSERT_TRUE(tree.ok());
  // Small probe touches far fewer pages than a full scan.
  ASSERT_TRUE(
      tree->RangeSearch(Rect::Bounds({0.5f, 0.5f}, {0.52f, 0.52f})).ok());
  int64_t small_pages = tree->pages_read();
  ASSERT_TRUE(tree->RangeSearch(Rect::Bounds({0, 0}, {1, 1})).ok());
  int64_t full_pages = tree->pages_read() - small_pages;
  EXPECT_LT(small_pages, full_pages / 5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace walrus
