// Failure-injection tests: corrupted index files must surface Status errors,
// never crash or return silently wrong data.

#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"
#include "core/index.h"
#include "image/synth.h"
#include "spatial/rstar_tree.h"
#include "storage/catalog.h"
#include "storage/page_file.h"

namespace walrus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Corruption, TruncatedPageFileFailsToOpen) {
  std::string path = TempPath("corrupt_truncated.db");
  {
    Result<PageFile> pf = PageFile::Create(path, 128);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE(pf->WriteBlob(std::vector<uint8_t>(300, 7)).ok());
    ASSERT_TRUE(pf->Sync().ok());
  }
  // Truncate to half a page.
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  bytes->resize(60);
  ASSERT_TRUE(WriteFileBytes(path, *bytes).ok());
  EXPECT_FALSE(PageFile::Open(path).ok());
  std::remove(path.c_str());
}

TEST(Corruption, BlobChainCycleDetected) {
  // Hand-craft a blob page that points at itself; ReadBlob must terminate
  // with an error instead of looping (the length bound catches it).
  std::string path = TempPath("corrupt_cycle.db");
  Result<PageFile> pf = PageFile::Create(path, 128);
  ASSERT_TRUE(pf.ok());
  uint32_t id = pf->AllocatePage().value();
  std::vector<uint8_t> page(128, 0);
  page[0] = static_cast<uint8_t>(id);  // next = itself
  page[4] = 100;                       // used = 100 bytes
  ASSERT_TRUE(pf->WritePage(id, page).ok());
  Result<std::vector<uint8_t>> blob = pf->ReadBlob(BlobRef{id, 150});
  EXPECT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(Corruption, CatalogRandomByteFlipsNeverCrash) {
  std::string path = TempPath("corrupt_catalog.db");
  Catalog catalog;
  Rng rng(5);
  for (uint64_t id = 0; id < 6; ++id) {
    ImageRecord rec;
    rec.image_id = id;
    rec.name = "img" + std::to_string(id);
    rec.width = 64;
    rec.height = 64;
    RegionRecord region;
    region.region_id = 0;
    region.centroid.assign(12, 0.5f);
    region.bbox_lo.assign(12, 0.4f);
    region.bbox_hi.assign(12, 0.6f);
    region.bitmap_side = 16;
    region.bitmap.assign(32, 0xFF);
    region.window_count = 9;
    rec.regions.push_back(region);
    ASSERT_TRUE(catalog.AddImage(std::move(rec)).ok());
  }
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  Result<std::vector<uint8_t>> original = ReadFileBytes(path);
  ASSERT_TRUE(original.ok());

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = *original;
    // Flip 1-4 random bytes.
    int flips = rng.NextInt(1, 4);
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.NextBounded(static_cast<uint32_t>(mutated.size()));
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    ASSERT_TRUE(WriteFileBytes(path, mutated).ok());
    Result<Catalog> loaded = Catalog::LoadFromFile(path);
    if (loaded.ok()) {
      // Damage may land in unused padding; loaded data must still be
      // structurally sound.
      for (const ImageRecord& rec : loaded->images()) {
        (void)rec.regions.size();
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Corruption, RStarRandomBufferNeverCrashes) {
  Rng rng(6);
  RStarTree tree(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> p = {rng.NextFloat(), rng.NextFloat(), rng.NextFloat(),
                            rng.NextFloat()};
    tree.Insert(Rect::Point(p), static_cast<uint64_t>(i));
  }
  BinaryWriter writer;
  tree.Serialize(&writer);
  std::vector<uint8_t> valid = writer.buffer();

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = valid;
    size_t pos = rng.NextBounded(static_cast<uint32_t>(mutated.size()));
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    BinaryReader reader(mutated);
    Result<RStarTree> restored = RStarTree::Deserialize(&reader);
    if (restored.ok()) {
      // If it deserialized despite the flip, basic queries must not crash.
      (void)restored->RangeSearch(
          Rect::Bounds({0, 0, 0, 0}, {1, 1, 1, 1}));
    }
  }
}

TEST(Corruption, IndexOpenWithMismatchedFilesFails) {
  // Save two indexes with different dimensionality and cross their files.
  std::string a = TempPath("corrupt_index_a");
  std::string b = TempPath("corrupt_index_b");
  {
    WalrusParams pa;
    pa.min_window = 16;
    pa.max_window = 16;
    pa.slide_step = 8;
    WalrusIndex ia(pa);
    ASSERT_TRUE(ia.AddImage(1, "x", MakeSolid(32, 32, {0.5f, 0.5f, 0.5f}))
                    .ok());
    ASSERT_TRUE(ia.Save(a).ok());
    WalrusParams pb = pa;
    pb.color_space = ColorSpace::kGray;  // 4-dim signatures instead of 12
    WalrusIndex ib(pb);
    ASSERT_TRUE(ib.AddImage(1, "x", MakeSolid(32, 32, {0.5f, 0.5f, 0.5f}))
                    .ok());
    ASSERT_TRUE(ib.Save(b).ok());
  }
  // a's params+tree with b's catalog still opens (catalog has no dim), but
  // a's .index is internally consistent; splice b's tree bytes into a's
  // params by concatenating mismatched files instead:
  Result<std::vector<uint8_t>> a_index = ReadFileBytes(a + ".index");
  Result<std::vector<uint8_t>> b_index = ReadFileBytes(b + ".index");
  ASSERT_TRUE(a_index.ok() && b_index.ok());
  // Take a's params header (ends before the tree magic) and b's tree.
  // Simpler deterministic corruption: overwrite a's index with b's and
  // verify the dimension check fires on params/tree mismatch... they're
  // self-consistent, so instead truncate a's index mid-tree:
  std::vector<uint8_t> truncated(*a_index);
  truncated.resize(truncated.size() / 2);
  ASSERT_TRUE(WriteFileBytes(a + ".index", truncated).ok());
  EXPECT_FALSE(WalrusIndex::Open(a).ok());

  for (const std::string& prefix : {a, b}) {
    std::remove((prefix + ".catalog").c_str());
    std::remove((prefix + ".index").c_str());
  }
}

}  // namespace
}  // namespace walrus
