#include "storage/catalog.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

RegionRecord MakeRegion(uint32_t id, Rng* rng, int dim = 12) {
  RegionRecord r;
  r.region_id = id;
  for (int i = 0; i < dim; ++i) {
    float c = rng->NextFloat();
    r.centroid.push_back(c);
    r.bbox_lo.push_back(c - 0.05f);
    r.bbox_hi.push_back(c + 0.05f);
  }
  r.bitmap_side = 16;
  r.bitmap.assign(32, 0);
  for (auto& b : r.bitmap) b = static_cast<uint8_t>(rng->NextU32());
  r.window_count = rng->NextInt(1, 500);
  return r;
}

ImageRecord MakeImage(uint64_t id, int regions, Rng* rng) {
  ImageRecord rec;
  rec.image_id = id;
  rec.name = "img_" + std::to_string(id);
  rec.width = 128;
  rec.height = 96;
  for (int i = 0; i < regions; ++i) {
    rec.regions.push_back(MakeRegion(static_cast<uint32_t>(i), rng));
  }
  return rec;
}

void ExpectRecordsEqual(const ImageRecord& a, const ImageRecord& b) {
  EXPECT_EQ(a.image_id, b.image_id);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(a.height, b.height);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].region_id, b.regions[i].region_id);
    EXPECT_EQ(a.regions[i].centroid, b.regions[i].centroid);
    EXPECT_EQ(a.regions[i].bbox_lo, b.regions[i].bbox_lo);
    EXPECT_EQ(a.regions[i].bbox_hi, b.regions[i].bbox_hi);
    EXPECT_EQ(a.regions[i].bitmap, b.regions[i].bitmap);
    EXPECT_EQ(a.regions[i].bitmap_side, b.regions[i].bitmap_side);
    EXPECT_EQ(a.regions[i].window_count, b.regions[i].window_count);
  }
}

TEST(Catalog, AddAndFind) {
  Rng rng(1);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddImage(MakeImage(7, 3, &rng)).ok());
  ASSERT_TRUE(catalog.AddImage(MakeImage(9, 1, &rng)).ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.TotalRegions(), 4u);
  ASSERT_NE(catalog.FindImage(7), nullptr);
  EXPECT_EQ(catalog.FindImage(7)->regions.size(), 3u);
  EXPECT_EQ(catalog.FindImage(12345), nullptr);
}

TEST(Catalog, RejectsDuplicateIds) {
  Rng rng(2);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddImage(MakeImage(1, 1, &rng)).ok());
  Status dup = catalog.AddImage(MakeImage(1, 2, &rng));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(Catalog, BufferSerializationRoundTrip) {
  Rng rng(3);
  Catalog catalog;
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(
        catalog.AddImage(MakeImage(id * 3, rng.NextInt(0, 6), &rng)).ok());
  }
  BinaryWriter writer;
  catalog.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Result<Catalog> restored = Catalog::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), catalog.size());
  for (const ImageRecord& rec : catalog.images()) {
    const ImageRecord* other = restored->FindImage(rec.image_id);
    ASSERT_NE(other, nullptr);
    ExpectRecordsEqual(rec, *other);
  }
}

TEST(Catalog, FileRoundTripThroughPageFile) {
  Rng rng(4);
  Catalog catalog;
  for (uint64_t id = 0; id < 25; ++id) {
    ASSERT_TRUE(catalog.AddImage(MakeImage(id, rng.NextInt(1, 20), &rng)).ok());
  }
  std::string path = ::testing::TempDir() + "/walrus_catalog_test.db";
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  Result<Catalog> loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 25u);
  for (const ImageRecord& rec : catalog.images()) {
    const ImageRecord* other = loaded->FindImage(rec.image_id);
    ASSERT_NE(other, nullptr);
    ExpectRecordsEqual(rec, *other);
  }
  std::remove(path.c_str());
}

TEST(Catalog, EmptyCatalogFileRoundTrip) {
  Catalog catalog;
  std::string path = ::testing::TempDir() + "/walrus_catalog_empty.db";
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  Result<Catalog> loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

TEST(Catalog, DeserializeRejectsCorruptMagic) {
  std::vector<uint8_t> garbage = {0, 1, 2, 3, 4, 5, 6, 7};
  BinaryReader reader(garbage);
  EXPECT_FALSE(Catalog::Deserialize(&reader).ok());
}

TEST(Catalog, LoadRejectsMissingFile) {
  EXPECT_FALSE(Catalog::LoadFromFile("/no/such/catalog.db").ok());
}

}  // namespace
}  // namespace walrus
