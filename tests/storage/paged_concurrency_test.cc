// Concurrency audit for the paged index read path. The DiskRStarTree's LRU
// page cache mutates on every read, so "read-only" probes are writes at the
// cache layer; everything below io_mutex_ must stay race-free while many
// threads query, poll the IO counters, and churn the cache capacity at
// once. This test exists to run under TSan (scripts/check.sh stage 3).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"

namespace walrus {
namespace {

TEST(PagedConcurrencyTest, ConcurrentQueriesCountersAndCacheChurn) {
  DatasetParams dp;
  dp.num_images = 10;
  dp.width = 64;
  dp.height = 64;
  dp.seed = 7;
  std::vector<LabeledImage> dataset = GenerateDataset(dp);

  WalrusParams params;
  params.min_window = 16;
  params.max_window = 32;
  params.slide_step = 8;
  WalrusIndex builder(params);
  for (const LabeledImage& scene : dataset) {
    ASSERT_TRUE(
        builder.AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
            .ok());
  }
  std::string prefix = ::testing::TempDir() + "/walrus_paged_concurrency";
  ASSERT_TRUE(builder.SavePaged(prefix).ok());
  auto paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok()) << paged.status();
  ASSERT_TRUE(paged->is_paged());

  constexpr int kQueryThreads = 8;
  constexpr int kQueriesPerThread = 4;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  {
    std::vector<std::thread> threads;
    // Query threads hammer the paged probe path.
    for (int t = 0; t < kQueryThreads; ++t) {
      threads.emplace_back([&, t] {
        QueryOptions options;
        options.epsilon = 0.085f;
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const ImageF& image =
              dataset[(t + q) % dataset.size()].image;
          if (!ExecuteQuery(*paged, image, options).ok()) ++failures;
        }
      });
    }
    // Poller reads the IO diagnostics while queries run.
    threads.emplace_back([&] {
      int64_t last_pages = 0;
      while (!done.load(std::memory_order_acquire)) {
        const DiskRStarTree* tree = paged->disk_tree();
        int64_t pages = tree->pages_read();
        EXPECT_GE(pages, last_pages);       // monotone under the lock
        EXPECT_GE(tree->cache_hits(), 0);
        EXPECT_GE(tree->cache_misses(), 0);
        last_pages = pages;
        std::this_thread::yield();
      }
    });
    // Churner resizes the cache while queries are in flight.
    threads.emplace_back([&] {
      int capacity = 1;
      while (!done.load(std::memory_order_acquire)) {
        paged->disk_tree()->SetCacheCapacity(capacity);
        capacity = capacity == 1 ? 64 : 1;
        std::this_thread::yield();
      }
    });
    for (int t = 0; t < kQueryThreads; ++t) threads[t].join();
    done.store(true, std::memory_order_release);
    threads[kQueryThreads].join();
    threads[kQueryThreads + 1].join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(paged->disk_tree()->pages_read(), 0);

  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
}

}  // namespace
}  // namespace walrus
