#include "core/bitmap.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(CoverageBitmap, StartsClear) {
  CoverageBitmap bm(16);
  EXPECT_EQ(bm.CountSet(), 0);
  EXPECT_DOUBLE_EQ(bm.CoveredFraction(), 0.0);
  EXPECT_FALSE(bm.TestCell(0, 0));
}

TEST(CoverageBitmap, SetAndTest) {
  CoverageBitmap bm(16);
  bm.SetCell(3, 5);
  bm.SetCell(15, 15);
  EXPECT_TRUE(bm.TestCell(3, 5));
  EXPECT_TRUE(bm.TestCell(15, 15));
  EXPECT_FALSE(bm.TestCell(5, 3));
  EXPECT_EQ(bm.CountSet(), 2);
}

TEST(CoverageBitmap, MarkWholeImage) {
  CoverageBitmap bm(16);
  bm.MarkWindow(0, 0, 128, 128, 128, 128);
  EXPECT_EQ(bm.CountSet(), 256);
  EXPECT_DOUBLE_EQ(bm.CoveredFraction(), 1.0);
}

TEST(CoverageBitmap, MarkQuarterWindow) {
  // A 64x64 window in a 128x128 image covers exactly a quarter of the cells
  // (cell centers fall strictly inside).
  CoverageBitmap bm(16);
  bm.MarkWindow(0, 0, 64, 64, 128, 128);
  EXPECT_EQ(bm.CountSet(), 64);
  EXPECT_TRUE(bm.TestCell(0, 0));
  EXPECT_TRUE(bm.TestCell(7, 7));
  EXPECT_FALSE(bm.TestCell(8, 8));
}

TEST(CoverageBitmap, MarkUsesCellCenters) {
  // A window covering less than half a cell's span around the center marks
  // nothing; crossing the center marks it.
  CoverageBitmap bm(4);  // cells are 32x32 in a 128x128 image
  bm.MarkWindow(0, 0, 16, 16, 128, 128);  // stops at pixel 16 < center 16.5
  EXPECT_EQ(bm.CountSet(), 0);
  bm.MarkWindow(0, 0, 17, 17, 128, 128);
  EXPECT_EQ(bm.CountSet(), 1);
}

TEST(CoverageBitmap, UnionAndCount) {
  CoverageBitmap a(8);
  CoverageBitmap b(8);
  a.SetCell(0, 0);
  a.SetCell(1, 1);
  b.SetCell(1, 1);
  b.SetCell(2, 2);
  EXPECT_EQ(CoverageBitmap::UnionCount(a, b), 3);
  a.UnionWith(b);
  EXPECT_EQ(a.CountSet(), 3);
  EXPECT_TRUE(a.TestCell(2, 2));
}

TEST(CoverageBitmap, BytesRoundTrip) {
  CoverageBitmap bm(16);
  bm.MarkWindow(10, 20, 50, 60, 128, 128);
  bm.SetCell(15, 0);
  std::vector<uint8_t> bytes = bm.ToBytes();
  EXPECT_EQ(bytes.size(), 32u);  // the paper's 32-byte bitmaps
  CoverageBitmap restored(16, bytes);
  EXPECT_TRUE(restored == bm);
}

TEST(CoverageBitmap, NonMultipleOf64Cells) {
  CoverageBitmap bm(5);  // 25 bits
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) bm.SetCell(x, y);
  }
  EXPECT_EQ(bm.CountSet(), 25);
  std::vector<uint8_t> bytes = bm.ToBytes();
  EXPECT_EQ(bytes.size(), 4u);  // ceil(25/8)
  CoverageBitmap restored(5, bytes);
  EXPECT_TRUE(restored == bm);
}

TEST(CoverageBitmap, ClearResets) {
  CoverageBitmap bm(8);
  bm.MarkWindow(0, 0, 64, 64, 64, 64);
  EXPECT_GT(bm.CountSet(), 0);
  bm.Clear();
  EXPECT_EQ(bm.CountSet(), 0);
}

TEST(CoverageBitmap, MarkWindowClipsToImage) {
  CoverageBitmap bm(8);
  bm.MarkWindow(96, 96, 64, 64, 128, 128);  // extends past the image
  EXPECT_EQ(bm.CountSet(), 4);              // bottom-right 2x2 cells
  EXPECT_TRUE(bm.TestCell(7, 7));
  EXPECT_TRUE(bm.TestCell(6, 6));
}

}  // namespace
}  // namespace walrus
