#include "core/index.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

ImageF ColoredImage(float r, float g, float b) {
  return MakeSolid(64, 64, {r, g, b});
}

TEST(Payload, EncodeDecodeRoundTrip) {
  uint64_t image_id;
  uint32_t region_id;
  DecodeRegionPayload(EncodeRegionPayload(0, 0), &image_id, &region_id);
  EXPECT_EQ(image_id, 0u);
  EXPECT_EQ(region_id, 0u);
  DecodeRegionPayload(EncodeRegionPayload(123456789ULL, 65535), &image_id,
                      &region_id);
  EXPECT_EQ(image_id, 123456789ULL);
  EXPECT_EQ(region_id, 65535u);
}

TEST(WalrusIndex, AddImagesAndCounts) {
  WalrusIndex index(TestParams());
  ExtractionStats stats;
  ASSERT_TRUE(index.AddImage(1, "red", ColoredImage(0.9f, 0.1f, 0.1f), &stats)
                  .ok());
  ASSERT_TRUE(index.AddImage(2, "green", ColoredImage(0.1f, 0.8f, 0.1f)).ok());
  EXPECT_EQ(index.ImageCount(), 2u);
  EXPECT_GE(index.RegionCount(), 2u);
  EXPECT_EQ(index.tree().size(),
            static_cast<int64_t>(index.RegionCount()));
  EXPECT_GT(stats.window_count, 0);
}

TEST(WalrusIndex, RejectsDuplicateImageId) {
  WalrusIndex index(TestParams());
  ASSERT_TRUE(index.AddImage(5, "a", ColoredImage(0.5f, 0.5f, 0.5f)).ok());
  Status dup = index.AddImage(5, "b", ColoredImage(0.1f, 0.2f, 0.3f));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(index.ImageCount(), 1u);
}

TEST(WalrusIndex, ImageRegionsAndArea) {
  WalrusIndex index(TestParams());
  ASSERT_TRUE(index.AddImage(7, "x", ColoredImage(0.2f, 0.4f, 0.8f)).ok());
  Result<std::vector<Region>> regions = index.ImageRegions(7);
  ASSERT_TRUE(regions.ok());
  EXPECT_FALSE(regions->empty());
  EXPECT_DOUBLE_EQ(index.ImageArea(7).value(), 64.0 * 64.0);
  EXPECT_FALSE(index.ImageRegions(8).ok());
  EXPECT_FALSE(index.ImageArea(8).ok());
}

TEST(WalrusIndex, ParamsSerializationRoundTrip) {
  WalrusParams p = TestParams();
  p.color_space = ColorSpace::kRGB;
  p.signature_kind = RegionSignatureKind::kBoundingBox;
  p.cluster_epsilon = 0.123;
  p.min_cluster_windows = 3;
  BinaryWriter writer;
  SerializeParams(p, &writer);
  BinaryReader reader(writer.buffer());
  Result<WalrusParams> restored = DeserializeParams(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->color_space, ColorSpace::kRGB);
  EXPECT_EQ(restored->signature_kind, RegionSignatureKind::kBoundingBox);
  EXPECT_DOUBLE_EQ(restored->cluster_epsilon, 0.123);
  EXPECT_EQ(restored->min_cluster_windows, 3);
  EXPECT_EQ(restored->min_window, p.min_window);
}

TEST(WalrusIndex, SaveOpenRoundTrip) {
  std::string prefix = ::testing::TempDir() + "/walrus_index_test";
  {
    WalrusIndex index(TestParams());
    ASSERT_TRUE(index.AddImage(1, "red", ColoredImage(0.9f, 0.1f, 0.1f)).ok());
    ASSERT_TRUE(
        index.AddImage(2, "green", ColoredImage(0.1f, 0.8f, 0.1f)).ok());
    ASSERT_TRUE(index.Save(prefix).ok());
  }
  Result<WalrusIndex> opened = WalrusIndex::Open(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->ImageCount(), 2u);
  EXPECT_EQ(opened->tree().size(),
            static_cast<int64_t>(opened->RegionCount()));
  EXPECT_EQ(opened->params().min_window, 16);
  // Regions still retrievable and identical in shape.
  Result<std::vector<Region>> regions = opened->ImageRegions(1);
  ASSERT_TRUE(regions.ok());
  EXPECT_FALSE(regions->empty());
  std::remove((prefix + ".catalog").c_str());
  std::remove((prefix + ".index").c_str());
}

TEST(WalrusIndex, OpenMissingFilesFails) {
  EXPECT_FALSE(WalrusIndex::Open("/no/such/prefix").ok());
}

}  // namespace
}  // namespace walrus
