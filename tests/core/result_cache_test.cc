#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/result_cache.h"
#include "core/sharded_index.h"
#include "image/dataset.h"

namespace walrus {
namespace {

ImageF SolidImage(int side, float r, float g, float b) {
  ImageF image(side, side, 3, ColorSpace::kRGB);
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      image.SetPixel(x, y, {r, g, b});
    }
  }
  return image;
}

std::vector<QueryMatch> OneMatch(uint64_t id, double similarity) {
  QueryMatch m;
  m.image_id = id;
  m.similarity = similarity;
  return {m};
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  ImageF image = SolidImage(16, 0.3f, 0.4f, 0.5f);
  QueryOptions options;
  ResultCache::Key key = ResultCache::MakeKey(image, options);

  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(key, OneMatch(7, 0.9));
  auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].image_id, 7u);
  EXPECT_DOUBLE_EQ((*hit)[0].similarity, 0.9);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, KeyDependsOnImageAndOptions) {
  ImageF a = SolidImage(16, 0.3f, 0.4f, 0.5f);
  ImageF b = SolidImage(16, 0.3f, 0.4f, 0.6f);
  QueryOptions options;
  EXPECT_EQ(ResultCache::MakeKey(a, options).digest,
            ResultCache::MakeKey(a, options).digest);
  EXPECT_NE(ResultCache::MakeKey(a, options).digest,
            ResultCache::MakeKey(b, options).digest);

  QueryOptions wider = options;
  wider.epsilon = 0.2f;
  EXPECT_NE(ResultCache::MakeKey(a, options).digest,
            ResultCache::MakeKey(a, wider).digest);

  // collect_trace does not shape the ranking, so it must not split keys
  // (trace queries bypass the cache at the engine layer anyway).
  QueryOptions traced = options;
  traced.collect_trace = true;
  EXPECT_EQ(ResultCache::MakeKey(a, options).digest,
            ResultCache::MakeKey(a, traced).digest);

  // The scene rect is part of a scene-query key.
  PixelRect scene1{0, 0, 8, 8};
  PixelRect scene2{4, 4, 12, 12};
  EXPECT_NE(ResultCache::MakeKey(a, scene1, options).digest,
            ResultCache::MakeKey(a, scene2, options).digest);
  EXPECT_NE(ResultCache::MakeKey(a, options).digest,
            ResultCache::MakeKey(a, scene1, options).digest);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  ImageF a = SolidImage(8, 0.1f, 0.1f, 0.1f);
  ImageF b = SolidImage(8, 0.2f, 0.2f, 0.2f);
  ImageF c = SolidImage(8, 0.3f, 0.3f, 0.3f);
  QueryOptions options;
  ResultCache::Key ka = ResultCache::MakeKey(a, options);
  ResultCache::Key kb = ResultCache::MakeKey(b, options);
  ResultCache::Key kc = ResultCache::MakeKey(c, options);

  cache.Insert(ka, OneMatch(1, 0.1));
  cache.Insert(kb, OneMatch(2, 0.2));
  // Touch `a` so `b` becomes the LRU entry, then overflow with `c`.
  ASSERT_TRUE(cache.Lookup(ka).has_value());
  cache.Insert(kc, OneMatch(3, 0.3));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(ka).has_value());
  EXPECT_FALSE(cache.Lookup(kb).has_value());  // evicted
  EXPECT_TRUE(cache.Lookup(kc).has_value());
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  ImageF image = SolidImage(8, 0.5f, 0.5f, 0.5f);
  QueryOptions options;
  ResultCache::Key key = ResultCache::MakeKey(image, options);
  cache.Insert(key, OneMatch(1, 1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(key).has_value());
}

TEST(ResultCacheTest, InvalidateDropsEverything) {
  ResultCache cache(4);
  QueryOptions options;
  ImageF a = SolidImage(8, 0.1f, 0.2f, 0.3f);
  ImageF b = SolidImage(8, 0.4f, 0.5f, 0.6f);
  cache.Insert(ResultCache::MakeKey(a, options), OneMatch(1, 0.5));
  cache.Insert(ResultCache::MakeKey(b, options), OneMatch(2, 0.6));
  ASSERT_EQ(cache.size(), 2u);

  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_FALSE(cache.Lookup(ResultCache::MakeKey(a, options)).has_value());
}

// End-to-end invalidation rule: a mutation through the sharded engine must
// clear the cache, so the next identical query sees the new image instead
// of a stale ranking.
TEST(ResultCacheTest, InvalidationOnAddImages) {
  WalrusParams params;
  params.min_window = 16;
  params.max_window = 32;
  params.slide_step = 8;

  DatasetParams dp;
  dp.num_images = 10;
  dp.width = 64;
  dp.height = 64;
  dp.seed = 91;
  std::vector<LabeledImage> dataset = GenerateDataset(dp);

  ShardedIndex::Options shard_options;
  shard_options.num_shards = 2;
  shard_options.cache_capacity = 8;
  ShardedIndex engine(params, shard_options);
  std::vector<WalrusIndex::PendingImage> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(
        {static_cast<uint64_t>(dataset[i].id), "img", dataset[i].image});
  }
  ASSERT_TRUE(engine.AddImages(std::move(batch)).ok());

  QueryOptions options;
  options.epsilon = 0.12f;
  const ImageF& query = dataset[8].image;

  QueryStats stats;
  auto first = engine.RunQuery(query, options, &stats);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(stats.result_cache_hit);

  auto second = engine.RunQuery(query, options, &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(stats.result_cache_hit);
  ASSERT_EQ(second->size(), first->size());

  // Index the query image itself: the cache must be invalidated, and the
  // re-executed query must now rank the exact duplicate.
  ASSERT_TRUE(engine
                  .AddImage(static_cast<uint64_t>(dataset[8].id), "img",
                            dataset[8].image)
                  .ok());
  ASSERT_NE(engine.result_cache(), nullptr);
  EXPECT_EQ(engine.result_cache()->size(), 0u);
  EXPECT_GE(engine.result_cache()->invalidations(), 1u);

  auto third = engine.RunQuery(query, options, &stats);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(stats.result_cache_hit);
  ASSERT_FALSE(third->empty());
  // The duplicate must now appear, tied with the best similarity (other
  // images can tie at the top under this epsilon; ranking ties break by id).
  bool found = false;
  for (const QueryMatch& m : *third) {
    if (m.image_id == static_cast<uint64_t>(dataset[8].id)) {
      found = true;
      EXPECT_EQ(m.similarity, (*third)[0].similarity);
    }
  }
  EXPECT_TRUE(found) << "newly added image missing from re-executed query";
  EXPECT_GT(third->size(), first->size());
}

}  // namespace
}  // namespace walrus
