// TSan concurrency soak for the binary-signature prefilter tier: reader
// threads run prefiltered queries against shared engines while a writer
// thread live-inserts images (SignatureStore::AddImage on the delta) and
// triggers background merges. Run under scripts/check.sh's TSan build via
// the 'SignatureFilter' filter.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include "core/index.h"
#include "core/query.h"
#include "core/sharded_index.h"
#include "image/dataset.h"
#include "wal/live_index.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

/// Fresh (empty) per-test directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      std::string file = entry->d_name;
      if (file != "." && file != "..") {
        std::remove((dir + "/" + file).c_str());
      }
    }
    ::closedir(d);
  }
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

class SignatureFilterSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 16;
    dp.width = 64;
    dp.height = 64;
    dp.seed = 20260808;
    dataset_ = GenerateDataset(dp);
  }

  QueryOptions PrefilterOptions() const {
    QueryOptions options;
    options.epsilon = 0.12f;
    options.signature_prefilter = true;
    return options;
  }

  std::vector<LabeledImage> dataset_;
};

// Sharded engine: concurrent readers all take the prefilter path through
// each shard's shared SignatureStore (read-only rows + per-query scratch).
TEST_F(SignatureFilterSoakTest, ConcurrentShardedQueries) {
  auto single = std::make_unique<WalrusIndex>(TestParams());
  for (const LabeledImage& scene : dataset_) {
    ASSERT_TRUE(single
                    ->AddImage(static_cast<uint64_t>(scene.id), "img",
                               scene.image)
                    .ok());
  }
  ShardedIndex::Options shard_options;
  shard_options.num_shards = 4;
  auto sharded = ShardedIndex::Partition(*single, shard_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  const QueryOptions options = PrefilterOptions();
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 10;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const ImageF& image = dataset_[(t + q) % dataset_.size()].image;
        QueryStats stats;
        auto result = sharded->RunQuery(image, options, &stats);
        if (!result.ok() || stats.prefilter_candidates_in <= 0) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
}

// Live engine: readers query with the prefilter on while a writer inserts
// images — every insert computes delta signatures on the fly — and the
// merge threshold forces background base/delta swaps mid-soak.
TEST_F(SignatureFilterSoakTest, ConcurrentLiveInsertsAndQueries) {
  std::string dir = FreshDir("signature_filter_soak");
  auto seed = std::make_unique<WalrusIndex>(TestParams());
  constexpr int kSeedImages = 8;
  for (int id = 0; id < kSeedImages; ++id) {
    ASSERT_TRUE(seed->AddImage(static_cast<uint64_t>(id), "img",
                               dataset_[static_cast<size_t>(id)].image)
                    .ok());
  }
  LiveIndex::Options live_options;
  live_options.merge_threshold = 3;
  auto live = LiveIndex::Open(dir, TestParams(), live_options, seed.get());
  ASSERT_TRUE(live.ok()) << live.status();

  const QueryOptions options = PrefilterOptions();
  constexpr int kReaders = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kReaders + 1, 0);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < 12; ++q) {
        const ImageF& image = dataset_[(t + q) % dataset_.size()].image;
        QueryStats stats;
        auto result = (*live)->RunQuery(image, options, &stats);
        if (!result.ok()) ++failures[t];
      }
    });
  }
  threads.emplace_back([&] {
    for (int id = kSeedImages; id < static_cast<int>(dataset_.size()); ++id) {
      Status status = (*live)->InsertImage(
          static_cast<uint64_t>(id), "img",
          dataset_[static_cast<size_t>(id)].image);
      if (!status.ok()) ++failures[kReaders];
    }
  });
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < failures.size(); ++t) EXPECT_EQ(failures[t], 0) << t;

  (*live)->WaitForMerge();
  EXPECT_EQ((*live)->ImageCount(), dataset_.size());
}

}  // namespace
}  // namespace walrus
