#include "core/signature.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams SmallParams() {
  WalrusParams p;
  p.min_window = 8;
  p.max_window = 16;
  p.slide_step = 4;
  p.signature_size = 2;
  return p;
}

ImageF RandomRgb(int w, int h, uint64_t seed) {
  Rng rng(seed);
  ImageF img(w, h, 3, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& v : img.Plane(c)) v = rng.NextFloat();
  }
  return img;
}

TEST(Signature, DimensionsAndCounts) {
  ImageF img = RandomRgb(32, 32, 1);
  Result<WindowSignatureSet> set = ComputeWindowSignatures(img, SmallParams());
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->dim, 12);
  // Windows of size 8 (7x7 grid at step 4) and 16 (5x5 grid).
  EXPECT_EQ(set->Count(), 49 + 25);
  EXPECT_EQ(set->signatures.size(), static_cast<size_t>(set->Count()) * 12);
  int count8 = 0;
  int count16 = 0;
  for (const WindowPlacement& w : set->windows) {
    if (w.size == 8) ++count8;
    if (w.size == 16) ++count16;
  }
  EXPECT_EQ(count8, 49);
  EXPECT_EQ(count16, 25);
}

TEST(Signature, UniformImageHasUniformSignatures) {
  ImageF img(32, 32, 3, ColorSpace::kRGB);
  img.Fill(0.5f);
  Result<WindowSignatureSet> set = ComputeWindowSignatures(img, SmallParams());
  ASSERT_TRUE(set.ok());
  // All windows identical: DC per channel equals the converted value,
  // detail coefficients are 0.
  const float* first = set->SignatureAt(0);
  for (int i = 1; i < set->Count(); ++i) {
    const float* sig = set->SignatureAt(i);
    for (int k = 0; k < set->dim; ++k) {
      ASSERT_NEAR(sig[k], first[k], 1e-5f);
    }
  }
  // Detail positions (indices 1..3 within each channel block) are zero.
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(first[4 * c + 1], 0.0f, 1e-6f);
    EXPECT_NEAR(first[4 * c + 2], 0.0f, 1e-6f);
    EXPECT_NEAR(first[4 * c + 3], 0.0f, 1e-6f);
  }
}

TEST(Signature, TranslationInvariantForAlignedShift) {
  // Sliding a pattern by the slide step leaves the same set of window
  // signatures (just at shifted coordinates) -- WALRUS's translation story.
  WalrusParams p = SmallParams();
  p.min_window = 8;
  p.max_window = 8;
  p.slide_step = 4;
  ImageF img = RandomRgb(40, 24, 2);
  ImageF shifted = TranslateWrap(img, 4, 0);

  Result<WindowSignatureSet> a = ComputeWindowSignatures(img, p);
  Result<WindowSignatureSet> b = ComputeWindowSignatures(shifted, p);
  ASSERT_TRUE(a.ok() && b.ok());
  // Window at x in `a` equals window at x+4 in `b` (when both exist).
  for (int i = 0; i < a->Count(); ++i) {
    const WindowPlacement& wa = a->windows[i];
    if (wa.x + 4 + wa.size > 40) continue;
    for (int j = 0; j < b->Count(); ++j) {
      const WindowPlacement& wb = b->windows[j];
      if (wb.x == wa.x + 4 && wb.y == wa.y && wb.size == wa.size) {
        EXPECT_NEAR(L2Distance(
                        std::vector<float>(a->SignatureAt(i),
                                           a->SignatureAt(i) + a->dim),
                        std::vector<float>(b->SignatureAt(j),
                                           b->SignatureAt(j) + b->dim)),
                    0.0f, 1e-4f);
      }
    }
  }
}

TEST(Signature, ScaleInvariantAcrossWindowSizes) {
  // A 2x upscaled texture viewed through a 16-window has (nearly) the same
  // signature as the original through an 8-window.
  WalrusParams p = SmallParams();
  ImageF img = RandomRgb(8, 8, 3);
  ImageF big = Resize(img, 16, 16, ResizeFilter::kNearest);

  WalrusParams p8 = p;
  p8.min_window = 8;
  p8.max_window = 8;
  p8.slide_step = 8;
  WalrusParams p16 = p;
  p16.min_window = 16;
  p16.max_window = 16;
  p16.slide_step = 16;

  Result<WindowSignatureSet> small_set = ComputeWindowSignatures(img, p8);
  Result<WindowSignatureSet> big_set = ComputeWindowSignatures(big, p16);
  ASSERT_TRUE(small_set.ok() && big_set.ok());
  ASSERT_EQ(small_set->Count(), 1);
  ASSERT_EQ(big_set->Count(), 1);
  for (int k = 0; k < small_set->dim; ++k) {
    EXPECT_NEAR(small_set->SignatureAt(0)[k], big_set->SignatureAt(0)[k],
                1e-4f);
  }
}

TEST(Signature, NormalizationDownweightsFineDetails) {
  // With s=4 the finest detail quadrant (side 2) must be halved relative to
  // the raw transform.
  std::vector<float> raw(16);
  for (size_t i = 0; i < raw.size(); ++i) raw[i] = 1.0f;
  std::vector<float> out;
  AppendNormalizedBlock(raw.data(), 4, &out);
  ASSERT_EQ(out.size(), 16u);
  EXPECT_FLOAT_EQ(out[0], 1.0f);               // DC
  EXPECT_FLOAT_EQ(out[1], 1.0f);               // coarsest detail
  EXPECT_FLOAT_EQ(out[2], 0.5f);               // fine horizontal
  EXPECT_FLOAT_EQ(out[4 * 2 + 2], 0.5f);       // fine diagonal row
}

TEST(Signature, RejectsTooSmallImage) {
  WalrusParams p = SmallParams();  // min_window 8
  ImageF img = RandomRgb(6, 6, 4);
  EXPECT_FALSE(ComputeWindowSignatures(img, p).ok());
}

TEST(Signature, CapsMaxWindowToImage) {
  WalrusParams p = SmallParams();
  p.min_window = 8;
  p.max_window = 64;  // larger than the 16x16 image
  ImageF img = RandomRgb(16, 16, 5);
  Result<WindowSignatureSet> set = ComputeWindowSignatures(img, p);
  ASSERT_TRUE(set.ok()) << set.status();
  int max_size = 0;
  for (const WindowPlacement& w : set->windows) {
    max_size = std::max(max_size, w.size);
  }
  EXPECT_EQ(max_size, 16);
}

TEST(Signature, GraySignaturesAreFourDimensional) {
  WalrusParams p = SmallParams();
  p.color_space = ColorSpace::kGray;
  ImageF img = RandomRgb(16, 16, 6);
  Result<WindowSignatureSet> set = ComputeWindowSignatures(img, p);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->dim, 4);
}

}  // namespace
}  // namespace walrus
