#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "image/synth.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

TEST(IndexRemove, RemovedImageNoLongerRetrieved) {
  WalrusIndex index(TestParams());
  ImageF red = MakeSolid(64, 64, {0.9f, 0.1f, 0.1f});
  ASSERT_TRUE(index.AddImage(1, "red", red).ok());
  ASSERT_TRUE(
      index.AddImage(2, "red2", MakeSolid(64, 64, {0.88f, 0.12f, 0.1f})).ok());
  ASSERT_TRUE(
      index.AddImage(3, "green", MakeSolid(64, 64, {0.1f, 0.8f, 0.1f})).ok());

  ASSERT_TRUE(index.RemoveImage(1).ok());
  EXPECT_EQ(index.ImageCount(), 2u);
  EXPECT_EQ(index.tree().size(), static_cast<int64_t>(index.RegionCount()));
  EXPECT_FALSE(index.ImageRegions(1).ok());

  QueryOptions options;
  options.epsilon = 0.1f;
  auto matches = ExecuteQuery(index, red, options);
  ASSERT_TRUE(matches.ok());
  for (const QueryMatch& m : *matches) {
    EXPECT_NE(m.image_id, 1u);
  }
  // The near-duplicate still matches.
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 2u);
}

TEST(IndexRemove, RemoveMissingIsNotFound) {
  WalrusIndex index(TestParams());
  EXPECT_EQ(index.RemoveImage(42).code(), StatusCode::kNotFound);
}

TEST(IndexRemove, AddRemoveReAddCycle) {
  WalrusIndex index(TestParams());
  ImageF image = MakeSolid(64, 64, {0.3f, 0.4f, 0.5f});
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(index.AddImage(7, "x", image).ok()) << round;
    EXPECT_EQ(index.ImageCount(), 1u);
    ASSERT_TRUE(index.RemoveImage(7).ok()) << round;
    EXPECT_EQ(index.ImageCount(), 0u);
    EXPECT_EQ(index.tree().size(), 0);
  }
}

TEST(IndexRemove, RemoveThenPersistRoundTrips) {
  std::string prefix = ::testing::TempDir() + "/walrus_remove_test";
  WalrusIndex index(TestParams());
  ASSERT_TRUE(
      index.AddImage(1, "a", MakeSolid(64, 64, {0.9f, 0.1f, 0.1f})).ok());
  ASSERT_TRUE(
      index.AddImage(2, "b", MakeSolid(64, 64, {0.1f, 0.8f, 0.1f})).ok());
  ASSERT_TRUE(index.RemoveImage(1).ok());
  ASSERT_TRUE(index.Save(prefix).ok());

  auto reopened = WalrusIndex::Open(prefix);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->ImageCount(), 1u);
  EXPECT_EQ(reopened->catalog().FindImage(1), nullptr);
  EXPECT_NE(reopened->catalog().FindImage(2), nullptr);
  std::remove((prefix + ".catalog").c_str());
  std::remove((prefix + ".index").c_str());
}

TEST(CatalogRemove, SwapWithLastKeepsLookupsConsistent) {
  Catalog catalog;
  for (uint64_t id = 10; id < 20; ++id) {
    ImageRecord rec;
    rec.image_id = id;
    rec.name = "img" + std::to_string(id);
    rec.width = 8;
    rec.height = 8;
    ASSERT_TRUE(catalog.AddImage(std::move(rec)).ok());
  }
  ASSERT_TRUE(catalog.RemoveImage(12).ok());
  ASSERT_TRUE(catalog.RemoveImage(19).ok());  // was swapped into 12's slot?
  EXPECT_EQ(catalog.size(), 8u);
  EXPECT_EQ(catalog.FindImage(12), nullptr);
  EXPECT_EQ(catalog.FindImage(19), nullptr);
  for (uint64_t id : {10u, 11u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    const ImageRecord* rec = catalog.FindImage(id);
    ASSERT_NE(rec, nullptr) << id;
    EXPECT_EQ(rec->image_id, id);
    EXPECT_EQ(rec->name, "img" + std::to_string(id));
  }
  EXPECT_EQ(catalog.RemoveImage(12).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace walrus
