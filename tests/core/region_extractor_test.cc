#include "core/region_extractor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 4;
  p.cluster_epsilon = 0.05;
  p.bitmap_side = 16;
  return p;
}

/// Half red / half green image: two clearly distinct regions.
ImageF TwoToneImage(int w, int h) {
  ImageF img = MakeSolid(w, h, {0.9f, 0.1f, 0.1f});
  ImageF right = MakeSolid(w / 2, h, {0.1f, 0.8f, 0.15f});
  Composite(&img, right, w / 2, 0);
  return img;
}

TEST(RegionExtractor, UniformImageYieldsOneRegion) {
  ImageF img = MakeSolid(64, 64, {0.4f, 0.5f, 0.6f});
  ExtractionStats stats;
  Result<std::vector<Region>> regions =
      ExtractRegions(img, TestParams(), &stats);
  ASSERT_TRUE(regions.ok()) << regions.status();
  EXPECT_EQ(regions->size(), 1u);
  EXPECT_EQ(stats.region_count, 1);
  EXPECT_GT(stats.window_count, 0);
  // The single region covers the whole image.
  EXPECT_DOUBLE_EQ((*regions)[0].CoveredFraction(), 1.0);
  EXPECT_EQ((*regions)[0].window_count,
            static_cast<uint64_t>(stats.window_count));
}

TEST(RegionExtractor, TwoToneImageYieldsTwoDominantRegions) {
  ImageF img = TwoToneImage(64, 64);
  ExtractionStats stats;
  Result<std::vector<Region>> regions =
      ExtractRegions(img, TestParams(), &stats);
  ASSERT_TRUE(regions.ok());
  // Pure-left windows, pure-right windows, and boundary-straddling windows:
  // at least 2 regions, and the two largest cover distinct halves.
  ASSERT_GE(regions->size(), 2u);

  // Find the two regions with the most windows.
  std::vector<const Region*> sorted;
  for (const Region& r : *regions) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const Region* a, const Region* b) {
              return a->window_count > b->window_count;
            });
  const Region* big_a = sorted[0];
  const Region* big_b = sorted[1];
  // Their centroids differ strongly (red vs green dominates the signature).
  EXPECT_GT(L2Distance(big_a->centroid, big_b->centroid), 0.1f);
}

TEST(RegionExtractor, RegionIdsAreDense) {
  ImageF img = TwoToneImage(64, 64);
  Result<std::vector<Region>> regions = ExtractRegions(img, TestParams());
  ASSERT_TRUE(regions.ok());
  for (size_t i = 0; i < regions->size(); ++i) {
    EXPECT_EQ((*regions)[i].region_id, i);
  }
}

TEST(RegionExtractor, BitmapsUnionCoversImage) {
  // Every window belongs to some cluster, so unioning all region bitmaps
  // must cover everything the sliding windows touch (here: everything).
  ImageF img = TwoToneImage(64, 64);
  WalrusParams p = TestParams();
  Result<std::vector<Region>> regions = ExtractRegions(img, p);
  ASSERT_TRUE(regions.ok());
  CoverageBitmap all(p.bitmap_side);
  for (const Region& r : *regions) all.UnionWith(r.bitmap);
  EXPECT_DOUBLE_EQ(all.CoveredFraction(), 1.0);
}

TEST(RegionExtractor, CentroidInsideBoundingBox) {
  Rng rng(3);
  ImageF img(64, 64, 3, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& v : img.Plane(c)) v = rng.NextFloat();
  }
  Result<std::vector<Region>> regions = ExtractRegions(img, TestParams());
  ASSERT_TRUE(regions.ok());
  for (const Region& r : *regions) {
    // Centroid of member signatures must lie within their bounding box
    // (tiny epsilon for float accumulation).
    for (int d = 0; d < r.bounding_box.dim(); ++d) {
      EXPECT_GE(r.centroid[d], r.bounding_box.lo(d) - 1e-4f);
      EXPECT_LE(r.centroid[d], r.bounding_box.hi(d) + 1e-4f);
    }
  }
}

TEST(RegionExtractor, MorePermissiveEpsilonMergesRegions) {
  // Section 6.6: number of regions decreases as epsilon_c grows.
  ImageF img = TwoToneImage(64, 64);
  size_t prev = SIZE_MAX;
  for (double eps : {0.01, 0.05, 0.2, 1.0}) {
    WalrusParams p = TestParams();
    p.cluster_epsilon = eps;
    Result<std::vector<Region>> regions = ExtractRegions(img, p);
    ASSERT_TRUE(regions.ok());
    EXPECT_LE(regions->size(), prev) << eps;
    prev = regions->size();
  }
}

TEST(RegionExtractor, MinClusterWindowsPrunes) {
  ImageF img = TwoToneImage(64, 64);
  WalrusParams p = TestParams();
  ExtractionStats stats_all;
  Result<std::vector<Region>> all = ExtractRegions(img, p, &stats_all);
  ASSERT_TRUE(all.ok());
  p.min_cluster_windows = 10;
  ExtractionStats stats_pruned;
  Result<std::vector<Region>> pruned = ExtractRegions(img, p, &stats_pruned);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LE(pruned->size(), all->size());
  for (const Region& r : *pruned) {
    EXPECT_GE(r.window_count, 10u);
  }
  EXPECT_EQ(stats_pruned.cluster_count, stats_all.cluster_count);
}

TEST(RegionExtractor, KMeansClustererProducesBoundedRegions) {
  ImageF img = TwoToneImage(64, 64);
  WalrusParams p = TestParams();
  p.clusterer = ClustererKind::kKMeans;
  p.kmeans_k = 4;
  ExtractionStats stats;
  Result<std::vector<Region>> regions = ExtractRegions(img, p, &stats);
  ASSERT_TRUE(regions.ok()) << regions.status();
  EXPECT_LE(regions->size(), 4u);
  EXPECT_GE(regions->size(), 2u);
  // All windows accounted for.
  uint64_t total = 0;
  for (const Region& r : *regions) total += r.window_count;
  EXPECT_EQ(total, static_cast<uint64_t>(stats.window_count));
}

TEST(RegionExtractor, KMeansAutoKScalesWithWindows) {
  ImageF img = TwoToneImage(64, 64);
  WalrusParams p = TestParams();
  p.clusterer = ClustererKind::kKMeans;
  p.kmeans_k = 0;  // auto
  ExtractionStats stats;
  Result<std::vector<Region>> regions = ExtractRegions(img, p, &stats);
  ASSERT_TRUE(regions.ok());
  EXPECT_GE(regions->size(), 2u);
  EXPECT_LE(static_cast<int>(regions->size()),
            std::max(2, static_cast<int>(std::sqrt(
                            static_cast<double>(stats.window_count)))));
}

TEST(Region, RecordRoundTrip) {
  ImageF img = TwoToneImage(64, 64);
  Result<std::vector<Region>> regions = ExtractRegions(img, TestParams());
  ASSERT_TRUE(regions.ok());
  ASSERT_FALSE(regions->empty());
  const Region& original = (*regions)[0];
  Region restored = Region::FromRecord(original.ToRecord());
  EXPECT_EQ(restored.region_id, original.region_id);
  EXPECT_EQ(restored.centroid, original.centroid);
  EXPECT_TRUE(restored.bitmap == original.bitmap);
  EXPECT_EQ(restored.window_count, original.window_count);
  EXPECT_TRUE(restored.bounding_box == original.bounding_box);
}

TEST(Region, IndexRectKinds) {
  Region r;
  r.centroid = {0.5f, 0.5f};
  r.bounding_box = Rect::Bounds({0.4f, 0.4f}, {0.6f, 0.7f});
  Rect point = r.IndexRect(false);
  EXPECT_DOUBLE_EQ(point.Area(), 0.0);
  EXPECT_TRUE(point.Contains({0.5f, 0.5f}));
  Rect box = r.IndexRect(true);
  EXPECT_NEAR(box.Area(), 0.2 * 0.3, 1e-6);
}

}  // namespace
}  // namespace walrus
