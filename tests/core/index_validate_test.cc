#include <cstdio>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/index.h"
#include "image/synth.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

WalrusIndex BuildIndex() {
  WalrusIndex index(TestParams());
  EXPECT_TRUE(index.AddImage(1, "red", MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}))
                  .ok());
  EXPECT_TRUE(index.AddImage(2, "green", MakeSolid(64, 64, {0.1f, 0.8f, 0.1f}))
                  .ok());
  EXPECT_TRUE(index.AddImage(3, "blue", MakeSolid(64, 64, {0.1f, 0.2f, 0.9f}))
                  .ok());
  return index;
}

std::string TempPrefix(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IndexValidate, HealthyInMemoryIndexIsConsistent) {
  WalrusIndex index = BuildIndex();
  Status status = index.ValidateConsistency();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(IndexValidate, EmptyIndexIsConsistent) {
  WalrusIndex index(TestParams());
  EXPECT_TRUE(index.ValidateConsistency().ok());
}

TEST(IndexValidate, StaysConsistentAcrossRemoval) {
  WalrusIndex index = BuildIndex();
  ASSERT_TRUE(index.RemoveImage(2).ok());
  Status status = index.ValidateConsistency();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(IndexValidate, HealthyPagedIndexIsConsistent) {
  std::string prefix = TempPrefix("idxval_paged");
  {
    WalrusIndex index = BuildIndex();
    ASSERT_TRUE(index.SavePaged(prefix).ok());
  }
  Result<WalrusIndex> opened = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status();
  ASSERT_TRUE(opened->is_paged());
  Status status = opened->ValidateConsistency();
  EXPECT_TRUE(status.ok()) << status;
  std::remove((prefix + ".catalog").c_str());
  std::remove((prefix + ".pmeta").c_str());
  std::remove((prefix + ".ptree").c_str());
}

TEST(IndexValidate, DetectsCorruptPagedTree) {
  std::string prefix = TempPrefix("idxval_flip");
  {
    WalrusIndex index = BuildIndex();
    ASSERT_TRUE(index.SavePaged(prefix).ok());
  }
  // Flip a byte in the page tree's first node page (the metadata blob lives
  // on the last pages, so OpenPaged itself still succeeds).
  std::string ptree = prefix + ".ptree";
  {
    std::FILE* f = std::fopen(ptree.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    long offset = 1 * static_cast<long>(PageFile::kDefaultPageSize) + 21;
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }
  Result<WalrusIndex> opened = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Status status = opened->ValidateConsistency();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status;
  std::remove((prefix + ".catalog").c_str());
  std::remove((prefix + ".pmeta").c_str());
  std::remove(ptree.c_str());
}

TEST(IndexValidate, DeepChecksRunValidatorsAfterMutations) {
  // With the runtime flag on, every mutation re-validates the whole index;
  // on a healthy index all mutations still succeed.
  SetDeepChecks(true);
  WalrusIndex index(TestParams());
  EXPECT_TRUE(index.AddImage(1, "a", MakeSolid(64, 64, {0.7f, 0.2f, 0.1f}))
                  .ok());
  EXPECT_TRUE(index.AddImage(2, "b", MakeSolid(64, 64, {0.2f, 0.7f, 0.1f}))
                  .ok());
  EXPECT_TRUE(index.RemoveImage(1).ok());
  SetDeepChecks(false);
  EXPECT_FALSE(DeepChecksEnabled());
}

}  // namespace
}  // namespace walrus
