// Randomized property sweep over the three image matchers: structural
// dominance relations that must hold on ANY input.
//   quick >= greedy   (quick relaxes the one-to-one constraint)
//   exact >= greedy   (exact optimizes the same objective greedy approximates)
//   quick >= exact    (the relaxed optimum dominates the constrained one)

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/similarity.h"

namespace walrus {
namespace {

struct Instance {
  std::vector<Region> query;
  std::vector<Region> target;
  std::vector<RegionPair> pairs;
};

Instance RandomInstance(uint64_t seed) {
  Rng rng(seed);
  Instance instance;
  auto make_side = [&rng](int count) {
    std::vector<Region> regions;
    for (int i = 0; i < count; ++i) {
      Region r;
      r.region_id = static_cast<uint32_t>(i);
      r.centroid = {rng.NextFloat()};
      r.bounding_box = Rect::Point(r.centroid);
      r.bitmap = CoverageBitmap(8);
      int cells = rng.NextInt(1, 20);
      for (int k = 0; k < cells; ++k) {
        r.bitmap.SetCell(rng.NextInt(0, 7), rng.NextInt(0, 7));
      }
      r.window_count = 1;
      regions.push_back(std::move(r));
    }
    return regions;
  };
  int nq = rng.NextInt(1, 5);
  int nt = rng.NextInt(1, 5);
  instance.query = make_side(nq);
  instance.target = make_side(nt);
  for (int q = 0; q < nq; ++q) {
    for (int t = 0; t < nt; ++t) {
      if (rng.NextBernoulli(0.5)) instance.pairs.push_back({q, t});
    }
  }
  return instance;
}

class MatcherProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatcherProperty, DominanceChain) {
  for (int trial = 0; trial < 40; ++trial) {
    Instance instance =
        RandomInstance(static_cast<uint64_t>(GetParam()) * 1000 + trial);
    double area_q = 64.0;
    double area_t = 128.0;
    MatchResult quick =
        QuickMatch(instance.query, instance.target, instance.pairs, area_q,
                   area_t);
    MatchResult greedy =
        GreedyMatch(instance.query, instance.target, instance.pairs, area_q,
                    area_t);
    MatchResult exact =
        ExactMatch(instance.query, instance.target, instance.pairs, area_q,
                   area_t);
    EXPECT_GE(quick.similarity + 1e-12, greedy.similarity) << trial;
    EXPECT_GE(exact.similarity + 1e-12, greedy.similarity) << trial;
    EXPECT_GE(quick.similarity + 1e-12, exact.similarity) << trial;

    // Similarity is always within [0, 1].
    for (const MatchResult& r : {quick, greedy, exact}) {
      EXPECT_GE(r.similarity, 0.0);
      EXPECT_LE(r.similarity, 1.0);
      // Covered areas are bounded by the image areas.
      EXPECT_LE(r.covered_query_area, area_q + 1e-9);
      EXPECT_LE(r.covered_target_area, area_t + 1e-9);
    }

    // Greedy and exact respect one-to-one: pairs_used bounded by side sizes.
    int bound = static_cast<int>(
        std::min(instance.query.size(), instance.target.size()));
    EXPECT_LE(greedy.pairs_used, bound);
    EXPECT_LE(exact.pairs_used, bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherProperty, ::testing::Range(1, 6));

TEST(MatcherProperty, MorePairsNeverHurtQuick) {
  // The quick matcher's similarity is monotone in the pair set.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Instance instance = RandomInstance(seed);
    if (instance.pairs.size() < 2) continue;
    std::vector<RegionPair> subset(instance.pairs.begin(),
                                   instance.pairs.end() - 1);
    MatchResult all = QuickMatch(instance.query, instance.target,
                                 instance.pairs, 64.0, 64.0);
    MatchResult fewer =
        QuickMatch(instance.query, instance.target, subset, 64.0, 64.0);
    EXPECT_GE(all.similarity + 1e-12, fewer.similarity) << seed;
  }
}

}  // namespace
}  // namespace walrus
