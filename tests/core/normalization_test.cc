#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "core/similarity.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

TEST(SimilarityNormalization, VariantsFromSameCoveredAreas) {
  MatchResult result;
  result.covered_query_area = 50.0;
  result.covered_target_area = 80.0;
  // Query 100 px, target 400 px.
  EXPECT_DOUBLE_EQ(
      result.SimilarityAs(SimilarityNormalization::kBothImages, 100, 400),
      130.0 / 500.0);
  EXPECT_DOUBLE_EQ(
      result.SimilarityAs(SimilarityNormalization::kQueryOnly, 100, 400),
      0.5);
  EXPECT_DOUBLE_EQ(
      result.SimilarityAs(SimilarityNormalization::kSmallerImage, 100, 400),
      130.0 / 200.0);
}

TEST(SimilarityNormalization, SmallerImageClampsAtOne) {
  MatchResult result;
  result.covered_query_area = 100.0;
  result.covered_target_area = 350.0;
  EXPECT_DOUBLE_EQ(
      result.SimilarityAs(SimilarityNormalization::kSmallerImage, 100, 400),
      1.0);
}

TEST(SimilarityNormalization, ZeroAreasGiveZero) {
  MatchResult result;
  EXPECT_DOUBLE_EQ(
      result.SimilarityAs(SimilarityNormalization::kQueryOnly, 0, 0), 0.0);
}

TEST(SimilarityNormalization, QueryOnlyInflatesSubimageQueries) {
  // A small query fully contained in a big target: kQueryOnly reports full
  // similarity while kBothImages is dragged down by the target's unmatched
  // area. This is exactly the use case the paper sketches.
  WalrusParams params;
  params.min_window = 16;
  params.max_window = 16;
  params.slide_step = 8;
  WalrusIndex index(params);

  // Target: top half red, bottom half blue (128x128).
  ImageF target = MakeSolid(128, 128, {0.1f, 0.1f, 0.9f});
  ImageF top = MakeSolid(128, 64, {0.9f, 0.1f, 0.1f});
  Composite(&target, top, 0, 0);
  ASSERT_TRUE(index.AddImage(1, "two-tone", target).ok());

  // Query: pure red 64x64 (matches the target's top half only).
  ImageF query = MakeSolid(64, 64, {0.9f, 0.1f, 0.1f});

  QueryOptions both;
  both.epsilon = 0.05f;
  both.normalization = SimilarityNormalization::kBothImages;
  QueryOptions query_only = both;
  query_only.normalization = SimilarityNormalization::kQueryOnly;

  auto both_matches = ExecuteQuery(index, query, both);
  auto qonly_matches = ExecuteQuery(index, query, query_only);
  ASSERT_TRUE(both_matches.ok() && qonly_matches.ok());
  ASSERT_FALSE(both_matches->empty());
  ASSERT_FALSE(qonly_matches->empty());
  double sim_both = (*both_matches)[0].similarity;
  double sim_query_only = (*qonly_matches)[0].similarity;
  EXPECT_NEAR(sim_query_only, 1.0, 1e-9);
  EXPECT_LT(sim_both, 0.75);
  EXPECT_GT(sim_both, 0.3);
}

}  // namespace
}  // namespace walrus
