#include "core/similarity.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace {

/// Builds a region whose bitmap covers the cell rectangle
/// [cx0, cx1) x [cy0, cy1) on an 8x8 grid, with the given centroid.
Region MakeRegion(uint32_t id, std::vector<float> centroid, int cx0, int cy0,
                  int cx1, int cy1) {
  Region r;
  r.region_id = id;
  r.centroid = std::move(centroid);
  r.bounding_box = Rect::Point(r.centroid);
  r.bitmap = CoverageBitmap(8);
  for (int cy = cy0; cy < cy1; ++cy) {
    for (int cx = cx0; cx < cx1; ++cx) r.bitmap.SetCell(cx, cy);
  }
  r.window_count = 1;
  return r;
}

TEST(RegionMatch, CentroidEpsilonBoundary) {
  std::vector<float> a = {0.0f, 0.0f};
  std::vector<float> b = {0.3f, 0.4f};  // distance 0.5
  EXPECT_TRUE(RegionsMatchCentroid(a.data(), b.data(), 2, 0.51f));
  EXPECT_FALSE(RegionsMatchCentroid(a.data(), b.data(), 2, 0.49f));
}

TEST(RegionMatch, BBoxEpsilonExpansion) {
  Rect a = Rect::Bounds({0, 0}, {1, 1});
  Rect b = Rect::Bounds({1.5f, 0}, {2, 1});
  EXPECT_FALSE(RegionsMatchBBox(a, b, 0.2f));
  EXPECT_TRUE(RegionsMatchBBox(a, b, 0.5f));
}

TEST(FindMatchingPairs, AllPairsWithinEpsilon) {
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 4, 4),
                               MakeRegion(1, {1.0f}, 4, 0, 8, 4)};
  std::vector<Region> target = {MakeRegion(0, {0.05f}, 0, 0, 4, 4),
                                MakeRegion(1, {0.98f}, 4, 0, 8, 4),
                                MakeRegion(2, {0.5f}, 0, 4, 8, 8)};
  std::vector<RegionPair> pairs =
      FindMatchingPairs(query, target, 0.1f, /*use_bounding_box=*/false);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].query_index, 0);
  EXPECT_EQ(pairs[0].target_index, 0);
  EXPECT_EQ(pairs[1].query_index, 1);
  EXPECT_EQ(pairs[1].target_index, 1);
}

TEST(QuickMatch, FullCoverageGivesSimilarityOne) {
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 8, 8)};
  std::vector<Region> target = {MakeRegion(0, {0.0f}, 0, 0, 8, 8)};
  MatchResult result = QuickMatch(query, target, {{0, 0}}, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(result.similarity, 1.0);
  EXPECT_EQ(result.pairs_used, 1);
}

TEST(QuickMatch, NoPairsGivesZero) {
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 8, 8)};
  std::vector<Region> target = {MakeRegion(0, {9.0f}, 0, 0, 8, 8)};
  MatchResult result = QuickMatch(query, target, {}, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(result.similarity, 0.0);
}

TEST(QuickMatch, Definition43Fraction) {
  // Query region covers half its image, target covers a quarter of its.
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 8, 4)};
  std::vector<Region> target = {MakeRegion(0, {0.0f}, 0, 0, 4, 4)};
  MatchResult result = QuickMatch(query, target, {{0, 0}}, 200.0, 100.0);
  // (0.5*200 + 0.25*100) / (200+100) = 125/300.
  EXPECT_NEAR(result.similarity, 125.0 / 300.0, 1e-9);
  EXPECT_NEAR(result.covered_query_area, 100.0, 1e-9);
  EXPECT_NEAR(result.covered_target_area, 25.0, 1e-9);
}

TEST(QuickMatch, ManyToManyInflatesTargetCoverage) {
  // One query region matching two disjoint target regions: quick matcher
  // counts both target regions (the drawback discussed in section 5.5).
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 2, 2)};
  std::vector<Region> target = {MakeRegion(0, {0.0f}, 0, 0, 4, 8),
                                MakeRegion(1, {0.0f}, 4, 0, 8, 8)};
  MatchResult quick =
      QuickMatch(query, target, {{0, 0}, {0, 1}}, 64.0, 64.0);
  EXPECT_NEAR(quick.covered_target_area, 64.0, 1e-9);

  // Greedy enforces one-to-one: only one target region counted.
  MatchResult greedy =
      GreedyMatch(query, target, {{0, 0}, {0, 1}}, 64.0, 64.0);
  EXPECT_NEAR(greedy.covered_target_area, 32.0, 1e-9);
  EXPECT_EQ(greedy.pairs_used, 1);
  EXPECT_LT(greedy.similarity, quick.similarity);
}

TEST(GreedyMatch, PicksLargerGainFirst) {
  // Region 0 covers the left half, region 1 a small disjoint patch.
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 4, 8),
                               MakeRegion(1, {1.0f}, 6, 0, 8, 2)};
  std::vector<Region> target = {MakeRegion(0, {0.0f}, 0, 0, 4, 8),
                                MakeRegion(1, {1.0f}, 6, 0, 8, 2)};
  // All four pairs offered; optimal one-to-one keeps (0,0) and (1,1).
  std::vector<RegionPair> pairs = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  MatchResult result = GreedyMatch(query, target, pairs, 64.0, 64.0);
  EXPECT_EQ(result.pairs_used, 2);
  EXPECT_DOUBLE_EQ(result.similarity, 36.0 / 64.0);
}

TEST(GreedyMatch, SkipsZeroGainPairs) {
  // Region 1 is fully covered by region 0: the second pair adds nothing
  // and the greedy matcher drops it.
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 8, 8),
                               MakeRegion(1, {1.0f}, 0, 0, 2, 2)};
  std::vector<Region> target = {MakeRegion(0, {0.0f}, 0, 0, 8, 8),
                                MakeRegion(1, {1.0f}, 0, 0, 2, 2)};
  std::vector<RegionPair> pairs = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  MatchResult result = GreedyMatch(query, target, pairs, 64.0, 64.0);
  EXPECT_EQ(result.pairs_used, 1);
  EXPECT_DOUBLE_EQ(result.similarity, 1.0);
}

TEST(GreedyMatch, MatchesExactOnSmallInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Region> query;
    std::vector<Region> target;
    for (int i = 0; i < 4; ++i) {
      int x0 = rng.NextInt(0, 5);
      int y0 = rng.NextInt(0, 5);
      query.push_back(MakeRegion(i, {0.0f}, x0, y0, x0 + rng.NextInt(1, 3),
                                 y0 + rng.NextInt(1, 3)));
      x0 = rng.NextInt(0, 5);
      y0 = rng.NextInt(0, 5);
      target.push_back(MakeRegion(i, {0.0f}, x0, y0, x0 + rng.NextInt(1, 3),
                                  y0 + rng.NextInt(1, 3)));
    }
    std::vector<RegionPair> pairs;
    for (int q = 0; q < 4; ++q) {
      for (int t = 0; t < 4; ++t) {
        if (rng.NextBernoulli(0.6)) pairs.push_back({q, t});
      }
    }
    MatchResult greedy = GreedyMatch(query, target, pairs, 64.0, 64.0);
    MatchResult exact = ExactMatch(query, target, pairs, 64.0, 64.0);
    EXPECT_LE(greedy.similarity, exact.similarity + 1e-9);
    // Greedy on these small instances should be within 30% of optimal.
    if (exact.similarity > 0) {
      EXPECT_GE(greedy.similarity, 0.7 * exact.similarity) << trial;
    }
  }
}

TEST(ExactMatch, SolvesAdversarialInstance) {
  // Greedy trap: pair (0,0) has the largest immediate gain but blocks the
  // two pairs that together cover more.
  std::vector<Region> query = {MakeRegion(0, {0.0f}, 0, 0, 8, 5),
                               MakeRegion(1, {0.0f}, 0, 0, 8, 4)};
  std::vector<Region> target = {MakeRegion(0, {0.0f}, 0, 0, 8, 5),
                                MakeRegion(1, {0.0f}, 0, 4, 8, 8)};
  // Pairs: (0,0) covers 5/8+5/8; {(0,1),(1,0)} covers (4/8+5/8... )
  std::vector<RegionPair> pairs = {{0, 0}, {0, 1}, {1, 0}};
  MatchResult exact = ExactMatch(query, target, pairs, 64.0, 64.0);
  MatchResult greedy = GreedyMatch(query, target, pairs, 64.0, 64.0);
  EXPECT_GE(exact.similarity, greedy.similarity - 1e-12);
  // Exact picks two pairs: query covered 5/8 (region 0) union 4/8 = 5/8?
  // Regions overlap; just assert exact uses 2 pairs and beats/meets greedy.
  EXPECT_EQ(exact.pairs_used, 2);
}

TEST(MatchImages, EndToEnd) {
  std::vector<Region> query = {MakeRegion(0, {0.0f, 0.0f}, 0, 0, 8, 4),
                               MakeRegion(1, {0.9f, 0.9f}, 0, 4, 8, 8)};
  std::vector<Region> target = {MakeRegion(0, {0.02f, 0.0f}, 0, 0, 8, 4),
                                MakeRegion(1, {0.5f, 0.5f}, 0, 4, 8, 8)};
  MatchResult result = MatchImages(query, target, /*epsilon=*/0.1f,
                                   /*use_bounding_box=*/false,
                                   /*use_greedy=*/true, 64.0, 64.0);
  // Only the first pair matches: half of each image covered.
  EXPECT_NEAR(result.similarity, 0.5, 1e-9);
  EXPECT_EQ(result.pairs_used, 1);
}

}  // namespace
}  // namespace walrus
