#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "core/sharded_index.h"
#include "image/dataset.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

/// Asserts the full ranking is byte-identical: ids, exact similarity bits,
/// and pair counts.
void ExpectIdenticalRankings(const std::vector<QueryMatch>& a,
                             const std::vector<QueryMatch>& b,
                             const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_id, b[i].image_id) << context << " rank " << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << context << " rank " << i;
    EXPECT_EQ(a[i].matching_pairs, b[i].matching_pairs)
        << context << " rank " << i;
    EXPECT_EQ(a[i].pairs_used, b[i].pairs_used) << context << " rank " << i;
  }
}

class ShardedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 18;
    dp.width = 64;
    dp.height = 64;
    dp.seed = 77;
    dataset_ = GenerateDataset(dp);
    single_ = std::make_unique<WalrusIndex>(TestParams());
    for (const LabeledImage& scene : dataset_) {
      ASSERT_TRUE(single_
                      ->AddImage(static_cast<uint64_t>(scene.id), "img",
                                 scene.image)
                      .ok());
    }
  }

  ShardedIndex MakeSharded(int num_shards, size_t cache = 0) {
    ShardedIndex::Options options;
    options.num_shards = num_shards;
    options.cache_capacity = cache;
    auto sharded = ShardedIndex::Partition(*single_, options);
    EXPECT_TRUE(sharded.ok()) << sharded.status();
    return std::move(*sharded);
  }

  std::vector<LabeledImage> dataset_;
  std::unique_ptr<WalrusIndex> single_;
};

TEST_F(ShardedIndexTest, ShardOfIsStableAndInRange) {
  std::map<int, int> counts;
  for (uint64_t id = 0; id < 1000; ++id) {
    int s = ShardedIndex::ShardOf(id, 4);
    EXPECT_EQ(s, ShardedIndex::ShardOf(id, 4));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    counts[s]++;
  }
  // Hash routing must spread sequential ids across every shard.
  for (int s = 0; s < 4; ++s) EXPECT_GT(counts[s], 100) << s;
  EXPECT_EQ(ShardedIndex::ShardOf(123, 1), 0);
}

TEST_F(ShardedIndexTest, PartitionPreservesEveryImage) {
  for (int n : {1, 2, 3, 4}) {
    ShardedIndex sharded = MakeSharded(n);
    EXPECT_EQ(sharded.num_shards(), n);
    EXPECT_EQ(sharded.ImageCount(), single_->ImageCount()) << n;
    EXPECT_EQ(sharded.RegionCount(), single_->RegionCount()) << n;
    size_t images = 0;
    for (int s = 0; s < n; ++s) images += sharded.shard(s).ImageCount();
    EXPECT_EQ(images, single_->ImageCount()) << n;
  }
}

TEST_F(ShardedIndexTest, RankingsByteIdenticalAcrossShardCounts) {
  QueryOptions options;
  options.epsilon = 0.12f;
  for (int n : {1, 2, 3, 4}) {
    ShardedIndex sharded = MakeSharded(n);
    for (int q = 0; q < 6; ++q) {
      auto expected = ExecuteQuery(*single_, dataset_[q].image, options);
      ASSERT_TRUE(expected.ok());
      auto got = sharded.RunQuery(dataset_[q].image, options);
      ASSERT_TRUE(got.ok()) << got.status();
      ExpectIdenticalRankings(*expected, *got,
                              "shards=" + std::to_string(n) + " q=" +
                                  std::to_string(q));
    }
  }
}

TEST_F(ShardedIndexTest, GreedyMatcherAndPairsIdentical) {
  QueryOptions options;
  options.epsilon = 0.12f;
  options.matcher = MatcherKind::kGreedy;
  options.collect_pairs = true;
  ShardedIndex sharded = MakeSharded(3);
  for (int q = 0; q < 4; ++q) {
    auto expected = ExecuteQuery(*single_, dataset_[q].image, options);
    ASSERT_TRUE(expected.ok());
    auto got = sharded.RunQuery(dataset_[q].image, options);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(expected->size(), got->size()) << q;
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*expected)[i].image_id, (*got)[i].image_id) << q;
      EXPECT_EQ((*expected)[i].similarity, (*got)[i].similarity) << q;
      // Canonical pair ordering makes even the pair lists identical.
      ASSERT_EQ((*expected)[i].pairs.size(), (*got)[i].pairs.size()) << q;
      for (size_t p = 0; p < (*expected)[i].pairs.size(); ++p) {
        EXPECT_EQ((*expected)[i].pairs[p].query_index,
                  (*got)[i].pairs[p].query_index);
        EXPECT_EQ((*expected)[i].pairs[p].target_index,
                  (*got)[i].pairs[p].target_index);
      }
    }
  }
}

TEST_F(ShardedIndexTest, SceneQueriesIdentical) {
  QueryOptions options;
  options.epsilon = 0.12f;
  PixelRect scene{8, 8, 48, 48};
  ShardedIndex sharded = MakeSharded(4);
  for (int q = 0; q < 4; ++q) {
    auto expected =
        ExecuteSceneQuery(*single_, dataset_[q].image, scene, options);
    ASSERT_TRUE(expected.ok());
    auto got = sharded.RunSceneQuery(dataset_[q].image, scene, options);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectIdenticalRankings(*expected, *got, "scene q=" + std::to_string(q));
  }
}

TEST_F(ShardedIndexTest, KnnQueriesReturnSameImageSet) {
  // kNN sharding merges per-shard top-k lists by (distance, payload); the
  // merged set equals the global top-k except for tie order at the k-th
  // distance, so compare the ranked image sets rather than bytes.
  QueryOptions options;
  options.knn_per_region = 5;
  ShardedIndex sharded = MakeSharded(3);
  for (int q = 0; q < 4; ++q) {
    auto expected = ExecuteQuery(*single_, dataset_[q].image, options);
    ASSERT_TRUE(expected.ok());
    auto got = sharded.RunQuery(dataset_[q].image, options);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(expected->size(), got->size()) << q;
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*expected)[i].image_id, (*got)[i].image_id) << q;
    }
  }
}

TEST_F(ShardedIndexTest, StatsAggregateAcrossShards) {
  QueryOptions options;
  options.epsilon = 0.12f;
  ShardedIndex sharded = MakeSharded(4);
  QueryStats sharded_stats;
  auto got = sharded.RunQuery(dataset_[0].image, options, &sharded_stats);
  ASSERT_TRUE(got.ok());
  QueryStats single_stats;
  auto expected =
      ExecuteQuery(*single_, dataset_[0].image, options, &single_stats);
  ASSERT_TRUE(expected.ok());
  // Same probes run, just spread across trees.
  EXPECT_EQ(sharded_stats.query_regions, single_stats.query_regions);
  EXPECT_EQ(sharded_stats.regions_retrieved, single_stats.regions_retrieved);
  EXPECT_EQ(sharded_stats.distinct_images, single_stats.distinct_images);
  EXPECT_FALSE(sharded_stats.result_cache_hit);

  EngineStats engine_stats = sharded.Stats();
  EXPECT_EQ(engine_stats.num_shards, 4);
  ASSERT_EQ(engine_stats.shard_probes.size(), 4u);
  uint64_t total = 0;
  for (uint64_t p : engine_stats.shard_probes) total += p;
  EXPECT_EQ(total, static_cast<uint64_t>(single_stats.regions_retrieved));
}

TEST_F(ShardedIndexTest, MutationsRouteAndRemove) {
  ShardedIndex sharded = MakeSharded(3);
  uint64_t new_id = 1000;
  ASSERT_TRUE(sharded.AddImage(new_id, "extra", dataset_[0].image).ok());
  EXPECT_EQ(sharded.ImageCount(), dataset_.size() + 1);
  int owner = ShardedIndex::ShardOf(new_id, 3);
  EXPECT_EQ(sharded.shard(owner).catalog().FindImage(new_id) != nullptr, true);

  // Duplicate id rejected, from any shard's perspective.
  EXPECT_FALSE(sharded.AddImage(new_id, "dup", dataset_[0].image).ok());

  ASSERT_TRUE(sharded.RemoveImage(new_id).ok());
  EXPECT_EQ(sharded.ImageCount(), dataset_.size());
  EXPECT_FALSE(sharded.RemoveImage(new_id).ok());  // NotFound
}

TEST_F(ShardedIndexTest, SaveOpenRoundTrip) {
  for (bool paged : {false, true}) {
    ShardedIndex sharded = MakeSharded(3);
    std::string prefix = ::testing::TempDir() + "/walrus_sharded_rt" +
                         (paged ? "_paged" : "_mem");
    ASSERT_TRUE(sharded.Save(prefix, paged).ok());

    auto reopened = ShardedIndex::Open(prefix);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(reopened->num_shards(), 3);
    EXPECT_EQ(reopened->ImageCount(), single_->ImageCount());
    EXPECT_EQ(reopened->RegionCount(), single_->RegionCount());

    QueryOptions options;
    options.epsilon = 0.12f;
    auto expected = ExecuteQuery(*single_, dataset_[1].image, options);
    ASSERT_TRUE(expected.ok());
    auto got = reopened->RunQuery(dataset_[1].image, options);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectIdenticalRankings(*expected, *got,
                            paged ? "reopened paged" : "reopened");

    for (int s = 0; s < 3; ++s) {
      std::string shard_prefix = prefix + ".s" + std::to_string(s);
      for (const char* suffix :
           {".catalog", ".tree", ".pmeta", ".ptree"}) {
        std::remove((shard_prefix + suffix).c_str());
      }
    }
    std::remove((prefix + ".smeta").c_str());
  }
}

TEST_F(ShardedIndexTest, OpenRejectsMissingManifest) {
  auto missing = ShardedIndex::Open(::testing::TempDir() + "/no_such_prefix");
  EXPECT_FALSE(missing.ok());
}

TEST_F(ShardedIndexTest, BatchMatchesSequentialThroughEngine) {
  ShardedIndex sharded = MakeSharded(4);
  std::vector<ImageF> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(dataset_[i].image);
  QueryOptions options;
  options.epsilon = 0.12f;
  auto batch = ExecuteQueryBatch(sharded, queries, options, 2);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = ExecuteQuery(*single_, queries[i], options);
    ASSERT_TRUE(expected.ok());
    ExpectIdenticalRankings(*expected, (*batch)[i],
                            "batch q=" + std::to_string(i));
  }
}

// TSan soak: many client threads hammer the sharded engine (fan-out pool +
// result cache + per-shard probe counters) concurrently. Run under
// scripts/check.sh's TSan build via the 'ShardedIndex' filter.
TEST_F(ShardedIndexTest, ConcurrentQuerySoak) {
  ShardedIndex sharded = MakeSharded(4, /*cache=*/16);
  QueryOptions options;
  options.epsilon = 0.12f;
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 12;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const ImageF& image = dataset_[(t + q) % 8].image;
        QueryStats stats;
        auto result = (t + q) % 3 == 0
                          ? sharded.RunSceneQuery(
                                image, PixelRect{0, 0, 64, 64}, options,
                                &stats)
                          : sharded.RunQuery(image, options, &stats);
        if (!result.ok()) ++failures[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  ASSERT_NE(sharded.result_cache(), nullptr);
  EXPECT_GT(sharded.result_cache()->hits(), 0u);
}

}  // namespace
}  // namespace walrus
