#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

std::vector<WalrusIndex::PendingImage> MakeBatch(int n) {
  DatasetParams dp;
  dp.num_images = n;
  dp.width = 64;
  dp.height = 64;
  dp.seed = 13;
  std::vector<LabeledImage> dataset = GenerateDataset(dp);
  std::vector<WalrusIndex::PendingImage> batch;
  for (LabeledImage& scene : dataset) {
    batch.push_back({static_cast<uint64_t>(scene.id),
                     "img_" + std::to_string(scene.id),
                     std::move(scene.image)});
  }
  return batch;
}

TEST(ParallelIndex, MatchesSerialIndexing) {
  std::vector<WalrusIndex::PendingImage> batch = MakeBatch(20);

  WalrusIndex serial(TestParams());
  for (const auto& pending : batch) {
    ASSERT_TRUE(
        serial.AddImage(pending.image_id, pending.name, pending.image).ok());
  }

  WalrusIndex parallel(TestParams());
  ASSERT_TRUE(parallel.AddImages(batch, /*num_threads=*/4).ok());

  EXPECT_EQ(parallel.ImageCount(), serial.ImageCount());
  EXPECT_EQ(parallel.RegionCount(), serial.RegionCount());
  EXPECT_EQ(parallel.tree().size(), serial.tree().size());

  // Queries agree exactly (extraction is deterministic per image).
  QueryOptions options;
  options.epsilon = 0.085f;
  for (int q = 0; q < 3; ++q) {
    auto a = ExecuteQuery(serial, batch[q].image, options);
    auto b = ExecuteQuery(parallel, batch[q].image, options);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].image_id, (*b)[i].image_id);
      EXPECT_NEAR((*a)[i].similarity, (*b)[i].similarity, 1e-9);
    }
  }
}

TEST(ParallelIndex, EmptyBatchIsOk) {
  WalrusIndex index(TestParams());
  EXPECT_TRUE(index.AddImages({}).ok());
  EXPECT_EQ(index.ImageCount(), 0u);
}

TEST(ParallelIndex, DuplicateIdInBatchIsAtomicFailure) {
  std::vector<WalrusIndex::PendingImage> batch = MakeBatch(4);
  batch[3].image_id = batch[0].image_id;
  WalrusIndex index(TestParams());
  EXPECT_EQ(index.AddImages(batch).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(index.ImageCount(), 0u);
  EXPECT_EQ(index.tree().size(), 0);
}

TEST(ParallelIndex, ConflictWithExistingIdIsAtomicFailure) {
  std::vector<WalrusIndex::PendingImage> batch = MakeBatch(4);
  WalrusIndex index(TestParams());
  ASSERT_TRUE(
      index.AddImage(batch[2].image_id, "existing", batch[2].image).ok());
  EXPECT_EQ(index.AddImages(batch).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(index.ImageCount(), 1u);
}

TEST(ParallelIndex, SingleThreadWorks) {
  std::vector<WalrusIndex::PendingImage> batch = MakeBatch(5);
  WalrusIndex index(TestParams());
  ASSERT_TRUE(index.AddImages(batch, /*num_threads=*/1).ok());
  EXPECT_EQ(index.ImageCount(), 5u);
}

}  // namespace
}  // namespace walrus
