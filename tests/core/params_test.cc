#include "core/params.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(WalrusParams, DefaultsAreValidAndMatchPaper) {
  WalrusParams p;
  EXPECT_TRUE(p.Validate().ok()) << p.Validate();
  // Section 6.4 experiment defaults.
  EXPECT_EQ(p.color_space, ColorSpace::kYCC);
  EXPECT_EQ(p.signature_size, 2);
  EXPECT_EQ(p.min_window, 64);
  EXPECT_EQ(p.max_window, 64);
  EXPECT_DOUBLE_EQ(p.cluster_epsilon, 0.05);
  EXPECT_EQ(p.bitmap_side, 16);
  EXPECT_EQ(p.signature_kind, RegionSignatureKind::kCentroid);
}

TEST(WalrusParams, SignatureDim) {
  WalrusParams p;
  EXPECT_EQ(p.Channels(), 3);
  EXPECT_EQ(p.SignatureDim(), 12);  // the paper's 12-dimensional point
  p.signature_size = 4;
  EXPECT_EQ(p.SignatureDim(), 48);
  p.color_space = ColorSpace::kGray;
  EXPECT_EQ(p.Channels(), 1);
  EXPECT_EQ(p.SignatureDim(), 16);
}

TEST(WalrusParams, RejectsNonPowerOfTwo) {
  WalrusParams p;
  p.signature_size = 3;
  EXPECT_FALSE(p.Validate().ok());
  p = WalrusParams();
  p.min_window = 48;
  EXPECT_FALSE(p.Validate().ok());
  p = WalrusParams();
  p.slide_step = 6;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(WalrusParams, RejectsInconsistentWindows) {
  WalrusParams p;
  p.min_window = 64;
  p.max_window = 32;
  EXPECT_FALSE(p.Validate().ok());
  p = WalrusParams();
  p.signature_size = 128;  // bigger than min_window
  EXPECT_FALSE(p.Validate().ok());
}

TEST(WalrusParams, RejectsBadScalars) {
  WalrusParams p;
  p.cluster_epsilon = -0.1;
  EXPECT_FALSE(p.Validate().ok());
  p = WalrusParams();
  p.bitmap_side = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = WalrusParams();
  p.birch_branching = 1;
  EXPECT_FALSE(p.Validate().ok());
  p = WalrusParams();
  p.min_cluster_windows = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(WalrusParams, MultiScaleWindowsValid) {
  WalrusParams p;
  p.min_window = 8;
  p.max_window = 64;
  p.slide_step = 2;
  EXPECT_TRUE(p.Validate().ok());
}

}  // namespace
}  // namespace walrus
