#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

class QueryBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 16;
    dp.width = 64;
    dp.height = 64;
    dp.seed = 55;
    dataset_ = GenerateDataset(dp);
    index_ = std::make_unique<WalrusIndex>(TestParams());
    for (const LabeledImage& scene : dataset_) {
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(scene.id), "img",
                                 scene.image)
                      .ok());
    }
  }
  std::vector<LabeledImage> dataset_;
  std::unique_ptr<WalrusIndex> index_;
};

TEST_F(QueryBatchTest, BatchMatchesSequential) {
  std::vector<ImageF> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(dataset_[i].image);

  QueryOptions options;
  options.epsilon = 0.085f;
  options.matcher = MatcherKind::kGreedy;
  auto batch = ExecuteQueryBatch(*index_, queries, options, 4);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), 8u);
  for (int i = 0; i < 8; ++i) {
    auto sequential = ExecuteQuery(*index_, queries[i], options);
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ((*batch)[i].size(), sequential->size()) << i;
    for (size_t j = 0; j < sequential->size(); ++j) {
      EXPECT_EQ((*batch)[i][j].image_id, (*sequential)[j].image_id) << i;
      EXPECT_NEAR((*batch)[i][j].similarity, (*sequential)[j].similarity,
                  1e-9)
          << i;
    }
  }
}

TEST_F(QueryBatchTest, EmptyBatch) {
  QueryOptions options;
  auto batch = ExecuteQueryBatch(*index_, {}, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(QueryBatchTest, BatchAgainstPagedIndexIsSafe) {
  std::string prefix = ::testing::TempDir() + "/walrus_batch_paged";
  ASSERT_TRUE(index_->SavePaged(prefix).ok());
  auto paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok());

  std::vector<ImageF> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(dataset_[i].image);
  QueryOptions options;
  options.epsilon = 0.085f;
  auto batch = ExecuteQueryBatch(*paged, queries, options, 4);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (int i = 0; i < 6; ++i) {
    auto sequential = ExecuteQuery(*index_, queries[i], options);
    ASSERT_TRUE(sequential.ok());
    ASSERT_EQ((*batch)[i].size(), sequential->size()) << i;
  }
  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(QueryBatchTest, ErrorPropagates) {
  std::vector<ImageF> queries = {dataset_[0].image,
                                 ImageF(4, 4, 3, ColorSpace::kRGB)};
  QueryOptions options;
  auto batch = ExecuteQueryBatch(*index_, queries, options);
  ASSERT_FALSE(batch.ok());  // second image smaller than min_window
  // The error names the failing query so callers (and walrusd's error
  // replies) can attribute it without re-running the batch.
  EXPECT_NE(batch.status().message().find("query 1 of 2"), std::string::npos)
      << batch.status();
}

}  // namespace
}  // namespace walrus
