#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "image/synth.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

class KnnQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = std::make_unique<WalrusIndex>(TestParams());
    // A spectrum of solid images from red to blue.
    for (int i = 0; i < 8; ++i) {
      float t = i / 7.0f;
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(i + 1), "img",
                                 MakeSolid(64, 64,
                                           {0.9f - 0.8f * t, 0.1f,
                                            0.1f + 0.8f * t}))
                      .ok());
    }
  }
  std::unique_ptr<WalrusIndex> index_;
};

TEST_F(KnnQueryTest, RetrievesFixedBudgetPerRegion) {
  QueryOptions options;
  options.knn_per_region = 3;
  QueryStats stats;
  auto matches = ExecuteQuery(*index_, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}),
                              options, &stats);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  // Each query region retrieved exactly 3 candidates.
  EXPECT_EQ(stats.regions_retrieved, 3 * stats.query_regions);
  // The exact duplicate ranks first.
  EXPECT_EQ((*matches)[0].image_id, 1u);
  EXPECT_NEAR((*matches)[0].similarity, 1.0, 1e-9);
}

TEST_F(KnnQueryTest, WorksWhereEpsilonFindsNothing) {
  // A query far from everything in signature space: the range probe with a
  // small epsilon returns nothing, kNN still produces a ranking.
  ImageF query = MakeSolid(64, 64, {0.1f, 0.9f, 0.1f});  // green
  QueryOptions range;
  range.epsilon = 0.01f;
  auto range_matches = ExecuteQuery(*index_, query, range);
  ASSERT_TRUE(range_matches.ok());
  EXPECT_TRUE(range_matches->empty());

  QueryOptions knn;
  knn.knn_per_region = 2;
  auto knn_matches = ExecuteQuery(*index_, query, knn);
  ASSERT_TRUE(knn_matches.ok());
  EXPECT_FALSE(knn_matches->empty());
}

TEST_F(KnnQueryTest, BudgetCapsDistinctImages) {
  QueryOptions options;
  options.knn_per_region = 1;
  QueryStats stats;
  auto matches = ExecuteQuery(*index_, MakeSolid(64, 64, {0.5f, 0.1f, 0.5f}),
                              options, &stats);
  ASSERT_TRUE(matches.ok());
  EXPECT_LE(stats.distinct_images, stats.query_regions);
}

TEST_F(KnnQueryTest, BBoxModeFallsBackToRangeProbe) {
  WalrusParams p = TestParams();
  p.signature_kind = RegionSignatureKind::kBoundingBox;
  WalrusIndex index(p);
  ASSERT_TRUE(
      index.AddImage(1, "a", MakeSolid(64, 64, {0.9f, 0.1f, 0.1f})).ok());
  QueryOptions options;
  options.knn_per_region = 3;  // ignored for bbox signatures
  options.epsilon = 0.05f;
  auto matches =
      ExecuteQuery(index, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}), options);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_NEAR((*matches)[0].similarity, 1.0, 1e-9);
}

}  // namespace
}  // namespace walrus
