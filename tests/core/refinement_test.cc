#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams RefinedParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  p.refined_signature_size = 4;
  return p;
}

TEST(Refinement, ParamsValidation) {
  WalrusParams p = RefinedParams();
  EXPECT_TRUE(p.Validate().ok()) << p.Validate();
  p.refined_signature_size = 2;  // == signature_size
  EXPECT_FALSE(p.Validate().ok());
  p.refined_signature_size = 3;  // not a power of two
  EXPECT_FALSE(p.Validate().ok());
  p.refined_signature_size = 32;  // > min_window
  EXPECT_FALSE(p.Validate().ok());
  p.refined_signature_size = 0;  // disabled is fine
  EXPECT_TRUE(p.Validate().ok());
}

TEST(Refinement, RegionsCarryRefinedCentroids) {
  ImageF img = MakeSolid(64, 64, {0.3f, 0.6f, 0.4f});
  Result<std::vector<Region>> regions = ExtractRegions(img, RefinedParams());
  ASSERT_TRUE(regions.ok()) << regions.status();
  ASSERT_FALSE(regions->empty());
  for (const Region& r : *regions) {
    EXPECT_EQ(r.refined_centroid.size(), 3u * 4 * 4);
    EXPECT_EQ(r.centroid.size(), 3u * 2 * 2);
    // On a uniform image the refined DC coefficients match the coarse ones.
    EXPECT_NEAR(r.refined_centroid[0], r.centroid[0], 1e-4f);
  }
}

TEST(Refinement, DisabledLeavesRefinedEmpty) {
  WalrusParams p = RefinedParams();
  p.refined_signature_size = 0;
  ImageF img = MakeSolid(64, 64, {0.3f, 0.6f, 0.4f});
  Result<std::vector<Region>> regions = ExtractRegions(img, p);
  ASSERT_TRUE(regions.ok());
  for (const Region& r : *regions) {
    EXPECT_TRUE(r.refined_centroid.empty());
  }
}

TEST(Refinement, PersistsThroughSaveOpen) {
  std::string prefix = ::testing::TempDir() + "/walrus_refined_test";
  {
    WalrusIndex index(RefinedParams());
    ASSERT_TRUE(
        index.AddImage(1, "a", MakeSolid(64, 64, {0.8f, 0.2f, 0.2f})).ok());
    ASSERT_TRUE(index.Save(prefix).ok());
  }
  auto reopened = WalrusIndex::Open(prefix);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->params().refined_signature_size, 4);
  auto regions = reopened->ImageRegions(1);
  ASSERT_TRUE(regions.ok());
  for (const Region& r : *regions) {
    EXPECT_EQ(r.refined_centroid.size(), 48u);
  }
  std::remove((prefix + ".catalog").c_str());
  std::remove((prefix + ".index").c_str());
}

TEST(Refinement, RefutesCoarseOnlyMatches) {
  // Two textures engineered to share their 2x2 band but differ at 4x4:
  // vertical vs horizontal stripes of period 8. Every 8x8 quadrant of an
  // aligned 16x16 window holds exactly one dark and one light 4px stripe,
  // so all four quadrant averages equal 0.5 and the 2x2 signatures of both
  // orientations coincide; the 4x4 band (4px cells) resolves them.
  auto striped = [](bool horizontal) {
    return MakeStripes(64, 64, 8, horizontal, {0.2f, 0.2f, 0.2f},
                       {0.8f, 0.8f, 0.8f});
  };

  WalrusParams params = RefinedParams();
  params.slide_step = 16;  // aligned windows only: clean quadrants
  WalrusIndex index(params);
  ASSERT_TRUE(index.AddImage(1, "horizontal", striped(true)).ok());

  QueryOptions coarse;
  coarse.epsilon = 0.1f;
  QueryOptions refined = coarse;
  refined.use_refinement = true;
  refined.refined_epsilon = 0.1f;

  // Query with vertical stripes: coarse 2x2 signatures collide badly.
  auto coarse_matches = ExecuteQuery(index, striped(false), coarse);
  auto refined_matches = ExecuteQuery(index, striped(false), refined);
  ASSERT_TRUE(coarse_matches.ok() && refined_matches.ok());

  double coarse_sim =
      coarse_matches->empty() ? 0.0 : (*coarse_matches)[0].similarity;
  double refined_sim =
      refined_matches->empty() ? 0.0 : (*refined_matches)[0].similarity;
  // Refinement must prune (strictly reduce) the false match.
  EXPECT_LT(refined_sim, coarse_sim);

  // And a true match must survive refinement at full strength.
  auto self_refined = ExecuteQuery(index, striped(true), refined);
  ASSERT_TRUE(self_refined.ok());
  ASSERT_FALSE(self_refined->empty());
  EXPECT_NEAR((*self_refined)[0].similarity, 1.0, 1e-9);
}

TEST(Refinement, NoRefinedDataDegradesGracefully) {
  // Index built without refinement; querying with use_refinement must not
  // drop anything (empty refined centroids skip the check).
  WalrusParams p = RefinedParams();
  p.refined_signature_size = 0;
  WalrusIndex index(p);
  ASSERT_TRUE(
      index.AddImage(1, "x", MakeSolid(64, 64, {0.5f, 0.2f, 0.7f})).ok());
  QueryOptions options;
  options.epsilon = 0.05f;
  options.use_refinement = true;
  auto matches = ExecuteQuery(index, MakeSolid(64, 64, {0.5f, 0.2f, 0.7f}),
                              options);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_NEAR((*matches)[0].similarity, 1.0, 1e-9);
}

}  // namespace
}  // namespace walrus
