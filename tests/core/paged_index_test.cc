#include <cstdio>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 8;
  return p;
}

void RemovePagedFiles(const std::string& prefix) {
  for (const char* suffix : {".catalog", ".pmeta", ".ptree"}) {
    std::remove((prefix + suffix).c_str());
  }
}

class PagedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams dp;
    dp.num_images = 18;
    dp.width = 64;
    dp.height = 64;
    dp.seed = 44;
    dataset_ = GenerateDataset(dp);
    index_ = std::make_unique<WalrusIndex>(TestParams());
    for (const LabeledImage& scene : dataset_) {
      ASSERT_TRUE(index_
                      ->AddImage(static_cast<uint64_t>(scene.id), "img",
                                 scene.image)
                      .ok());
    }
  }

  std::vector<LabeledImage> dataset_;
  std::unique_ptr<WalrusIndex> index_;
};

TEST_F(PagedIndexTest, PagedQueriesMatchInMemory) {
  std::string prefix = ::testing::TempDir() + "/walrus_paged_a";
  ASSERT_TRUE(index_->SavePaged(prefix).ok());
  auto paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok()) << paged.status();
  EXPECT_TRUE(paged->is_paged());
  EXPECT_FALSE(index_->is_paged());
  EXPECT_EQ(paged->ImageCount(), index_->ImageCount());
  EXPECT_EQ(paged->RegionCount(), index_->RegionCount());

  for (int id : {0, 3, 9}) {
    for (MatcherKind matcher : {MatcherKind::kQuick, MatcherKind::kGreedy}) {
      QueryOptions options;
      options.epsilon = 0.085f;
      options.matcher = matcher;
      auto memory = ExecuteQuery(*index_, dataset_[id].image, options);
      auto disk = ExecuteQuery(*paged, dataset_[id].image, options);
      ASSERT_TRUE(memory.ok() && disk.ok());
      ASSERT_EQ(memory->size(), disk->size()) << id;
      for (size_t i = 0; i < memory->size(); ++i) {
        EXPECT_EQ((*memory)[i].image_id, (*disk)[i].image_id) << id;
        EXPECT_NEAR((*memory)[i].similarity, (*disk)[i].similarity, 1e-9)
            << id;
      }
    }
  }
  RemovePagedFiles(prefix);
}

TEST_F(PagedIndexTest, PagedKnnQueriesWork) {
  std::string prefix = ::testing::TempDir() + "/walrus_paged_knn";
  ASSERT_TRUE(index_->SavePaged(prefix).ok());
  auto paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok());

  QueryOptions options;
  options.knn_per_region = 3;
  auto memory = ExecuteQuery(*index_, dataset_[1].image, options);
  auto disk = ExecuteQuery(*paged, dataset_[1].image, options);
  ASSERT_TRUE(memory.ok() && disk.ok());
  ASSERT_EQ(memory->size(), disk->size());
  for (size_t i = 0; i < memory->size(); ++i) {
    EXPECT_EQ((*memory)[i].image_id, (*disk)[i].image_id);
    EXPECT_NEAR((*memory)[i].similarity, (*disk)[i].similarity, 1e-9);
  }
  RemovePagedFiles(prefix);
}

TEST_F(PagedIndexTest, OpenPagedRejectsMissingPieces) {
  std::string prefix = ::testing::TempDir() + "/walrus_paged_missing";
  ASSERT_TRUE(index_->SavePaged(prefix).ok());
  std::remove((prefix + ".ptree").c_str());
  EXPECT_FALSE(WalrusIndex::OpenPaged(prefix).ok());
  RemovePagedFiles(prefix);
  EXPECT_FALSE(WalrusIndex::OpenPaged(prefix).ok());
}

TEST_F(PagedIndexTest, BBoxSignatureModeRoundTrips) {
  WalrusParams p = TestParams();
  p.signature_kind = RegionSignatureKind::kBoundingBox;
  WalrusIndex index(p);
  for (const LabeledImage& scene : dataset_) {
    ASSERT_TRUE(
        index.AddImage(static_cast<uint64_t>(scene.id), "img", scene.image)
            .ok());
  }
  std::string prefix = ::testing::TempDir() + "/walrus_paged_bbox";
  ASSERT_TRUE(index.SavePaged(prefix).ok());
  auto paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok()) << paged.status();

  QueryOptions options;
  options.epsilon = 0.05f;
  auto memory = ExecuteQuery(index, dataset_[2].image, options);
  auto disk = ExecuteQuery(*paged, dataset_[2].image, options);
  ASSERT_TRUE(memory.ok() && disk.ok());
  ASSERT_EQ(memory->size(), disk->size());
  for (size_t i = 0; i < memory->size(); ++i) {
    EXPECT_EQ((*memory)[i].image_id, (*disk)[i].image_id);
  }
  RemovePagedFiles(prefix);
}

}  // namespace
}  // namespace walrus
