// The admissibility contract of the binary-signature prefilter
// (core/signature_filter.h, DESIGN.md section 16): the Hamming-derived
// lower bound never exceeds the true squared L2 distance, so pruning on it
// can only discard candidates the exact epsilon test would reject — the
// filtered candidate set is IDENTICAL to the brute-force one, bit for bit.

#include "core/signature_filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "core/index.h"
#include "storage/catalog.h"

namespace walrus {
namespace {

std::vector<float> RandomCentroid(Rng* rng, int dim) {
  std::vector<float> c(dim);
  for (float& x : c) {
    // Mostly in the quantizer's native range, with occasional outliers to
    // exercise the clamped extreme levels.
    x = rng->NextBernoulli(0.05)
            ? static_cast<float>(rng->NextDouble(-2.0, 3.0))
            : static_cast<float>(rng->NextDouble(-0.25, 1.0));
  }
  return c;
}

double SquaredL2(const std::vector<float>& a, const std::vector<float>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

TEST(SignatureQuantizer, ThermometerWordsAreMonotone) {
  // Raising x can only set more bits: word(x1) is a submask of word(x2)
  // whenever x1 <= x2. That containment is what makes the per-dim Hamming
  // distance equal the level difference.
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    float x1 = static_cast<float>(rng.NextDouble(-1.0, 2.0));
    float x2 = static_cast<float>(rng.NextDouble(-1.0, 2.0));
    if (x1 > x2) std::swap(x1, x2);
    uint64_t w1 = SignatureWord(x1);
    uint64_t w2 = SignatureWord(x2);
    EXPECT_EQ(w1 & w2, w1) << "x1=" << x1 << " x2=" << x2;
  }
  EXPECT_EQ(SignatureWord(kSignatureQMin - 1.0f), 0u);
  EXPECT_EQ(SignatureWord(kSignatureQMin), 0u);
  // Top level is kSignatureLevels - 1 = 63: the fullest word carries 63
  // set bits (level L sets L bits, so 64 levels fit one u64).
  EXPECT_EQ(SignatureWord(2.0f), ~uint64_t{0} >> 1);
}

TEST(SignatureQuantizer, HammingEqualsLevelDifference) {
  // Two thermometer words differ in exactly |level(a) - level(b)| bits.
  Rng rng(32);
  const simd::KernelTable& k = simd::Kernels(simd::IsaLevel::kScalar);
  for (int i = 0; i < 1000; ++i) {
    float a = static_cast<float>(rng.NextDouble(-0.5, 1.5));
    float b = static_cast<float>(rng.NextDouble(-0.5, 1.5));
    uint64_t wa = SignatureWord(a);
    uint64_t wb = SignatureWord(b);
    int la = static_cast<int>(k.popcount64(wa));
    int lb = static_cast<int>(k.popcount64(wb));
    EXPECT_EQ(static_cast<int>(k.popcount64(wa ^ wb)), std::abs(la - lb));
  }
}

// The property the whole tier rests on: LB^2 <= true squared distance, for
// randomized centroid pairs including out-of-range (clamped) coordinates.
TEST(SignatureAdmissibility, LowerBoundNeverExceedsTrueDistance) {
  Rng rng(33);
  const simd::KernelTable& k = simd::Kernels(simd::IsaLevel::kScalar);
  const double delta2 = kSignatureDelta * kSignatureDelta;
  for (int dim : {1, 3, 12, 27}) {
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<float> a = RandomCentroid(&rng, dim);
      std::vector<float> b = RandomCentroid(&rng, dim);
      std::vector<uint64_t> sa = ComputeSignature(a);
      std::vector<uint64_t> sb = ComputeSignature(b);
      uint64_t lb_int = 0;
      for (int d = 0; d < dim; ++d) {
        uint32_t h = k.popcount64(sa[d] ^ sb[d]);
        uint64_t excess = h > 1 ? h - 1 : 0;
        lb_int += excess * excess;
      }
      double lb2 = delta2 * static_cast<double>(lb_int);
      double d2 = SquaredL2(a, b);
      // Exact float comparison: admissibility is not approximate.
      ASSERT_LE(lb2, d2) << "dim=" << dim << " trial=" << trial;
    }
  }
}

// Integer-threshold consistency: crossing SignaturePruneThreshold(eps2)
// implies the exact distance exceeds eps2 — a prune is never wrong.
TEST(SignatureAdmissibility, PruneThresholdImpliesExactRejection) {
  Rng rng(34);
  const simd::KernelTable& k = simd::Kernels(simd::IsaLevel::kScalar);
  int prunes = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const int dim = 12;
    float eps = static_cast<float>(rng.NextDouble(0.01, 0.3));
    double eps2 = static_cast<double>(eps) * eps;
    uint32_t prune_min = SignaturePruneThreshold(eps2);
    std::vector<float> a = RandomCentroid(&rng, dim);
    std::vector<float> b = a;
    // Perturb so many pairs land near the epsilon boundary.
    for (float& x : b) {
      x += static_cast<float>(rng.NextGaussian()) * eps * 0.6f;
    }
    std::vector<uint64_t> sa = ComputeSignature(a);
    std::vector<uint64_t> sb = ComputeSignature(b);
    uint64_t lb_int = 0;
    for (int d = 0; d < dim; ++d) {
      uint32_t h = k.popcount64(sa[d] ^ sb[d]);
      uint64_t excess = h > 1 ? h - 1 : 0;
      lb_int += excess * excess;
    }
    if (lb_int >= prune_min) {
      ++prunes;
      ASSERT_GT(SquaredL2(a, b), eps2)
          << "trial=" << trial << " eps=" << eps << " lb_int=" << lb_int
          << " prune_min=" << prune_min;
    }
  }
  // The test must actually exercise prunes to mean anything.
  EXPECT_GT(prunes, 100);
}

// ---- SignatureStore: bookkeeping + the filter itself --------------------

ImageRecord MakeImage(Rng* rng, uint64_t image_id, int regions, int dim) {
  ImageRecord rec;
  rec.image_id = image_id;
  rec.width = 64;
  rec.height = 64;
  for (int r = 0; r < regions; ++r) {
    RegionRecord region;
    region.region_id = static_cast<uint32_t>(r);
    region.centroid = RandomCentroid(rng, dim);
    // Half the records carry their persisted signature, half arrive empty
    // (legacy catalog): the store must treat both identically.
    if (r % 2 == 0) region.signature = ComputeSignature(region.centroid);
    rec.regions.push_back(std::move(region));
  }
  return rec;
}

TEST(SignatureStore, RowsMatchRecomputedSignatures) {
  Rng rng(35);
  SignatureStore store;
  std::vector<ImageRecord> images;
  for (uint64_t id : {3u, 70u, 2000000u}) {  // direct table + hash spill
    images.push_back(MakeImage(&rng, id, 4, 12));
    store.AddImage(images.back());
  }
  EXPECT_EQ(store.dim(), 12);
  EXPECT_EQ(store.image_count(), 3u);
  for (const ImageRecord& rec : images) {
    for (const RegionRecord& region : rec.regions) {
      const uint64_t* row = store.SignatureRow(rec.image_id,
                                               region.region_id);
      ASSERT_NE(row, nullptr);
      std::vector<uint64_t> want = ComputeSignature(region.centroid);
      EXPECT_TRUE(std::equal(want.begin(), want.end(), row))
          << "image " << rec.image_id << " region " << region.region_id;
    }
  }
  store.RemoveImage(70);
  EXPECT_EQ(store.image_count(), 2u);
  EXPECT_EQ(store.SignatureRow(70, 0), nullptr);
  EXPECT_NE(store.SignatureRow(3, 0), nullptr);
}

// FilterCandidates returns exactly the brute-force epsilon survivors, in
// the same order.
TEST(SignatureStore, FilterMatchesBruteForceExactly) {
  Rng rng(36);
  const int dim = 12;
  SignatureStore store;
  std::vector<ImageRecord> images;
  for (uint64_t id = 1; id <= 40; ++id) {
    images.push_back(MakeImage(&rng, id, 5, dim));
    store.AddImage(images.back());
  }
  SignatureFilterScratch scratch;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> query = RandomCentroid(&rng, dim);
    float eps = static_cast<float>(rng.NextDouble(0.02, 0.4));
    double eps2 = static_cast<double>(eps) * eps;

    // Candidate set: a random subset of all regions, as raw payloads.
    std::vector<uint64_t> payloads;
    std::vector<uint64_t> expected;
    for (const ImageRecord& rec : images) {
      for (const RegionRecord& region : rec.regions) {
        if (!rng.NextBernoulli(0.7)) continue;
        uint64_t payload =
            EncodeRegionPayload(rec.image_id, region.region_id);
        payloads.push_back(payload);
        double d2 = SquaredL2(query, region.centroid);
        if (!(d2 > eps2)) expected.push_back(payload);
      }
    }
    const size_t in = payloads.size();
    SignatureFilterCounters counters;
    size_t survivors =
        store.FilterCandidates(query, eps2, &payloads, &scratch, &counters);
    payloads.resize(survivors);
    EXPECT_EQ(payloads, expected) << "trial=" << trial << " eps=" << eps;
    EXPECT_EQ(counters.candidates_in, static_cast<int64_t>(in));
    EXPECT_EQ(counters.verified_out, static_cast<int64_t>(survivors));
    EXPECT_LE(counters.hamming_pruned, static_cast<int64_t>(in));
  }
}

// End-to-end through the index: every region signature a WalrusIndex holds
// stays consistent across build paths and mutations (ValidateConsistency
// cross-checks store rows against recomputed centroid signatures).
TEST(SignatureStore, IndexMaintainsStoreAcrossMutations) {
  Rng rng(37);
  WalrusParams params;
  params.min_window = 16;
  params.max_window = 32;
  params.slide_step = 8;
  WalrusIndex index(params);
  ImageF image(64, 64, 3, ColorSpace::kRGB);
  for (int c = 0; c < 3; ++c) {
    for (float& x : image.Plane(c)) x = rng.NextFloat();
  }
  ASSERT_TRUE(index.AddImage(1, "a", image).ok());
  ASSERT_TRUE(index.AddImage(2, "b", image).ok());
  EXPECT_GT(index.signatures().dim(), 0);
  EXPECT_EQ(index.signatures().image_count(), 2u);
  ASSERT_TRUE(index.ValidateConsistency().ok());
  ASSERT_TRUE(index.RemoveImage(1).ok());
  EXPECT_EQ(index.signatures().SignatureRow(1, 0), nullptr);
  ASSERT_TRUE(index.ValidateConsistency().ok());
}

}  // namespace
}  // namespace walrus
