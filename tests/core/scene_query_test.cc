#include <cmath>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 32;
  p.slide_step = 4;
  return p;
}

TEST(PixelRectTest, ContainsWindow) {
  PixelRect rect{10, 20, 40, 30};
  EXPECT_TRUE(rect.ContainsWindow(10, 20, 16));
  EXPECT_TRUE(rect.ContainsWindow(34, 34, 16));
  EXPECT_FALSE(rect.ContainsWindow(9, 20, 16));    // starts left of rect
  EXPECT_FALSE(rect.ContainsWindow(40, 20, 16));   // spills right
  EXPECT_FALSE(rect.ContainsWindow(10, 40, 16));   // spills below
}

TEST(SceneExtract, OnlyWindowsInsideSceneParticipate) {
  // Left half red, right half green; scene = left half only.
  ImageF img = MakeSolid(64, 64, {0.9f, 0.1f, 0.1f});
  Composite(&img, MakeSolid(32, 64, {0.1f, 0.8f, 0.1f}), 32, 0);
  Result<std::vector<Region>> regions =
      ExtractSceneRegions(img, PixelRect{0, 0, 32, 64}, TestParams());
  ASSERT_TRUE(regions.ok()) << regions.status();
  ASSERT_FALSE(regions->empty());
  // Every region's centroid is red-dominant in YCC: Cr (channel 2 block)
  // high. Simply check all centroids are close to each other (pure red) --
  // no green-side region leaked in.
  for (const Region& r : *regions) {
    for (const Region& other : *regions) {
      float d = 0;
      for (size_t k = 0; k < r.centroid.size(); ++k) {
        d += (r.centroid[k] - other.centroid[k]) *
             (r.centroid[k] - other.centroid[k]);
      }
      EXPECT_LT(std::sqrt(d), 0.2f);
    }
  }
}

TEST(SceneExtract, RejectsBadRectangles) {
  ImageF img = MakeSolid(64, 64, {0.5f, 0.5f, 0.5f});
  WalrusParams p = TestParams();
  EXPECT_FALSE(ExtractSceneRegions(img, PixelRect{-1, 0, 32, 32}, p).ok());
  EXPECT_FALSE(ExtractSceneRegions(img, PixelRect{0, 0, 80, 32}, p).ok());
  EXPECT_FALSE(ExtractSceneRegions(img, PixelRect{0, 0, 0, 0}, p).ok());
  // Too small to fit even one 16px window at an aligned position.
  EXPECT_FALSE(ExtractSceneRegions(img, PixelRect{1, 1, 10, 10}, p).ok());
}

TEST(SceneQuery, FindsImagesContainingTheMarkedObject) {
  WalrusParams p = TestParams();
  WalrusIndex index(p);
  // Database: a scene with a blue ball bottom-right; one without.
  Rng rng(3);
  ImageF ball, mask;
  RenderObject(ObjectClass::kBall, 48, {}, &rng, &ball, &mask);

  ImageF with_ball = MakeGrass(96, 96, {0.2f, 0.55f, 0.15f}, &rng);
  Composite(&with_ball, ball, 44, 44, &mask);
  Rng rng2(3);  // same grass
  ImageF without_ball = MakeGrass(96, 96, {0.2f, 0.55f, 0.15f}, &rng2);
  (void)rng2;
  ASSERT_TRUE(index.AddImage(1, "with", with_ball).ok());
  ASSERT_TRUE(index.AddImage(2, "without", without_ball).ok());

  // Query image: the same ball top-left on sand; mark just the ball.
  ImageF query = MakeSolid(96, 96, {0.85f, 0.78f, 0.55f});
  Composite(&query, ball, 4, 4, &mask);

  QueryOptions options;
  options.epsilon = 0.085f;
  options.normalization = SimilarityNormalization::kQueryOnly;
  QueryStats stats;
  auto matches = ExecuteSceneQuery(index, query, PixelRect{4, 4, 48, 48},
                                   options, &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_GT(stats.query_regions, 0);

  double with_sim = 0.0;
  double without_sim = 0.0;
  for (const QueryMatch& m : *matches) {
    if (m.image_id == 1) with_sim = m.similarity;
    if (m.image_id == 2) without_sim = m.similarity;
  }
  // The ball-bearing image must clearly beat the ball-free one. Absolute
  // coverage stays moderate: scene-rect corner windows mix in the query's
  // sand background and match nothing on the grass-background target.
  EXPECT_GT(with_sim, 0.15);
  EXPECT_GT(with_sim, 2.0 * without_sim);
}

TEST(SceneQuery, WholeImageSceneApproximatesFullQuery) {
  WalrusParams p = TestParams();
  WalrusIndex index(p);
  ImageF a = MakeSolid(64, 64, {0.8f, 0.2f, 0.2f});
  ASSERT_TRUE(index.AddImage(1, "a", a).ok());

  QueryOptions options;
  options.epsilon = 0.05f;
  auto full = ExecuteQuery(index, a, options);
  auto scene = ExecuteSceneQuery(index, a, PixelRect{0, 0, 64, 64}, options);
  ASSERT_TRUE(full.ok() && scene.ok());
  ASSERT_FALSE(full->empty());
  ASSERT_FALSE(scene->empty());
  EXPECT_EQ((*full)[0].image_id, (*scene)[0].image_id);
  EXPECT_NEAR((*full)[0].similarity, (*scene)[0].similarity, 1e-6);
}

}  // namespace
}  // namespace walrus
