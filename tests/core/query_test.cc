#include "core/query.h"

#include <gtest/gtest.h>

#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

ImageF TwoTone(const Color3& left, const Color3& right) {
  ImageF img = MakeSolid(64, 64, left);
  ImageF half = MakeSolid(32, 64, right);
  Composite(&img, half, 32, 0);
  return img;
}

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = std::make_unique<WalrusIndex>(TestParams());
    // 1: all red; 2: all green; 3: red|blue split; 4: all gray.
    ASSERT_TRUE(
        index_->AddImage(1, "red", MakeSolid(64, 64, {0.9f, 0.1f, 0.1f})).ok());
    ASSERT_TRUE(
        index_->AddImage(2, "green", MakeSolid(64, 64, {0.1f, 0.8f, 0.1f}))
            .ok());
    ASSERT_TRUE(index_->AddImage(3, "redblue",
                                 TwoTone({0.9f, 0.1f, 0.1f}, {0.1f, 0.1f, 0.9f}))
                    .ok());
    ASSERT_TRUE(
        index_->AddImage(4, "gray", MakeSolid(64, 64, {0.5f, 0.5f, 0.5f}))
            .ok());
  }

  std::unique_ptr<WalrusIndex> index_;
};

TEST_F(QueryTest, ExactDuplicateRanksFirstWithFullSimilarity) {
  QueryOptions options;
  options.epsilon = 0.05f;
  QueryStats stats;
  Result<std::vector<QueryMatch>> matches = ExecuteQuery(
      *index_, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}), options, &stats);
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 1u);
  EXPECT_NEAR((*matches)[0].similarity, 1.0, 1e-9);
  EXPECT_GT(stats.query_regions, 0);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST_F(QueryTest, PartialRegionMatchScoresPartialSimilarity) {
  // All-red query vs the red|blue image: the red half matches.
  QueryOptions options;
  options.epsilon = 0.05f;
  Result<std::vector<QueryMatch>> matches =
      ExecuteQuery(*index_, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}), options);
  ASSERT_TRUE(matches.ok());
  bool found = false;
  for (const QueryMatch& m : *matches) {
    if (m.image_id == 3) {
      found = true;
      EXPECT_GT(m.similarity, 0.3);
      EXPECT_LT(m.similarity, 0.95);
    }
    EXPECT_NE(m.image_id, 2u);  // green never matches a red query
  }
  EXPECT_TRUE(found);
}

TEST_F(QueryTest, TauThresholdFilters) {
  QueryOptions options;
  options.epsilon = 0.05f;
  options.tau = 0.9;
  Result<std::vector<QueryMatch>> matches =
      ExecuteQuery(*index_, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}), options);
  ASSERT_TRUE(matches.ok());
  for (const QueryMatch& m : *matches) {
    EXPECT_GE(m.similarity, 0.9);
  }
}

TEST_F(QueryTest, TopKTruncates) {
  QueryOptions options;
  options.epsilon = 0.5f;  // generous: everything matches
  options.top_k = 2;
  Result<std::vector<QueryMatch>> matches =
      ExecuteQuery(*index_, MakeSolid(64, 64, {0.5f, 0.4f, 0.4f}), options);
  ASSERT_TRUE(matches.ok());
  EXPECT_LE(matches->size(), 2u);
}

TEST_F(QueryTest, LargerEpsilonRetrievesMore) {
  // Table 1 behaviour: retrieved regions and distinct images grow with
  // epsilon.
  int64_t prev_regions = -1;
  int prev_images = -1;
  for (float eps : {0.02f, 0.1f, 0.3f, 0.8f}) {
    QueryOptions options;
    options.epsilon = eps;
    QueryStats stats;
    Result<std::vector<QueryMatch>> matches = ExecuteQuery(
        *index_, MakeSolid(64, 64, {0.6f, 0.3f, 0.3f}), options, &stats);
    ASSERT_TRUE(matches.ok());
    EXPECT_GE(stats.regions_retrieved, prev_regions) << eps;
    EXPECT_GE(stats.distinct_images, prev_images) << eps;
    prev_regions = stats.regions_retrieved;
    prev_images = stats.distinct_images;
  }
}

TEST_F(QueryTest, GreedyNeverExceedsQuick) {
  QueryOptions quick_options;
  quick_options.epsilon = 0.3f;
  quick_options.matcher = MatcherKind::kQuick;
  QueryOptions greedy_options = quick_options;
  greedy_options.matcher = MatcherKind::kGreedy;

  ImageF query = TwoTone({0.9f, 0.1f, 0.1f}, {0.1f, 0.8f, 0.1f});
  Result<std::vector<QueryMatch>> quick =
      ExecuteQuery(*index_, query, quick_options);
  Result<std::vector<QueryMatch>> greedy =
      ExecuteQuery(*index_, query, greedy_options);
  ASSERT_TRUE(quick.ok() && greedy.ok());
  for (const QueryMatch& g : *greedy) {
    for (const QueryMatch& q : *quick) {
      if (g.image_id == q.image_id) {
        EXPECT_LE(g.similarity, q.similarity + 1e-9) << g.image_id;
      }
    }
  }
}

TEST_F(QueryTest, StatsAverageConsistent) {
  QueryOptions options;
  options.epsilon = 0.2f;
  QueryStats stats;
  Result<std::vector<QueryMatch>> matches = ExecuteQuery(
      *index_, MakeSolid(64, 64, {0.6f, 0.3f, 0.3f}), options, &stats);
  ASSERT_TRUE(matches.ok());
  if (stats.query_regions > 0) {
    EXPECT_NEAR(stats.avg_regions_per_query_region,
                static_cast<double>(stats.regions_retrieved) /
                    stats.query_regions,
                1e-9);
  }
  EXPECT_GE(stats.distinct_images, static_cast<int>(matches->size()));
}

TEST_F(QueryTest, BoundingBoxSignatureModeWorks) {
  WalrusParams p = TestParams();
  p.signature_kind = RegionSignatureKind::kBoundingBox;
  WalrusIndex index(p);
  ASSERT_TRUE(
      index.AddImage(1, "red", MakeSolid(64, 64, {0.9f, 0.1f, 0.1f})).ok());
  ASSERT_TRUE(
      index.AddImage(2, "green", MakeSolid(64, 64, {0.1f, 0.8f, 0.1f})).ok());
  QueryOptions options;
  options.epsilon = 0.05f;
  Result<std::vector<QueryMatch>> matches =
      ExecuteQuery(index, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}), options);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 1u);
  EXPECT_NEAR((*matches)[0].similarity, 1.0, 1e-9);
}

TEST_F(QueryTest, QueryAgainstTranslatedObject) {
  // Object translated within the image still matches: the motivating
  // Figure 1 scenario at small scale.
  WalrusParams p = TestParams();
  p.slide_step = 4;
  WalrusIndex index(p);
  ImageF base = MakeSolid(64, 64, {0.2f, 0.6f, 0.2f});
  ImageF with_object_left = base;
  Composite(&with_object_left, MakeSolid(24, 24, {0.9f, 0.15f, 0.1f}), 4, 20);
  ImageF with_object_right = base;
  Composite(&with_object_right, MakeSolid(24, 24, {0.9f, 0.15f, 0.1f}), 36,
            20);
  ImageF unrelated = MakeSolid(64, 64, {0.2f, 0.2f, 0.7f});
  ASSERT_TRUE(index.AddImage(1, "right", with_object_right).ok());
  ASSERT_TRUE(index.AddImage(2, "unrelated", unrelated).ok());

  QueryOptions options;
  options.epsilon = 0.1f;
  Result<std::vector<QueryMatch>> matches =
      ExecuteQuery(index, with_object_left, options);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].image_id, 1u);
  EXPECT_GT((*matches)[0].similarity, 0.5);
}

}  // namespace
}  // namespace walrus
