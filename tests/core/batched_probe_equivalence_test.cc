#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "core/query.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

// End-to-end contract of QueryOptions::batched_probe: the batched
// multi-probe traversal delivers candidates node-grouped instead of
// probe-grouped, but the candidate SET is identical, and because the
// pipeline canonicalizes candidates before matching, the ranked results
// are byte-identical with batching on or off -- at every ISA level, on
// in-memory and paged indexes.

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 8;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

ImageF NoisyImage(int w, int h, uint64_t seed) {
  Rng rng(seed);
  ImageF img = MakeSolid(w, h, {rng.NextFloat(), rng.NextFloat(),
                                rng.NextFloat()});
  // A few random rectangles give each image several distinct regions.
  for (int k = 0; k < 4; ++k) {
    int bw = 8 + static_cast<int>(rng.NextBounded(static_cast<uint32_t>(w / 2)));
    int bh = 8 + static_cast<int>(rng.NextBounded(static_cast<uint32_t>(h / 2)));
    ImageF block =
        MakeSolid(bw, bh, {rng.NextFloat(), rng.NextFloat(), rng.NextFloat()});
    Composite(&img, block,
              static_cast<int>(rng.NextBounded(static_cast<uint32_t>(w - bw))),
              static_cast<int>(rng.NextBounded(static_cast<uint32_t>(h - bh))));
  }
  return img;
}

void ExpectSameMatches(const std::vector<QueryMatch>& a,
                       const std::vector<QueryMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_id, b[i].image_id) << "rank " << i;
    EXPECT_EQ(a[i].similarity, b[i].similarity) << "rank " << i;
    EXPECT_EQ(a[i].matching_pairs, b[i].matching_pairs) << "rank " << i;
    EXPECT_EQ(a[i].pairs_used, b[i].pairs_used) << "rank " << i;
  }
}

class BatchedProbeEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = std::make_unique<WalrusIndex>(TestParams());
    for (uint64_t id = 1; id <= 20; ++id) {
      ASSERT_TRUE(index_
                      ->AddImage(id, "img" + std::to_string(id),
                                 NoisyImage(64, 64, 9000 + id))
                      .ok());
    }
  }

  std::vector<QueryMatch> Run(const WalrusIndex& index, bool batched) {
    QueryOptions options;
    options.epsilon = 0.15f;
    options.batched_probe = batched;
    Result<std::vector<QueryMatch>> matches =
        ExecuteQuery(index, NoisyImage(64, 64, 12345), options);
    EXPECT_TRUE(matches.ok()) << matches.status();
    return matches.ok() ? *matches : std::vector<QueryMatch>{};
  }

  std::unique_ptr<WalrusIndex> index_;
};

TEST_F(BatchedProbeEquivalence, InMemoryResultsIdenticalAcrossIsaLevels) {
  const std::vector<QueryMatch> baseline = Run(*index_, /*batched=*/false);
  EXPECT_FALSE(baseline.empty());
  for (int l = 0; l <= static_cast<int>(simd::MaxSupportedIsa()); ++l) {
    simd::TestOnlySetIsa(static_cast<simd::IsaLevel>(l));
    ExpectSameMatches(baseline, Run(*index_, /*batched=*/true));
    ExpectSameMatches(baseline, Run(*index_, /*batched=*/false));
  }
  simd::TestOnlyResetIsa();
}

TEST_F(BatchedProbeEquivalence, PagedResultsIdentical) {
  const std::string prefix = ::testing::TempDir() + "/batched_probe_paged";
  ASSERT_TRUE(index_->SavePaged(prefix).ok());
  Result<WalrusIndex> paged = WalrusIndex::OpenPaged(prefix);
  ASSERT_TRUE(paged.ok()) << paged.status();
  ASSERT_TRUE(paged->is_paged());

  const std::vector<QueryMatch> baseline = Run(*index_, /*batched=*/false);
  ExpectSameMatches(baseline, Run(*paged, /*batched=*/true));
  ExpectSameMatches(baseline, Run(*paged, /*batched=*/false));
}

}  // namespace
}  // namespace walrus
