#include "core/packed_store.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/rect.h"

namespace walrus {
namespace {

std::vector<Region> RandomRegions(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Region> regions(n);
  for (Region& r : regions) {
    r.centroid.resize(dim);
    std::vector<float> lo(dim), hi(dim);
    for (int d = 0; d < dim; ++d) {
      r.centroid[d] = rng.NextFloat();
      lo[d] = rng.NextFloat();
      hi[d] = lo[d] + rng.NextFloat();
    }
    r.bounding_box = Rect::Bounds(lo, hi);
  }
  return regions;
}

TEST(PackedSignatureStore, EmptyPack) {
  PackedSignatureStore pack = PackedSignatureStore::FromCentroids({});
  EXPECT_EQ(pack.count(), 0);
  EXPECT_EQ(pack.dim(), 0);
  EXPECT_FALSE(pack.has_bounds());
}

TEST(PackedSignatureStore, CentroidPackIsDimensionMajor) {
  const int n = 13, dim = 12;
  std::vector<Region> regions = RandomRegions(n, dim, 31);
  PackedSignatureStore pack = PackedSignatureStore::FromCentroids(regions);
  EXPECT_EQ(pack.count(), n);
  EXPECT_EQ(pack.dim(), dim);
  EXPECT_EQ(pack.stride(), n);
  EXPECT_FALSE(pack.has_bounds());
  for (int d = 0; d < dim; ++d) {
    for (int e = 0; e < n; ++e) {
      EXPECT_EQ(pack.lo_planes()[d * pack.stride() + e],
                regions[e].centroid[d])
          << "d=" << d << " e=" << e;
    }
  }
}

TEST(PackedSignatureStore, BoundingBoxPackFillsBothPlanes) {
  const int n = 7, dim = 5;
  std::vector<Region> regions = RandomRegions(n, dim, 32);
  PackedSignatureStore pack =
      PackedSignatureStore::FromBoundingBoxes(regions);
  EXPECT_EQ(pack.count(), n);
  EXPECT_EQ(pack.dim(), dim);
  EXPECT_TRUE(pack.has_bounds());
  for (int d = 0; d < dim; ++d) {
    for (int e = 0; e < n; ++e) {
      EXPECT_EQ(pack.lo_planes()[d * pack.stride() + e],
                regions[e].bounding_box.lo(d));
      EXPECT_EQ(pack.hi_planes()[d * pack.stride() + e],
                regions[e].bounding_box.hi(d));
    }
  }
}

}  // namespace
}  // namespace walrus
