#include <set>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/query.h"
#include "image/synth.h"
#include "image/transform.h"

namespace walrus {
namespace {

WalrusParams TestParams() {
  WalrusParams p;
  p.min_window = 16;
  p.max_window = 16;
  p.slide_step = 8;
  return p;
}

TEST(PairDetails, CollectedOnlyWhenRequested) {
  WalrusIndex index(TestParams());
  ASSERT_TRUE(
      index.AddImage(1, "red", MakeSolid(64, 64, {0.9f, 0.1f, 0.1f})).ok());

  QueryOptions off;
  off.epsilon = 0.05f;
  auto without = ExecuteQuery(index, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}),
                              off);
  ASSERT_TRUE(without.ok());
  ASSERT_FALSE(without->empty());
  EXPECT_TRUE((*without)[0].pairs.empty());

  QueryOptions on = off;
  on.collect_pairs = true;
  auto with = ExecuteQuery(index, MakeSolid(64, 64, {0.9f, 0.1f, 0.1f}), on);
  ASSERT_TRUE(with.ok());
  ASSERT_FALSE(with->empty());
  EXPECT_FALSE((*with)[0].pairs.empty());
  EXPECT_EQ(static_cast<int>((*with)[0].pairs.size()),
            (*with)[0].matching_pairs);
}

TEST(PairDetails, GreedyPairsAreOneToOneAndValid) {
  WalrusIndex index(TestParams());
  // Two-tone target: multiple regions to pair against.
  ImageF target = MakeSolid(64, 64, {0.9f, 0.1f, 0.1f});
  Composite(&target, MakeSolid(32, 64, {0.1f, 0.1f, 0.9f}), 32, 0);
  ASSERT_TRUE(index.AddImage(1, "two-tone", target).ok());

  QueryOptions options;
  options.epsilon = 0.1f;
  options.matcher = MatcherKind::kGreedy;
  options.collect_pairs = true;
  auto matches = ExecuteQuery(index, target, options);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  const QueryMatch& m = (*matches)[0];
  EXPECT_EQ(static_cast<int>(m.pairs.size()), m.pairs_used);

  auto target_regions = index.ImageRegions(1).value();
  std::set<int> query_seen, target_seen;
  for (const RegionPair& pair : m.pairs) {
    EXPECT_TRUE(query_seen.insert(pair.query_index).second)
        << "query region reused";
    EXPECT_TRUE(target_seen.insert(pair.target_index).second)
        << "target region reused";
    EXPECT_GE(pair.target_index, 0);
    EXPECT_LT(pair.target_index, static_cast<int>(target_regions.size()));
  }
}

TEST(PairDetails, ExactMatchReportsOptimalSet) {
  // Small instance where we can see the chosen pairs directly.
  std::vector<Region> query(2), target(2);
  for (int i = 0; i < 2; ++i) {
    query[i].region_id = i;
    query[i].centroid = {0.0f};
    query[i].bitmap = CoverageBitmap(4);
    target[i].region_id = i;
    target[i].centroid = {0.0f};
    target[i].bitmap = CoverageBitmap(4);
  }
  // query0/target0 cover the top half; query1/target1 the bottom half.
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 2; ++y) {
      query[0].bitmap.SetCell(x, y);
      target[0].bitmap.SetCell(x, y);
      query[1].bitmap.SetCell(x, y + 2);
      target[1].bitmap.SetCell(x, y + 2);
    }
  }
  std::vector<RegionPair> pairs = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  MatchResult result = ExactMatch(query, target, pairs, 16.0, 16.0);
  EXPECT_DOUBLE_EQ(result.similarity, 1.0);
  ASSERT_EQ(result.used_pairs.size(), 2u);
  // Optimal set pairs matching halves: {(0,?),(1,?)} with distinct targets.
  EXPECT_NE(result.used_pairs[0].target_index,
            result.used_pairs[1].target_index);
}

}  // namespace
}  // namespace walrus
