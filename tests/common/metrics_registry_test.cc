#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace walrus {
namespace {

TEST(MetricsTest, CounterIncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (exact bound counts low)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(50.0);   // bucket 2
  histogram.Observe(500.0);  // overflow
  EXPECT_EQ(histogram.TotalCount(), 5u);
  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 1u);
  EXPECT_EQ(histogram.BucketCount(3), 1u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 556.5);
}

TEST(MetricsTest, ExponentialBucketsDouble) {
  std::vector<double> bounds = ExponentialBuckets(1e-6, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[1], 2e-6);
  EXPECT_DOUBLE_EQ(bounds[3], 8e-6);
}

TEST(MetricsTest, RegistryFindsOrCreatesByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("walrus.test.registry.counter");
  Counter* b = registry.GetCounter("walrus.test.registry.counter");
  EXPECT_EQ(a, b);
  Gauge* g = registry.GetGauge("walrus.test.registry.gauge");
  EXPECT_EQ(g, registry.GetGauge("walrus.test.registry.gauge"));
  Histogram* h = registry.GetHistogram("walrus.test.registry.histogram",
                                       {1.0, 2.0});
  // Later bounds are ignored: the first registration wins.
  EXPECT_EQ(h, registry.GetHistogram("walrus.test.registry.histogram",
                                     {5.0, 6.0, 7.0}));
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsTest, SnapshotReflectsValuesSortedByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("walrus.test.snapshot.b")->Increment(2);
  registry.GetCounter("walrus.test.snapshot.a")->Increment(1);
  registry.GetGauge("walrus.test.snapshot.g")->Set(-7);
  Histogram* h = registry.GetHistogram("walrus.test.snapshot.h", {1.0});
  h->Observe(0.5);
  h->Observe(3.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.metrics.size(); ++i) {
    EXPECT_LT(snapshot.metrics[i - 1].name, snapshot.metrics[i].name);
  }
  const MetricValue* a = snapshot.Find("walrus.test.snapshot.a");
  ASSERT_NE(a, nullptr);
  EXPECT_GE(a->counter, 1u);
  const MetricValue* g = snapshot.Find("walrus.test.snapshot.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->type, MetricType::kGauge);
  EXPECT_EQ(g->gauge, -7);
  const MetricValue* hv = snapshot.Find("walrus.test.snapshot.h");
  ASSERT_NE(hv, nullptr);
  ASSERT_EQ(hv->bucket_counts.size(), 2u);
  EXPECT_GE(hv->bucket_counts[0], 1u);  // 0.5 <= 1.0
  EXPECT_GE(hv->bucket_counts[1], 1u);  // 3.0 overflow
  EXPECT_EQ(snapshot.Find("walrus.test.snapshot.missing"), nullptr);
}

TEST(MetricsTest, HistogramQuantileReturnsBucketEdge) {
  MetricValue h;
  h.type = MetricType::kHistogram;
  h.bounds = {1.0, 10.0, 100.0};
  h.bucket_counts = {10, 80, 10, 0};
  h.count = 100;
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.95), 100.0);

  MetricValue empty;
  empty.type = MetricType::kHistogram;
  empty.bounds = {1.0};
  empty.bucket_counts = {0, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(empty, 0.5), 0.0);
}

TEST(MetricsTest, TextExpositionRendersAllTypes) {
  MetricsSnapshot snapshot;
  MetricValue counter;
  counter.name = "walrus.render.counter";
  counter.type = MetricType::kCounter;
  counter.counter = 7;
  snapshot.metrics.push_back(counter);
  MetricValue gauge;
  gauge.name = "walrus.render.gauge";
  gauge.type = MetricType::kGauge;
  gauge.gauge = -3;
  snapshot.metrics.push_back(gauge);
  MetricValue histogram;
  histogram.name = "walrus.render.seconds";
  histogram.type = MetricType::kHistogram;
  histogram.bounds = {0.5};
  histogram.bucket_counts = {2, 1};
  histogram.count = 3;
  histogram.sum = 1.25;
  snapshot.metrics.push_back(histogram);

  std::string text = RenderMetricsText(snapshot);
  EXPECT_NE(text.find("walrus.render.counter 7"), std::string::npos);
  EXPECT_NE(text.find("walrus.render.gauge -3"), std::string::npos);
  // Cumulative buckets: le="0.5" holds 2, le="+Inf" holds all 3.
  EXPECT_NE(text.find("le=\"0.5\"} 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("walrus.render.seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("walrus.render.seconds_sum 1.25"), std::string::npos);
}

TEST(MetricsTest, JsonExpositionIsWellFormedEnough) {
  MetricsSnapshot snapshot;
  MetricValue counter;
  counter.name = "walrus.render.counter";
  counter.type = MetricType::kCounter;
  counter.counter = 7;
  snapshot.metrics.push_back(counter);

  std::string json = RenderMetricsJson(snapshot);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"walrus.render.counter\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
}

TEST(MetricsTest, ScopedHistogramTimerRecordsOnce) {
  Histogram histogram(ExponentialBuckets(1e-9, 10.0, 12));
  { ScopedHistogramTimer timer(&histogram); }
  EXPECT_EQ(histogram.TotalCount(), 1u);
  EXPECT_GT(histogram.Sum(), 0.0);
  { ScopedHistogramTimer timer(nullptr); }  // null-safe: no crash
}

}  // namespace
}  // namespace walrus
