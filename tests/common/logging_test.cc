#include "common/logging.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(Logging, DisabledLevelsDoNotEvaluateStreamArgs) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "computed";
  };
  WALRUS_LOG(Debug) << expensive();
  WALRUS_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);
  WALRUS_LOG(Error) << "error logging still works: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, CheckPassesSilently) {
  WALRUS_CHECK(true);
  WALRUS_CHECK_EQ(1, 1);
  WALRUS_CHECK_NE(1, 2);
  WALRUS_CHECK_LT(1, 2);
  WALRUS_CHECK_LE(2, 2);
  WALRUS_CHECK_GT(3, 2);
  WALRUS_CHECK_GE(3, 3);
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(WALRUS_CHECK(1 == 2) << "custom message", "Check failed");
}

TEST(LoggingDeathTest, CheckEqFailureMentionsExpression) {
  EXPECT_DEATH(WALRUS_CHECK_EQ(2 + 2, 5), "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(WALRUS_LOG(Fatal) << "unrecoverable", "unrecoverable");
}

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH(WALRUS_DCHECK(false), "Check failed");
}
#else
TEST(Logging, DcheckCompiledOutInReleaseBuilds) {
  WALRUS_DCHECK(false);  // must be a no-op
  SUCCEED();
}
#endif

}  // namespace
}  // namespace walrus
