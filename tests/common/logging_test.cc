#include "common/logging.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(Logging, DisabledLevelsDoNotEvaluateStreamArgs) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "computed";
  };
  WALRUS_LOG(Debug) << expensive();
  WALRUS_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);
  WALRUS_LOG(Error) << "error logging still works: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(WALRUS_LOG(Fatal) << "unrecoverable", "unrecoverable");
}

}  // namespace
}  // namespace walrus
