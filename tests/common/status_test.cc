#include "common/status.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IOError("x"));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOut) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  WALRUS_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainedTwice(int x) {
  WALRUS_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  WALRUS_ASSIGN_OR_RETURN(int quadrupled, DoubleIfPositive(doubled));
  return quadrupled;
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(3).value(), 6);
  EXPECT_EQ(DoubleIfPositive(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(StatusMacros, AssignOrReturnChains) {
  EXPECT_EQ(ChainedTwice(2).value(), 8);
  EXPECT_FALSE(ChainedTwice(-5).ok());
}

}  // namespace
}  // namespace walrus
