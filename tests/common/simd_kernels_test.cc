#include "common/simd.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace walrus {
namespace simd {
namespace {

// The exactness contract (simd.h): every kernel returns BIT-IDENTICAL
// results at every ISA level. These tests compare each supported level
// against the scalar reference with exact equality (EXPECT_EQ on doubles /
// memcmp on buffers), over randomized inputs whose sizes deliberately
// straddle the SSE2 (4-float / 2-double) and AVX2 (8-float / 4-double) lane
// widths, including 0 and non-multiple-of-lane tails.

std::vector<IsaLevel> SupportedLevels() {
  std::vector<IsaLevel> levels;
  for (int l = 0; l <= static_cast<int>(MaxSupportedIsa()); ++l) {
    levels.push_back(static_cast<IsaLevel>(l));
  }
  return levels;
}

const int kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 64, 67};

// memcmp with a guard for the n==0 rows: empty vectors hand out null
// data() pointers, and memcmp(null, null, 0) is UB (glibc declares the
// arguments nonnull — UBSan flags it).
bool SameBytes(const void* a, const void* b, size_t len) {
  return len == 0 || std::memcmp(a, b, len) == 0;
}

std::vector<float> RandomFloats(Rng* rng, int n, float lo = -2.0f,
                                float hi = 2.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = lo + (hi - lo) * rng->NextFloat();
  return v;
}

std::vector<double> RandomDoubles(Rng* rng, int n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->NextDouble(-3.0, 3.0);
  return v;
}

// Random SoA box block: lo plane d at lo[d * count], hi = lo + nonneg side.
struct SoaBoxes {
  std::vector<float> lo, hi;
  int dim = 0;
  int count = 0;
};

SoaBoxes RandomSoaBoxes(Rng* rng, int dim, int count) {
  SoaBoxes b;
  b.dim = dim;
  b.count = count;
  b.lo.resize(static_cast<size_t>(dim) * count);
  b.hi.resize(static_cast<size_t>(dim) * count);
  for (size_t i = 0; i < b.lo.size(); ++i) {
    b.lo[i] = -1.0f + 2.0f * rng->NextFloat();
    b.hi[i] = b.lo[i] + 0.5f * rng->NextFloat();
  }
  return b;
}

TEST(SimdDispatch, ActiveLevelIsSupported) {
  EXPECT_LE(static_cast<int>(ActiveIsa()), static_cast<int>(MaxSupportedIsa()));
  EXPECT_STREQ(IsaName(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(IsaName(IsaLevel::kSse2), "sse2");
  EXPECT_STREQ(IsaName(IsaLevel::kAvx2), "avx2");
}

TEST(SimdDispatch, TestOverrideChangesActiveLevel) {
  TestOnlySetIsa(IsaLevel::kScalar);
  EXPECT_EQ(ActiveIsa(), IsaLevel::kScalar);
  EXPECT_EQ(&Active(), &Kernels(IsaLevel::kScalar));
  TestOnlyResetIsa();
  EXPECT_LE(static_cast<int>(ActiveIsa()), static_cast<int>(MaxSupportedIsa()));
}

TEST(SimdKernelExactness, SquaredL2F32) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(101);
  for (int n : kSizes) {
    std::vector<float> a = RandomFloats(&rng, n);
    std::vector<float> b = RandomFloats(&rng, n);
    const double want = ref.squared_l2_f32(a.data(), b.data(), n);
    for (IsaLevel level : SupportedLevels()) {
      const double got = Kernels(level).squared_l2_f32(a.data(), b.data(), n);
      EXPECT_EQ(want, got) << "n=" << n << " level=" << IsaName(level);
    }
  }
}

TEST(SimdKernelExactness, ScaledSquaredL2F64) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(102);
  for (int n : kSizes) {
    std::vector<double> a = RandomDoubles(&rng, n);
    std::vector<double> b = RandomDoubles(&rng, n);
    const double wa = rng.NextDouble(0.01, 1.0);
    const double wb = rng.NextDouble(0.01, 1.0);
    const double want =
        ref.scaled_squared_l2_f64(a.data(), wa, b.data(), wb, n);
    for (IsaLevel level : SupportedLevels()) {
      const double got =
          Kernels(level).scaled_squared_l2_f64(a.data(), wa, b.data(), wb, n);
      EXPECT_EQ(want, got) << "n=" << n << " level=" << IsaName(level);
    }
  }
}

TEST(SimdKernelExactness, MinSquaredDistance) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(103);
  for (int n : kSizes) {
    std::vector<float> lo = RandomFloats(&rng, n, -1.0f, 0.0f);
    std::vector<float> hi = RandomFloats(&rng, n, 0.0f, 1.0f);
    // Mix of inside / below / above coordinates.
    std::vector<float> p = RandomFloats(&rng, n, -2.0f, 2.0f);
    const double want = ref.min_squared_distance(lo.data(), hi.data(),
                                                 p.data(), n);
    for (IsaLevel level : SupportedLevels()) {
      const double got =
          Kernels(level).min_squared_distance(lo.data(), hi.data(), p.data(),
                                              n);
      EXPECT_EQ(want, got) << "n=" << n << " level=" << IsaName(level);
    }
  }
}

TEST(SimdKernelExactness, RectPredicates) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(104);
  for (int n : kSizes) {
    if (n == 0) continue;
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<float> alo = RandomFloats(&rng, n, -1.0f, 0.5f);
      std::vector<float> ahi(n);
      for (int i = 0; i < n; ++i) ahi[i] = alo[i] + 0.4f * rng.NextFloat();
      std::vector<float> blo = RandomFloats(&rng, n, -1.0f, 0.5f);
      std::vector<float> bhi(n);
      for (int i = 0; i < n; ++i) bhi[i] = blo[i] + 0.4f * rng.NextFloat();
      std::vector<float> p = RandomFloats(&rng, n, -1.0f, 1.0f);
      const float eps = 0.1f * rng.NextFloat();
      const bool want_int =
          ref.rect_intersects(alo.data(), ahi.data(), blo.data(), bhi.data(),
                              n);
      const bool want_exp = ref.rect_intersects_expanded(
          alo.data(), ahi.data(), eps, blo.data(), bhi.data(), n);
      const bool want_con =
          ref.rect_contains_point(alo.data(), ahi.data(), p.data(), n);
      for (IsaLevel level : SupportedLevels()) {
        const KernelTable& k = Kernels(level);
        EXPECT_EQ(want_int, k.rect_intersects(alo.data(), ahi.data(),
                                              blo.data(), bhi.data(), n))
            << "n=" << n << " level=" << IsaName(level);
        EXPECT_EQ(want_exp,
                  k.rect_intersects_expanded(alo.data(), ahi.data(), eps,
                                             blo.data(), bhi.data(), n))
            << "n=" << n << " level=" << IsaName(level);
        EXPECT_EQ(want_con, k.rect_contains_point(alo.data(), ahi.data(),
                                                  p.data(), n))
            << "n=" << n << " level=" << IsaName(level);
      }
    }
  }
}

TEST(SimdKernelExactness, AccumulateF32) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(105);
  for (int n : kSizes) {
    std::vector<float> p = RandomFloats(&rng, n);
    std::vector<double> acc0 = RandomDoubles(&rng, n);
    const double ss_in = rng.NextDouble(0.0, 10.0);
    std::vector<double> want_acc = acc0;
    const double want_ss = ref.accumulate_f32(want_acc.data(), p.data(), n,
                                              ss_in);
    for (IsaLevel level : SupportedLevels()) {
      std::vector<double> acc = acc0;
      const double ss = Kernels(level).accumulate_f32(acc.data(), p.data(), n,
                                                      ss_in);
      EXPECT_EQ(want_ss, ss) << "n=" << n << " level=" << IsaName(level);
      ASSERT_TRUE(SameBytes(want_acc.data(), acc.data(),
                               n * sizeof(double)))
          << "n=" << n << " level=" << IsaName(level);
    }
  }
}

TEST(SimdKernelExactness, AddF64) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(106);
  for (int n : kSizes) {
    std::vector<double> x = RandomDoubles(&rng, n);
    std::vector<double> acc0 = RandomDoubles(&rng, n);
    std::vector<double> want = acc0;
    ref.add_f64(want.data(), x.data(), n);
    for (IsaLevel level : SupportedLevels()) {
      std::vector<double> acc = acc0;
      Kernels(level).add_f64(acc.data(), x.data(), n);
      ASSERT_TRUE(SameBytes(want.data(), acc.data(), n * sizeof(double)))
          << "n=" << n << " level=" << IsaName(level);
    }
  }
}

TEST(SimdKernelExactness, BatchMinSquaredDistance) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(107);
  for (int dim : {1, 2, 4, 12}) {
    for (int count : kSizes) {
      SoaBoxes b = RandomSoaBoxes(&rng, dim, count);
      std::vector<float> p = RandomFloats(&rng, dim, -2.0f, 2.0f);
      std::vector<double> want(count, -1.0);
      ref.batch_min_squared_distance(b.lo.data(), b.hi.data(), count, dim,
                                     count, p.data(), want.data());
      for (IsaLevel level : SupportedLevels()) {
        std::vector<double> got(count, -1.0);
        Kernels(level).batch_min_squared_distance(b.lo.data(), b.hi.data(),
                                                  count, dim, count, p.data(),
                                                  got.data());
        ASSERT_TRUE(SameBytes(want.data(), got.data(),
                                 count * sizeof(double)))
            << "dim=" << dim << " count=" << count
            << " level=" << IsaName(level);
      }
    }
  }
}

TEST(SimdKernelExactness, BatchSquaredL2) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(108);
  for (int dim : {1, 2, 4, 12}) {
    for (int count : kSizes) {
      std::vector<float> pts =
          RandomFloats(&rng, dim * count, -2.0f, 2.0f);
      std::vector<float> q = RandomFloats(&rng, dim, -2.0f, 2.0f);
      std::vector<double> want(count, -1.0);
      ref.batch_squared_l2(pts.data(), count, dim, count, q.data(),
                           want.data());
      for (IsaLevel level : SupportedLevels()) {
        std::vector<double> got(count, -1.0);
        Kernels(level).batch_squared_l2(pts.data(), count, dim, count,
                                        q.data(), got.data());
        ASSERT_TRUE(SameBytes(want.data(), got.data(),
                                 count * sizeof(double)))
            << "dim=" << dim << " count=" << count
            << " level=" << IsaName(level);
      }
    }
  }
}

TEST(SimdKernelExactness, BatchIntersects) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(109);
  for (int dim : {1, 2, 4, 12}) {
    for (int count : kSizes) {
      SoaBoxes b = RandomSoaBoxes(&rng, dim, count);
      std::vector<float> qlo = RandomFloats(&rng, dim, -1.0f, 0.5f);
      std::vector<float> qhi(dim);
      for (int d = 0; d < dim; ++d) qhi[d] = qlo[d] + 0.6f * rng.NextFloat();
      const int words = (count + 63) / 64;
      std::vector<uint64_t> want(std::max(words, 1), ~0ull);
      ref.batch_intersects(b.lo.data(), b.hi.data(), count, dim, count,
                           qlo.data(), qhi.data(), want.data());
      for (IsaLevel level : SupportedLevels()) {
        std::vector<uint64_t> got(std::max(words, 1), ~0ull);
        Kernels(level).batch_intersects(b.lo.data(), b.hi.data(), count, dim,
                                        count, qlo.data(), qhi.data(),
                                        got.data());
        for (int w = 0; w < words; ++w) {
          EXPECT_EQ(want[w], got[w])
              << "dim=" << dim << " count=" << count << " word=" << w
              << " level=" << IsaName(level);
        }
      }
    }
  }
}

TEST(SimdKernelExactness, HaarBase2x2) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(110);
  for (int count : kSizes) {
    std::vector<float> row0 = RandomFloats(&rng, 2 * count, 0.0f, 1.0f);
    std::vector<float> row1 = RandomFloats(&rng, 2 * count, 0.0f, 1.0f);
    std::vector<float> want(4 * count, -9.0f);
    ref.haar_base_2x2(row0.data(), row1.data(), count, want.data());
    for (IsaLevel level : SupportedLevels()) {
      std::vector<float> got(4 * count, -9.0f);
      Kernels(level).haar_base_2x2(row0.data(), row1.data(), count,
                                   got.data());
      ASSERT_TRUE(SameBytes(want.data(), got.data(),
                               want.size() * sizeof(float)))
          << "count=" << count << " level=" << IsaName(level);
    }
  }
}

// The haar kernel must also match the general-purpose ComputeSingleWindow
// semantics it replaces; that equivalence is covered end-to-end by the
// DpVsNaiveSweep tests in tests/wavelet/, which exercise the vectorized
// omega=2 level against the naive per-window transform.

// SoA word planes for the Hamming kernels: word plane w of entry e at
// words[w * count + e]. Mixes random words with all-zero and all-one ones
// so the popcount paths see their 0 and 64 extremes.
std::vector<uint64_t> RandomWords(Rng* rng, int words_per_sig, int count) {
  std::vector<uint64_t> words(
      static_cast<size_t>(words_per_sig) * count, 0);
  for (uint64_t& w : words) {
    switch (rng->NextBounded(4)) {
      case 0:
        w = 0;
        break;
      case 1:
        w = ~uint64_t{0};
        break;
      default:
        w = (static_cast<uint64_t>(rng->NextU32()) << 32) | rng->NextU32();
    }
  }
  return words;
}

TEST(SimdKernelExactness, Popcount64) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(111);
  std::vector<uint64_t> samples = RandomWords(&rng, 1, 256);
  samples.push_back(0);
  samples.push_back(~uint64_t{0});
  samples.push_back(1);
  samples.push_back(uint64_t{1} << 63);
  for (uint64_t x : samples) {
    uint32_t want = ref.popcount64(x);
    for (IsaLevel level : SupportedLevels()) {
      EXPECT_EQ(want, Kernels(level).popcount64(x))
          << "x=" << x << " level=" << IsaName(level);
    }
  }
}

TEST(SimdKernelExactness, BatchHamming) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(112);
  for (int words_per_sig : {1, 2, 4, 12}) {
    for (int count : kSizes) {
      std::vector<uint64_t> words = RandomWords(&rng, words_per_sig, count);
      std::vector<uint64_t> q = RandomWords(&rng, words_per_sig, 1);
      std::vector<uint32_t> want(count, 0xDEAD);
      ref.batch_hamming(words.data(), count, words_per_sig, count, q.data(),
                        want.data());
      for (IsaLevel level : SupportedLevels()) {
        std::vector<uint32_t> got(count, 0xBEEF);
        Kernels(level).batch_hamming(words.data(), count, words_per_sig,
                                     count, q.data(), got.data());
        ASSERT_TRUE(SameBytes(want.data(), got.data(),
                              count * sizeof(uint32_t)))
            << "words_per_sig=" << words_per_sig << " count=" << count
            << " level=" << IsaName(level);
      }
    }
  }
}

TEST(SimdKernelExactness, BatchSignatureLb) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  Rng rng(113);
  for (int words_per_sig : {1, 2, 4, 12}) {
    for (int count : kSizes) {
      std::vector<uint64_t> words = RandomWords(&rng, words_per_sig, count);
      std::vector<uint64_t> q = RandomWords(&rng, words_per_sig, 1);
      std::vector<uint32_t> want(count, 0xDEAD);
      ref.batch_signature_lb(words.data(), count, words_per_sig, count,
                             q.data(), want.data());
      for (IsaLevel level : SupportedLevels()) {
        std::vector<uint32_t> got(count, 0xBEEF);
        Kernels(level).batch_signature_lb(words.data(), count, words_per_sig,
                                          count, q.data(), got.data());
        ASSERT_TRUE(SameBytes(want.data(), got.data(),
                              count * sizeof(uint32_t)))
            << "words_per_sig=" << words_per_sig << " count=" << count
            << " level=" << IsaName(level);
      }
    }
  }
}

// Spot-check the scalar reference itself on hand-computable inputs: the
// per-dim contribution is ((popcount(x ^ q) - 1)+)^2 summed over planes.
TEST(SimdKernelExactness, BatchSignatureLbReferenceSemantics) {
  const KernelTable& ref = Kernels(IsaLevel::kScalar);
  // Two dims, one entry. Dim 0 differs by 3 thermometer levels -> (3-1)^2;
  // dim 1 differs by 1 level -> (1-1)^2 = 0 (adjacent quantization cells
  // can hold points arbitrarily close, so the bound must ignore them).
  const uint64_t entry[2] = {0x7, 0x1};  // planes: w*count + e with count=1
  const uint64_t q[2] = {0x0, 0x0};
  uint32_t out = 0xDEAD;
  ref.batch_signature_lb(entry, 1, 2, 1, q, &out);
  EXPECT_EQ(out, 4u);
  uint32_t hamming = 0xDEAD;
  ref.batch_hamming(entry, 1, 2, 1, q, &hamming);
  EXPECT_EQ(hamming, 4u);  // 3 + 1 differing bits
}

}  // namespace
}  // namespace simd
}  // namespace walrus
