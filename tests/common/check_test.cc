// Contract-macro coverage: passing checks are silent, failing checks abort
// with file:line, the failed expression, and (for comparison forms) both
// operand values; WALRUS_DCHECK* compile out of release builds.

#include "common/check.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace walrus {
namespace {

TEST(Check, PassingChecksAreSilent) {
  WALRUS_CHECK(true);
  WALRUS_CHECK(1 + 1 == 2) << "streamed context is not evaluated on success";
  WALRUS_CHECK_EQ(1, 1);
  WALRUS_CHECK_NE(1, 2);
  WALRUS_CHECK_LT(1, 2);
  WALRUS_CHECK_LE(2, 2);
  WALRUS_CHECK_GT(3, 2);
  WALRUS_CHECK_GE(3, 3);
}

TEST(Check, PassingCheckDoesNotEvaluateStreamedContext) {
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "context";
  };
  WALRUS_CHECK(true) << expensive();
  WALRUS_CHECK_EQ(4, 4) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, ComparisonOperandsEvaluatedOnce) {
  int a = 0;
  int b = 0;
  WALRUS_CHECK_EQ(++a, 1);
  WALRUS_CHECK_LE(++b, 5);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Check, WorksAsSingleStatementInControlFlow) {
  // The macros must behave as one statement (no stray dangling-else).
  bool flag = true;
  if (flag)
    WALRUS_CHECK_EQ(1, 1);
  else
    WALRUS_CHECK_EQ(1, 2);
  for (int i = 0; i < 3; ++i) WALRUS_CHECK_LT(i, 3);
}

TEST(Check, DeepChecksFlagRoundTrip) {
  bool saved = DeepChecksEnabled();
  SetDeepChecks(true);
  EXPECT_TRUE(DeepChecksEnabled());
  SetDeepChecks(false);
  EXPECT_FALSE(DeepChecksEnabled());
  SetDeepChecks(saved);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailureAbortsWithExpression) {
  EXPECT_DEATH(WALRUS_CHECK(1 == 2), "Check failed: 1 == 2");
}

TEST(CheckDeathTest, FailureReportsFileAndStreamedContext) {
  EXPECT_DEATH(WALRUS_CHECK(false) << "extra context 42",
               "check_test.cc.*Check failed: false.*extra context 42");
}

TEST(CheckDeathTest, ComparisonFailureReportsBothOperandValues) {
  int lhs = 4;
  int rhs = 5;
  EXPECT_DEATH(WALRUS_CHECK_EQ(lhs, rhs),
               "Check failed: lhs == rhs \\(4 vs. 5\\)");
}

TEST(CheckDeathTest, EveryComparisonFormAborts) {
  EXPECT_DEATH(WALRUS_CHECK_NE(7, 7), "7 vs. 7");
  EXPECT_DEATH(WALRUS_CHECK_LT(2, 1), "2 vs. 1");
  EXPECT_DEATH(WALRUS_CHECK_LE(2, 1), "2 vs. 1");
  EXPECT_DEATH(WALRUS_CHECK_GT(1, 2), "1 vs. 2");
  EXPECT_DEATH(WALRUS_CHECK_GE(1, 2), "1 vs. 2");
}

TEST(CheckDeathTest, ErroredResultAccessAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.value(), "errored Result.*boom");
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckActiveInDebugBuilds) {
  EXPECT_DEATH(WALRUS_DCHECK(false), "Check failed");
  EXPECT_DEATH(WALRUS_DCHECK_EQ(1, 2), "1 vs. 2");
}
#else
TEST(Check, DcheckCompilesOutInReleaseBuilds) {
  // Neither the condition nor comparison operands may be evaluated.
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  WALRUS_DCHECK(touch() == 2);
  WALRUS_DCHECK_EQ(touch(), 2);
  WALRUS_DCHECK_NE(touch(), 1);
  WALRUS_DCHECK_LT(touch(), 0);
  WALRUS_DCHECK_LE(touch(), 0);
  WALRUS_DCHECK_GT(touch(), 2);
  WALRUS_DCHECK_GE(touch(), 2);
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace walrus
