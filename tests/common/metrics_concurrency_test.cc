#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace walrus {
namespace {

/// TSan soak: writer threads hammer one counter and one histogram through
/// the registry's lock-free hot path while a reader thread snapshots
/// continuously. Run under scripts/check.sh's TSan build (the suite name is
/// in its test filter); correctness assertions are meaningful in any build:
/// snapshot totals must be monotonic and the final totals exact.
TEST(MetricsConcurrencyTest, ConcurrentWritersAndSnapshotsStayMonotonic) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter =
      registry.GetCounter("walrus.test.concurrency.events");
  Histogram* histogram = registry.GetHistogram(
      "walrus.test.concurrency.seconds", ExponentialBuckets(1e-6, 2.0, 20));
  uint64_t counter_base = counter->Value();
  uint64_t histogram_base = histogram->TotalCount();

  constexpr int kWriters = 4;
  constexpr int kIncrementsPerWriter = 50000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kIncrementsPerWriter; ++i) {
        counter->Increment();
        histogram->Observe(1e-6 * static_cast<double>((w + i) % 1000 + 1));
      }
    });
  }

  std::thread snapshotter([&] {
    uint64_t last_counter = 0;
    uint64_t last_histogram = 0;
    while (!done.load(std::memory_order_acquire)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      const MetricValue* c = snapshot.Find("walrus.test.concurrency.events");
      const MetricValue* h = snapshot.Find("walrus.test.concurrency.seconds");
      ASSERT_NE(c, nullptr);
      ASSERT_NE(h, nullptr);
      // Totals only grow while writers are running.
      EXPECT_GE(c->counter, last_counter);
      EXPECT_GE(h->count, last_histogram);
      last_counter = c->counter;
      last_histogram = h->count;
      // Bucket counts never exceed the total observation count.
      uint64_t bucket_sum = 0;
      for (uint64_t b : h->bucket_counts) bucket_sum += b;
      EXPECT_LE(bucket_sum, h->count + kWriters);
    }
  });

  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  uint64_t expected = static_cast<uint64_t>(kWriters) * kIncrementsPerWriter;
  EXPECT_EQ(counter->Value() - counter_base, expected);
  EXPECT_EQ(histogram->TotalCount() - histogram_base, expected);

  // Every observation landed in exactly one bucket.
  MetricsSnapshot final_snapshot = registry.Snapshot();
  const MetricValue* h = final_snapshot.Find("walrus.test.concurrency.seconds");
  ASSERT_NE(h, nullptr);
  uint64_t bucket_sum = 0;
  for (uint64_t b : h->bucket_counts) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h->count);
  EXPECT_GT(h->sum, 0.0);
}

/// Registration itself raced from many threads must return one stable
/// pointer per name.
TEST(MetricsConcurrencyTest, ConcurrentRegistrationReturnsOneMetric) {
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter* c = MetricsRegistry::Global().GetCounter(
          "walrus.test.concurrency.registration");
      c->Increment();
      seen[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace walrus
