#include "common/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI32(-12345);
  w.PutI64(-9876543210LL);
  w.PutFloat(3.25f);
  w.PutDouble(-2.5e-10);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0xBEEF);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetI32().value(), -12345);
  EXPECT_EQ(r.GetI64().value(), -9876543210LL);
  EXPECT_FLOAT_EQ(r.GetFloat().value(), 3.25f);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), -2.5e-10);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, LittleEndianLayout) {
  BinaryWriter w;
  w.PutU32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[1], 0x03);
  EXPECT_EQ(w.buffer()[2], 0x02);
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(Serialize, StringAndVectorRoundTrip) {
  BinaryWriter w;
  w.PutString("walrus");
  w.PutString("");
  w.PutFloatVector({1.0f, -2.5f, 0.0f});
  w.PutFloatVector({});

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.GetString().value(), "walrus");
  EXPECT_EQ(r.GetString().value(), "");
  std::vector<float> v = r.GetFloatVector().value();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_FLOAT_EQ(v[1], -2.5f);
  EXPECT_TRUE(r.GetFloatVector().value().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, TruncationDetected) {
  BinaryWriter w;
  w.PutU16(7);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetU32().ok());
  EXPECT_EQ(r.GetU32().status().code(), StatusCode::kCorruption);
}

TEST(Serialize, TruncatedStringDetected) {
  BinaryWriter w;
  w.PutU32(100);  // claims 100 bytes follow
  w.PutU8('x');
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(Serialize, GetBytesExactly) {
  BinaryWriter w;
  const char payload[] = "abcdef";
  w.PutBytes(payload, 6);
  BinaryReader r(w.buffer());
  char out[6];
  ASSERT_TRUE(r.GetBytes(out, 6).ok());
  EXPECT_EQ(std::string(out, 6), "abcdef");
  EXPECT_FALSE(r.GetBytes(out, 1).ok());
}

TEST(Serialize, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/walrus_serialize_test.bin";
  std::vector<uint8_t> bytes = {1, 2, 3, 254, 255};
  ASSERT_TRUE(WriteFileBytes(path, bytes).ok());
  Result<std::vector<uint8_t>> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsIOError) {
  Result<std::vector<uint8_t>> read =
      ReadFileBytes("/nonexistent/dir/file.bin");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(Serialize, EmptyFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/walrus_empty_test.bin";
  ASSERT_TRUE(WriteFileBytes(path, {}).ok());
  Result<std::vector<uint8_t>> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace walrus
