#include "common/math_util.h"

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1023));
  EXPECT_TRUE(IsPowerOfTwo(1u << 31));
}

TEST(MathUtil, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(255), 7);
  EXPECT_EQ(Log2Floor(256), 8);
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(129), 256u);
}

TEST(MathUtil, Clamp) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-5, 0, 10), 0);
  EXPECT_EQ(Clamp(15, 0, 10), 10);
  EXPECT_FLOAT_EQ(Clamp(0.5f, 0.0f, 1.0f), 0.5f);
}

TEST(MathUtil, Distances) {
  std::vector<float> a = {0.0f, 3.0f, 1.0f};
  std::vector<float> b = {4.0f, 0.0f, 1.0f};
  EXPECT_FLOAT_EQ(SquaredL2(a, b), 25.0f);
  EXPECT_FLOAT_EQ(L2Distance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(L1Distance(a, b), 7.0f);
  EXPECT_FLOAT_EQ(LInfDistance(a, b), 4.0f);
}

TEST(MathUtil, DistanceToSelfIsZero) {
  std::vector<float> a = {1.5f, -2.5f, 0.0f, 9.0f};
  EXPECT_FLOAT_EQ(L2Distance(a, a), 0.0f);
  EXPECT_FLOAT_EQ(L1Distance(a, a), 0.0f);
  EXPECT_FLOAT_EQ(LInfDistance(a, a), 0.0f);
}

TEST(MathUtil, MeanAndVariance) {
  std::vector<float> values = {2.0f, 4.0f, 4.0f, 4.0f, 5.0f, 5.0f, 7.0f, 9.0f};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

}  // namespace
}  // namespace walrus
