#include <string>

#include <gtest/gtest.h>

#include "common/trace.h"

namespace walrus {
namespace {

TEST(TraceTest, SpansNestByBeginEndPairing) {
  QueryTrace trace;
  trace.Begin("extract");
  trace.Begin("wavelet");
  trace.End();
  trace.Begin("cluster");
  trace.End();
  trace.End();
  trace.Begin("probe");
  trace.End();

  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "extract");
  ASSERT_EQ(spans[0].children.size(), 2u);
  EXPECT_EQ(spans[0].children[0].name, "wavelet");
  EXPECT_EQ(spans[0].children[1].name, "cluster");
  EXPECT_EQ(spans[1].name, "probe");
  EXPECT_TRUE(spans[1].children.empty());
}

TEST(TraceTest, TimesAreOrderedAndNonNegative) {
  QueryTrace trace;
  trace.Begin("a");
  trace.End();
  trace.Begin("b");
  trace.End();
  const std::vector<TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_GE(spans[0].start_seconds, 0.0);
  EXPECT_GE(spans[0].duration_seconds, 0.0);
  // b began after a ended.
  EXPECT_GE(spans[1].start_seconds,
            spans[0].start_seconds + spans[0].duration_seconds);
  // A child's window sits inside its parent's.
  QueryTrace nested;
  nested.Begin("parent");
  nested.Begin("child");
  nested.End();
  nested.End();
  const TraceSpan& parent = nested.spans()[0];
  ASSERT_EQ(parent.children.size(), 1u);
  const TraceSpan& child = parent.children[0];
  EXPECT_GE(child.start_seconds, parent.start_seconds);
  EXPECT_LE(child.start_seconds + child.duration_seconds,
            parent.start_seconds + parent.duration_seconds + 1e-9);
}

TEST(TraceTest, OpenSpansAreNotReported) {
  QueryTrace trace;
  trace.Begin("open");
  EXPECT_TRUE(trace.spans().empty());
  trace.End();
  EXPECT_EQ(trace.spans().size(), 1u);
}

TEST(TraceTest, TraceScopeIsNullSafe) {
  { TraceScope scope(nullptr, "nothing"); }  // must not crash
  QueryTrace trace;
  {
    TraceScope scope(&trace, "stage");
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "stage");
}

TEST(TraceTest, TakeSpansMovesTree) {
  QueryTrace trace;
  trace.Begin("a");
  trace.End();
  std::vector<TraceSpan> taken = trace.TakeSpans();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_TRUE(trace.spans().empty());
}

TEST(TraceTest, CoverageAndCountWalkTheTree) {
  std::vector<TraceSpan> spans(2);
  spans[0].duration_seconds = 0.5;
  spans[0].children.resize(2);
  spans[0].children[0].duration_seconds = 0.2;
  spans[1].duration_seconds = 0.25;
  // Coverage sums top-level spans only (children overlap their parents).
  EXPECT_DOUBLE_EQ(TraceCoverageSeconds(spans), 0.75);
  EXPECT_EQ(TraceSpanCount(spans), 4u);
}

TEST(TraceTest, RenderTraceTextIndentsChildren) {
  std::vector<TraceSpan> spans(1);
  spans[0].name = "extract";
  spans[0].duration_seconds = 0.012;
  spans[0].children.resize(1);
  spans[0].children[0].name = "wavelet";
  spans[0].children[0].duration_seconds = 0.008;
  std::string text = RenderTraceText(spans);
  EXPECT_NE(text.find("extract"), std::string::npos);
  EXPECT_NE(text.find("  wavelet"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

}  // namespace
}  // namespace walrus
