#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsIdempotentAndReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Wait();  // nothing queued: returns immediately
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&hits](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker: strict FIFO.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: the destructor must finish the queue.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

}  // namespace
}  // namespace walrus
