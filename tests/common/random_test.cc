#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace walrus {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU32() != b.NextU32()) ++differ;
  }
  EXPECT_GT(differ, 24);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(6);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(10);
  std::vector<int> perm = rng.Permutation(50);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

}  // namespace
}  // namespace walrus
