#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/ground_truth.h"

namespace walrus {
namespace {

RelevanceFn EvenIsRelevant() {
  return [](uint64_t id) { return id % 2 == 0; };
}

TEST(Metrics, PrecisionAtK) {
  std::vector<uint64_t> retrieved = {2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, EvenIsRelevant(), 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, EvenIsRelevant(), 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, EvenIsRelevant(), 5), 3.0 / 5);
}

TEST(Metrics, PrecisionShortListCountsMissesAsIrrelevant) {
  std::vector<uint64_t> retrieved = {2};
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, EvenIsRelevant(), 4), 0.25);
}

TEST(Metrics, RecallAtK) {
  std::vector<uint64_t> retrieved = {2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAtK(retrieved, EvenIsRelevant(), 3, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(retrieved, EvenIsRelevant(), 1, 4), 0.25);
  EXPECT_DOUBLE_EQ(RecallAtK(retrieved, EvenIsRelevant(), 3, 0), 0.0);
}

TEST(Metrics, AveragePrecisionPerfectRanking) {
  std::vector<uint64_t> retrieved = {2, 4, 6, 1, 3};
  EXPECT_DOUBLE_EQ(AveragePrecision(retrieved, EvenIsRelevant(), 3), 1.0);
}

TEST(Metrics, AveragePrecisionWorstRanking) {
  std::vector<uint64_t> retrieved = {1, 3, 2, 4};
  // Hits at ranks 3 (P=1/3) and 4 (P=2/4), 2 relevant total.
  EXPECT_DOUBLE_EQ(AveragePrecision(retrieved, EvenIsRelevant(), 2),
                   (1.0 / 3 + 0.5) / 2);
}

TEST(Metrics, NdcgPerfectRankingIsOne) {
  std::vector<uint64_t> retrieved = {2, 4, 6, 1, 3};
  EXPECT_DOUBLE_EQ(NdcgAtK(retrieved, EvenIsRelevant(), 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(retrieved, EvenIsRelevant(), 5, 3), 1.0);
}

TEST(Metrics, NdcgPenalizesLateHits) {
  // One relevant item at rank 3 vs rank 1.
  std::vector<uint64_t> late = {1, 3, 2};
  std::vector<uint64_t> early = {2, 1, 3};
  double late_score = NdcgAtK(late, EvenIsRelevant(), 3, 1);
  double early_score = NdcgAtK(early, EvenIsRelevant(), 3, 1);
  EXPECT_DOUBLE_EQ(early_score, 1.0);
  EXPECT_DOUBLE_EQ(late_score, 1.0 / 2.0);  // log2(3+1) = 2
  EXPECT_LT(late_score, early_score);
}

TEST(Metrics, NdcgEdgeCases) {
  EXPECT_DOUBLE_EQ(NdcgAtK({}, EvenIsRelevant(), 5, 3), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({2}, EvenIsRelevant(), 5, 0), 0.0);
  // Short list with hit at rank 1; ideal has 2 hits -> partial credit.
  double score = NdcgAtK({2}, EvenIsRelevant(), 2, 2);
  EXPECT_GT(score, 0.5);
  EXPECT_LT(score, 1.0);
}

TEST(Metrics, MeanOf) {
  EXPECT_DOUBLE_EQ(MeanOf({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(MeanOf({}), 0.0);
}

TEST(GroundTruthTest, RelevanceBySharedLabel) {
  DatasetParams params;
  params.num_images = 12;
  params.width = 32;
  params.height = 32;
  std::vector<LabeledImage> data = GenerateDataset(params);
  GroundTruth gt(data);
  // ids 0 and 6 share label (12 images over 6 classes).
  EXPECT_TRUE(gt.Relevant(0, 6));
  EXPECT_FALSE(gt.Relevant(0, 1));
  EXPECT_FALSE(gt.Relevant(0, 999));
  EXPECT_EQ(gt.LabelOf(3), 3);
  EXPECT_EQ(gt.LabelOf(999), -1);
}

TEST(GroundTruthTest, ForQueryExcludesSelf) {
  DatasetParams params;
  params.num_images = 12;
  params.width = 32;
  params.height = 32;
  GroundTruth gt(GenerateDataset(params));
  RelevanceFn fn = gt.ForQuery(0);
  EXPECT_FALSE(fn(0));  // self excluded
  EXPECT_TRUE(fn(6));
  EXPECT_FALSE(fn(1));
  EXPECT_EQ(gt.RelevantCount(0), 1);  // one other image with the label
  EXPECT_EQ(gt.RelevantCount(999), 0);
}

}  // namespace
}  // namespace walrus
