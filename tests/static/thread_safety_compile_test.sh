#!/usr/bin/env bash
# Negative-compilation test for the common/sync.h thread-safety contracts.
#
# Each tsa/bad_*.cc file encodes one locking mistake (unguarded read,
# unheld REQUIRES, EXCLUDES self-deadlock) and must be REJECTED by a
# clang -Wthread-safety -Werror=thread-safety syntax-only compile — and
# rejected *for a thread-safety reason*, not some unrelated error.
# tsa/good_*.cc files use the same annotations correctly and must be
# ACCEPTED. This pins both directions: the analysis actually fires, and
# the wrappers don't produce false positives on the sanctioned patterns.
#
# Only Clang implements the analysis. With any other compiler (or none)
# the test exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE;
# the clang CI job is the gate of record.
#
# Usage: thread_safety_compile_test.sh <cxx-compiler> <src-include-dir>
set -u

CXX="${1:?usage: $0 <cxx-compiler> <src-include-dir>}"
SRC_DIR="${2:?usage: $0 <cxx-compiler> <src-include-dir>}"
CORPUS_DIR="$(cd "$(dirname "$0")" && pwd)/tsa"

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "SKIP: $CXX is not clang; thread-safety analysis unavailable"
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I"$SRC_DIR"
       -Wthread-safety -Werror=thread-safety)
failures=0

for bad in "$CORPUS_DIR"/bad_*.cc; do
  name="$(basename "$bad")"
  if out="$("$CXX" "${FLAGS[@]}" "$bad" 2>&1)"; then
    echo "FAIL: $name compiled cleanly; the analysis missed its bug"
    failures=$((failures + 1))
  elif ! grep -q "thread-safety" <<<"$out"; then
    echo "FAIL: $name was rejected, but not for a thread-safety reason:"
    echo "$out" | head -5
    failures=$((failures + 1))
  else
    echo "ok: $name rejected by -Wthread-safety"
  fi
done

for good in "$CORPUS_DIR"/good_*.cc; do
  name="$(basename "$good")"
  if out="$("$CXX" "${FLAGS[@]}" "$good" 2>&1)"; then
    echo "ok: $name accepted"
  else
    echo "FAIL: $name must compile clean under -Werror=thread-safety:"
    echo "$out" | head -10
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "thread_safety_compile_test: $failures failure(s)"
  exit 1
fi
echo "thread_safety_compile_test: all corpus files behaved"
