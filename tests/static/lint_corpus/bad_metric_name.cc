// walrus-lint self-test corpus. Known-bad: registers a metric whose name
// is missing from the operations catalog (corpus stand-in:
// operations.md next to this file). New metrics must land with docs.
//
// lint-expect: metric-docs

#include "common/metrics.h"

namespace corpus {

void Record() {
  // Not documented anywhere: flagged.
  Metrics().GetCounter("walrus.corpus.undocumented")->Increment();
  // Documented in the corpus catalog (plain entry): clean.
  Metrics().GetCounter("walrus.corpus.lookups")->Increment();
}

}  // namespace corpus
