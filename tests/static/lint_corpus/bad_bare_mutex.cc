// walrus-lint self-test corpus. Known-bad: raw standard-library locking
// outside common/sync.h. Raw std::mutex fields cannot carry
// WALRUS_GUARDED_BY contracts, so both the include and the declarations
// below must be flagged.
//
// lint-expect: bare-mutex

#include <mutex>

namespace corpus {

struct UsesRawMutex {
  std::mutex mu;
  int value = 0;

  void Set(int v) {
    std::lock_guard<std::mutex> lock(mu);
    value = v;
  }
};

}  // namespace corpus
