// walrus-lint self-test corpus. Known-good: exercises the surface of
// every rule the legal way and must produce zero findings — annotated
// sync.h locking, a named-then-logged Status, documented metric names
// (one via the family shorthand, one via the <i> placeholder), a
// side-effect-free WALRUS_DCHECK, and direct includes for every common/
// macro used.

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"

namespace corpus {

Status MightFail();

class GoodCitizen {
 public:
  void Record(int shard) {
    WALRUS_DCHECK(shard >= 0);  // clean: pure predicate
    MutexLock lock(mu_);
    ++count_;
    Metrics().GetCounter("walrus.corpus.hits")->Increment();
    Metrics()
        .GetCounter("walrus.corpus.shard.s" + std::to_string(shard))
        ->Increment();
    Status status = MightFail();
    if (!status.ok()) {
      WALRUS_LOG(Warning) << "corpus op failed: " << status;
    }
  }

 private:
  Mutex mu_;
  int count_ WALRUS_GUARDED_BY(mu_) = 0;
};

}  // namespace corpus
