// walrus-lint self-test corpus. Known-bad: a WALRUS_DCHECK whose
// argument mutates state. The macro compiles to nothing in release
// builds, so the increment below would silently disappear there —
// debug and release binaries would compute different values.
//
// lint-expect: dcheck-side-effect

#include "common/check.h"

namespace corpus {

int Advance(int cursor, int limit) {
  WALRUS_DCHECK(++cursor <= limit);  // flagged: mutation inside DCHECK
  return cursor;
}

}  // namespace corpus
