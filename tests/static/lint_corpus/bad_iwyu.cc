// walrus-lint self-test corpus. Known-bad: names a common/ macro without
// including its defining header. WALRUS_LOG below resolves only through
// a transitive include, which breaks the moment the intermediate header
// drops it — include what you use.
//
// lint-expect: iwyu-common

#include "common/metrics.h"  // does NOT provide WALRUS_LOG

namespace corpus {

void Report(double seconds) {
  WALRUS_LOG(Info) << "took " << seconds << "s";  // flagged: no logging.h
}

}  // namespace corpus
