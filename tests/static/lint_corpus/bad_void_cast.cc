// walrus-lint self-test corpus. Known-bad: laundering a call's return
// value through a (void) cast. With Status/Result marked [[nodiscard]]
// and -Werror=unused-result, a void cast is the only way to silently
// drop an error, so the spelling is banned on calls. (The cast of a plain
// variable below is the legal unused-binding idiom and must NOT fire.)
//
// lint-expect: discarded-status

#include "common/status.h"

namespace corpus {

Status MightFail();

void Caller(int unused_arg) {
  (void)unused_arg;    // legal: silences -Wunused-parameter, no call
  (void)MightFail();   // flagged: discards a Status-returning call
}

}  // namespace corpus
