// Thread-safety negative-compilation corpus: this file MUST FAIL a
// clang -Wthread-safety -Werror=thread-safety build. Calling a
// WALRUS_REQUIRES(mu) *Locked() helper without holding the mutex breaks
// the caller-locks contract the annotation declares.

#include "common/sync.h"

namespace walrus {

class Queue {
 public:
  // ERROR: calls EmptyLocked() without acquiring mu_ first.
  bool Empty() const { return EmptyLocked(); }

 private:
  bool EmptyLocked() const WALRUS_REQUIRES(mu_) { return size_ == 0; }

  mutable Mutex mu_;
  int size_ WALRUS_GUARDED_BY(mu_) = 0;
};

}  // namespace walrus
