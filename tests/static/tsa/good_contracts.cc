// Thread-safety negative-compilation corpus: this file MUST PASS a
// clang -Wthread-safety -Werror=thread-safety build — it uses every
// annotation the way the codebase does (guarded fields, a REQUIRES
// helper, an EXCLUDES public surface, an explicit while-loop condition
// wait). If this file stops compiling, the wrappers in common/sync.h
// regressed, not the corpus.

#include "common/sync.h"

namespace walrus {

class BoundedCounter {
 public:
  void Increment() WALRUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
    changed_.NotifyAll();
  }

  int WaitUntilAtLeast(int threshold) WALRUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    // Condition waits are explicit while loops: TSA analyzes lambda
    // predicate bodies as standalone functions, so the wait-with-
    // predicate overload cannot prove the guarded access is locked.
    while (!AtLeastLocked(threshold)) changed_.Wait(lock);
    return value_;
  }

 private:
  bool AtLeastLocked(int threshold) const WALRUS_REQUIRES(mu_) {
    return value_ >= threshold;
  }

  mutable Mutex mu_;
  CondVar changed_;
  int value_ WALRUS_GUARDED_BY(mu_) = 0;
};

}  // namespace walrus
