// Thread-safety negative-compilation corpus: this file MUST FAIL a
// clang -Wthread-safety -Werror=thread-safety build. Calling a
// WALRUS_EXCLUDES(mu) method while already holding mu is the
// self-deadlock pattern (std::mutex is non-reentrant): the callee will
// block forever trying to re-acquire the caller's lock.

#include "common/sync.h"

namespace walrus {

class Registry {
 public:
  void Clear() WALRUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    count_ = 0;
  }

  // ERROR: holds mu_ across a call into Clear(), which excludes mu_.
  void Reset() {
    MutexLock lock(mu_);
    count_ = -1;
    Clear();
  }

 private:
  Mutex mu_;
  int count_ WALRUS_GUARDED_BY(mu_) = 0;
};

}  // namespace walrus
