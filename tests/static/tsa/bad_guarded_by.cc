// Thread-safety negative-compilation corpus: this file MUST FAIL a
// clang -Wthread-safety -Werror=thread-safety build
// (thread_safety_compile_test.sh asserts the rejection). Reading a
// WALRUS_GUARDED_BY field without holding its mutex is the core error
// the analysis exists to catch.

#include "common/sync.h"

namespace walrus {

class Counter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++value_;
  }

  // ERROR: reads value_ without acquiring mu_.
  int Get() const { return value_; }

 private:
  mutable Mutex mu_;
  int value_ WALRUS_GUARDED_BY(mu_) = 0;
};

}  // namespace walrus
