// Object search across translation and scale: the paper's Figure 1 scenario.
//
// Controlled setup: four backdrop types; for each backdrop we index one
// scene WITH the ball (at a different position/size each time) and one
// scene WITHOUT it. The query is the same ball on a fifth backdrop
// placement. Because each with/without pair shares its backdrop, background
// matching cancels within a pair and the ranking isolates the object:
// WALRUS should score every with-ball scene above its without-ball
// partner, no matter where and how large the ball is. A whole-image color
// histogram is shown for contrast.
//
// Run: ./build/examples/object_search [output_dir]
// If output_dir is given, all images are written there as PPM for viewing.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/color_histogram.h"
#include "core/index.h"
#include "core/query.h"
#include "image/pnm_io.h"
#include "image/synth.h"
#include "image/transform.h"

namespace {

walrus::ImageF MakeBackdrop(int kind, uint64_t seed) {
  walrus::Rng rng(seed);
  switch (kind % 4) {
    case 0:
      return walrus::MakeValueNoise(96, 96, 8, {0.05f, 0.3f, 0.08f},
                                    {0.25f, 0.6f, 0.2f}, &rng);
    case 1:
      return walrus::MakeLinearGradient(96, 96, {0.35f, 0.55f, 0.9f},
                                        {0.75f, 0.85f, 0.98f});
    case 2:
      return walrus::MakeValueNoise(96, 96, 12, {0.7f, 0.6f, 0.4f},
                                    {0.9f, 0.82f, 0.6f}, &rng);
    default:
      return walrus::MakeGrass(96, 96, {0.2f, 0.55f, 0.15f}, &rng);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "";

  walrus::Rng rng(42);
  // One fixed solid object (a shaded ball) rendered once, then
  // translated/scaled into scenes. Solid convex objects give WALRUS pure
  // interior windows on any background; see DESIGN.md on object choice.
  walrus::ImageF ball, mask;
  walrus::RenderObject(walrus::ObjectClass::kBall, 48, {}, &rng, &ball, &mask);

  struct Placement {
    int x, y, size;
  };
  // Translation and scaling per backdrop (Figure 1's transformations).
  const std::vector<Placement> placements = {
      {8, 8, 48},    // top-left, original size
      {44, 40, 48},  // bottom-right (translation)
      {30, 12, 24},  // half size (scaling down)
      {4, 28, 64},   // 1.33x size (scaling up)
  };

  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;  // multi-scale windows: scale invariance
  params.slide_step = 2;
  params.cluster_epsilon = 0.04;
  walrus::WalrusIndex index(params);
  walrus::ColorHistogramRetriever histogram;

  // Image id 10*k+1 = backdrop k WITH ball, 10*k+2 = same backdrop WITHOUT.
  std::vector<walrus::ImageF> by_id(50);
  std::vector<uint64_t> with_ids, without_ids;
  for (int k = 0; k < 4; ++k) {
    walrus::ImageF with = MakeBackdrop(k, 100 + k);
    const Placement& p = placements[k];
    walrus::ImageF scaled_ball =
        walrus::Resize(ball, p.size, p.size, walrus::ResizeFilter::kBilinear);
    walrus::ImageF scaled_mask =
        walrus::Resize(mask, p.size, p.size, walrus::ResizeFilter::kBilinear);
    walrus::Composite(&with, scaled_ball, p.x, p.y, &scaled_mask);
    walrus::ImageF without = MakeBackdrop(k, 100 + k);

    uint64_t with_id = 10 * k + 1;
    uint64_t without_id = 10 * k + 2;
    with_ids.push_back(with_id);
    without_ids.push_back(without_id);
    by_id[with_id] = with;
    by_id[without_id] = without;
    if (!index.AddImage(with_id, "with", with).ok() ||
        !index.AddImage(without_id, "without", without).ok() ||
        !histogram.AddImage(with_id, with).ok() ||
        !histogram.AddImage(without_id, without).ok()) {
      std::fprintf(stderr, "indexing failed\n");
      return 1;
    }
    if (!out_dir.empty()) {
      (void)walrus::WritePnm(with, out_dir + "/with_" + std::to_string(k) +
                                       ".ppm");
      (void)walrus::WritePnm(without, out_dir + "/without_" +
                                          std::to_string(k) + ".ppm");
    }
  }

  // Query: the ball dead center on a fifth, unseen backdrop.
  walrus::ImageF query = MakeBackdrop(2, 999);
  walrus::Composite(&query, ball, 24, 24, &mask);
  if (!out_dir.empty()) {
    (void)walrus::WritePnm(query, out_dir + "/query.ppm");
  }

  walrus::QueryOptions options;
  options.epsilon = 0.085f;
  options.matcher = walrus::MatcherKind::kGreedy;
  auto matches = walrus::ExecuteQuery(index, query, options);
  if (!matches.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 matches.status().ToString().c_str());
    return 1;
  }

  auto similarity_of = [&matches](uint64_t id) {
    for (const walrus::QueryMatch& m : *matches) {
      if (m.image_id == id) return m.similarity;
    }
    return 0.0;
  };
  auto histogram_distance_of = [](const auto& hmatches, uint64_t id) {
    for (const auto& m : hmatches) {
      if (m.image_id == id) return m.distance;
    }
    return 1e9;
  };

  std::printf("WALRUS similarity (query: ball centered on new backdrop)\n");
  std::printf("%-28s %-14s %-16s %s\n", "backdrop", "with-ball",
              "without-ball", "object separated?");
  auto hmatches = histogram.Query(query, 0).value();
  int walrus_wins = 0;
  int histogram_wins = 0;
  const char* backdrop_names[] = {"foliage(top-left)", "sky(bottom-right)",
                                  "sand(half-size)", "grass(1.33x)"};
  for (int k = 0; k < 4; ++k) {
    double with_sim = similarity_of(with_ids[k]);
    double without_sim = similarity_of(without_ids[k]);
    bool separated = with_sim > without_sim;
    if (separated) ++walrus_wins;
    std::printf("%-28s %-14.3f %-16.3f %s\n", backdrop_names[k], with_sim,
                without_sim, separated ? "yes" : "NO");
    double with_d = histogram_distance_of(hmatches, with_ids[k]);
    double without_d = histogram_distance_of(hmatches, without_ids[k]);
    if (with_d < without_d) ++histogram_wins;
  }
  std::printf(
      "pairs where the object-bearing scene ranks above its object-free "
      "partner: WALRUS %d/4, color-histogram %d/4\n",
      walrus_wins, histogram_wins);
  return 0;
}
