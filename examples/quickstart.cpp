// Quickstart: index a handful of images and run one similarity query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Demonstrates the minimal WALRUS workflow:
//   1. configure WalrusParams (here: paper defaults scaled to small images),
//   2. add images to a WalrusIndex (region extraction is automatic),
//   3. call ExecuteQuery and read the ranked matches.

#include <cstdio>

#include "core/index.h"
#include "core/query.h"
#include "image/synth.h"
#include "image/transform.h"

int main() {
  // Small images, so shrink the sliding windows relative to the paper's
  // 64x64-on-128x128 default.
  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 32;
  params.slide_step = 8;
  params.cluster_epsilon = 0.05;

  walrus::WalrusIndex index(params);

  // A tiny database: a red-flower-ish scene, a sunset, and a brick wall.
  walrus::Rng rng(7);
  walrus::ImageF flowers =
      walrus::MakeValueNoise(64, 64, 8, {0.05f, 0.3f, 0.08f},
                             {0.25f, 0.6f, 0.2f}, &rng);
  walrus::ImageF flower_patch, flower_mask;
  walrus::RenderObject(walrus::ObjectClass::kFlower, 28, {}, &rng,
                       &flower_patch, &flower_mask);
  walrus::Composite(&flowers, flower_patch, 18, 18, &flower_mask);

  walrus::ImageF sunset = walrus::MakeLinearGradient(
      64, 64, {0.9f, 0.45f, 0.15f}, {0.2f, 0.1f, 0.3f});
  walrus::ImageF bricks = walrus::MakeBrickWall(
      64, 64, 14, 6, 2, {0.6f, 0.25f, 0.15f}, {0.75f, 0.7f, 0.65f}, &rng);

  for (auto& [id, name, image] :
       std::vector<std::tuple<uint64_t, const char*, const walrus::ImageF*>>{
           {1, "flowers", &flowers},
           {2, "sunset", &sunset},
           {3, "bricks", &bricks}}) {
    walrus::Status status = index.AddImage(id, name, *image);
    if (!status.ok()) {
      std::fprintf(stderr, "indexing %s failed: %s\n", name,
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed %zu images into %zu regions\n", index.ImageCount(),
              index.RegionCount());

  // Query: the same flower, moved to a different corner of a fresh scene.
  walrus::ImageF query =
      walrus::MakeValueNoise(64, 64, 8, {0.05f, 0.3f, 0.08f},
                             {0.25f, 0.6f, 0.2f}, &rng);
  walrus::Composite(&query, flower_patch, 34, 6, &flower_mask);

  walrus::QueryOptions options;
  options.epsilon = 0.085f;  // Definition 4.1 envelope
  walrus::QueryStats stats;
  auto matches = walrus::ExecuteQuery(index, query, options, &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 matches.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %d regions, %.1f matching regions/region, %.3fs\n",
              stats.query_regions, stats.avg_regions_per_query_region,
              stats.seconds);
  for (const walrus::QueryMatch& match : *matches) {
    const walrus::ImageRecord* record =
        index.catalog().FindImage(match.image_id);
    std::printf("  image %llu (%s): similarity %.3f (%d region pairs)\n",
                static_cast<unsigned long long>(match.image_id),
                record != nullptr ? record->name.c_str() : "?",
                match.similarity, match.matching_pairs);
  }
  return 0;
}
