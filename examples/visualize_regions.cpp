// Region-decomposition visualizer: writes, for a synthetic scene, the
// original image plus an overlay where every coverage-bitmap cell is tinted
// by the most specific region covering it (regions with fewer windows are
// considered more specific than broad background clusters). Makes WALRUS's
// section 5.3 decomposition inspectable with any PPM viewer.
//
// Run: ./build/examples/visualize_regions [output_dir]   (default /tmp)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/region_extractor.h"
#include "image/dataset.h"
#include "image/pnm_io.h"
#include "image/synth.h"

namespace {

/// A qualitative palette for region tints.
walrus::Color3 PaletteColor(int i) {
  static const walrus::Color3 kPalette[] = {
      {0.89f, 0.10f, 0.11f}, {0.22f, 0.49f, 0.72f}, {0.30f, 0.69f, 0.29f},
      {0.60f, 0.31f, 0.64f}, {1.00f, 0.50f, 0.00f}, {0.65f, 0.34f, 0.16f},
      {0.97f, 0.51f, 0.75f}, {0.60f, 0.60f, 0.60f}, {0.90f, 0.90f, 0.13f},
      {0.10f, 0.75f, 0.75f},
  };
  return kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  walrus::DatasetParams dp;
  dp.num_images = 1;
  dp.width = 128;
  dp.height = 128;
  dp.seed = 7;
  walrus::LabeledImage scene = walrus::GenerateDataset(dp)[0];

  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;
  params.slide_step = 4;
  walrus::ExtractionStats stats;
  auto regions = walrus::ExtractRegions(scene.image, params, &stats);
  if (!regions.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 regions.status().ToString().c_str());
    return 1;
  }

  std::printf("scene label: %s; %d windows -> %zu regions (eps_c=%.2f)\n",
              walrus::ObjectClassName(scene.label), stats.window_count,
              regions->size(), params.cluster_epsilon);

  // Rank regions by specificity (fewest windows first) for reporting and
  // for the per-cell tie-break.
  std::vector<const walrus::Region*> by_specificity;
  for (const walrus::Region& r : *regions) by_specificity.push_back(&r);
  std::sort(by_specificity.begin(), by_specificity.end(),
            [](const walrus::Region* a, const walrus::Region* b) {
              return a->window_count < b->window_count;
            });

  for (size_t i = 0; i < std::min<size_t>(8, by_specificity.size()); ++i) {
    const walrus::Region* r = by_specificity[i];
    std::printf(
        "  region %2u: %4llu windows, covers %4.0f%% of the image\n",
        r->region_id, static_cast<unsigned long long>(r->window_count),
        100.0 * r->CoveredFraction());
  }

  // Per-cell owner: the most specific region covering the cell.
  int side = params.bitmap_side;
  std::vector<int> owner(static_cast<size_t>(side) * side, -1);
  for (const walrus::Region* r : by_specificity) {
    for (int cy = 0; cy < side; ++cy) {
      for (int cx = 0; cx < side; ++cx) {
        size_t at = static_cast<size_t>(cy) * side + cx;
        if (owner[at] < 0 && r->bitmap.TestCell(cx, cy)) {
          owner[at] = static_cast<int>(r->region_id);
        }
      }
    }
  }

  // Blend region tints over the original.
  walrus::ImageF overlay = scene.image;
  for (int y = 0; y < overlay.height(); ++y) {
    int cy = y * side / overlay.height();
    for (int x = 0; x < overlay.width(); ++x) {
      int cx = x * side / overlay.width();
      int region = owner[static_cast<size_t>(cy) * side + cx];
      if (region < 0) continue;
      walrus::Color3 tint = PaletteColor(region);
      const float alpha = 0.45f;
      overlay.At(0, x, y) += alpha * (tint.r - overlay.At(0, x, y));
      overlay.At(1, x, y) += alpha * (tint.g - overlay.At(1, x, y));
      overlay.At(2, x, y) += alpha * (tint.b - overlay.At(2, x, y));
    }
  }

  std::string original_path = out_dir + "/regions_original.ppm";
  std::string overlay_path = out_dir + "/regions_overlay.ppm";
  if (!walrus::WritePnm(scene.image, original_path).ok() ||
      !walrus::WritePnm(overlay, overlay_path).ok()) {
    std::fprintf(stderr, "writing output images failed\n");
    return 1;
  }
  std::printf("wrote %s and %s\n", original_path.c_str(),
              overlay_path.c_str());
  return 0;
}
