// "User-specified scene" retrieval -- the workflow in WALRUS's name: the
// user marks a rectangle in a query image, and the system ranks database
// images by how much of that scene they contain, regardless of where and
// at what scale it appears.
//
// This example builds a small database of composite scenes, queries with a
// marked sub-rectangle (a ball), and prints the ranking under the
// query-only normalization (fraction of the marked scene found).
//
// Run: ./build/examples/scene_search

#include <cstdio>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "image/synth.h"
#include "image/transform.h"

int main() {
  walrus::Rng rng(2026);
  walrus::ImageF ball, ball_mask;
  walrus::RenderObject(walrus::ObjectClass::kBall, 48, {}, &rng, &ball,
                       &ball_mask);
  walrus::ImageF star, star_mask;
  walrus::RenderObject(walrus::ObjectClass::kStar, 40, {}, &rng, &star,
                       &star_mask);

  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;
  params.slide_step = 4;
  walrus::WalrusIndex index(params);

  // Database: the ball at various places/sizes, plus ball-free scenes.
  struct Scene {
    uint64_t id;
    const char* description;
    bool has_ball;
  };
  std::vector<Scene> scenes;
  auto add_scene = [&](uint64_t id, const char* description, bool with_ball,
                       int x, int y, int size, uint64_t noise_seed) {
    walrus::Rng bg_rng(noise_seed);
    walrus::ImageF img = walrus::MakeValueNoise(
        128, 128, 10, {0.15f, 0.35f, 0.1f}, {0.3f, 0.6f, 0.25f}, &bg_rng);
    if (with_ball) {
      walrus::ImageF scaled =
          walrus::Resize(ball, size, size, walrus::ResizeFilter::kBilinear);
      walrus::ImageF scaled_mask = walrus::Resize(
          ball_mask, size, size, walrus::ResizeFilter::kBilinear);
      walrus::Composite(&img, scaled, x, y, &scaled_mask);
    } else if (id % 2 == 0) {
      // Distractor object so ball-free scenes are not just backgrounds.
      walrus::Composite(&img, star, 40, 40, &star_mask);
    }
    if (!index.AddImage(id, description, img).ok()) std::exit(1);
    scenes.push_back({id, description, with_ball});
  };

  add_scene(1, "ball top-left", true, 8, 8, 48, 11);
  add_scene(2, "ball bottom-right", true, 72, 76, 48, 12);
  add_scene(3, "ball small (24px)", true, 52, 20, 24, 13);
  add_scene(4, "ball large (72px)", true, 28, 36, 72, 14);
  add_scene(5, "no ball (star)", false, 0, 0, 0, 15);
  add_scene(6, "no ball (plain)", false, 0, 0, 0, 16);
  add_scene(7, "no ball (star)", false, 0, 0, 0, 17);

  // Query: ball centered on a sandy background; the user marks its box.
  walrus::Rng sand_rng(99);
  walrus::ImageF query = walrus::MakeValueNoise(
      128, 128, 12, {0.7f, 0.6f, 0.4f}, {0.9f, 0.82f, 0.6f}, &sand_rng);
  walrus::Composite(&query, ball, 40, 40, &ball_mask);
  walrus::PixelRect marked{40, 40, 48, 48};

  walrus::QueryOptions options;
  options.epsilon = 0.085f;
  options.normalization = walrus::SimilarityNormalization::kQueryOnly;
  options.matcher = walrus::MatcherKind::kGreedy;

  walrus::QueryStats stats;
  auto matches =
      walrus::ExecuteSceneQuery(index, query, marked, options, &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "scene query failed: %s\n",
                 matches.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "marked scene %dx%d at (%d,%d): %d regions, %.0f ms\n", marked.width,
      marked.height, marked.x, marked.y, stats.query_regions,
      stats.seconds * 1e3);
  std::printf("%-4s %-22s %-12s %s\n", "rank", "scene", "found", "contains?");
  int misranked = 0;
  for (size_t i = 0; i < matches->size(); ++i) {
    const walrus::QueryMatch& m = (*matches)[i];
    const Scene* scene = nullptr;
    for (const Scene& s : scenes) {
      if (s.id == m.image_id) scene = &s;
    }
    bool has_ball = scene != nullptr && scene->has_ball;
    if (i < 4 && !has_ball) ++misranked;
    std::printf("%-4zu %-22s %-12.3f %s\n", i + 1,
                scene != nullptr ? scene->description : "?", m.similarity,
                has_ball ? "yes" : "no");
  }
  // Scenes with no matching region at all do not appear in `matches`.
  std::printf("ball scenes misranked out of the top 4: %d\n", misranked);
  return 0;
}
