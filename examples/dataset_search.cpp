// End-to-end dataset workflow with persistence:
//   1. generate a labelled synthetic dataset (PPM files + manifest),
//   2. build a WALRUS index over it and save the index to disk,
//   3. reopen the index from disk and answer queries, reporting precision
//      against the dataset's ground-truth labels.
//
// Run: ./build/examples/dataset_search [work_dir] [num_images]
// Defaults: work_dir = /tmp/walrus_demo, num_images = 60.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

#include "core/index.h"
#include "core/query.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/dataset.h"
#include "image/pnm_io.h"

int main(int argc, char** argv) {
  std::string work_dir = argc > 1 ? argv[1] : "/tmp/walrus_demo";
  int num_images = argc > 2 ? std::atoi(argv[2]) : 60;
  ::mkdir(work_dir.c_str(), 0755);

  // 1. Dataset.
  walrus::DatasetParams dp;
  dp.num_images = num_images;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 20260706;
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(dp);
  walrus::Status save = walrus::SaveDataset(dataset, work_dir);
  if (!save.ok()) {
    std::fprintf(stderr, "saving dataset failed: %s\n",
                 save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d scenes + labels.txt to %s\n", num_images,
              work_dir.c_str());

  // 2. Build + persist the index.
  walrus::WalrusParams wp;
  wp.min_window = 16;
  wp.max_window = 64;
  wp.slide_step = 8;
  std::string prefix = work_dir + "/walrus";
  {
    walrus::WalrusIndex index(wp);
    for (const walrus::LabeledImage& scene : dataset) {
      walrus::Status status = index.AddImage(
          static_cast<uint64_t>(scene.id),
          "img_" + std::to_string(scene.id) + ".ppm", scene.image);
      if (!status.ok()) {
        std::fprintf(stderr, "indexing failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    walrus::Status persisted = index.Save(prefix);
    if (!persisted.ok()) {
      std::fprintf(stderr, "saving index failed: %s\n",
                   persisted.ToString().c_str());
      return 1;
    }
    std::printf("indexed %zu images (%zu regions), saved to %s.{catalog,index}\n",
                index.ImageCount(), index.RegionCount(), prefix.c_str());
  }

  // 3. Reopen and query. Query images are re-read from the PPMs on disk to
  // show the full round trip.
  auto reopened = walrus::WalrusIndex::Open(prefix);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopening index failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  walrus::GroundTruth truth(dataset);

  walrus::QueryOptions options;
  options.epsilon = 0.085f;
  std::vector<double> precisions;
  int num_queries = std::min(num_images, 12);
  for (int id = 0; id < num_queries; ++id) {
    auto image =
        walrus::ReadPnm(work_dir + "/img_" + std::to_string(id) + ".ppm");
    if (!image.ok()) {
      std::fprintf(stderr, "reading query image failed: %s\n",
                   image.status().ToString().c_str());
      return 1;
    }
    walrus::QueryStats stats;
    auto matches = walrus::ExecuteQuery(*reopened, *image, options, &stats);
    if (!matches.ok()) return 1;
    std::vector<uint64_t> retrieved;
    for (const walrus::QueryMatch& m : *matches) {
      if (m.image_id != static_cast<uint64_t>(id)) {
        retrieved.push_back(m.image_id);
      }
    }
    double p5 = walrus::PrecisionAtK(retrieved, truth.ForQuery(id), 5);
    precisions.push_back(p5);
    std::printf(
        "query %2d (%-6s): %2d regions, %3d candidate images, P@5=%.2f, "
        "%.0f ms\n",
        id, walrus::ObjectClassName(dataset[id].label), stats.query_regions,
        stats.distinct_images, p5, stats.seconds * 1e3);
  }
  std::printf("mean P@5 over %d queries: %.3f (random would be ~%.3f)\n",
              num_queries, walrus::MeanOf(precisions),
              1.0 / walrus::kNumObjectClasses);
  return 0;
}
