// Command-line client for a running walrusd (examples/walrus_serve.cpp).
//
//   walrus_client <host> <port> ping
//   walrus_client <host> <port> query [--trace] <image.ppm> [epsilon] [top_k]
//   walrus_client <host> <port> scene [--trace] <image.ppm> <x> <y> <w> <h> [epsilon]
//   walrus_client <host> <port> insert <id> <image.ppm> [name]
//   walrus_client <host> <port> delete <id>
//   walrus_client <host> <port> stats
//   walrus_client <host> <port> metrics [--json]
//   walrus_client <host> <port> shutdown

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"
#include "image/pnm_io.h"
#include "server/client.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  walrus_client <host> <port> ping\n"
               "  walrus_client <host> <port> query [--trace] <image.ppm> "
               "[epsilon] [top_k]\n"
               "  walrus_client <host> <port> scene [--trace] <image.ppm> "
               "<x> <y> <w> <h> [epsilon]\n"
               "  walrus_client <host> <port> insert <id> <image.ppm> "
               "[name]\n"
               "  walrus_client <host> <port> delete <id>\n"
               "  walrus_client <host> <port> stats\n"
               "  walrus_client <host> <port> metrics [--json]\n"
               "  walrus_client <host> <port> shutdown\n");
  return 2;
}

void PrintMatches(const walrus::RemoteQueryResult& result, double rtt_ms) {
  std::printf("%d query regions, %d candidate images, %.1f ms round trip\n",
              result.stats.query_regions, result.stats.distinct_images,
              rtt_ms);
  for (size_t i = 0; i < result.matches.size(); ++i) {
    const walrus::QueryMatch& m = result.matches[i];
    std::printf("%2zu. image %-8llu similarity=%.3f (pairs=%d)\n", i + 1,
                static_cast<unsigned long long>(m.image_id), m.similarity,
                m.matching_pairs);
  }
  if (!result.stats.spans.empty()) {
    std::printf("server-side stage breakdown (%.2f ms total):\n%s",
                result.stats.seconds * 1e3,
                walrus::RenderTraceText(result.stats.spans).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto client = walrus::WalrusClient::Connect(
      argv[1], static_cast<uint16_t>(std::atoi(argv[2])));
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::string command = argv[3];

  if (command == "ping") {
    walrus::WallTimer timer;
    walrus::Status status = client->Ping();
    if (!status.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("pong (%.2f ms)\n", timer.ElapsedMillis());
    return 0;
  }

  if (command == "stats") {
    auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    for (int op = 0; op < walrus::kNumOpcodes; ++op) {
      std::printf("%-12s %llu\n",
                  walrus::OpcodeName(static_cast<walrus::Opcode>(op)),
                  static_cast<unsigned long long>(
                      stats->requests_by_opcode[op]));
    }
    std::printf("overloaded   %llu\n",
                static_cast<unsigned long long>(stats->rejected_overload));
    std::printf("deadline     %llu\n",
                static_cast<unsigned long long>(stats->deadline_exceeded));
    std::printf("proto_errors %llu\n",
                static_cast<unsigned long long>(stats->protocol_errors));
    std::printf("bytes in/out %llu / %llu\n",
                static_cast<unsigned long long>(stats->bytes_in),
                static_cast<unsigned long long>(stats->bytes_out));
    std::printf("latency      p50 %.2f ms, p99 %.2f ms\n",
                stats->latency_p50_ms, stats->latency_p99_ms);
    std::printf("shards       %u\n", stats->num_shards);
    for (size_t s = 0; s < stats->shard_probes.size(); ++s) {
      std::printf("  shard %-4zu probed %llu regions\n", s,
                  static_cast<unsigned long long>(stats->shard_probes[s]));
    }
    if (stats->result_cache_capacity > 0) {
      uint64_t lookups =
          stats->result_cache_hits + stats->result_cache_misses;
      std::printf(
          "result cache %llu/%llu entries, %llu/%llu hits (%.1f%%)\n",
          static_cast<unsigned long long>(stats->result_cache_entries),
          static_cast<unsigned long long>(stats->result_cache_capacity),
          static_cast<unsigned long long>(stats->result_cache_hits),
          static_cast<unsigned long long>(lookups),
          lookups == 0
              ? 0.0
              : 100.0 * static_cast<double>(stats->result_cache_hits) /
                    static_cast<double>(lookups));
    }
    if (stats->has_ingest) {
      std::printf("ingest       %llu inserts, %llu deletes, %llu merges\n",
                  static_cast<unsigned long long>(stats->ingest.inserts),
                  static_cast<unsigned long long>(stats->ingest.deletes),
                  static_cast<unsigned long long>(stats->ingest.merges));
      std::printf("delta        %llu images, %llu tombstones\n",
                  static_cast<unsigned long long>(stats->ingest.delta_images),
                  static_cast<unsigned long long>(stats->ingest.tombstones));
      std::printf(
          "wal          %llu records, %llu bytes appended, %llu syncs, "
          "synced lsn %llu, file %llu bytes\n",
          static_cast<unsigned long long>(stats->ingest.wal_records),
          static_cast<unsigned long long>(stats->ingest.wal_bytes),
          static_cast<unsigned long long>(stats->ingest.wal_syncs),
          static_cast<unsigned long long>(stats->ingest.wal_synced_lsn),
          static_cast<unsigned long long>(stats->ingest.wal_file_bytes));
    }
    if (stats->prefilter_candidates_in > 0) {
      std::printf(
          "prefilter    %llu candidates in, %llu pruned, %llu verified out "
          "(%.1f%% pruned)\n",
          static_cast<unsigned long long>(stats->prefilter_candidates_in),
          static_cast<unsigned long long>(stats->prefilter_pruned),
          static_cast<unsigned long long>(stats->prefilter_candidates_out),
          100.0 * static_cast<double>(stats->prefilter_pruned) /
              static_cast<double>(stats->prefilter_candidates_in));
    }
    return 0;
  }

  if (command == "insert") {
    if (argc < 6) return Usage();
    uint64_t id = std::strtoull(argv[4], nullptr, 10);
    auto image = walrus::ReadPnm(argv[5]);
    if (!image.ok()) {
      std::fprintf(stderr, "reading %s failed: %s\n", argv[5],
                   image.status().ToString().c_str());
      return 1;
    }
    std::string name = argc > 6 ? argv[6] : argv[5];
    walrus::WallTimer timer;
    walrus::Status status = client->InsertImage(id, name, *image);
    if (!status.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("inserted image %llu (%.2f ms, durable)\n",
                static_cast<unsigned long long>(id), timer.ElapsedMillis());
    return 0;
  }

  if (command == "delete") {
    if (argc < 5) return Usage();
    uint64_t id = std::strtoull(argv[4], nullptr, 10);
    walrus::WallTimer timer;
    walrus::Status status = client->DeleteImage(id);
    if (!status.ok()) {
      std::fprintf(stderr, "delete failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("deleted image %llu (%.2f ms, durable)\n",
                static_cast<unsigned long long>(id), timer.ElapsedMillis());
    return 0;
  }

  if (command == "shutdown") {
    walrus::Status status = client->Shutdown();
    if (!status.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("server acknowledged shutdown\n");
    return 0;
  }

  if (command == "metrics") {
    bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
    auto metrics = client->Metrics();
    if (!metrics.ok()) {
      std::fprintf(stderr, "metrics failed: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    std::string rendered = json ? walrus::RenderMetricsJson(*metrics)
                                : walrus::RenderMetricsText(*metrics);
    std::fputs(rendered.c_str(), stdout);
    return 0;
  }

  if (command == "query" || command == "scene") {
    bool scene = command == "scene";
    int at = 4;
    bool trace = argc > at && std::strcmp(argv[at], "--trace") == 0;
    if (trace) ++at;
    if (argc < at + (scene ? 5 : 1)) return Usage();
    auto image = walrus::ReadPnm(argv[at]);
    if (!image.ok()) {
      std::fprintf(stderr, "reading %s failed: %s\n", argv[at],
                   image.status().ToString().c_str());
      return 1;
    }
    ++at;
    walrus::QueryOptions options;
    options.top_k = 14;
    options.collect_trace = trace;
    walrus::WallTimer timer;
    walrus::Result<walrus::RemoteQueryResult> result =
        walrus::Status::Internal("unreachable");
    if (scene) {
      walrus::PixelRect rect;
      rect.x = std::atoi(argv[at]);
      rect.y = std::atoi(argv[at + 1]);
      rect.width = std::atoi(argv[at + 2]);
      rect.height = std::atoi(argv[at + 3]);
      at += 4;
      if (argc > at) options.epsilon = static_cast<float>(std::atof(argv[at]));
      result = client->SceneQuery(*image, rect, options);
    } else {
      if (argc > at) options.epsilon = static_cast<float>(std::atof(argv[at]));
      if (argc > at + 1) options.top_k = std::atoi(argv[at + 1]);
      result = client->Query(*image, options);
    }
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintMatches(*result, timer.ElapsedMillis());
    return 0;
  }

  return Usage();
}
