// Command-line front end for the WALRUS library, operating on directories
// of PPM images and persisted index files.
//
//   walrus_cli generate <dir> <count> [size]     synthesize a dataset
//   walrus_cli index <dir> <index_prefix> [paged]  index every *.ppm file
//   walrus_cli info <index_prefix>               print index statistics
//   walrus_cli query <index_prefix> <image.ppm> [epsilon] [top_k] [greedy]
//
// With `paged`, the index is written as a disk-resident page tree
// (<prefix>.ptree) and `query`/`info` open it without loading the tree into
// memory (pass the same prefix; both layouts are auto-detected).
//
// Example session:
//   ./build/examples/walrus_cli generate /tmp/db 100
//   ./build/examples/walrus_cli index /tmp/db /tmp/db/walrus
//   ./build/examples/walrus_cli query /tmp/db/walrus /tmp/db/img_3.ppm

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"
#include "image/pnm_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  walrus_cli generate <dir> <count> [size]\n"
               "  walrus_cli index <dir> <index_prefix> [paged]\n"
               "  walrus_cli info <index_prefix>\n"
               "  walrus_cli query <index_prefix> <image.ppm> [epsilon] "
               "[top_k] [greedy]\n");
  return 2;
}

std::vector<std::string> ListPpmFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) return files;
  while (dirent* entry = readdir(handle)) {
    std::string name = entry->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".ppm") {
      files.push_back(name);
    }
  }
  closedir(handle);
  std::sort(files.begin(), files.end());
  return files;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string dir = argv[2];
  ::mkdir(dir.c_str(), 0755);
  walrus::DatasetParams params;
  params.num_images = std::atoi(argv[3]);
  if (argc > 4) params.width = params.height = std::atoi(argv[4]);
  if (params.num_images <= 0 || params.width < 16) return Usage();
  std::vector<walrus::LabeledImage> dataset = walrus::GenerateDataset(params);
  walrus::Status status = walrus::SaveDataset(dataset, dir);
  if (!status.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d images (%dx%d) and labels.txt to %s\n",
              params.num_images, params.width, params.height, dir.c_str());
  return 0;
}

int CmdIndex(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string dir = argv[2];
  std::string prefix = argv[3];
  std::vector<std::string> files = ListPpmFiles(dir);
  if (files.empty()) {
    std::fprintf(stderr, "no .ppm files under %s\n", dir.c_str());
    return 1;
  }

  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;
  params.slide_step = 4;
  walrus::WalrusIndex index(params);

  std::vector<walrus::WalrusIndex::PendingImage> batch;
  uint64_t next_id = 0;
  for (const std::string& file : files) {
    auto image = walrus::ReadPnm(dir + "/" + file);
    if (!image.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", file.c_str(),
                   image.status().ToString().c_str());
      continue;
    }
    if (image->width() < params.min_window ||
        image->height() < params.min_window) {
      std::fprintf(stderr, "skipping %s: smaller than min window\n",
                   file.c_str());
      continue;
    }
    batch.push_back({next_id++, file, std::move(*image)});
  }

  walrus::WallTimer timer;
  walrus::Status status = index.AddImages(std::move(batch));
  if (!status.ok()) {
    std::fprintf(stderr, "indexing failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu images into %zu regions in %.2fs\n",
              index.ImageCount(), index.RegionCount(),
              timer.ElapsedSeconds());
  bool paged = argc > 4 && std::strcmp(argv[4], "paged") == 0;
  status = paged ? index.SavePaged(prefix) : index.Save(prefix);
  if (!status.ok()) {
    std::fprintf(stderr, "saving failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s.%s\n", prefix.c_str(),
              paged ? "{catalog,pmeta,ptree}" : "{catalog,index}");
  return 0;
}

/// Opens whichever layout exists at the prefix (paged preferred).
walrus::Result<walrus::WalrusIndex> OpenAny(const std::string& prefix) {
  auto paged = walrus::WalrusIndex::OpenPaged(prefix);
  if (paged.ok()) return paged;
  return walrus::WalrusIndex::Open(prefix);
}

int CmdInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto index = OpenAny(argv[2]);
  if (!index.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const walrus::WalrusParams& p = index->params();
  std::printf("images:        %zu\n", index->ImageCount());
  std::printf("regions:       %zu\n", index->RegionCount());
  if (index->is_paged()) {
    std::printf("tree height:   %d (on disk)\n",
                index->disk_tree()->height());
  } else {
    std::printf("tree height:   %d\n", index->tree().height());
  }
  std::printf("color space:   %s\n", walrus::ColorSpaceName(p.color_space));
  std::printf("signature:     %dx%d per channel (%d dims)\n",
              p.signature_size, p.signature_size, p.SignatureDim());
  std::printf("windows:       %d..%d step %d\n", p.min_window, p.max_window,
              p.slide_step);
  std::printf("cluster eps:   %.3f\n", p.cluster_epsilon);
  std::printf("signature kind: %s\n",
              p.signature_kind == walrus::RegionSignatureKind::kCentroid
                  ? "centroid"
                  : "bounding-box");
  std::printf("backend:       %s\n",
              index->is_paged() ? "paged (disk tree)" : "in-memory tree");
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto index = OpenAny(argv[2]);
  if (!index.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  auto image = walrus::ReadPnm(argv[3]);
  if (!image.ok()) {
    std::fprintf(stderr, "reading %s failed: %s\n", argv[3],
                 image.status().ToString().c_str());
    return 1;
  }
  walrus::QueryOptions options;
  options.epsilon = argc > 4 ? std::atof(argv[4]) : 0.085f;
  options.top_k = argc > 5 ? std::atoi(argv[5]) : 14;  // the paper's grids
  if (argc > 6 && std::strcmp(argv[6], "greedy") == 0) {
    options.matcher = walrus::MatcherKind::kGreedy;
  }

  walrus::QueryStats stats;
  auto matches = walrus::ExecuteQuery(*index, *image, options, &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 matches.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "query: %d regions, %.1f avg matches/region, %d candidate images, "
      "%.0f ms\n",
      stats.query_regions, stats.avg_regions_per_query_region,
      stats.distinct_images, stats.seconds * 1e3);
  for (size_t i = 0; i < matches->size(); ++i) {
    const walrus::QueryMatch& m = (*matches)[i];
    const walrus::ImageRecord* record =
        index->catalog().FindImage(m.image_id);
    std::printf("%2zu. %-24s similarity=%.3f (pairs=%d)\n", i + 1,
                record != nullptr ? record->name.c_str() : "?", m.similarity,
                m.matching_pairs);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "index") return CmdIndex(argc, argv);
  if (command == "info") return CmdInfo(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  return Usage();
}
