// walrusd entry point: serves a persisted WALRUS index (either layout) over
// the framed TCP protocol to walrus_client and library clients.
//
//   walrus_serve <index_prefix> [port] [workers] [max_pending]
//
// Example session (see also examples/walrus_client.cpp):
//   ./build/examples/walrus_cli generate /tmp/db 100
//   ./build/examples/walrus_cli index /tmp/db /tmp/db/walrus paged
//   ./build/examples/walrus_serve /tmp/db/walrus 7788 &
//   ./build/examples/walrus_client 127.0.0.1 7788 query /tmp/db/img_3.ppm
//   ./build/examples/walrus_client 127.0.0.1 7788 shutdown

#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "core/index.h"
#include "server/server.h"

namespace {

/// Opens whichever layout exists at the prefix (paged preferred: the paged
/// backend is the deployment shape walrusd is for).
walrus::Result<walrus::WalrusIndex> OpenAny(const std::string& prefix) {
  auto paged = walrus::WalrusIndex::OpenPaged(prefix);
  if (paged.ok()) return paged;
  return walrus::WalrusIndex::Open(prefix);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: walrus_serve <index_prefix> [port] [workers] "
                 "[max_pending]\n");
    return 2;
  }
  auto index = OpenAny(argv[1]);
  if (!index.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", argv[1],
                 index.status().ToString().c_str());
    return 1;
  }

  walrus::ServerOptions options;
  if (argc > 2) options.port = static_cast<uint16_t>(std::atoi(argv[2]));
  if (argc > 3) options.num_workers = std::atoi(argv[3]);
  if (argc > 4) options.max_pending = std::atoi(argv[4]);

  walrus::WalrusServer server(*index, options);
  walrus::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("walrusd: %zu images, %zu regions (%s backend) on port %u\n",
              index->ImageCount(), index->RegionCount(),
              index->is_paged() ? "paged" : "in-memory", server.port());
  std::printf("walrusd: send a SHUTDOWN request to stop\n");
  server.Wait();  // returns after a client SHUTDOWN, having drained

  walrus::ServerStats stats = server.Snapshot();
  std::printf(
      "walrusd: served %llu queries, %llu pings; p50 %.2f ms, p99 %.2f ms\n",
      static_cast<unsigned long long>(
          stats.requests_by_opcode[static_cast<int>(walrus::Opcode::kQuery)]),
      static_cast<unsigned long long>(
          stats.requests_by_opcode[static_cast<int>(walrus::Opcode::kPing)]),
      stats.latency_p50_ms, stats.latency_p99_ms);
  std::printf("walrusd: final metrics registry state:\n%s",
              walrus::RenderMetricsText(
                  walrus::MetricsRegistry::Global().Snapshot())
                  .c_str());
  return 0;
}
