// walrusd entry point: serves a persisted WALRUS index (either layout) over
// the framed TCP protocol to walrus_client and library clients.
//
//   walrus_serve <index_prefix> [port] [workers] [max_pending]
//                [--shards N] [--cache M] [--wal-dir DIR]
//                [--merge-threshold K] [--reactor-threads N]
//                [--max-conn-outbound-bytes B] [--drain-timeout-ms T]
//
// --shards N   repartition the index across N parallel shards (hash-routed
//              by image id; identical rankings, lower per-query latency)
// --reactor-threads N
//              epoll event-loop threads driving connection I/O (default:
//              hardware concurrency; connections pin round-robin)
// --max-conn-outbound-bytes B
//              per-connection backpressure budget: stop reading from a
//              connection once B response bytes are queued unwritten
//              (default 4 MiB)
// --drain-timeout-ms T
//              at shutdown, force-close connections whose queued responses
//              a slow peer has not read within T ms (default 5000)
// --cache M    LRU result cache of M entries in front of the query
//              pipeline (invalidated on mutation; METRICS shows hit ratio)
// --wal-dir DIR
//              serve a durable live engine rooted at DIR: online
//              INSERT_IMAGE / DELETE_IMAGE are accepted, logged to
//              DIR/wal.log before acknowledgment, and replayed on restart.
//              A fresh DIR is seeded from <index_prefix>; an existing DIR
//              wins over the prefix (pass the same prefix, it is ignored).
// --merge-threshold K
//              fold the in-memory delta into the on-disk base once it holds
//              K pending mutations (default 64; 0 = never automatically)
//
// Example session (see also examples/walrus_client.cpp):
//   ./build/examples/walrus_cli generate /tmp/db 100
//   ./build/examples/walrus_cli index /tmp/db /tmp/db/walrus paged
//   ./build/examples/walrus_serve /tmp/db/walrus 7788 --shards 4 --cache 256 &
//   ./build/examples/walrus_client 127.0.0.1 7788 query /tmp/db/img_3.ppm
//   ./build/examples/walrus_client 127.0.0.1 7788 shutdown

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "common/metrics.h"
#include "core/index.h"
#include "core/sharded_index.h"
#include "server/server.h"
#include "wal/live_index.h"

namespace {

/// Opens whichever layout exists at the prefix (paged preferred: the paged
/// backend is the deployment shape walrusd is for).
walrus::Result<walrus::WalrusIndex> OpenAny(const std::string& prefix) {
  auto paged = walrus::WalrusIndex::OpenPaged(prefix);
  if (paged.ok()) return paged;
  return walrus::WalrusIndex::Open(prefix);
}

}  // namespace

int main(int argc, char** argv) {
  // Split --flag value pairs from the positional args so the original
  // positional interface keeps working unchanged.
  int num_shards = 1;
  size_t cache_capacity = 0;
  std::string wal_dir;
  size_t merge_threshold = 64;
  int reactor_threads = 0;
  long long max_conn_outbound_bytes = -1;
  int drain_timeout_ms = -1;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      num_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--wal-dir") == 0 && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--merge-threshold") == 0 &&
               i + 1 < argc) {
      merge_threshold = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reactor-threads") == 0 &&
               i + 1 < argc) {
      reactor_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-conn-outbound-bytes") == 0 &&
               i + 1 < argc) {
      max_conn_outbound_bytes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0 &&
               i + 1 < argc) {
      drain_timeout_ms = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      // Reject unknown flags instead of letting them fall through as
      // positionals (a stray "--port 7788" would otherwise silently parse
      // 7788 as the worker count and try to spawn that many threads).
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      positional.clear();
      break;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || num_shards < 1) {
    std::fprintf(stderr,
                 "usage: walrus_serve <index_prefix> [port] [workers] "
                 "[max_pending] [--shards N] [--cache M] [--wal-dir DIR] "
                 "[--merge-threshold K] [--reactor-threads N] "
                 "[--max-conn-outbound-bytes B] [--drain-timeout-ms T]\n");
    return 2;
  }
  auto index = OpenAny(positional[0]);
  if (!index.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", positional[0],
                 index.status().ToString().c_str());
    return 1;
  }

  walrus::ServerOptions options;
  if (positional.size() > 1) {
    options.port = static_cast<uint16_t>(std::atoi(positional[1]));
  }
  if (positional.size() > 2) options.num_workers = std::atoi(positional[2]);
  if (positional.size() > 3) options.max_pending = std::atoi(positional[3]);
  options.reactor_threads = reactor_threads;
  if (max_conn_outbound_bytes >= 0) {
    options.max_conn_outbound_bytes =
        static_cast<size_t>(max_conn_outbound_bytes);
  }
  if (drain_timeout_ms >= 0) options.drain_timeout_ms = drain_timeout_ms;

  // The sharded engine repartitions the opened catalog in memory; a cache
  // without sharding still goes through ShardedIndex (num_shards=1 adds no
  // fan-out overhead: shard 0 runs on the calling thread).
  std::unique_ptr<walrus::QueryEngine> engine;
  std::unique_ptr<walrus::LiveIndex> live;
  if (!wal_dir.empty()) {
    if (::mkdir(wal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "mkdir %s failed: %s\n", wal_dir.c_str(),
                   std::strerror(errno));
      return 1;
    }
    walrus::LiveIndex::Options live_options;
    live_options.num_shards = num_shards;
    live_options.cache_capacity = cache_capacity;
    live_options.merge_threshold = merge_threshold;
    auto opened = walrus::LiveIndex::Open(wal_dir, index->params(),
                                          live_options, &*index);
    if (!opened.ok()) {
      std::fprintf(stderr, "open live index at %s failed: %s\n",
                   wal_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    live = std::move(*opened);
  } else if (num_shards > 1 || cache_capacity > 0) {
    walrus::ShardedIndex::Options shard_options;
    shard_options.num_shards = num_shards;
    shard_options.cache_capacity = cache_capacity;
    auto partitioned = walrus::ShardedIndex::Partition(*index, shard_options);
    if (!partitioned.ok()) {
      std::fprintf(stderr, "sharding failed: %s\n",
                   partitioned.status().ToString().c_str());
      return 1;
    }
    engine =
        std::make_unique<walrus::ShardedIndex>(std::move(*partitioned));
  } else {
    engine = std::make_unique<walrus::SingleIndexEngine>(*index);
  }

  const walrus::QueryEngine& query_engine =
      live != nullptr ? static_cast<const walrus::QueryEngine&>(*live)
                      : *engine;
  walrus::WalrusServer server(query_engine, live.get(), options);
  walrus::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "walrusd: %zu images, %zu regions (%s backend, %d shard(s), cache "
      "%zu) on port %u\n",
      query_engine.ImageCount(), query_engine.RegionCount(),
      live != nullptr ? "live" : (index->is_paged() ? "paged" : "in-memory"),
      num_shards, cache_capacity, server.port());
  if (live != nullptr) {
    std::printf("walrusd: live ingest on (wal dir %s, generation %llu, "
                "merge threshold %zu)\n",
                wal_dir.c_str(),
                static_cast<unsigned long long>(live->generation()),
                merge_threshold);
  }
  std::printf("walrusd: send a SHUTDOWN request to stop\n");
  server.Wait();  // returns after a client SHUTDOWN, having drained

  walrus::ServerStats stats = server.Snapshot();
  std::printf(
      "walrusd: served %llu queries, %llu pings; p50 %.2f ms, p99 %.2f ms\n",
      static_cast<unsigned long long>(
          stats.requests_by_opcode[static_cast<int>(walrus::Opcode::kQuery)]),
      static_cast<unsigned long long>(
          stats.requests_by_opcode[static_cast<int>(walrus::Opcode::kPing)]),
      stats.latency_p50_ms, stats.latency_p99_ms);
  for (size_t s = 0; s < stats.shard_probes.size(); ++s) {
    std::printf("walrusd: shard %zu probed %llu regions\n", s,
                static_cast<unsigned long long>(stats.shard_probes[s]));
  }
  if (stats.result_cache_capacity > 0) {
    uint64_t lookups = stats.result_cache_hits + stats.result_cache_misses;
    std::printf(
        "walrusd: result cache %llu/%llu hits (%.1f%%)\n",
        static_cast<unsigned long long>(stats.result_cache_hits),
        static_cast<unsigned long long>(lookups),
        lookups == 0
            ? 0.0
            : 100.0 * static_cast<double>(stats.result_cache_hits) /
                  static_cast<double>(lookups));
  }
  if (stats.has_ingest) {
    std::printf(
        "walrusd: ingested %llu inserts, %llu deletes, %llu merges; WAL "
        "%llu records / %llu bytes / %llu syncs\n",
        static_cast<unsigned long long>(stats.ingest.inserts),
        static_cast<unsigned long long>(stats.ingest.deletes),
        static_cast<unsigned long long>(stats.ingest.merges),
        static_cast<unsigned long long>(stats.ingest.wal_records),
        static_cast<unsigned long long>(stats.ingest.wal_bytes),
        static_cast<unsigned long long>(stats.ingest.wal_syncs));
  }
  std::printf("walrusd: final metrics registry state:\n%s",
              walrus::RenderMetricsText(
                  walrus::MetricsRegistry::Global().Snapshot())
                  .c_str());
  return 0;
}
