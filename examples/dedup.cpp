// Near-duplicate detection with WALRUS region matching.
//
// The paper claims robustness to resolution changes, dithering effects and
// color shifts (section 1.1). This example builds a database containing
// originals plus perturbed copies (noise, posterization, small shifts,
// rescales) and unrelated images, then uses a high similarity threshold tau
// (Definition 4.3) to flag duplicates of each original.
//
// Run: ./build/examples/dedup

#include <cstdio>
#include <string>
#include <vector>

#include "core/index.h"
#include "core/query.h"
#include "image/dataset.h"
#include "image/transform.h"

namespace {

struct Entry {
  uint64_t id;
  std::string name;
  uint64_t original_of;  // 0 if this is an original
};

}  // namespace

int main() {
  walrus::Rng rng(99);

  // Three original scenes.
  walrus::DatasetParams dp;
  dp.num_images = 3;
  dp.width = 96;
  dp.height = 96;
  dp.seed = 123;
  dp.noise_sigma = 0.0f;
  std::vector<walrus::LabeledImage> originals = walrus::GenerateDataset(dp);

  walrus::WalrusParams params;
  params.min_window = 16;
  params.max_window = 64;
  params.slide_step = 8;
  walrus::WalrusIndex index(params);

  std::vector<Entry> entries;
  std::vector<walrus::ImageF> images;
  uint64_t next_id = 1;

  for (const walrus::LabeledImage& original : originals) {
    uint64_t original_id = next_id;
    entries.push_back({next_id++, "original", 0});
    images.push_back(original.image);

    // Perturbed copies that should be detected as duplicates.
    entries.push_back({next_id++, "noisy", original_id});
    images.push_back(walrus::AddGaussianNoise(original.image, 0.02f, &rng));

    entries.push_back({next_id++, "posterized", original_id});
    images.push_back(walrus::Posterize(original.image, 16));

    entries.push_back({next_id++, "shifted", original_id});
    images.push_back(walrus::Translate(original.image, 4, 2, 0.5f));

    entries.push_back({next_id++, "rescaled", original_id});
    walrus::ImageF down = walrus::Resize(original.image, 72, 72,
                                         walrus::ResizeFilter::kBoxAverage);
    images.push_back(
        walrus::Resize(down, 96, 96, walrus::ResizeFilter::kBilinear));
  }

  for (size_t i = 0; i < images.size(); ++i) {
    walrus::Status status =
        index.AddImage(entries[i].id, entries[i].name, images[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "indexing failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("database: %zu images (%zu originals + perturbed copies)\n",
              images.size(), originals.size());

  // For each original, find everything with similarity above tau.
  walrus::QueryOptions options;
  options.epsilon = 0.06f;
  options.tau = 0.8;  // duplicates must share at least 80% matched area

  int true_hits = 0;
  int false_hits = 0;
  int expected = 0;
  for (size_t i = 0; i < images.size(); ++i) {
    if (entries[i].original_of != 0) continue;  // only query originals
    auto matches = walrus::ExecuteQuery(index, images[i], options);
    if (!matches.ok()) return 1;
    std::printf("duplicates of image %llu:\n",
                static_cast<unsigned long long>(entries[i].id));
    for (const walrus::QueryMatch& m : *matches) {
      if (m.image_id == entries[i].id) continue;
      const Entry* hit = nullptr;
      for (const Entry& e : entries) {
        if (e.id == m.image_id) hit = &e;
      }
      bool correct = hit != nullptr && hit->original_of == entries[i].id;
      std::printf("  image %llu (%s) similarity=%.3f %s\n",
                  static_cast<unsigned long long>(m.image_id),
                  hit != nullptr ? hit->name.c_str() : "?", m.similarity,
                  correct ? "" : " <-- UNEXPECTED");
      if (correct) {
        ++true_hits;
      } else {
        ++false_hits;
      }
    }
    expected += 4;  // four perturbed copies per original
  }
  std::printf("detected %d/%d perturbed copies, %d false positives\n",
              true_hits, expected, false_hits);
  return 0;
}
