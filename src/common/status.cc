#include "common/status.h"

#include "common/check.h"

namespace walrus {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status Annotate(const Status& status, const std::string& context) {
  if (status.ok()) return status;
  return Status(status.code(), context + ": " + status.message());
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  FailCheck("common/status.h", 0,
            "Check failed: accessed value of errored Result: " +
                status.ToString());
}

}  // namespace internal
}  // namespace walrus
