#include "common/trace.h"

#include <cstdio>

#include "common/check.h"

namespace walrus {

void QueryTrace::Begin(const std::string& name) {
  stack_.push_back({name, timer_.ElapsedSeconds(), {}});
}

void QueryTrace::End() {
  WALRUS_DCHECK(!stack_.empty());
  if (stack_.empty()) return;
  OpenSpan top = std::move(stack_.back());
  stack_.pop_back();
  TraceSpan span;
  span.name = std::move(top.name);
  span.start_seconds = top.start_seconds;
  span.duration_seconds = timer_.ElapsedSeconds() - top.start_seconds;
  span.children = std::move(top.children);
  if (stack_.empty()) {
    roots_.push_back(std::move(span));
  } else {
    stack_.back().children.push_back(std::move(span));
  }
}

double TraceCoverageSeconds(const std::vector<TraceSpan>& spans) {
  double total = 0.0;
  for (const TraceSpan& span : spans) total += span.duration_seconds;
  return total;
}

size_t TraceSpanCount(const std::vector<TraceSpan>& spans) {
  size_t count = spans.size();
  for (const TraceSpan& span : spans) count += TraceSpanCount(span.children);
  return count;
}

namespace {

void RenderSpans(const std::vector<TraceSpan>& spans, int depth,
                 std::string* out) {
  char buf[160];
  for (const TraceSpan& span : spans) {
    std::snprintf(buf, sizeof(buf), "%*s%-*s %9.3f ms\n", 2 * depth, "",
                  24 - 2 * depth, span.name.c_str(),
                  span.duration_seconds * 1e3);
    *out += buf;
    RenderSpans(span.children, depth + 1, out);
  }
}

}  // namespace

std::string RenderTraceText(const std::vector<TraceSpan>& spans) {
  std::string out;
  RenderSpans(spans, 0, &out);
  return out;
}

}  // namespace walrus
