#ifndef WALRUS_COMMON_STATUS_H_
#define WALRUS_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace walrus {

/// Error categories used across the library. Modeled after absl::StatusCode,
/// reduced to the cases this codebase actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kInternal = 7,
  kUnimplemented = 8,
  /// The service cannot take the request right now (e.g. the server's
  /// admission queue is full); retrying later may succeed.
  kUnavailable = 9,
  /// The request's deadline elapsed before it could be served.
  kDeadlineExceeded = 10,
};

/// One past the largest StatusCode value (wire-format validation).
inline constexpr int kNumStatusCodes = 11;

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or an error code plus message.
///
/// The library is exception-free (Google style); every operation that can
/// fail for reasons other than programmer error returns a Status or a
/// Result<T>. Programmer errors are caught with WALRUS_CHECK/WALRUS_DCHECK.
///
/// [[nodiscard]]: silently dropping an error return is the bug class this
/// type exists to prevent, so discarding any by-value Status is a compile
/// error (-Werror=unused-result). Call sites that genuinely cannot act on
/// a failure still have to name it and decide (typically log it) — there
/// is no sanctioned (void)-cast escape hatch; walrus_lint.py flags those.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Returns `status` with `context` prepended to its message ("<context>:
/// <message>"), preserving the code. OK statuses pass through unchanged.
/// Used to attach call-site context (which query of a batch, which request
/// of a connection) as an error propagates up.
Status Annotate(const Status& status, const std::string& context);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a checked fatal error. [[nodiscard]] like Status: a
/// discarded Result hides the error AND leaks the work that produced the
/// value.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status so call sites can `return value;`
  /// or `return Status::...;` directly (mirrors absl::StatusOr).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Aborts the process with `what` and the status text. Out-of-line so that
/// Result<T> stays header-only without pulling in logging.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!status_.ok()) internal::DieOnBadResultAccess(status_);
}

/// Propagates an error Status from an expression that yields a Status.
#define WALRUS_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::walrus::Status _walrus_status = (expr);       \
    if (!_walrus_status.ok()) return _walrus_status; \
  } while (0)

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define WALRUS_ASSIGN_OR_RETURN(lhs, expr)          \
  auto WALRUS_CONCAT_(_walrus_result, __LINE__) = (expr);            \
  if (!WALRUS_CONCAT_(_walrus_result, __LINE__).ok())                \
    return WALRUS_CONCAT_(_walrus_result, __LINE__).status();        \
  lhs = std::move(WALRUS_CONCAT_(_walrus_result, __LINE__)).value()

#define WALRUS_CONCAT_INNER_(a, b) a##b
#define WALRUS_CONCAT_(a, b) WALRUS_CONCAT_INNER_(a, b)

}  // namespace walrus

#endif  // WALRUS_COMMON_STATUS_H_
