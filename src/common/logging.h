#ifndef WALRUS_COMMON_LOGGING_H_
#define WALRUS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace walrus {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is emitted; messages below it are dropped.
/// Thread-compatible: set once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace walrus

#define WALRUS_LOG(severity)                                          \
  (::walrus::LogLevel::k##severity < ::walrus::GetLogLevel())         \
      ? (void)0                                                       \
      : ::walrus::internal::LogVoidify() &                            \
            ::walrus::internal::LogMessage(::walrus::LogLevel::k##severity, \
                                           __FILE__, __LINE__)        \
                .stream()

namespace walrus::internal {
/// Lowest-precedence operand that turns the stream expression into void for
/// the ternary in WALRUS_LOG.
struct LogVoidify {
  void operator&(std::ostream&) {}
};
}  // namespace walrus::internal

// The WALRUS_CHECK / WALRUS_DCHECK contract macros live in common/check.h.

#endif  // WALRUS_COMMON_LOGGING_H_
