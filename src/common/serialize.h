#ifndef WALRUS_COMMON_SERIALIZE_H_
#define WALRUS_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace walrus {

/// Appends fixed-width little-endian encodings to a byte buffer. All on-disk
/// structures (catalog, R*-tree pages, signatures) are built from these
/// primitives so the format is platform independent.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutFloat(float v);
  void PutDouble(double v);
  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s);
  /// Length-prefixed (u32) float vector.
  void PutFloatVector(const std::vector<float>& v);
  /// Raw bytes, no length prefix.
  void PutBytes(const void* data, size_t n);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads the encodings produced by BinaryWriter. Never reads past the end:
/// each getter returns Status/Result and fails with Corruption on truncation.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  [[nodiscard]] Result<uint8_t> GetU8();
  [[nodiscard]] Result<uint16_t> GetU16();
  [[nodiscard]] Result<uint32_t> GetU32();
  [[nodiscard]] Result<uint64_t> GetU64();
  [[nodiscard]] Result<int32_t> GetI32();
  [[nodiscard]] Result<int64_t> GetI64();
  [[nodiscard]] Result<float> GetFloat();
  [[nodiscard]] Result<double> GetDouble();
  [[nodiscard]] Result<std::string> GetString();
  [[nodiscard]] Result<std::vector<float>> GetFloatVector();
  /// Copies `n` raw bytes into `out`.
  [[nodiscard]] Status GetBytes(void* out, size_t n);

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Writes `bytes` to `path`, replacing any existing file.
[[nodiscard]] Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes);

/// Reads the whole file at `path`.
[[nodiscard]] Result<std::vector<uint8_t>> ReadFileBytes(
    const std::string& path);

}  // namespace walrus

#endif  // WALRUS_COMMON_SERIALIZE_H_
