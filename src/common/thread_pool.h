#ifndef WALRUS_COMMON_THREAD_POOL_H_
#define WALRUS_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace walrus {

/// Fixed-size worker pool for embarrassingly parallel batch work (parallel
/// region extraction during index builds). Tasks may not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all queued work, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task) WALRUS_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing.
  void Wait() WALRUS_EXCLUDES(mutex_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, at least 1.
  static int DefaultThreads();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop() WALRUS_EXCLUDES(mutex_);
  /// True when no task is queued or executing.
  bool IdleLocked() const WALRUS_REQUIRES(mutex_) {
    return queue_.empty() && in_flight_ == 0;
  }

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ WALRUS_GUARDED_BY(mutex_);
  int in_flight_ WALRUS_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ WALRUS_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace walrus

#endif  // WALRUS_COMMON_THREAD_POOL_H_
