#ifndef WALRUS_COMMON_THREAD_POOL_H_
#define WALRUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace walrus {

/// Fixed-size worker pool for embarrassingly parallel batch work (parallel
/// region extraction during index builds). Tasks may not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all queued work, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Must not be called after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, at least 1.
  static int DefaultThreads();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace walrus

#endif  // WALRUS_COMMON_THREAD_POOL_H_
