#ifndef WALRUS_COMMON_SOCKET_H_
#define WALRUS_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace walrus {

/// Owning file-descriptor handle (sockets). Closes on destruction; movable,
/// not copyable. -1 means "no descriptor".
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.Release();
    }
    return *this;
  }
  ~UniqueFd() { Close(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a TCP listening socket bound to `host:port` (SO_REUSEADDR, the
/// given backlog). Port 0 binds an ephemeral port; read it back with
/// SocketLocalPort.
[[nodiscard]] Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog = 64);

/// Accepts one connection from `listen_fd`, retrying on EINTR. Fails with
/// IOError when the listening socket has been shut down or closed.
[[nodiscard]] Result<UniqueFd> AcceptTcp(int listen_fd);

/// Opens a blocking TCP connection to `host:port` (numeric IPv4 host).
[[nodiscard]] Result<UniqueFd> ConnectTcp(const std::string& host,
                                           uint16_t port);

/// The port a bound socket actually listens on (resolves port 0 binds).
[[nodiscard]] Result<uint16_t> SocketLocalPort(int fd);

/// Reads exactly `n` bytes, looping over short reads and EINTR. An orderly
/// peer close before any byte of this call surfaces as NotFound ("connection
/// closed"); a close mid-read or any other failure is IOError.
[[nodiscard]] Status ReadFull(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes, looping over short writes and EINTR. Uses
/// MSG_NOSIGNAL so a dead peer yields IOError instead of SIGPIPE.
[[nodiscard]] Status WriteFull(int fd, const void* buf, size_t n);

/// shutdown(2) the read side: unblocks a ReadFull blocked on this socket
/// (it returns the connection-closed status). Used for graceful teardown.
void ShutdownRead(int fd);

// ---- Nonblocking primitives (the epoll reactor's I/O surface) -----------

/// Puts the descriptor into O_NONBLOCK mode. Every socket owned by a
/// reactor event loop goes through this before registration.
[[nodiscard]] Status SetNonBlocking(int fd);

/// Nonblocking read of at most `n` bytes. Returns the byte count (> 0),
/// or 0 when the socket has no data right now (EAGAIN/EWOULDBLOCK -- wait
/// for the next EPOLLIN). An orderly peer close surfaces as NotFound
/// ("connection closed"), any other failure as IOError. Retries EINTR.
[[nodiscard]] Result<size_t> ReadSome(int fd, void* buf, size_t n);

/// Forward declaration-free iovec mirror for scatter-gather writes, so
/// this header does not leak <sys/uio.h> into every include site. Layout
/// matches struct iovec and is converted internally.
struct IoSlice {
  const void* data = nullptr;
  size_t size = 0;
};

/// WritevSome submits at most this many slices per call (callers with more
/// queued frames simply come back around -- the syscall is already
/// amortized well past this point).
inline constexpr int kMaxWritevSlices = 64;

/// Nonblocking scatter-gather write (sendmsg with MSG_NOSIGNAL): writes
/// as much of the `count` slices as the socket accepts (slices beyond
/// kMaxWritevSlices wait for the next call), returning the byte count
/// (possibly 0 when the send buffer is full -- wait for EPOLLOUT). A dead
/// peer yields IOError, never SIGPIPE. Retries EINTR.
[[nodiscard]] Result<size_t> WritevSome(int fd, const IoSlice* slices,
                                        int count);

}  // namespace walrus

#endif  // WALRUS_COMMON_SOCKET_H_
