#ifndef WALRUS_COMMON_DEFAULT_INIT_ALLOCATOR_H_
#define WALRUS_COMMON_DEFAULT_INIT_ALLOCATOR_H_

#include <memory>
#include <utility>

namespace walrus {

/// Allocator adaptor that default-initializes instead of value-initializing
/// on unparameterized construct() calls. For trivial element types this
/// skips the zero-fill that std::vector<T>(n) performs -- measurable when a
/// sliding-window signature grid allocates hundreds of megabytes that are
/// fully overwritten immediately (see wavelet/sliding_window.cc).
template <typename T, typename Alloc = std::allocator<T>>
class DefaultInitAllocator : public Alloc {
  using Traits = std::allocator_traits<Alloc>;

 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename Traits::template rebind_alloc<U>>;
  };

  using Alloc::Alloc;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;  // default-init: no zero fill for PODs
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    Traits::construct(static_cast<Alloc&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace walrus

#endif  // WALRUS_COMMON_DEFAULT_INIT_ALLOCATOR_H_
