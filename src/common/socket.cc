#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace walrus {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

void UniqueFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  WALRUS_RETURN_IF_ERROR(MakeAddr(host, port, &addr));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(Errno("bind " + host + ":" + std::to_string(port)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError(Errno("listen"));
  }
  return fd;
}

Result<UniqueFd> AcceptTcp(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return UniqueFd(fd);
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("accept"));
  }
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  sockaddr_in addr;
  WALRUS_RETURN_IF_ERROR(MakeAddr(host, port, &addr));
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return Status::IOError(
        Errno("connect " + host + ":" + std::to_string(port)));
  }
}

Result<uint16_t> SocketLocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status ReadFull(int fd, void* buf, size_t n) {
  uint8_t* at = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::recv(fd, at + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      if (done == 0) return Status::NotFound("connection closed");
      return Status::IOError("connection closed mid-read (" +
                             std::to_string(done) + " of " +
                             std::to_string(n) + " bytes)");
    }
    if (errno == EINTR) continue;
    return Status::IOError(Errno("recv"));
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const uint8_t* at = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::send(fd, at + done, n - done, MSG_NOSIGNAL);
    if (put > 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IOError(Errno("fcntl(F_GETFL)"));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError(Errno("fcntl(F_SETFL, O_NONBLOCK)"));
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, void* buf, size_t n) {
  for (;;) {
    ssize_t got = ::recv(fd, buf, n, 0);
    if (got > 0) return static_cast<size_t>(got);
    if (got == 0) return Status::NotFound("connection closed");
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    if (errno == EINTR) continue;
    return Status::IOError(Errno("recv"));
  }
}

Result<size_t> WritevSome(int fd, const IoSlice* slices, int count) {
  // IoSlice mirrors iovec's layout on purpose, but iovec's base pointer is
  // non-const, so build the kernel-facing array explicitly.
  iovec iov[kMaxWritevSlices];
  if (count > kMaxWritevSlices) count = kMaxWritevSlices;
  for (int i = 0; i < count; ++i) {
    iov[i].iov_base = const_cast<void*>(slices[i].data);
    iov[i].iov_len = slices[i].size;
  }
  msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<size_t>(count);
  for (;;) {
    ssize_t put = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (put >= 0) return static_cast<size_t>(put);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    if (errno == EINTR) continue;
    return Status::IOError(Errno("sendmsg"));
  }
}

}  // namespace walrus
