#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace walrus {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

uint32_t Rng::NextBounded(uint32_t bound) {
  WALRUS_DCHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = -bound % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  WALRUS_DCHECK(lo <= hi);
  return lo + static_cast<int>(
                  NextBounded(static_cast<uint32_t>(hi - lo) + 1u));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

float Rng::NextFloat() {
  return static_cast<float>(NextU32() >> 8) * (1.0f / 16777216.0f);
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

}  // namespace walrus
