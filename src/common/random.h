#ifndef WALRUS_COMMON_RANDOM_H_
#define WALRUS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace walrus {

/// Deterministic PCG32 pseudo-random generator (O'Neill, pcg-random.org,
/// XSH-RR variant). Used everywhere instead of std::mt19937 so that synthetic
/// datasets and tests reproduce bit-identically across platforms and standard
/// library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
               uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  uint32_t NextU32();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint32_t NextBounded(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second variate).
  double NextGaussian();

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Random permutation index sequence [0, n).
  std::vector<int> Permutation(int n);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(static_cast<uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace walrus

#endif  // WALRUS_COMMON_RANDOM_H_
