#include "common/serialize.h"

#include <cstdio>

namespace walrus {

void BinaryWriter::PutU8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::PutU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void BinaryWriter::PutFloatVector(const std::vector<float>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (float f : v) PutFloat(f);
}

void BinaryWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

Status BinaryReader::Need(size_t n) {
  if (pos_ + n > size_) {
    return Status::Corruption("binary reader: truncated input (need " +
                              std::to_string(n) + " bytes at offset " +
                              std::to_string(pos_) + ", have " +
                              std::to_string(size_ - pos_) + ")");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  WALRUS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> BinaryReader::GetU16() {
  WALRUS_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BinaryReader::GetU32() {
  WALRUS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  WALRUS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int32_t> BinaryReader::GetI32() {
  WALRUS_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> BinaryReader::GetI64() {
  WALRUS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<float> BinaryReader::GetFloat() {
  WALRUS_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> BinaryReader::GetDouble() {
  WALRUS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  WALRUS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  WALRUS_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<std::vector<float>> BinaryReader::GetFloatVector() {
  WALRUS_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  WALRUS_RETURN_IF_ERROR(Need(static_cast<size_t>(n) * 4));
  std::vector<float> v(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t bits = 0;
    for (int b = 0; b < 4; ++b) {
      bits |= static_cast<uint32_t>(data_[pos_ + b]) << (8 * b);
    }
    std::memcpy(&v[i], &bits, sizeof(float));
    pos_ += 4;
  }
  return v;
}

Status BinaryReader::GetBytes(void* out, size_t n) {
  WALRUS_RETURN_IF_ERROR(Need(n));
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t got = size == 0 ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) return Status::IOError("short read: " + path);
  return bytes;
}

}  // namespace walrus
