#ifndef WALRUS_COMMON_CHECK_H_
#define WALRUS_COMMON_CHECK_H_

#include <memory>
#include <sstream>
#include <string>

/// Contract-checking macro family. WALRUS_CHECK* are always on and guard API
/// contracts and structural invariants; WALRUS_DCHECK* are debug-only twins
/// for hot paths and compile out (operands are not evaluated) under NDEBUG.
///
/// All macros are streamable for extra context and report file:line plus the
/// failed expression; the comparison forms also report both operand values:
///
///   WALRUS_CHECK(ptr != nullptr) << "while loading " << path;
///   WALRUS_CHECK_EQ(rect.dim(), dim_);   // "Check failed: ... (3 vs. 4)"
///
/// A failed check prints to stderr and aborts the process: checks are for
/// programmer errors, never for fallible operations (those return Status).

namespace walrus {

/// True when expensive structural validation (deep tree walks after
/// mutations) should run. Defaults to the WALRUS_DEEP_CHECKS environment
/// variable (any non-empty value other than "0" enables); tests may override
/// programmatically. Thread-compatible: set once at startup.
bool DeepChecksEnabled();
void SetDeepChecks(bool enabled);

namespace internal {

/// Prints "<file>:<line>: <message>" to stderr and aborts.
[[noreturn]] void FailCheck(const char* file, int line,
                            const std::string& message);

/// Accumulates one check-failure message; aborts on destruction at the end
/// of the full expression, after any streamed context.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* message);
  [[noreturn]] ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Lowest-precedence operand that turns the streamed failure expression into
/// void for the ternary in WALRUS_CHECK.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

/// Widens character types so failure messages print numbers, not glyphs.
template <typename T>
const T& CheckOperand(const T& value) {
  return value;
}
inline int CheckOperand(char value) { return value; }
inline int CheckOperand(signed char value) { return value; }
inline unsigned int CheckOperand(unsigned char value) { return value; }

/// Builds "Check failed: <expr> (<a> vs. <b>) " for a failed comparison.
template <typename A, typename B>
std::unique_ptr<std::string> MakeCheckOpString(const A& a, const B& b,
                                               const char* expr) {
  std::ostringstream os;
  os << "Check failed: " << expr << " (" << CheckOperand(a) << " vs. "
     << CheckOperand(b) << ") ";
  return std::make_unique<std::string>(os.str());
}

/// One comparison helper per operator: null on success, message on failure.
/// Operands are evaluated exactly once.
#define WALRUS_DEFINE_CHECK_OP(name, op)                           \
  template <typename A, typename B>                                \
  std::unique_ptr<std::string> Check##name(const A& a, const B& b, \
                                           const char* expr) {     \
    if (a op b) return nullptr;                                    \
    return MakeCheckOpString(a, b, expr);                          \
  }
WALRUS_DEFINE_CHECK_OP(EQ, ==)
WALRUS_DEFINE_CHECK_OP(NE, !=)
WALRUS_DEFINE_CHECK_OP(LT, <)
WALRUS_DEFINE_CHECK_OP(LE, <=)
WALRUS_DEFINE_CHECK_OP(GT, >)
WALRUS_DEFINE_CHECK_OP(GE, >=)
#undef WALRUS_DEFINE_CHECK_OP

}  // namespace internal
}  // namespace walrus

/// Fatal unless `condition` holds; always on, use for API contract checks.
#define WALRUS_CHECK(condition)                                          \
  (condition) ? (void)0                                                  \
              : ::walrus::internal::CheckVoidify() &                     \
                    ::walrus::internal::CheckFailure(                    \
                        __FILE__, __LINE__,                              \
                        "Check failed: " #condition " ")                 \
                        .stream()

/// Comparison checks that report both operand values on failure. The `while`
/// only runs on failure, and its body aborts, so it never loops.
#define WALRUS_CHECK_OP(name, op, a, b)                               \
  while (auto _walrus_check_failed = ::walrus::internal::Check##name( \
             (a), (b), #a " " #op " " #b))                            \
  ::walrus::internal::CheckFailure(__FILE__, __LINE__,                \
                                   _walrus_check_failed->c_str())     \
      .stream()

#define WALRUS_CHECK_EQ(a, b) WALRUS_CHECK_OP(EQ, ==, a, b)
#define WALRUS_CHECK_NE(a, b) WALRUS_CHECK_OP(NE, !=, a, b)
#define WALRUS_CHECK_LT(a, b) WALRUS_CHECK_OP(LT, <, a, b)
#define WALRUS_CHECK_LE(a, b) WALRUS_CHECK_OP(LE, <=, a, b)
#define WALRUS_CHECK_GT(a, b) WALRUS_CHECK_OP(GT, >, a, b)
#define WALRUS_CHECK_GE(a, b) WALRUS_CHECK_OP(GE, >=, a, b)

/// Debug-only checks for hot paths. Under NDEBUG the dead `while (false)`
/// keeps operands type-checked but never evaluated.
#ifdef NDEBUG
#define WALRUS_DCHECK(condition) \
  while (false) WALRUS_CHECK(condition)
#define WALRUS_DCHECK_EQ(a, b) \
  while (false) WALRUS_CHECK_EQ(a, b)
#define WALRUS_DCHECK_NE(a, b) \
  while (false) WALRUS_CHECK_NE(a, b)
#define WALRUS_DCHECK_LT(a, b) \
  while (false) WALRUS_CHECK_LT(a, b)
#define WALRUS_DCHECK_LE(a, b) \
  while (false) WALRUS_CHECK_LE(a, b)
#define WALRUS_DCHECK_GT(a, b) \
  while (false) WALRUS_CHECK_GT(a, b)
#define WALRUS_DCHECK_GE(a, b) \
  while (false) WALRUS_CHECK_GE(a, b)
#else
#define WALRUS_DCHECK(condition) WALRUS_CHECK(condition)
#define WALRUS_DCHECK_EQ(a, b) WALRUS_CHECK_EQ(a, b)
#define WALRUS_DCHECK_NE(a, b) WALRUS_CHECK_NE(a, b)
#define WALRUS_DCHECK_LT(a, b) WALRUS_CHECK_LT(a, b)
#define WALRUS_DCHECK_LE(a, b) WALRUS_CHECK_LE(a, b)
#define WALRUS_DCHECK_GT(a, b) WALRUS_CHECK_GT(a, b)
#define WALRUS_DCHECK_GE(a, b) WALRUS_CHECK_GE(a, b)
#endif

#endif  // WALRUS_COMMON_CHECK_H_
