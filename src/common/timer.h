#ifndef WALRUS_COMMON_TIMER_H_
#define WALRUS_COMMON_TIMER_H_

#include <chrono>

namespace walrus {

/// Monotonic wall-clock stopwatch used by benchmark harnesses and query
/// response-time reporting.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace walrus

#endif  // WALRUS_COMMON_TIMER_H_
