#ifndef WALRUS_COMMON_CRC32_H_
#define WALRUS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace walrus {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `data`. Used for
/// page-level integrity checksums in the storage layer and frame trailers
/// in the wire protocol.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Incremental variant (zlib-style): start from 0, feed chunks in order;
/// Crc32Extend(Crc32Extend(0, a), b) == Crc32(a ++ b). Lets callers checksum
/// scattered buffers (frame header + body) without a join copy.
uint32_t Crc32Extend(uint32_t crc, const uint8_t* data, size_t size);

/// CRC-32 of bytes [begin, end) of `buf`; bounds are checked.
uint32_t Crc32(const std::vector<uint8_t>& buf, size_t begin, size_t end);

}  // namespace walrus

#endif  // WALRUS_COMMON_CRC32_H_
