#ifndef WALRUS_COMMON_CRC32_H_
#define WALRUS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace walrus {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `data`. Used for
/// page-level integrity checksums in the storage layer.
uint32_t Crc32(const uint8_t* data, size_t size);

/// CRC-32 of bytes [begin, end) of `buf`; bounds are checked.
uint32_t Crc32(const std::vector<uint8_t>& buf, size_t begin, size_t end);

}  // namespace walrus

#endif  // WALRUS_COMMON_CRC32_H_
