#ifndef WALRUS_COMMON_METRICS_H_
#define WALRUS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace walrus {

/// Process-global observability registry (DESIGN.md section 10).
///
/// Every subsystem on the query path registers named counters, gauges, and
/// fixed-bucket histograms here; the registry is what the walrusd METRICS
/// opcode, the benchmarks, and operators read. Naming scheme:
/// `walrus.<subsystem>.<what>[_<unit>]`, e.g. `walrus.rstar.nodes_visited`
/// or `walrus.query.probe_seconds`.
///
/// Hot-path discipline: metric objects live for the life of the process
/// (the registry never deletes them), so call sites cache the pointer once
/// in a function-local static and then mutate a relaxed atomic -- no lock,
/// no lookup, no allocation per event. Registration itself takes a mutex
/// (slow path, once per call site).

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, cache sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// overflow bucket counts the rest. Observe() is lock-free (relaxed atomic
/// adds), so it is safe from any number of threads concurrently with
/// snapshots; a snapshot may interleave with in-flight observations but
/// every completed observation is eventually visible and totals only grow.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t TotalCount() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i in [0, bounds().size()]; last = overflow).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  /// Sum of observed values, stored as a double bit-cast into u64 and
  /// updated by CAS (portable lock-free double accumulation).
  std::atomic<uint64_t> sum_bits_{0};
};

/// `count` exponential bucket upper bounds: start, start*factor, ... Used
/// for latency histograms (e.g. 1us..~1min with factor 2).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

enum class MetricType : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// One metric's state at snapshot time (also the wire/exposition unit).
struct MetricValue {
  std::string name;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;  // kCounter
  int64_t gauge = 0;     // kGauge
  // kHistogram:
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (overflow last)
  uint64_t count = 0;
  double sum = 0.0;
};

/// Consistent-enough view of the whole registry: each metric is read
/// atomically field-by-field; metrics registered after the snapshot began
/// may be missing. Sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// The snapshotted metric named `name`, or nullptr.
  const MetricValue* Find(const std::string& name) const;
};

/// Upper edge of the bucket holding quantile `q` in [0,1] of a histogram
/// MetricValue (0 when empty). Bucket-resolution answer, like the server's
/// latency histogram.
double HistogramQuantile(const MetricValue& histogram, double q);

/// Prometheus-style text exposition ("name{} value", histograms as
/// cumulative `_bucket{le=...}` lines plus `_count`/`_sum`).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

/// JSON exposition: an array of metric objects.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  /// The process-global registry (leaked singleton: metric pointers stay
  /// valid through static destruction).
  static MetricsRegistry& Global();

  /// Finds or creates the metric with this name. The returned pointer is
  /// stable for the life of the registry. Registering the same name as two
  /// different types is a contract violation (checked).
  Counter* GetCounter(const std::string& name) WALRUS_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) WALRUS_EXCLUDES(mutex_);
  /// On first registration the histogram uses `bounds`; later calls return
  /// the existing histogram regardless of the bounds passed.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds) WALRUS_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const WALRUS_EXCLUDES(mutex_);

  /// Zeroes every metric in place (pointers stay valid). Test/bench hook;
  /// production readers should diff snapshots instead.
  void Reset() WALRUS_EXCLUDES(mutex_);

 private:
  struct Entry {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// The registration slot for `name` (created empty on first use).
  Entry& EntryLocked(const std::string& name) WALRUS_REQUIRES(mutex_) {
    return entries_[name];
  }

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ WALRUS_GUARDED_BY(mutex_);
};

/// Records seconds elapsed between construction and destruction into a
/// histogram (null-safe: a null histogram disables the timer).
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram);
  ~ScopedHistogramTimer();

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

}  // namespace walrus

#endif  // WALRUS_COMMON_METRICS_H_
