#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace walrus {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// JSON string escaping for metric names (names are plain identifiers, but
/// the renderer must not emit malformed JSON for any input).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  WALRUS_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    WALRUS_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  // upper_bound gives the first bound strictly greater; bucket i counts
  // values <= bounds[i], so step back onto an exact bound hit.
  if (bucket > 0 && value == bounds_[bucket - 1]) --bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  uint64_t desired;
  do {
    desired = DoubleBits(BitsDouble(observed) + value);
  } while (!sum_bits_.compare_exchange_weak(observed, desired,
                                            std::memory_order_relaxed));
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  WALRUS_CHECK_GT(start, 0.0);
  WALRUS_CHECK_GT(factor, 1.0);
  WALRUS_CHECK_GT(count, 0);
  std::vector<double> bounds(count);
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds[i] = edge;
    edge *= factor;
  }
  return bounds;
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double HistogramQuantile(const MetricValue& histogram, double q) {
  uint64_t total = 0;
  for (uint64_t c : histogram.bucket_counts) total += c;
  if (total == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    seen += histogram.bucket_counts[i];
    if (seen > rank) {
      return i < histogram.bounds.size() ? histogram.bounds[i]
                                         : histogram.bounds.back();
    }
  }
  return histogram.bounds.back();
}

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[160];
  for (const MetricValue& m : snapshot.metrics) {
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", m.name.c_str(),
                      m.counter);
        out += buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", m.name.c_str(),
                      m.gauge);
        out += buf;
        break;
      case MetricType::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.bucket_counts.size(); ++i) {
          cumulative += m.bucket_counts[i];
          std::string le = i < m.bounds.size() ? FormatDouble(m.bounds[i])
                                               : std::string("+Inf");
          std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64
                        "\n",
                        m.name.c_str(), le.c_str(), cumulative);
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n",
                      m.name.c_str(), m.count);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_sum %s\n", m.name.c_str(),
                      FormatDouble(m.sum).c_str());
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "[";
  char buf[160];
  for (size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const MetricValue& m = snapshot.metrics[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(m.name) + "\",";
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "\"type\":\"counter\",\"value\":%" PRIu64 "}",
                      m.counter);
        out += buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf),
                      "\"type\":\"gauge\",\"value\":%" PRId64 "}", m.gauge);
        out += buf;
        break;
      case MetricType::kHistogram: {
        out += "\"type\":\"histogram\",\"bounds\":[";
        for (size_t b = 0; b < m.bounds.size(); ++b) {
          if (b > 0) out += ",";
          out += FormatDouble(m.bounds[b]);
        }
        out += "],\"buckets\":[";
        for (size_t b = 0; b < m.bucket_counts.size(); ++b) {
          if (b > 0) out += ",";
          std::snprintf(buf, sizeof(buf), "%" PRIu64, m.bucket_counts[b]);
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "],\"count\":%" PRIu64 ",\"sum\":%s}",
                      m.count, FormatDouble(m.sum).c_str());
        out += buf;
        break;
      }
    }
  }
  out += "]";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& entry = EntryLocked(name);
  if (entry.counter == nullptr) {
    WALRUS_CHECK(entry.gauge == nullptr && entry.histogram == nullptr);
    entry.type = MetricType::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& entry = EntryLocked(name);
  if (entry.gauge == nullptr) {
    WALRUS_CHECK(entry.counter == nullptr && entry.histogram == nullptr);
    entry.type = MetricType::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(mutex_);
  Entry& entry = EntryLocked(name);
  if (entry.histogram == nullptr) {
    WALRUS_CHECK(entry.counter == nullptr && entry.gauge == nullptr);
    entry.type = MetricType::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricValue value;
    value.name = name;
    value.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        value.counter = entry.counter->Value();
        break;
      case MetricType::kGauge:
        value.gauge = entry.gauge->Value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        value.bounds = h.bounds();
        value.bucket_counts.resize(value.bounds.size() + 1);
        for (size_t i = 0; i < value.bucket_counts.size(); ++i) {
          value.bucket_counts[i] = h.BucketCount(i);
        }
        value.count = h.TotalCount();
        value.sum = h.Sum();
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;  // std::map iterates sorted by name
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

ScopedHistogramTimer::ScopedHistogramTimer(Histogram* histogram)
    : histogram_(histogram), start_ns_(histogram ? NowNanos() : 0) {}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<double>(NowNanos() - start_ns_) * 1e-9);
  }
}

}  // namespace walrus
