#include "common/crc32.h"

#include <array>

#include "common/check.h"

namespace walrus {
namespace {

/// Byte-at-a-time table for the reflected IEEE polynomial 0xEDB88320.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Extend(0, data, size);
}

uint32_t Crc32Extend(uint32_t crc, const uint8_t* data, size_t size) {
  const std::array<uint32_t, 256>& table = Table();
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& buf, size_t begin, size_t end) {
  WALRUS_CHECK_LE(begin, end);
  WALRUS_CHECK_LE(end, buf.size());
  return Crc32(buf.data() + begin, end - begin);
}

}  // namespace walrus
