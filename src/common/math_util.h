#ifndef WALRUS_COMMON_MATH_UTIL_H_
#define WALRUS_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace walrus {

/// True iff v is a power of two (v > 0).
constexpr bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
constexpr int Log2Floor(uint32_t v) {
  int r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// Smallest power of two >= v (v >= 1).
constexpr uint32_t NextPowerOfTwo(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Clamps x into [lo, hi].
template <typename T>
constexpr T Clamp(T x, T lo, T hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Squared Euclidean distance between equal-length vectors.
float SquaredL2(const std::vector<float>& a, const std::vector<float>& b);

/// Euclidean distance between equal-length vectors.
float L2Distance(const std::vector<float>& a, const std::vector<float>& b);

/// L1 (Manhattan) distance between equal-length vectors.
float L1Distance(const std::vector<float>& a, const std::vector<float>& b);

/// L-infinity (Chebyshev) distance between equal-length vectors.
float LInfDistance(const std::vector<float>& a, const std::vector<float>& b);

/// Mean of `values`; 0 for an empty vector.
double Mean(const std::vector<float>& values);

/// Population variance of `values`; 0 for fewer than one element.
double Variance(const std::vector<float>& values);

}  // namespace walrus

#endif  // WALRUS_COMMON_MATH_UTIL_H_
