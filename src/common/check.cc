#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace walrus {
namespace {

bool DeepChecksFromEnv() {
  const char* env = std::getenv("WALRUS_DEEP_CHECKS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

bool g_deep_checks = DeepChecksFromEnv();

}  // namespace

bool DeepChecksEnabled() { return g_deep_checks; }

void SetDeepChecks(bool enabled) { g_deep_checks = enabled; }

namespace internal {

void FailCheck(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailure::CheckFailure(const char* file, int line, const char* message)
    : file_(file), line_(line) {
  stream_ << message;
}

CheckFailure::~CheckFailure() { FailCheck(file_, line_, stream_.str()); }

}  // namespace internal
}  // namespace walrus
