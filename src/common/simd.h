#ifndef WALRUS_COMMON_SIMD_H_
#define WALRUS_COMMON_SIMD_H_

#include <cstdint>

namespace walrus {
namespace simd {

/// Runtime-dispatched similarity kernels (DESIGN.md section 12).
///
/// Every stage of the WALRUS funnel bottoms out in small dense float loops:
/// R*-tree rect-overlap tests and MinSquaredDistance during probes, squared
/// L2 distances in the centroid match (Definition 4.1), CF centroid
/// distances in the BIRCH descent, and the Haar averaging/differencing
/// butterfly in the sliding-window DP. The kernels below implement those
/// loops once per ISA level (scalar / SSE2 / AVX2) and dispatch at runtime.
///
/// Exactness contract: for identical inputs, every kernel returns
/// BIT-IDENTICAL results at every ISA level. Two mechanisms guarantee this:
///
///  1. Batch kernels parallelize ACROSS entries (SoA lanes), never across
///     the accumulation dimension: each lane reproduces the scalar
///     reference's floating-point operations in the scalar reference's
///     order, so per-entry sums round identically.
///  2. Pair kernels vectorize only the element-independent work (subtract,
///     scale, square -- each IEEE operation rounds identically whether
///     executed in a vector lane or a scalar register) and keep the final
///     reduction a sequential scalar loop in ascending index order.
///
/// Predicate kernels (intersects / contains) are pure comparisons and are
/// trivially exact. Because dispatch can never change results, golden
/// retrieval output is byte-identical with SIMD on, off, or forced to any
/// level (verified by the kernel exactness suite and the golden regression
/// run in CI with WALRUS_SIMD=scalar).
enum class IsaLevel : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable name ("scalar", "sse2", "avx2").
const char* IsaName(IsaLevel level);

/// Highest ISA level this CPU supports (compile-time capped to kScalar when
/// the build sets WALRUS_DISABLE_SIMD).
IsaLevel MaxSupportedIsa();

/// The level the process dispatched to: MaxSupportedIsa() unless lowered by
/// the WALRUS_SIMD environment variable ("scalar", "sse2", "avx2"; levels
/// above hardware support are clamped) or a TestOnlySetIsa override.
/// Resolving the level also publishes it as the `walrus.simd.dispatch`
/// gauge (0=scalar, 1=sse2, 2=avx2).
IsaLevel ActiveIsa();

/// Test hook: forces dispatch to `level` (clamped to MaxSupportedIsa) until
/// reset. Not thread-safe against concurrent kernel calls; use only in
/// single-threaded test setup.
void TestOnlySetIsa(IsaLevel level);
void TestOnlyResetIsa();

/// One ISA level's kernel implementations. All `n`/`count` sizes are
/// arbitrary (>= 0); vector paths handle non-multiple-of-lane tails
/// internally with the scalar reference loop.
///
/// Batch kernels read SoA blocks: plane d of a block starts at
/// `base + d * stride` and holds `count` contiguous floats (stride >=
/// count; see core/packed_store.h).
struct KernelTable {
  /// Sum over i of ((double)a[i] - (double)b[i])^2, accumulated in
  /// ascending index order (the RegionsMatchCentroid loop).
  double (*squared_l2_f32)(const float* a, const float* b, int n);

  /// Sum over i of (a[i]*wa - b[i]*wb)^2 in ascending order (CF centroid
  /// distance: a,b are CF linear sums, wa,wb the 1/N weights).
  double (*scaled_squared_l2_f64)(const double* a, double wa,
                                  const double* b, double wb, int n);

  /// Squared min distance from point p to the box [lo, hi], accumulated in
  /// ascending order (Rect::MinSquaredDistance).
  double (*min_squared_distance)(const float* lo, const float* hi,
                                 const float* p, int n);

  /// Closed-bounds overlap test of boxes a and b.
  bool (*rect_intersects)(const float* alo, const float* ahi,
                          const float* blo, const float* bhi, int n);

  /// Overlap test of a expanded by eps on every side against b (Definition
  /// 4.1's epsilon-envelope containment test, fused so no expanded rect is
  /// materialized). Expansion arithmetic matches Rect::Expanded exactly
  /// (float subtract/add per bound).
  bool (*rect_intersects_expanded)(const float* alo, const float* ahi,
                                   float eps, const float* blo,
                                   const float* bhi, int n);

  /// Closed-bounds point containment.
  bool (*rect_contains_point)(const float* lo, const float* hi,
                              const float* p, int n);

  /// Fused accumulate (CfVector::AddPoint): acc[i] += p[i] for all i and
  /// returns ss continued in ascending order, i.e. the result of
  /// `for i: ss += (double)p[i] * p[i]` starting from ss_in (taking the
  /// running sum as input preserves the caller's exact rounding sequence).
  double (*accumulate_f32)(double* acc, const float* p, int n, double ss_in);

  /// acc[i] += x[i] (CfVector::Merge; element-independent, exact).
  void (*add_f64)(double* acc, const double* x, int n);

  /// out[e] = squared min distance from p to box e of the SoA block
  /// (lanes = entries; per-entry dim order is the scalar order).
  void (*batch_min_squared_distance)(const float* lo, const float* hi,
                                     int stride, int dim, int count,
                                     const float* p, double* out);

  /// out[e] = squared L2 distance from q to point e of the SoA block.
  void (*batch_squared_l2)(const float* pts, int stride, int dim, int count,
                           const float* q, double* out);

  /// Bit e of out_mask is set iff box e of the SoA block intersects
  /// [qlo, qhi]. out_mask holds (count + 63) / 64 words, zeroed first.
  void (*batch_intersects)(const float* lo, const float* hi, int stride,
                           int dim, int count, const float* qlo,
                           const float* qhi, uint64_t* out_mask);

  /// Haar 2x2 base butterfly across `count` adjacent windows (the omega=2
  /// sliding-window level with dist=2 and sig_n=2): window w reads
  /// a1=row0[2w], a2=row0[2w+1], a3=row1[2w], a4=row1[2w+1] and writes
  /// out[4w..4w+3] = {avg, horizontal, vertical, diagonal} with the exact
  /// operation order of ComputeSingleWindow's base case.
  void (*haar_base_2x2)(const float* row0, const float* row1, int count,
                        float* out);

  /// Population count of one 64-bit word (the signature filter's scalar
  /// building block). Integer; trivially exact at every level.
  uint32_t (*popcount64)(uint64_t x);

  /// out[e] = total Hamming distance between signature e of the SoA word
  /// block and q: sum over w < words_per_sig of
  /// popcount(words[w * stride + e] ^ q[w]). Word plane w starts at
  /// `words + w * stride` and holds `count` contiguous u64s (stride >=
  /// count; see PackedBitSignatures in core/packed_store.h). Integer
  /// accumulation: exact in any evaluation order.
  void (*batch_hamming)(const uint64_t* words, int stride, int words_per_sig,
                        int count, const uint64_t* q, uint32_t* out);

  /// out[e] = sum over w of max(0, popcount(words[w * stride + e] ^ q[w])
  /// - 1)^2 -- the integer accumulator of the thermometer-code lower bound
  /// (core/signature_filter.h, DESIGN.md section 16), where each 64-bit
  /// word is one quantized dimension so the per-word Hamming distance IS
  /// that dimension's level distance. Exact at every level.
  void (*batch_signature_lb)(const uint64_t* words, int stride,
                             int words_per_sig, int count, const uint64_t* q,
                             uint32_t* out);
};

/// Kernels for a specific level (level must be <= MaxSupportedIsa()).
/// Exposed so the exactness suite can compare levels bit-for-bit.
const KernelTable& Kernels(IsaLevel level);

/// Kernels for ActiveIsa() -- the table hot paths should cache once.
const KernelTable& Active();

}  // namespace simd
}  // namespace walrus

#endif  // WALRUS_COMMON_SIMD_H_
