#include "common/math_util.h"

#include "common/check.h"

namespace walrus {

float SquaredL2(const std::vector<float>& a, const std::vector<float>& b) {
  WALRUS_DCHECK_EQ(a.size(), b.size());
  float sum = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float L2Distance(const std::vector<float>& a, const std::vector<float>& b) {
  return std::sqrt(SquaredL2(a, b));
}

float L1Distance(const std::vector<float>& a, const std::vector<float>& b) {
  WALRUS_DCHECK_EQ(a.size(), b.size());
  float sum = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

float LInfDistance(const std::vector<float>& a, const std::vector<float>& b) {
  WALRUS_DCHECK_EQ(a.size(), b.size());
  float best = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    float d = std::fabs(a[i] - b[i]);
    if (d > best) best = d;
  }
  return best;
}

double Mean(const std::vector<float>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<float>& values) {
  if (values.empty()) return 0.0;
  double mean = Mean(values);
  double sum = 0.0;
  for (float v : values) {
    double d = v - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(values.size());
}

}  // namespace walrus
