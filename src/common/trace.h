#ifndef WALRUS_COMMON_TRACE_H_
#define WALRUS_COMMON_TRACE_H_

#include <string>
#include <vector>

#include "common/timer.h"

namespace walrus {

/// One timed stage of a query, with nested sub-stages. Times are seconds
/// relative to the owning trace's construction, so a span tree reads as a
/// flame graph of the query: extract -> (wavelet, cluster, assemble),
/// probe, match, rank.
struct TraceSpan {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<TraceSpan> children;
};

/// Collects the span tree of a single query. Not thread-safe: one trace
/// belongs to one query executing on one thread (the pipeline is
/// sequential per query; batch queries get one trace each).
///
/// Spans nest by Begin/End pairing: a span that ends while another is open
/// becomes its child. The RAII TraceScope is the intended call-site shape
/// and is null-safe, so untraced queries pay one pointer test per stage.
class QueryTrace {
 public:
  QueryTrace() = default;

  void Begin(const std::string& name);
  /// Ends the innermost open span. No-op (checked in debug) without one.
  void End();

  /// Seconds since construction (the spans' time base).
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

  /// Completed top-level spans, oldest first. Open spans are not included.
  const std::vector<TraceSpan>& spans() const { return roots_; }
  std::vector<TraceSpan> TakeSpans() { return std::move(roots_); }

 private:
  struct OpenSpan {
    std::string name;
    double start_seconds;
    std::vector<TraceSpan> children;
  };

  WallTimer timer_;
  std::vector<OpenSpan> stack_;
  std::vector<TraceSpan> roots_;
};

/// RAII span: begins on construction, ends on destruction. A null trace
/// disables it, so instrumented code reads the same traced or not:
///   TraceScope span(trace, "probe");
class TraceScope {
 public:
  TraceScope(QueryTrace* trace, const std::string& name) : trace_(trace) {
    if (trace_ != nullptr) trace_->Begin(name);
  }
  ~TraceScope() {
    if (trace_ != nullptr) trace_->End();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  QueryTrace* trace_;
};

/// Sum of top-level span durations (how much of the query's wall time the
/// trace accounts for).
double TraceCoverageSeconds(const std::vector<TraceSpan>& spans);

/// Total span count across the whole tree.
size_t TraceSpanCount(const std::vector<TraceSpan>& spans);

/// Indented human-readable rendering, durations in milliseconds:
///   extract            12.41 ms
///     wavelet           8.03 ms
std::string RenderTraceText(const std::vector<TraceSpan>& spans);

}  // namespace walrus

#endif  // WALRUS_COMMON_TRACE_H_
