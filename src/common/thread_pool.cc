#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace walrus {

ThreadPool::ThreadPool(int num_threads) {
  WALRUS_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    WALRUS_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!IdleLocked()) all_done_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (IdleLocked()) all_done_.NotifyAll();
    }
  }
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    Submit([i, &fn] { fn(i); });
  }
  Wait();
}

}  // namespace walrus
