#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace walrus {

ThreadPool::ThreadPool(int num_threads) {
  WALRUS_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    WALRUS_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    Submit([i, &fn] { fn(i); });
  }
  Wait();
}

}  // namespace walrus
