#ifndef WALRUS_COMMON_SYNC_H_
#define WALRUS_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace walrus {

/// Compile-time concurrency contracts (DESIGN.md section 13).
///
/// Every mutex in the tree is one of the wrappers below, and every field a
/// mutex protects is annotated WALRUS_GUARDED_BY(that mutex). Under Clang
/// the annotations feed Thread Safety Analysis (-Wthread-safety), so a
/// guarded field touched without its lock -- or a *Locked() helper called
/// from an unlocked path -- fails the build instead of racing in
/// production. Under GCC the attributes expand to nothing and the wrappers
/// cost exactly what the std primitives they hold cost.
///
/// Rules of use (enforced by scripts/walrus_lint.py):
///   - No bare std::mutex / std::shared_mutex / std::condition_variable /
///     std::lock_guard / std::unique_lock outside this header.
///   - New shared mutable state gets WALRUS_GUARDED_BY at the declaration.
///   - Helpers that assume the lock is held are named *Locked() and
///     annotated WALRUS_REQUIRES(mutex).
///   - Condition-variable waits are written as explicit while loops
///     (`while (!pred) cv.Wait(lock);`), not lambda predicates: the
///     analysis checks a lambda body as its own function and cannot see
///     that the enclosing wait holds the lock.

// Thread Safety Analysis attribute spellings. Clang-only: GCC parses
// neither __attribute__((capability)) nor its friends, so everything
// expands to nothing elsewhere and the wrappers degrade to plain RAII.
#if defined(__clang__) && !defined(SWIG)
#define WALRUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WALRUS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define WALRUS_CAPABILITY(x) WALRUS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define WALRUS_SCOPED_CAPABILITY WALRUS_THREAD_ANNOTATION_(scoped_lockable)

/// Field is readable/writable only while holding `x`.
#define WALRUS_GUARDED_BY(x) WALRUS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee (not the pointer) is guarded by `x`.
#define WALRUS_PT_GUARDED_BY(x) WALRUS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the named capabilities
/// exclusively; it does not acquire or release them. The *Locked() helper
/// annotation.
#define WALRUS_REQUIRES(...) \
  WALRUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) flavour of WALRUS_REQUIRES.
#define WALRUS_REQUIRES_SHARED(...) \
  WALRUS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define WALRUS_ACQUIRE(...) \
  WALRUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define WALRUS_ACQUIRE_SHARED(...) \
  WALRUS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability the caller holds.
#define WALRUS_RELEASE(...) \
  WALRUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define WALRUS_RELEASE_SHARED(...) \
  WALRUS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Releases whichever mode (exclusive or shared) is held.
#define WALRUS_RELEASE_GENERIC(...) \
  WALRUS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function attempts the lock; first argument is the success return value.
#define WALRUS_TRY_ACQUIRE(...) \
  WALRUS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the named capabilities (deadlock guard for
/// public entry points that take the lock themselves).
#define WALRUS_EXCLUDES(...) \
  WALRUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis time) that the capability is held.
#define WALRUS_ASSERT_CAPABILITY(x) \
  WALRUS_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define WALRUS_RETURN_CAPABILITY(x) WALRUS_THREAD_ANNOTATION_(lock_returned(x))

/// Documented lock-ordering edges.
#define WALRUS_ACQUIRED_BEFORE(...) \
  WALRUS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define WALRUS_ACQUIRED_AFTER(...) \
  WALRUS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch that turns the analysis off for one function. Policy: the
/// tree builds with zero uses of this in src/ (the lint self-test corpus
/// is the only legitimate home); fix the locking instead.
#define WALRUS_NO_THREAD_SAFETY_ANALYSIS \
  WALRUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

class CondVar;

/// std::mutex carrying the "mutex" capability. Lock it with MutexLock;
/// Lock()/Unlock() exist for the rare non-scoped pattern and for the
/// negative-compilation tests.
class WALRUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WALRUS_ACQUIRE() { mu_.lock(); }
  void Unlock() WALRUS_RELEASE() { mu_.unlock(); }
  bool TryLock() WALRUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped holder of a Mutex: acquires on construction, releases on
/// destruction. The only way the query path takes a lock.
class WALRUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WALRUS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() WALRUS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to Mutex/MutexLock. Waits release the
/// lock while blocked and reacquire before returning, exactly like the
/// std primitive; from the analysis's point of view the caller holds the
/// mutex across the wait, which is true at every point the caller can
/// observe.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups happen; always wait in a
  /// `while (!condition)` loop.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex carrying the "shared_mutex" capability: one writer or
/// many readers. Lock it with WriterMutexLock / ReaderMutexLock.
class WALRUS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() WALRUS_ACQUIRE() { mu_.lock(); }
  void Unlock() WALRUS_RELEASE() { mu_.unlock(); }
  void LockShared() WALRUS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() WALRUS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive (writer) hold of a SharedMutex.
class WALRUS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) WALRUS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() WALRUS_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class WALRUS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) WALRUS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() WALRUS_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace walrus

#endif  // WALRUS_COMMON_SYNC_H_
