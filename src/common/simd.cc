#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/metrics.h"

#if defined(__x86_64__) && !defined(WALRUS_DISABLE_SIMD)
#define WALRUS_SIMD_X86 1
#include <immintrin.h>
#else
#define WALRUS_SIMD_X86 0
#endif

namespace walrus {
namespace simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the semantics: every operation and
// its order below mirrors the original call-site loop it replaced (see the
// per-kernel notes in simd.h), and the vector paths must reproduce them
// bit-for-bit.
// ---------------------------------------------------------------------------
namespace scalar {

double SquaredL2F32(const float* a, const float* b, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

double ScaledSquaredL2F64(const double* a, double wa, const double* b,
                          double wb, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = a[i] * wa - b[i] * wb;
    sum += d * d;
  }
  return sum;
}

double MinSquaredDistance(const float* lo, const float* hi, const float* p,
                          int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double d = 0.0;
    if (p[i] < lo[i]) {
      d = static_cast<double>(lo[i]) - p[i];
    } else if (p[i] > hi[i]) {
      d = static_cast<double>(p[i]) - hi[i];
    }
    sum += d * d;
  }
  return sum;
}

bool RectIntersects(const float* alo, const float* ahi, const float* blo,
                    const float* bhi, int n) {
  for (int i = 0; i < n; ++i) {
    if (alo[i] > bhi[i] || blo[i] > ahi[i]) return false;
  }
  return true;
}

bool RectIntersectsExpanded(const float* alo, const float* ahi, float eps,
                            const float* blo, const float* bhi, int n) {
  for (int i = 0; i < n; ++i) {
    const float lo = alo[i] - eps;
    const float hi = ahi[i] + eps;
    if (lo > bhi[i] || blo[i] > hi) return false;
  }
  return true;
}

bool RectContainsPoint(const float* lo, const float* hi, const float* p,
                       int n) {
  for (int i = 0; i < n; ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

double AccumulateF32(double* acc, const float* p, int n, double ss) {
  for (int i = 0; i < n; ++i) {
    const double v = p[i];
    acc[i] += v;
    ss += v * v;
  }
  return ss;
}

void AddF64(double* acc, const double* x, int n) {
  for (int i = 0; i < n; ++i) acc[i] += x[i];
}

// Batch kernels: per-entry inner loops are byte-for-byte the single-entry
// loops above, just reading SoA planes. Vector paths assign entries to
// lanes, so each lane runs this exact dim-ascending sequence.
void BatchMinSquaredDistance(const float* lo, const float* hi, int stride,
                             int dim, int count, const float* p,
                             double* out) {
  for (int e = 0; e < count; ++e) {
    double sum = 0.0;
    for (int i = 0; i < dim; ++i) {
      const float l = lo[i * stride + e];
      const float h = hi[i * stride + e];
      double d = 0.0;
      if (p[i] < l) {
        d = static_cast<double>(l) - p[i];
      } else if (p[i] > h) {
        d = static_cast<double>(p[i]) - h;
      }
      sum += d * d;
    }
    out[e] = sum;
  }
}

void BatchSquaredL2(const float* pts, int stride, int dim, int count,
                    const float* q, double* out) {
  for (int e = 0; e < count; ++e) {
    double sum = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double d = static_cast<double>(pts[i * stride + e]) - q[i];
      sum += d * d;
    }
    out[e] = sum;
  }
}

void BatchIntersects(const float* lo, const float* hi, int stride, int dim,
                     int count, const float* qlo, const float* qhi,
                     uint64_t* out_mask) {
  const int words = (count + 63) / 64;
  for (int w = 0; w < words; ++w) out_mask[w] = 0;
  for (int e = 0; e < count; ++e) {
    bool hit = true;
    for (int i = 0; i < dim; ++i) {
      if (lo[i * stride + e] > qhi[i] || qlo[i] > hi[i * stride + e]) {
        hit = false;
        break;
      }
    }
    if (hit) out_mask[e >> 6] |= uint64_t{1} << (e & 63);
  }
}

void HaarBase2x2(const float* row0, const float* row1, int count,
                 float* out) {
  for (int w = 0; w < count; ++w) {
    const float a1 = row0[2 * w];
    const float a2 = row0[2 * w + 1];
    const float a3 = row1[2 * w];
    const float a4 = row1[2 * w + 1];
    out[4 * w + 0] = (a1 + a2 + a3 + a4) / 4.0f;
    out[4 * w + 1] = (-a1 + a2 - a3 + a4) / 4.0f;
    out[4 * w + 2] = (-a1 - a2 + a3 + a4) / 4.0f;
    out[4 * w + 3] = (a1 - a2 - a3 + a4) / 4.0f;
  }
}

uint32_t Popcount64(uint64_t x) {
  return static_cast<uint32_t>(__builtin_popcountll(x));
}

void BatchHamming(const uint64_t* words, int stride, int words_per_sig,
                  int count, const uint64_t* q, uint32_t* out) {
  for (int e = 0; e < count; ++e) {
    uint32_t acc = 0;
    for (int w = 0; w < words_per_sig; ++w) {
      acc += static_cast<uint32_t>(
          __builtin_popcountll(words[w * stride + e] ^ q[w]));
    }
    out[e] = acc;
  }
}

void BatchSignatureLb(const uint64_t* words, int stride, int words_per_sig,
                      int count, const uint64_t* q, uint32_t* out) {
  for (int e = 0; e < count; ++e) {
    uint32_t acc = 0;
    for (int w = 0; w < words_per_sig; ++w) {
      const uint32_t h = static_cast<uint32_t>(
          __builtin_popcountll(words[w * stride + e] ^ q[w]));
      const uint32_t b = h > 1 ? h - 1 : 0;
      acc += b * b;
    }
    out[e] = acc;
  }
}

}  // namespace scalar

#if WALRUS_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 kernels (x86-64 baseline; no target attribute needed). Batch kernels
// run two double lanes (= two entries) per step; predicate kernels test four
// dims or four entries per step. Tails fall back to the scalar reference.
// ---------------------------------------------------------------------------
namespace sse2 {

bool RectIntersects(const float* alo, const float* ahi, const float* blo,
                    const float* bhi, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 al = _mm_loadu_ps(alo + i);
    const __m128 ah = _mm_loadu_ps(ahi + i);
    const __m128 bl = _mm_loadu_ps(blo + i);
    const __m128 bh = _mm_loadu_ps(bhi + i);
    const __m128 dis =
        _mm_or_ps(_mm_cmpgt_ps(al, bh), _mm_cmpgt_ps(bl, ah));
    if (_mm_movemask_ps(dis) != 0) return false;
  }
  for (; i < n; ++i) {
    if (alo[i] > bhi[i] || blo[i] > ahi[i]) return false;
  }
  return true;
}

bool RectIntersectsExpanded(const float* alo, const float* ahi, float eps,
                            const float* blo, const float* bhi, int n) {
  const __m128 ev = _mm_set1_ps(eps);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 al = _mm_sub_ps(_mm_loadu_ps(alo + i), ev);
    const __m128 ah = _mm_add_ps(_mm_loadu_ps(ahi + i), ev);
    const __m128 bl = _mm_loadu_ps(blo + i);
    const __m128 bh = _mm_loadu_ps(bhi + i);
    const __m128 dis =
        _mm_or_ps(_mm_cmpgt_ps(al, bh), _mm_cmpgt_ps(bl, ah));
    if (_mm_movemask_ps(dis) != 0) return false;
  }
  for (; i < n; ++i) {
    const float lo = alo[i] - eps;
    const float hi = ahi[i] + eps;
    if (lo > bhi[i] || blo[i] > hi) return false;
  }
  return true;
}

bool RectContainsPoint(const float* lo, const float* hi, const float* p,
                       int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 lv = _mm_loadu_ps(lo + i);
    const __m128 hv = _mm_loadu_ps(hi + i);
    const __m128 pv = _mm_loadu_ps(p + i);
    const __m128 outside =
        _mm_or_ps(_mm_cmplt_ps(pv, lv), _mm_cmpgt_ps(pv, hv));
    if (_mm_movemask_ps(outside) != 0) return false;
  }
  for (; i < n; ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

void AddF64(double* acc, const double* x, int n) {
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i),
                                      _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void BatchMinSquaredDistance(const float* lo, const float* hi, int stride,
                             int dim, int count, const float* p,
                             double* out) {
  int e = 0;
  for (; e + 2 <= count; e += 2) {
    __m128d acc = _mm_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m128d l = _mm_cvtps_pd(
          _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              lo + i * stride + e))));
      const __m128d h = _mm_cvtps_pd(
          _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              hi + i * stride + e))));
      const __m128d pt = _mm_set1_pd(static_cast<double>(p[i]));
      const __m128d below = _mm_cmplt_pd(pt, l);
      const __m128d above = _mm_cmpgt_pd(pt, h);
      const __m128d d =
          _mm_or_pd(_mm_and_pd(below, _mm_sub_pd(l, pt)),
                    _mm_and_pd(above, _mm_sub_pd(pt, h)));
      acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
    }
    _mm_storeu_pd(out + e, acc);
  }
  if (e < count) {
    scalar::BatchMinSquaredDistance(lo + e, hi + e, stride, dim, count - e,
                                    p, out + e);
  }
}

void BatchSquaredL2(const float* pts, int stride, int dim, int count,
                    const float* q, double* out) {
  int e = 0;
  for (; e + 2 <= count; e += 2) {
    __m128d acc = _mm_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m128d pt = _mm_cvtps_pd(
          _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              pts + i * stride + e))));
      const __m128d qv = _mm_set1_pd(static_cast<double>(q[i]));
      const __m128d d = _mm_sub_pd(pt, qv);
      acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
    }
    _mm_storeu_pd(out + e, acc);
  }
  if (e < count) {
    scalar::BatchSquaredL2(pts + e, stride, dim, count - e, q, out + e);
  }
}

void BatchIntersects(const float* lo, const float* hi, int stride, int dim,
                     int count, const float* qlo, const float* qhi,
                     uint64_t* out_mask) {
  const int words = (count + 63) / 64;
  for (int w = 0; w < words; ++w) out_mask[w] = 0;
  int e = 0;
  for (; e + 4 <= count; e += 4) {
    __m128 dis = _mm_setzero_ps();
    int mm = 0;
    for (int i = 0; i < dim; ++i) {
      const __m128 l = _mm_loadu_ps(lo + i * stride + e);
      const __m128 h = _mm_loadu_ps(hi + i * stride + e);
      const __m128 ql = _mm_set1_ps(qlo[i]);
      const __m128 qh = _mm_set1_ps(qhi[i]);
      dis = _mm_or_ps(dis, _mm_or_ps(_mm_cmpgt_ps(l, qh),
                                     _mm_cmpgt_ps(ql, h)));
      // All four lanes disjoint already: the remaining dims cannot clear a
      // lane, so skip them (the common case in a selective probe).
      mm = _mm_movemask_ps(dis);
      if (mm == 0xF) break;
    }
    const uint64_t hits = static_cast<uint64_t>(~mm) & 0xFull;
    out_mask[e >> 6] |= hits << (e & 63);
  }
  for (; e < count; ++e) {
    bool hit = true;
    for (int i = 0; i < dim; ++i) {
      if (lo[i * stride + e] > qhi[i] || qlo[i] > hi[i * stride + e]) {
        hit = false;
        break;
      }
    }
    if (hit) out_mask[e >> 6] |= uint64_t{1} << (e & 63);
  }
}

// Four windows per step: deinterleave the stride-2 inputs, run the exact
// butterfly operation sequence of the scalar base case per lane (including
// IEEE negation via sign-bit xor and the literal divide by 4), transpose,
// and store the four contiguous {avg,h,v,d} output blocks.
void HaarBase2x2(const float* row0, const float* row1, int count,
                 float* out) {
  const __m128 msign = _mm_set1_ps(-0.0f);
  const __m128 four = _mm_set1_ps(4.0f);
  int w = 0;
  for (; w + 4 <= count; w += 4) {
    const __m128 r0a = _mm_loadu_ps(row0 + 2 * w);
    const __m128 r0b = _mm_loadu_ps(row0 + 2 * w + 4);
    const __m128 r1a = _mm_loadu_ps(row1 + 2 * w);
    const __m128 r1b = _mm_loadu_ps(row1 + 2 * w + 4);
    const __m128 a1 = _mm_shuffle_ps(r0a, r0b, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 a2 = _mm_shuffle_ps(r0a, r0b, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 a3 = _mm_shuffle_ps(r1a, r1b, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 a4 = _mm_shuffle_ps(r1a, r1b, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 n1 = _mm_xor_ps(a1, msign);
    __m128 avg = _mm_div_ps(
        _mm_add_ps(_mm_add_ps(_mm_add_ps(a1, a2), a3), a4), four);
    __m128 hdif = _mm_div_ps(
        _mm_add_ps(_mm_sub_ps(_mm_add_ps(n1, a2), a3), a4), four);
    __m128 vdif = _mm_div_ps(
        _mm_add_ps(_mm_add_ps(_mm_sub_ps(n1, a2), a3), a4), four);
    __m128 ddif = _mm_div_ps(
        _mm_add_ps(_mm_sub_ps(_mm_sub_ps(a1, a2), a3), a4), four);
    _MM_TRANSPOSE4_PS(avg, hdif, vdif, ddif);
    _mm_storeu_ps(out + 4 * w + 0, avg);
    _mm_storeu_ps(out + 4 * w + 4, hdif);
    _mm_storeu_ps(out + 4 * w + 8, vdif);
    _mm_storeu_ps(out + 4 * w + 12, ddif);
  }
  if (w < count) {
    scalar::HaarBase2x2(row0 + 2 * w, row1 + 2 * w, count - w, out + 4 * w);
  }
}

}  // namespace sse2

// ---------------------------------------------------------------------------
// AVX2 kernels (per-function target attribute: the rest of the binary stays
// baseline, dispatch picks these up only on capable hardware). Pair kernels
// vectorize the element-independent work into a stack buffer and keep the
// reduction an ordered scalar loop; batch kernels run four double lanes.
// ---------------------------------------------------------------------------
namespace avx2 {

__attribute__((target("avx2"))) double SquaredL2F32(const float* a,
                                                    const float* b, int n) {
  alignas(32) double buf[8];
  double sum = 0.0;
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    const __m256 bv = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(av));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
    const __m256d dlo = _mm256_sub_pd(alo, blo);
    const __m256d dhi = _mm256_sub_pd(ahi, bhi);
    _mm256_store_pd(buf, _mm256_mul_pd(dlo, dlo));
    _mm256_store_pd(buf + 4, _mm256_mul_pd(dhi, dhi));
    for (int j = 0; j < 8; ++j) sum += buf[j];
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) double ScaledSquaredL2F64(const double* a,
                                                          double wa,
                                                          const double* b,
                                                          double wb, int n) {
  alignas(32) double buf[4];
  const __m256d wav = _mm256_set1_pd(wa);
  const __m256d wbv = _mm256_set1_pd(wb);
  double sum = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(a + i), wav),
                      _mm256_mul_pd(_mm256_loadu_pd(b + i), wbv));
    _mm256_store_pd(buf, _mm256_mul_pd(d, d));
    for (int j = 0; j < 4; ++j) sum += buf[j];
  }
  for (; i < n; ++i) {
    const double d = a[i] * wa - b[i] * wb;
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) double MinSquaredDistance(const float* lo,
                                                          const float* hi,
                                                          const float* p,
                                                          int n) {
  alignas(32) double buf[4];
  double sum = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d l = _mm256_cvtps_pd(_mm_loadu_ps(lo + i));
    const __m256d h = _mm256_cvtps_pd(_mm_loadu_ps(hi + i));
    const __m256d pv = _mm256_cvtps_pd(_mm_loadu_ps(p + i));
    const __m256d below = _mm256_cmp_pd(pv, l, _CMP_LT_OQ);
    const __m256d above = _mm256_cmp_pd(pv, h, _CMP_GT_OQ);
    const __m256d d =
        _mm256_or_pd(_mm256_and_pd(below, _mm256_sub_pd(l, pv)),
                     _mm256_and_pd(above, _mm256_sub_pd(pv, h)));
    _mm256_store_pd(buf, _mm256_mul_pd(d, d));
    for (int j = 0; j < 4; ++j) sum += buf[j];
  }
  for (; i < n; ++i) {
    double d = 0.0;
    if (p[i] < lo[i]) {
      d = static_cast<double>(lo[i]) - p[i];
    } else if (p[i] > hi[i]) {
      d = static_cast<double>(p[i]) - hi[i];
    }
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2"))) bool RectIntersects(const float* alo,
                                                    const float* ahi,
                                                    const float* blo,
                                                    const float* bhi,
                                                    int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 al = _mm256_loadu_ps(alo + i);
    const __m256 ah = _mm256_loadu_ps(ahi + i);
    const __m256 bl = _mm256_loadu_ps(blo + i);
    const __m256 bh = _mm256_loadu_ps(bhi + i);
    const __m256 dis = _mm256_or_ps(_mm256_cmp_ps(al, bh, _CMP_GT_OQ),
                                    _mm256_cmp_ps(bl, ah, _CMP_GT_OQ));
    if (_mm256_movemask_ps(dis) != 0) return false;
  }
  for (; i < n; ++i) {
    if (alo[i] > bhi[i] || blo[i] > ahi[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool RectIntersectsExpanded(
    const float* alo, const float* ahi, float eps, const float* blo,
    const float* bhi, int n) {
  const __m256 ev = _mm256_set1_ps(eps);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 al = _mm256_sub_ps(_mm256_loadu_ps(alo + i), ev);
    const __m256 ah = _mm256_add_ps(_mm256_loadu_ps(ahi + i), ev);
    const __m256 bl = _mm256_loadu_ps(blo + i);
    const __m256 bh = _mm256_loadu_ps(bhi + i);
    const __m256 dis = _mm256_or_ps(_mm256_cmp_ps(al, bh, _CMP_GT_OQ),
                                    _mm256_cmp_ps(bl, ah, _CMP_GT_OQ));
    if (_mm256_movemask_ps(dis) != 0) return false;
  }
  for (; i < n; ++i) {
    const float lo = alo[i] - eps;
    const float hi = ahi[i] + eps;
    if (lo > bhi[i] || blo[i] > hi) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool RectContainsPoint(const float* lo,
                                                       const float* hi,
                                                       const float* p,
                                                       int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 lv = _mm256_loadu_ps(lo + i);
    const __m256 hv = _mm256_loadu_ps(hi + i);
    const __m256 pv = _mm256_loadu_ps(p + i);
    const __m256 outside = _mm256_or_ps(_mm256_cmp_ps(pv, lv, _CMP_LT_OQ),
                                        _mm256_cmp_ps(pv, hv, _CMP_GT_OQ));
    if (_mm256_movemask_ps(outside) != 0) return false;
  }
  for (; i < n; ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

__attribute__((target("avx2"))) double AccumulateF32(double* acc,
                                                     const float* p, int n,
                                                     double ss) {
  alignas(32) double buf[4];
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(p + i));
    _mm256_storeu_pd(acc + i,
                     _mm256_add_pd(_mm256_loadu_pd(acc + i), v));
    _mm256_store_pd(buf, _mm256_mul_pd(v, v));
    for (int j = 0; j < 4; ++j) ss += buf[j];
  }
  for (; i < n; ++i) {
    const double v = p[i];
    acc[i] += v;
    ss += v * v;
  }
  return ss;
}

__attribute__((target("avx2"))) void AddF64(double* acc, const double* x,
                                            int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

__attribute__((target("avx2"))) void BatchMinSquaredDistance(
    const float* lo, const float* hi, int stride, int dim, int count,
    const float* p, double* out) {
  int e = 0;
  for (; e + 4 <= count; e += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m256d l = _mm256_cvtps_pd(_mm_loadu_ps(lo + i * stride + e));
      const __m256d h = _mm256_cvtps_pd(_mm_loadu_ps(hi + i * stride + e));
      const __m256d pt = _mm256_set1_pd(static_cast<double>(p[i]));
      const __m256d below = _mm256_cmp_pd(pt, l, _CMP_LT_OQ);
      const __m256d above = _mm256_cmp_pd(pt, h, _CMP_GT_OQ);
      const __m256d d =
          _mm256_or_pd(_mm256_and_pd(below, _mm256_sub_pd(l, pt)),
                       _mm256_and_pd(above, _mm256_sub_pd(pt, h)));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + e, acc);
  }
  if (e < count) {
    scalar::BatchMinSquaredDistance(lo + e, hi + e, stride, dim, count - e,
                                    p, out + e);
  }
}

__attribute__((target("avx2"))) void BatchSquaredL2(const float* pts,
                                                    int stride, int dim,
                                                    int count,
                                                    const float* q,
                                                    double* out) {
  int e = 0;
  for (; e + 4 <= count; e += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m256d pt =
          _mm256_cvtps_pd(_mm_loadu_ps(pts + i * stride + e));
      const __m256d qv = _mm256_set1_pd(static_cast<double>(q[i]));
      const __m256d d = _mm256_sub_pd(pt, qv);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + e, acc);
  }
  if (e < count) {
    scalar::BatchSquaredL2(pts + e, stride, dim, count - e, q, out + e);
  }
}

__attribute__((target("avx2"))) void BatchIntersects(
    const float* lo, const float* hi, int stride, int dim, int count,
    const float* qlo, const float* qhi, uint64_t* out_mask) {
  const int words = (count + 63) / 64;
  for (int w = 0; w < words; ++w) out_mask[w] = 0;
  int e = 0;
  for (; e + 8 <= count; e += 8) {
    __m256 dis = _mm256_setzero_ps();
    int mm = 0;
    for (int i = 0; i < dim; ++i) {
      const __m256 l = _mm256_loadu_ps(lo + i * stride + e);
      const __m256 h = _mm256_loadu_ps(hi + i * stride + e);
      const __m256 ql = _mm256_set1_ps(qlo[i]);
      const __m256 qh = _mm256_set1_ps(qhi[i]);
      dis = _mm256_or_ps(dis, _mm256_or_ps(_mm256_cmp_ps(l, qh, _CMP_GT_OQ),
                                           _mm256_cmp_ps(ql, h,
                                                         _CMP_GT_OQ)));
      // All eight lanes disjoint already: the remaining dims cannot clear a
      // lane, so skip them (the common case in a selective probe).
      mm = _mm256_movemask_ps(dis);
      if (mm == 0xFF) break;
    }
    const uint64_t hits = static_cast<uint64_t>(~mm) & 0xFFull;
    out_mask[e >> 6] |= hits << (e & 63);
  }
  for (; e < count; ++e) {
    bool hit = true;
    for (int i = 0; i < dim; ++i) {
      if (lo[i * stride + e] > qhi[i] || qlo[i] > hi[i * stride + e]) {
        hit = false;
        break;
      }
    }
    if (hit) out_mask[e >> 6] |= uint64_t{1} << (e & 63);
  }
}

// Nibble-LUT popcount (pshufb) over four 64-bit lanes: per-byte counts via
// two 16-entry table lookups, folded to one count per 64-bit lane by
// _mm256_sad_epu8. Integer throughout, so lane assignment and accumulation
// order cannot change results. POPCNT is implied by every AVX2 CPU
// (x86-64-v3), so the avx2 dispatch check covers the scalar-tail popcnt too.
__attribute__((target("avx2,popcnt"))) static inline __m256i PopcountPerU64(
    __m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt8 = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                       _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt8, _mm256_setzero_si256());
}

__attribute__((target("popcnt"))) uint32_t Popcount64(uint64_t x) {
  return static_cast<uint32_t>(__builtin_popcountll(x));
}

__attribute__((target("avx2,popcnt"))) void BatchHamming(
    const uint64_t* words, int stride, int words_per_sig, int count,
    const uint64_t* q, uint32_t* out) {
  int e = 0;
  for (; e + 4 <= count; e += 4) {
    __m256i acc = _mm256_setzero_si256();
    for (int w = 0; w < words_per_sig; ++w) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(words + w * stride + e)),
          _mm256_set1_epi64x(static_cast<long long>(q[w])));
      acc = _mm256_add_epi64(acc, PopcountPerU64(v));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int j = 0; j < 4; ++j) out[e + j] = static_cast<uint32_t>(lanes[j]);
  }
  if (e < count) {
    scalar::BatchHamming(words + e, stride, words_per_sig, count - e, q,
                         out + e);
  }
}

__attribute__((target("avx2,popcnt"))) void BatchSignatureLb(
    const uint64_t* words, int stride, int words_per_sig, int count,
    const uint64_t* q, uint32_t* out) {
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  int e = 0;
  for (; e + 4 <= count; e += 4) {
    __m256i acc = zero;
    for (int w = 0; w < words_per_sig; ++w) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(words + w * stride + e)),
          _mm256_set1_epi64x(static_cast<long long>(q[w])));
      const __m256i h = PopcountPerU64(v);
      // b = max(h - 1, 0): subtract one, mask to zero where h == 0.
      const __m256i b = _mm256_and_si256(_mm256_sub_epi64(h, one),
                                         _mm256_cmpgt_epi64(h, zero));
      // b <= 64 fits the low 32 bits of each lane, so mul_epu32 is b^2.
      acc = _mm256_add_epi64(acc, _mm256_mul_epu32(b, b));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int j = 0; j < 4; ++j) out[e + j] = static_cast<uint32_t>(lanes[j]);
  }
  if (e < count) {
    scalar::BatchSignatureLb(words + e, stride, words_per_sig, count - e, q,
                             out + e);
  }
}

}  // namespace avx2

#endif  // WALRUS_SIMD_X86

namespace {

constexpr KernelTable kScalarTable = {
    scalar::SquaredL2F32,
    scalar::ScaledSquaredL2F64,
    scalar::MinSquaredDistance,
    scalar::RectIntersects,
    scalar::RectIntersectsExpanded,
    scalar::RectContainsPoint,
    scalar::AccumulateF32,
    scalar::AddF64,
    scalar::BatchMinSquaredDistance,
    scalar::BatchSquaredL2,
    scalar::BatchIntersects,
    scalar::HaarBase2x2,
    scalar::Popcount64,
    scalar::BatchHamming,
    scalar::BatchSignatureLb,
};

#if WALRUS_SIMD_X86
// SSE2 keeps the scalar pair kernels (two double lanes don't pay for the
// ordered-reduction constraint) and vectorizes predicates, batch scans, and
// the Haar butterfly.
constexpr KernelTable kSse2Table = {
    scalar::SquaredL2F32,
    scalar::ScaledSquaredL2F64,
    scalar::MinSquaredDistance,
    sse2::RectIntersects,
    sse2::RectIntersectsExpanded,
    sse2::RectContainsPoint,
    scalar::AccumulateF32,
    sse2::AddF64,
    sse2::BatchMinSquaredDistance,
    sse2::BatchSquaredL2,
    sse2::BatchIntersects,
    sse2::HaarBase2x2,
    // Pre-SSSE3 x86 has neither a vector popcount nor the pshufb nibble
    // LUT, so the Hamming kernels stay on the scalar reference at SSE2.
    scalar::Popcount64,
    scalar::BatchHamming,
    scalar::BatchSignatureLb,
};

// AVX2 has no wider Haar butterfly: the 4-window SSE2 shuffle/transpose
// pattern already saturates the port budget at this working-set size.
constexpr KernelTable kAvx2Table = {
    avx2::SquaredL2F32,
    avx2::ScaledSquaredL2F64,
    avx2::MinSquaredDistance,
    avx2::RectIntersects,
    avx2::RectIntersectsExpanded,
    avx2::RectContainsPoint,
    avx2::AccumulateF32,
    avx2::AddF64,
    avx2::BatchMinSquaredDistance,
    avx2::BatchSquaredL2,
    avx2::BatchIntersects,
    sse2::HaarBase2x2,
    avx2::Popcount64,
    avx2::BatchHamming,
    avx2::BatchSignatureLb,
};
#endif  // WALRUS_SIMD_X86

// -1 = no override; otherwise the forced IsaLevel.
std::atomic<int> g_isa_override{-1};

IsaLevel ResolveIsa() {
  IsaLevel level = MaxSupportedIsa();
  if (const char* env = std::getenv("WALRUS_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      level = IsaLevel::kScalar;
    } else if (std::strcmp(env, "sse2") == 0) {
      level = IsaLevel::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      level = IsaLevel::kAvx2;
    }
    if (level > MaxSupportedIsa()) level = MaxSupportedIsa();
  }
  return level;
}

}  // namespace

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IsaLevel MaxSupportedIsa() {
#if WALRUS_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  return IsaLevel::kSse2;  // SSE2 is the x86-64 baseline.
#else
  return IsaLevel::kScalar;
#endif
}

IsaLevel ActiveIsa() {
  const int forced = g_isa_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaLevel>(forced);
  static const IsaLevel resolved = [] {
    const IsaLevel level = ResolveIsa();
    MetricsRegistry::Global()
        .GetGauge("walrus.simd.dispatch")
        ->Set(static_cast<int64_t>(level));
    return level;
  }();
  return resolved;
}

void TestOnlySetIsa(IsaLevel level) {
  if (level > MaxSupportedIsa()) level = MaxSupportedIsa();
  g_isa_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void TestOnlyResetIsa() {
  g_isa_override.store(-1, std::memory_order_relaxed);
}

const KernelTable& Kernels(IsaLevel level) {
  if (level > MaxSupportedIsa()) level = MaxSupportedIsa();
#if WALRUS_SIMD_X86
  switch (level) {
    case IsaLevel::kAvx2:
      return kAvx2Table;
    case IsaLevel::kSse2:
      return kSse2Table;
    case IsaLevel::kScalar:
      return kScalarTable;
  }
#endif
  return kScalarTable;
}

const KernelTable& Active() { return Kernels(ActiveIsa()); }

}  // namespace simd
}  // namespace walrus
