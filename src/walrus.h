#ifndef WALRUS_WALRUS_H_
#define WALRUS_WALRUS_H_

/// Umbrella header for the WALRUS similarity-retrieval library: pulls in the
/// full public API. Fine-grained consumers can include the individual
/// headers instead (core/index.h + core/query.h cover most applications).

#include "baselines/color_histogram.h"
#include "baselines/jfs.h"
#include "baselines/wbiis.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/index.h"
#include "core/params.h"
#include "core/query.h"
#include "core/region_extractor.h"
#include "core/similarity.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "image/color.h"
#include "image/dataset.h"
#include "image/image.h"
#include "image/pnm_io.h"
#include "image/synth.h"
#include "image/transform.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "spatial/rstar_tree.h"
#include "wavelet/compress.h"
#include "wavelet/haar1d.h"
#include "wavelet/haar2d.h"
#include "wavelet/sliding_window.h"

namespace walrus {

/// Library version (semantic). 1.0.0 corresponds to the full SIGMOD 1999
/// reproduction described in DESIGN.md; 1.1.0 adds the walrusd network
/// query-serving subsystem (server/).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 1;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.1.0";

}  // namespace walrus

#endif  // WALRUS_WALRUS_H_
