#include "cluster/cf.h"

#include <cmath>

#include "common/check.h"
#include "common/simd.h"

namespace walrus {

CfVector CfVector::FromPoint(const float* point, int dim) {
  CfVector cf(dim);
  cf.AddPoint(point, dim);
  return cf;
}

void CfVector::AddPoint(const float* point, int dim) {
  if (ls_.empty()) ls_.assign(dim, 0.0);
  WALRUS_DCHECK_EQ(dim, this->dim());
  // The kernel threads the running ss_ through so the v*v additions land in
  // the same order as the historical scalar loop (see common/simd.h).
  ss_ = simd::Active().accumulate_f32(ls_.data(), point, dim, ss_);
  ++count_;
}

void CfVector::Merge(const CfVector& other) {
  if (other.empty()) return;
  if (ls_.empty()) ls_.assign(other.dim(), 0.0);
  WALRUS_DCHECK_EQ(dim(), other.dim());
  simd::Active().add_f64(ls_.data(), other.ls_.data(), dim());
  ss_ += other.ss_;
  count_ += other.count_;
}

std::vector<float> CfVector::Centroid() const {
  WALRUS_CHECK_GT(count_, 0);
  std::vector<float> c(ls_.size());
  double inv = 1.0 / static_cast<double>(count_);
  for (size_t i = 0; i < ls_.size(); ++i) {
    c[i] = static_cast<float>(ls_[i] * inv);
  }
  return c;
}

double CfVector::Radius() const {
  if (count_ <= 1) return 0.0;
  double inv = 1.0 / static_cast<double>(count_);
  double centroid_norm2 = 0.0;
  for (double v : ls_) centroid_norm2 += (v * inv) * (v * inv);
  double r2 = ss_ * inv - centroid_norm2;
  return r2 > 0.0 ? std::sqrt(r2) : 0.0;
}

double CfVector::Diameter() const {
  if (count_ <= 1) return 0.0;
  double n = static_cast<double>(count_);
  double ls_norm2 = 0.0;
  for (double v : ls_) ls_norm2 += v * v;
  double d2 = (2.0 * n * ss_ - 2.0 * ls_norm2) / (n * (n - 1.0));
  return d2 > 0.0 ? std::sqrt(d2) : 0.0;
}

double CfVector::CentroidDistance(const CfVector& a, const CfVector& b) {
  WALRUS_DCHECK_EQ(a.dim(), b.dim());
  WALRUS_DCHECK(a.count_ > 0 && b.count_ > 0);
  double inv_a = 1.0 / static_cast<double>(a.count_);
  double inv_b = 1.0 / static_cast<double>(b.count_);
  return std::sqrt(simd::Active().scaled_squared_l2_f64(
      a.ls_.data(), inv_a, b.ls_.data(), inv_b, a.dim()));
}

double CfVector::MergedRadius(const CfVector& other) const {
  int64_t n = count_ + other.count_;
  if (n <= 1) return 0.0;
  double inv = 1.0 / static_cast<double>(n);
  double ss = ss_ + other.ss_;
  double centroid_norm2 = 0.0;
  for (int i = 0; i < dim(); ++i) {
    double ls = ls_[i] + other.ls_[i];
    centroid_norm2 += (ls * inv) * (ls * inv);
  }
  double r2 = ss * inv - centroid_norm2;
  return r2 > 0.0 ? std::sqrt(r2) : 0.0;
}

double CfVector::MergedRadiusWithPoint(const float* point, int dim) const {
  WALRUS_DCHECK_EQ(dim, this->dim());
  int64_t n = count_ + 1;
  double inv = 1.0 / static_cast<double>(n);
  double ss = ss_;
  double centroid_norm2 = 0.0;
  for (int i = 0; i < dim; ++i) {
    double v = point[i];
    ss += v * v;
    double ls = ls_[i] + v;
    centroid_norm2 += (ls * inv) * (ls * inv);
  }
  double r2 = ss * inv - centroid_norm2;
  return r2 > 0.0 ? std::sqrt(r2) : 0.0;
}

}  // namespace walrus
