#ifndef WALRUS_CLUSTER_CF_TREE_H_
#define WALRUS_CLUSTER_CF_TREE_H_

#include <memory>
#include <vector>

#include "cluster/cf.h"
#include "common/status.h"

namespace walrus {

/// Height-balanced CF-tree (BIRCH [ZRL96] section 4.1). Internal nodes hold
/// up to `branching` (CF, child) entries; leaves hold up to `leaf_entries`
/// subcluster CFs. A point descends along closest centroids; the closest
/// leaf subcluster absorbs it if the merged radius stays within `threshold`,
/// otherwise it starts a new subcluster. Overfull nodes split along the
/// farthest entry pair, recursively up to the root.
class CfTree {
 public:
  CfTree(int dim, double threshold, int branching = 8, int leaf_entries = 8);

  CfTree(const CfTree&) = delete;
  CfTree& operator=(const CfTree&) = delete;
  CfTree(CfTree&&) noexcept;
  CfTree& operator=(CfTree&&) noexcept;
  ~CfTree();

  /// Inserts one point (length == dim()).
  void InsertPoint(const float* point);

  /// Inserts a whole subcluster CF (used when rebuilding with a larger
  /// threshold: leaf entries of the old tree are re-inserted wholesale).
  void InsertCf(const CfVector& cf);

  /// All leaf subcluster CFs, left to right.
  std::vector<CfVector> LeafClusters() const;

  int dim() const { return dim_; }
  double threshold() const { return threshold_; }
  int64_t point_count() const { return point_count_; }
  /// Number of leaf subclusters currently in the tree.
  int leaf_cluster_count() const { return leaf_cluster_count_; }
  /// Total nodes (diagnostics / memory-bound rebuild policy).
  int node_count() const { return node_count_; }

  /// Deep structural validation: CF additivity (each internal entry's
  /// N/LS/SS equals the sum over its child's entries, within floating-point
  /// tolerance), subcluster radius <= threshold at leaves, branching-factor
  /// bounds, uniform leaf depth, and the N/leaf/node counters. Returns an
  /// error describing the first violation. O(n); invoked from tests and,
  /// when DeepChecksEnabled(), after clustering runs.
  Status Validate() const;

  /// Test-only fault injection: adds `delta` to the square-sum of the
  /// leftmost leaf subcluster CF without updating any ancestor, so
  /// Validate() must report the corruption. Fatal on an empty tree.
  void TestOnlyCorruptFirstLeafCf(double delta);

 private:
  struct Node;

  /// Outcome of inserting into a subtree: if the child split, `new_sibling`
  /// holds the extra node to add to the parent.
  struct InsertOutcome {
    std::unique_ptr<Node> new_sibling;
  };

  InsertOutcome InsertIntoSubtree(Node* node, const CfVector& cf);
  std::unique_ptr<Node> SplitNode(Node* node);
  void CollectLeafClusters(const Node* node, std::vector<CfVector>* out) const;

  int dim_;
  double threshold_;
  int branching_;
  int leaf_entries_;
  int64_t point_count_ = 0;
  int leaf_cluster_count_ = 0;
  int node_count_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace walrus

#endif  // WALRUS_CLUSTER_CF_TREE_H_
