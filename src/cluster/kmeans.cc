#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace walrus {
namespace {

double SquaredDistance(const float* a, const float* b, int dim) {
  double sum = 0.0;
  for (int i = 0; i < dim; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<std::vector<float>> SeedPlusPlus(const float* points, int n,
                                             int dim, int k, Rng* rng) {
  std::vector<std::vector<float>> centroids;
  centroids.reserve(k);
  int first = rng->NextInt(0, n - 1);
  centroids.emplace_back(points + static_cast<size_t>(first) * dim,
                         points + static_cast<size_t>(first + 1) * dim);
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    const std::vector<float>& last = centroids.back();
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double d = SquaredDistance(points + static_cast<size_t>(i) * dim,
                                 last.data(), dim);
      dist2[i] = std::min(dist2[i], d);
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with existing centroids.
      int idx = rng->NextInt(0, n - 1);
      centroids.emplace_back(points + static_cast<size_t>(idx) * dim,
                             points + static_cast<size_t>(idx + 1) * dim);
      continue;
    }
    double target = rng->NextDouble() * total;
    double run = 0.0;
    int chosen = n - 1;
    for (int i = 0; i < n; ++i) {
      run += dist2[i];
      if (run >= target) {
        chosen = i;
        break;
      }
    }
    centroids.emplace_back(points + static_cast<size_t>(chosen) * dim,
                           points + static_cast<size_t>(chosen + 1) * dim);
  }
  return centroids;
}

}  // namespace

KMeansResult KMeansCluster(const float* points, int n, int dim,
                           const KMeansParams& params) {
  WALRUS_CHECK_GE(n, 1);
  WALRUS_CHECK_GE(dim, 1);
  int k = std::min(params.k, n);
  WALRUS_CHECK_GE(k, 1);

  Rng rng(params.seed, /*stream=*/0x6b6d65616e73ULL);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, n, dim, k, &rng);
  result.assignments.assign(n, -1);

  std::vector<std::vector<double>> sums(k, std::vector<double>(dim));
  std::vector<int64_t> counts(k);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool changed = false;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    result.inertia = 0.0;

    for (int i = 0; i < n; ++i) {
      const float* p = points + static_cast<size_t>(i) * dim;
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d = SquaredDistance(p, result.centroids[c].data(), dim);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
      result.inertia += best_dist;
      ++counts[best];
      for (int d = 0; d < dim; ++d) sums[best][d] += p[d];
    }

    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old centroid
      for (int d = 0; d < dim; ++d) {
        result.centroids[c][d] =
            static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
      }
    }
    if (params.early_stop && !changed) break;
  }
  return result;
}

}  // namespace walrus
