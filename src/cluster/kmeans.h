#ifndef WALRUS_CLUSTER_KMEANS_H_
#define WALRUS_CLUSTER_KMEANS_H_

#include <vector>

#include "common/random.h"

namespace walrus {

/// Lloyd's k-means with k-means++ seeding. Included as an ablation baseline
/// against BIRCH pre-clustering: k-means needs k fixed in advance and
/// multiple passes, which is exactly why the paper picks BIRCH (linear,
/// radius-bounded, cluster count adapts to image complexity).
struct KMeansParams {
  int k = 8;
  int max_iterations = 50;
  uint64_t seed = 1;
  /// Stop when no assignment changes.
  bool early_stop = true;
};

struct KMeansResult {
  std::vector<std::vector<float>> centroids;
  std::vector<int> assignments;
  int iterations = 0;
  double inertia = 0.0;  // sum of squared distances to assigned centroids
};

/// Clusters `n` points of dimension `dim` (point i at points + i*dim).
/// k is clamped to n.
KMeansResult KMeansCluster(const float* points, int n, int dim,
                           const KMeansParams& params);

}  // namespace walrus

#endif  // WALRUS_CLUSTER_KMEANS_H_
