#ifndef WALRUS_CLUSTER_CF_H_
#define WALRUS_CLUSTER_CF_H_

#include <cstdint>
#include <vector>

namespace walrus {

/// BIRCH Clustering Feature [ZRL96]: the sufficient statistics
/// (N, LS, SS) of a set of d-dimensional points, where LS is the linear sum
/// and SS the sum of squared norms. CFs are additive, which is what makes
/// the CF-tree incremental: absorbing a point or merging two subclusters is
/// O(d) and exact.
class CfVector {
 public:
  CfVector() = default;
  explicit CfVector(int dim) : ls_(dim, 0.0) {}

  /// CF of a single point.
  static CfVector FromPoint(const float* point, int dim);

  int dim() const { return static_cast<int>(ls_.size()); }
  int64_t count() const { return count_; }
  const std::vector<double>& linear_sum() const { return ls_; }
  double square_sum() const { return ss_; }

  bool empty() const { return count_ == 0; }

  /// Adds one point (dimension must match; empty CFs adopt it).
  void AddPoint(const float* point, int dim);

  /// Adds another CF (the additivity theorem).
  void Merge(const CfVector& other);

  /// Centroid LS/N. Undefined for empty CFs (checked).
  std::vector<float> Centroid() const;

  /// Root-mean-square distance of member points from the centroid:
  /// sqrt(SS/N - ||LS/N||^2). This is BIRCH's radius R.
  double Radius() const;

  /// Average pairwise distance diameter D =
  /// sqrt((2N*SS - 2||LS||^2) / (N(N-1))); 0 when N < 2.
  double Diameter() const;

  /// Euclidean distance between the centroids of two CFs (BIRCH metric D0).
  static double CentroidDistance(const CfVector& a, const CfVector& b);

  /// Radius of the union of this CF and `other` without materializing it.
  double MergedRadius(const CfVector& other) const;

  /// Radius of the union of this CF and a single point.
  double MergedRadiusWithPoint(const float* point, int dim) const;

  /// Test-only fault injection: perturbs the square-sum so validators can
  /// be shown to catch a corrupted CF. Never call outside tests.
  void TestOnlyPerturbSquareSum(double delta) { ss_ += delta; }

 private:
  int64_t count_ = 0;
  std::vector<double> ls_;
  double ss_ = 0.0;
};

}  // namespace walrus

#endif  // WALRUS_CLUSTER_CF_H_
