#include "cluster/cf_tree.h"

#include <limits>
#include <utility>

#include "common/logging.h"

namespace walrus {

struct CfTree::Node {
  bool is_leaf = true;
  /// Parallel arrays: entries[i] summarizes children[i]'s subtree (internal)
  /// or subcluster i (leaf).
  std::vector<CfVector> entries;
  std::vector<std::unique_ptr<Node>> children;
};

CfTree::CfTree(CfTree&&) noexcept = default;
CfTree& CfTree::operator=(CfTree&&) noexcept = default;
CfTree::~CfTree() = default;

CfTree::CfTree(int dim, double threshold, int branching, int leaf_entries)
    : dim_(dim),
      threshold_(threshold),
      branching_(branching),
      leaf_entries_(leaf_entries),
      root_(std::make_unique<Node>()) {
  WALRUS_CHECK_GE(dim, 1);
  WALRUS_CHECK_GE(threshold, 0.0);
  WALRUS_CHECK_GE(branching, 2);
  WALRUS_CHECK_GE(leaf_entries, 2);
  node_count_ = 1;
}

namespace {

/// Index of the entry whose centroid is closest to cf's centroid.
int ClosestEntry(const std::vector<CfVector>& entries, const CfVector& cf) {
  WALRUS_DCHECK(!entries.empty());
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    double d = CfVector::CentroidDistance(entries[i], cf);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

void CfTree::InsertPoint(const float* point) {
  InsertCf(CfVector::FromPoint(point, dim_));
  // point_count_ is maintained by InsertCf.
}

void CfTree::InsertCf(const CfVector& cf) {
  WALRUS_CHECK_EQ(cf.dim(), dim_);
  WALRUS_CHECK(!cf.empty());
  point_count_ += cf.count();
  InsertOutcome outcome = InsertIntoSubtree(root_.get(), cf);
  if (outcome.new_sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    CfVector left_cf(dim_);
    for (const CfVector& e : root_->entries) left_cf.Merge(e);
    CfVector right_cf(dim_);
    for (const CfVector& e : outcome.new_sibling->entries) right_cf.Merge(e);
    new_root->entries.push_back(std::move(left_cf));
    new_root->entries.push_back(std::move(right_cf));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(outcome.new_sibling));
    root_ = std::move(new_root);
    ++node_count_;
  }
}

CfTree::InsertOutcome CfTree::InsertIntoSubtree(Node* node,
                                                const CfVector& cf) {
  InsertOutcome outcome;
  if (node->is_leaf) {
    if (!node->entries.empty()) {
      int idx = ClosestEntry(node->entries, cf);
      if (node->entries[idx].MergedRadius(cf) <= threshold_) {
        node->entries[idx].Merge(cf);
        return outcome;
      }
    }
    node->entries.push_back(cf);
    ++leaf_cluster_count_;
    if (static_cast<int>(node->entries.size()) > leaf_entries_) {
      outcome.new_sibling = SplitNode(node);
    }
    return outcome;
  }

  int idx = ClosestEntry(node->entries, cf);
  InsertOutcome child_outcome = InsertIntoSubtree(node->children[idx].get(), cf);
  node->entries[idx].Merge(cf);
  if (child_outcome.new_sibling != nullptr) {
    // Recompute the split child's CF and append the new sibling.
    CfVector left_cf(dim_);
    Node* child = node->children[idx].get();
    if (child->is_leaf) {
      for (const CfVector& e : child->entries) left_cf.Merge(e);
    } else {
      for (const CfVector& e : child->entries) left_cf.Merge(e);
    }
    node->entries[idx] = std::move(left_cf);
    CfVector right_cf(dim_);
    for (const CfVector& e : child_outcome.new_sibling->entries) {
      right_cf.Merge(e);
    }
    node->entries.push_back(std::move(right_cf));
    node->children.push_back(std::move(child_outcome.new_sibling));
    if (static_cast<int>(node->entries.size()) > branching_) {
      outcome.new_sibling = SplitNode(node);
    }
  }
  return outcome;
}

std::unique_ptr<CfTree::Node> CfTree::SplitNode(Node* node) {
  // Seed with the farthest pair of entry centroids, then assign each entry
  // to the closer seed (BIRCH split).
  size_t n = node->entries.size();
  WALRUS_DCHECK_LE(2u, n);
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = CfVector::CentroidDistance(node->entries[i], node->entries[j]);
      if (d > worst) {
        worst = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  ++node_count_;

  std::vector<CfVector> old_entries = std::move(node->entries);
  std::vector<std::unique_ptr<Node>> old_children = std::move(node->children);
  node->entries.clear();
  node->children.clear();

  // Copy the seeds: the loop below moves entries out of old_entries, and a
  // moved-from seed must not be used for later distance comparisons.
  const CfVector seed_cf_a = old_entries[seed_a];
  const CfVector seed_cf_b = old_entries[seed_b];
  for (size_t i = 0; i < n; ++i) {
    double da = CfVector::CentroidDistance(old_entries[i], seed_cf_a);
    double db = CfVector::CentroidDistance(old_entries[i], seed_cf_b);
    bool to_sibling = i == seed_b || (i != seed_a && db < da);
    Node* target = to_sibling ? sibling.get() : node;
    target->entries.push_back(std::move(old_entries[i]));
    if (!old_children.empty()) {
      target->children.push_back(std::move(old_children[i]));
    }
  }
  // Both sides are nonempty because the two seeds land on opposite sides.
  WALRUS_DCHECK(!node->entries.empty() && !sibling->entries.empty());
  return sibling;
}

void CfTree::CollectLeafClusters(const Node* node,
                                 std::vector<CfVector>* out) const {
  if (node->is_leaf) {
    out->insert(out->end(), node->entries.begin(), node->entries.end());
    return;
  }
  for (const auto& child : node->children) {
    CollectLeafClusters(child.get(), out);
  }
}

std::vector<CfVector> CfTree::LeafClusters() const {
  std::vector<CfVector> out;
  out.reserve(leaf_cluster_count_);
  CollectLeafClusters(root_.get(), &out);
  return out;
}

}  // namespace walrus
