#include "cluster/cf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace walrus {

struct CfTree::Node {
  bool is_leaf = true;
  /// Parallel arrays: entries[i] summarizes children[i]'s subtree (internal)
  /// or subcluster i (leaf).
  std::vector<CfVector> entries;
  std::vector<std::unique_ptr<Node>> children;
};

CfTree::CfTree(CfTree&&) noexcept = default;
CfTree& CfTree::operator=(CfTree&&) noexcept = default;
CfTree::~CfTree() = default;

CfTree::CfTree(int dim, double threshold, int branching, int leaf_entries)
    : dim_(dim),
      threshold_(threshold),
      branching_(branching),
      leaf_entries_(leaf_entries),
      root_(std::make_unique<Node>()) {
  WALRUS_CHECK_GE(dim, 1);
  WALRUS_CHECK_GE(threshold, 0.0);
  WALRUS_CHECK_GE(branching, 2);
  WALRUS_CHECK_GE(leaf_entries, 2);
  node_count_ = 1;
}

namespace {

/// Index of the entry whose centroid is closest to cf's centroid.
int ClosestEntry(const std::vector<CfVector>& entries, const CfVector& cf) {
  WALRUS_DCHECK(!entries.empty());
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    double d = CfVector::CentroidDistance(entries[i], cf);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

void CfTree::InsertPoint(const float* point) {
  InsertCf(CfVector::FromPoint(point, dim_));
  // point_count_ is maintained by InsertCf.
}

void CfTree::InsertCf(const CfVector& cf) {
  WALRUS_CHECK_EQ(cf.dim(), dim_);
  WALRUS_CHECK(!cf.empty());
  point_count_ += cf.count();
  InsertOutcome outcome = InsertIntoSubtree(root_.get(), cf);
  if (outcome.new_sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    CfVector left_cf(dim_);
    for (const CfVector& e : root_->entries) left_cf.Merge(e);
    CfVector right_cf(dim_);
    for (const CfVector& e : outcome.new_sibling->entries) right_cf.Merge(e);
    new_root->entries.push_back(std::move(left_cf));
    new_root->entries.push_back(std::move(right_cf));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(outcome.new_sibling));
    root_ = std::move(new_root);
    ++node_count_;
  }
}

CfTree::InsertOutcome CfTree::InsertIntoSubtree(Node* node,
                                                const CfVector& cf) {
  InsertOutcome outcome;
  if (node->is_leaf) {
    if (!node->entries.empty()) {
      int idx = ClosestEntry(node->entries, cf);
      if (node->entries[idx].MergedRadius(cf) <= threshold_) {
        node->entries[idx].Merge(cf);
        return outcome;
      }
    }
    node->entries.push_back(cf);
    ++leaf_cluster_count_;
    if (static_cast<int>(node->entries.size()) > leaf_entries_) {
      outcome.new_sibling = SplitNode(node);
    }
    return outcome;
  }

  int idx = ClosestEntry(node->entries, cf);
  InsertOutcome child_outcome = InsertIntoSubtree(node->children[idx].get(), cf);
  node->entries[idx].Merge(cf);
  if (child_outcome.new_sibling != nullptr) {
    // Recompute the split child's CF and append the new sibling.
    CfVector left_cf(dim_);
    Node* child = node->children[idx].get();
    if (child->is_leaf) {
      for (const CfVector& e : child->entries) left_cf.Merge(e);
    } else {
      for (const CfVector& e : child->entries) left_cf.Merge(e);
    }
    node->entries[idx] = std::move(left_cf);
    CfVector right_cf(dim_);
    for (const CfVector& e : child_outcome.new_sibling->entries) {
      right_cf.Merge(e);
    }
    node->entries.push_back(std::move(right_cf));
    node->children.push_back(std::move(child_outcome.new_sibling));
    if (static_cast<int>(node->entries.size()) > branching_) {
      outcome.new_sibling = SplitNode(node);
    }
  }
  return outcome;
}

std::unique_ptr<CfTree::Node> CfTree::SplitNode(Node* node) {
  // Seed with the farthest pair of entry centroids, then assign each entry
  // to the closer seed (BIRCH split).
  size_t n = node->entries.size();
  WALRUS_DCHECK_LE(2u, n);
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = CfVector::CentroidDistance(node->entries[i], node->entries[j]);
      if (d > worst) {
        worst = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  ++node_count_;

  std::vector<CfVector> old_entries = std::move(node->entries);
  std::vector<std::unique_ptr<Node>> old_children = std::move(node->children);
  node->entries.clear();
  node->children.clear();

  // Copy the seeds: the loop below moves entries out of old_entries, and a
  // moved-from seed must not be used for later distance comparisons.
  const CfVector seed_cf_a = old_entries[seed_a];
  const CfVector seed_cf_b = old_entries[seed_b];
  for (size_t i = 0; i < n; ++i) {
    double da = CfVector::CentroidDistance(old_entries[i], seed_cf_a);
    double db = CfVector::CentroidDistance(old_entries[i], seed_cf_b);
    bool to_sibling = i == seed_b || (i != seed_a && db < da);
    Node* target = to_sibling ? sibling.get() : node;
    target->entries.push_back(std::move(old_entries[i]));
    if (!old_children.empty()) {
      target->children.push_back(std::move(old_children[i]));
    }
  }
  // Both sides are nonempty because the two seeds land on opposite sides.
  WALRUS_DCHECK(!node->entries.empty() && !sibling->entries.empty());
  return sibling;
}

void CfTree::CollectLeafClusters(const Node* node,
                                 std::vector<CfVector>* out) const {
  if (node->is_leaf) {
    out->insert(out->end(), node->entries.begin(), node->entries.end());
    return;
  }
  for (const auto& child : node->children) {
    CollectLeafClusters(child.get(), out);
  }
}

namespace {

/// |a - b| within a relative tolerance: CF sums are accumulated in
/// different merge orders on the two sides of the additivity identity, so
/// exact equality of doubles is too strict.
bool CloseEnough(double a, double b) {
  constexpr double kRelTol = 1e-9;
  constexpr double kAbsTol = 1e-9;
  double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kAbsTol + kRelTol * scale;
}

}  // namespace

Status CfTree::Validate() const {
  struct Item {
    const Node* node;
    int depth;
  };
  std::vector<Item> stack = {{root_.get(), 0}};
  int leaf_depth = -1;
  int64_t points_seen = 0;
  int leaves_seen = 0;
  int nodes_seen = 0;
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const Node* node = item.node;
    ++nodes_seen;
    int count = static_cast<int>(node->entries.size());
    int limit = node->is_leaf ? leaf_entries_ : branching_;
    if (count > limit) {
      return Status::Internal("cf node overfull: " + std::to_string(count) +
                              " entries, limit " + std::to_string(limit));
    }
    if (node != root_.get() && count == 0) {
      return Status::Internal("empty non-root cf node");
    }
    for (const CfVector& cf : node->entries) {
      if (cf.empty()) return Status::Internal("empty cf entry");
      if (cf.dim() != dim_) {
        return Status::Internal("cf entry dimension " +
                                std::to_string(cf.dim()) + " != tree " +
                                std::to_string(dim_));
      }
    }
    if (node->is_leaf) {
      if (!node->children.empty()) {
        return Status::Internal("leaf cf node with children");
      }
      if (leaf_depth == -1) leaf_depth = item.depth;
      if (item.depth != leaf_depth) {
        return Status::Internal("leaves at unequal depths: " +
                                std::to_string(item.depth) + " and " +
                                std::to_string(leaf_depth));
      }
      leaves_seen += count;
      for (const CfVector& cf : node->entries) {
        points_seen += cf.count();
        // Absorption only happens when the merged radius stays within the
        // threshold, so every leaf subcluster obeys it (BIRCH 4.1).
        double radius = cf.Radius();
        if (radius > threshold_ && !CloseEnough(radius, threshold_)) {
          return Status::Internal(
              "leaf subcluster radius " + std::to_string(radius) +
              " exceeds threshold " + std::to_string(threshold_));
        }
      }
      continue;
    }
    if (node->children.size() != node->entries.size()) {
      return Status::Internal("cf entries/children arity mismatch");
    }
    for (size_t i = 0; i < node->entries.size(); ++i) {
      // CF additivity (BIRCH theorem 4.1): a nonleaf entry must equal the
      // sum of the CFs in the child it summarizes.
      const Node* child = node->children[i].get();
      CfVector sum(dim_);
      for (const CfVector& cf : child->entries) sum.Merge(cf);
      const CfVector& stored = node->entries[i];
      if (stored.count() != sum.count()) {
        return Status::Internal(
            "cf additivity violated: stored N " +
            std::to_string(stored.count()) + " != children sum " +
            std::to_string(sum.count()));
      }
      if (!CloseEnough(stored.square_sum(), sum.square_sum())) {
        return Status::Internal("cf additivity violated: SS drift");
      }
      for (int d = 0; d < dim_; ++d) {
        if (!CloseEnough(stored.linear_sum()[d], sum.linear_sum()[d])) {
          return Status::Internal("cf additivity violated: LS drift at dim " +
                                  std::to_string(d));
        }
      }
      stack.push_back({child, item.depth + 1});
    }
  }
  if (points_seen != point_count_) {
    return Status::Internal("point count mismatch: counted " +
                            std::to_string(points_seen) + " expected " +
                            std::to_string(point_count_));
  }
  if (leaves_seen != leaf_cluster_count_) {
    return Status::Internal("leaf cluster count mismatch: counted " +
                            std::to_string(leaves_seen) + " expected " +
                            std::to_string(leaf_cluster_count_));
  }
  if (nodes_seen != node_count_) {
    return Status::Internal("node count mismatch: counted " +
                            std::to_string(nodes_seen) + " expected " +
                            std::to_string(node_count_));
  }
  return Status::OK();
}

void CfTree::TestOnlyCorruptFirstLeafCf(double delta) {
  Node* node = root_.get();
  while (!node->is_leaf) {
    WALRUS_CHECK(!node->children.empty());
    node = node->children.front().get();
  }
  WALRUS_CHECK(!node->entries.empty()) << "cannot corrupt an empty tree";
  node->entries.front().TestOnlyPerturbSquareSum(delta);
}

std::vector<CfVector> CfTree::LeafClusters() const {
  std::vector<CfVector> out;
  out.reserve(leaf_cluster_count_);
  CollectLeafClusters(root_.get(), &out);
  return out;
}

}  // namespace walrus
