#ifndef WALRUS_CLUSTER_BIRCH_H_
#define WALRUS_CLUSTER_BIRCH_H_

#include <vector>

#include "cluster/cf.h"

namespace walrus {

/// Knobs for the BIRCH pre-clustering phase (phase 1 of [ZRL96]), the
/// clustering WALRUS runs over window signatures (paper section 5.3).
struct BirchParams {
  /// Radius threshold: a leaf subcluster absorbs a point only while its
  /// radius stays within this bound. This is the paper's epsilon_c.
  double threshold = 0.05;
  /// Max entries per internal node (B).
  int branching = 8;
  /// Max subclusters per leaf node (L).
  int leaf_entries = 8;
  /// Memory bound expressed as a node budget; when the tree outgrows it,
  /// it is rebuilt with a larger threshold (0 = unlimited, never rebuild).
  int max_nodes = 0;
  /// Threshold multiplier used on rebuild.
  double threshold_growth = 1.5;
};

/// Result of pre-clustering `n` points.
struct BirchResult {
  /// One CF per subcluster found.
  std::vector<CfVector> clusters;
  /// Subcluster centroids (clusters[i].Centroid(), precomputed).
  std::vector<std::vector<float>> centroids;
  /// For every input point, the index of the closest subcluster centroid
  /// (final assignment pass; BIRCH phase 1 itself is streaming and does not
  /// retain point membership).
  std::vector<int> assignments;
  /// Threshold actually in effect at the end (>= params.threshold if the
  /// node budget forced rebuilds).
  double final_threshold = 0.0;
  int rebuilds = 0;
};

/// Runs BIRCH pre-clustering over `n` points of dimension `dim` stored
/// contiguously in `points` (point i at points + i*dim).
BirchResult BirchPreCluster(const float* points, int n, int dim,
                            const BirchParams& params);

/// Convenience overload for a vector of points.
BirchResult BirchPreCluster(const std::vector<std::vector<float>>& points,
                            const BirchParams& params);

}  // namespace walrus

#endif  // WALRUS_CLUSTER_BIRCH_H_
