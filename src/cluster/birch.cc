#include "cluster/birch.h"

#include <limits>

#include "common/check.h"
#include "common/metrics.h"
#include "cluster/cf_tree.h"

namespace walrus {
namespace {

/// Rebuilds `tree` with a larger threshold by re-inserting its leaf
/// subclusters (BIRCH's threshold-raising rebuild; cheaper than rescanning
/// the data because CFs are additive).
CfTree RebuildWithThreshold(const CfTree& tree, double new_threshold,
                            const BirchParams& params) {
  CfTree rebuilt(tree.dim(), new_threshold, params.branching,
                 params.leaf_entries);
  for (const CfVector& cf : tree.LeafClusters()) {
    rebuilt.InsertCf(cf);
  }
  return rebuilt;
}

}  // namespace

BirchResult BirchPreCluster(const float* points, int n, int dim,
                            const BirchParams& params) {
  WALRUS_CHECK_GE(n, 1);
  WALRUS_CHECK_GE(dim, 1);
  WALRUS_CHECK_GT(params.threshold_growth, 1.0);

  CfTree tree(dim, params.threshold, params.branching, params.leaf_entries);
  BirchResult result;
  for (int i = 0; i < n; ++i) {
    tree.InsertPoint(points + static_cast<size_t>(i) * dim);
    if (params.max_nodes > 0 && tree.node_count() > params.max_nodes) {
      double new_threshold =
          tree.threshold() <= 0.0
              ? 1e-3
              : tree.threshold() * params.threshold_growth;
      tree = RebuildWithThreshold(tree, new_threshold, params);
      ++result.rebuilds;
    }
  }

  result.clusters = tree.LeafClusters();
  result.final_threshold = tree.threshold();
  result.centroids.reserve(result.clusters.size());
  for (const CfVector& cf : result.clusters) {
    result.centroids.push_back(cf.Centroid());
  }

  // Final assignment pass: nearest subcluster centroid per point.
  result.assignments.resize(n);
  for (int i = 0; i < n; ++i) {
    const float* p = points + static_cast<size_t>(i) * dim;
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      const std::vector<float>& centroid = result.centroids[c];
      double dist = 0.0;
      for (int k = 0; k < dim; ++k) {
        double d = static_cast<double>(p[k]) - centroid[k];
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<int>(c);
      }
    }
    result.assignments[i] = best;
  }

  // Registry counters: clustering volume and rebuild pressure (a rising
  // rebuild rate means the node budget is too small for the workload).
  {
    static Counter* const runs =
        MetricsRegistry::Global().GetCounter("walrus.birch.runs");
    static Counter* const points_clustered =
        MetricsRegistry::Global().GetCounter("walrus.birch.points");
    static Counter* const clusters =
        MetricsRegistry::Global().GetCounter("walrus.birch.clusters");
    static Counter* const rebuilds =
        MetricsRegistry::Global().GetCounter("walrus.birch.rebuilds");
    runs->Increment();
    points_clustered->Increment(static_cast<uint64_t>(n));
    clusters->Increment(result.clusters.size());
    rebuilds->Increment(static_cast<uint64_t>(result.rebuilds));
  }
  return result;
}

BirchResult BirchPreCluster(const std::vector<std::vector<float>>& points,
                            const BirchParams& params) {
  WALRUS_CHECK(!points.empty());
  int dim = static_cast<int>(points[0].size());
  std::vector<float> flat;
  flat.reserve(points.size() * dim);
  for (const auto& p : points) {
    WALRUS_CHECK_EQ(static_cast<int>(p.size()), dim);
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return BirchPreCluster(flat.data(), static_cast<int>(points.size()), dim,
                         params);
}

}  // namespace walrus
