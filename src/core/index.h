#ifndef WALRUS_CORE_INDEX_H_
#define WALRUS_CORE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.h"
#include "core/region.h"
#include "core/region_extractor.h"
#include "core/signature_filter.h"
#include "image/image.h"
#include "spatial/rstar_tree.h"
#include "storage/catalog.h"
#include "storage/disk_rstar.h"

#include <optional>

namespace walrus {

/// Packs (image_id, region_id) into one R*-tree payload. Image ids must fit
/// in 48 bits and region ids in 16.
uint64_t EncodeRegionPayload(uint64_t image_id, uint32_t region_id);
void DecodeRegionPayload(uint64_t payload, uint64_t* image_id,
                         uint32_t* region_id);

/// The WALRUS image database: every indexed image is decomposed into
/// regions (section 5.3); region signatures go into an R*-tree (section
/// 5.4) and region metadata (centroid, signature bounding box, coverage
/// bitmap) into the catalog. Both parts serialize to disk.
class WalrusIndex {
 public:
  /// Empty index. `params` fixes the extraction settings and the signature
  /// dimensionality for the index's lifetime (persisted alongside the data
  /// and checked on Open).
  explicit WalrusIndex(WalrusParams params);

  WalrusIndex(const WalrusIndex&) = delete;
  WalrusIndex& operator=(const WalrusIndex&) = delete;
  WalrusIndex(WalrusIndex&&) = default;
  WalrusIndex& operator=(WalrusIndex&&) = default;

  /// The construction-time parameters (immutable).
  const WalrusParams& params() const { return params_; }
  /// Image + region metadata store (names, areas, signatures, bitmaps).
  const Catalog& catalog() const { return catalog_; }
  /// The in-memory R*-tree. Empty when the index was opened paged
  /// (is_paged()); use ProbeRange/ProbeNearest, which dispatch correctly.
  const RStarTree& tree() const { return tree_; }

  /// The binary prefilter tier (core/signature_filter.h), maintained in
  /// lockstep with the catalog by every mutation and load path.
  const SignatureStore& signatures() const { return signatures_; }

  /// True when region probes are served from the on-disk page tree.
  bool is_paged() const { return disk_tree_.has_value(); }

  /// The paged backend, or nullptr for in-memory indexes (IO diagnostics).
  const DiskRStarTree* disk_tree() const {
    return disk_tree_.has_value() ? &*disk_tree_ : nullptr;
  }
  /// Mutable access to the paged backend (cache-capacity tuning).
  DiskRStarTree* disk_tree() {
    return disk_tree_.has_value() ? &*disk_tree_ : nullptr;
  }

  /// Region-signature probe: streams every indexed region whose rect
  /// intersects `query` (in-memory or paged backend).
  [[nodiscard]] Status ProbeRange(
      const Rect& query,
      const std::function<bool(const Rect&, uint64_t)>& visitor) const;

  /// Batched multi-probe: answers all query-region probes in one shared
  /// tree traversal (see RStarTree::RangeQueryBatch). The visitor's first
  /// argument is the index into `probes` of the matching probe; the
  /// delivered (probe, payload) set is identical to running ProbeRange per
  /// probe, grouped by node rather than by probe.
  [[nodiscard]] Status ProbeRangeBatch(
      const std::vector<Rect>& probes,
      const std::function<bool(int, const Rect&, uint64_t)>& visitor) const;

  /// k nearest region signatures to `point` (centroid mode).
  [[nodiscard]] Result<std::vector<std::pair<uint64_t, double>>> ProbeNearest(
      const std::vector<float>& point, int k) const;

  /// Number of indexed images.
  size_t ImageCount() const { return catalog_.size(); }
  /// Total regions across all indexed images (== R*-tree entry count).
  size_t RegionCount() const { return catalog_.TotalRegions(); }

  /// Extracts regions from `image` and indexes them under `image_id`.
  /// `stats` (optional) receives extraction diagnostics.
  [[nodiscard]] Status AddImage(uint64_t image_id, const std::string& name,
                  const ImageF& image, ExtractionStats* stats = nullptr);

  /// Removes an indexed image: its catalog record and every one of its
  /// region entries in the R*-tree. NotFound when the id is not indexed.
  [[nodiscard]] Status RemoveImage(uint64_t image_id);

  /// Region extraction + record assembly without touching any index: the
  /// live-ingest path (wal/live_index.h) runs this outside its locks, logs
  /// the record to the WAL, and applies it with AddImageRecord. Rejects
  /// image ids that do not fit the packed 48-bit R*-tree payload with
  /// InvalidArgument (wire input reaches here, so this must not be a
  /// contract check).
  [[nodiscard]] static Result<ImageRecord> ExtractImageRecord(
      const WalrusParams& params, uint64_t image_id, const std::string& name,
      const ImageF& image, ExtractionStats* stats = nullptr);

  /// Indexes an already-extracted record: every region signature goes into
  /// the R*-tree with exactly the rect FromRecords would bulk-load for it,
  /// so an index grown by AddImageRecord answers probes identically to one
  /// rebuilt offline from the same records. AlreadyExists on a duplicate
  /// id; InvalidArgument when an id or region id overflows the packed
  /// payload; Unimplemented on a paged (read-only) index.
  [[nodiscard]] Status AddImageRecord(ImageRecord record);

  /// One image of a batch insert.
  struct PendingImage {
    uint64_t image_id = 0;
    std::string name;
    ImageF image;
  };

  /// Adds a batch of images, running region extraction (the expensive part:
  /// wavelets + clustering) across `num_threads` workers and then inserting
  /// serially. 0 threads = hardware concurrency. The batch is atomic: on
  /// any extraction failure or duplicate id nothing is added.
  [[nodiscard]] Status AddImages(std::vector<PendingImage> images,
                                 int num_threads = 0);

  /// Builds an index directly from already-extracted catalog records,
  /// STR-bulk-loading the tree from their region signatures. This is the
  /// repartitioning path: ShardedIndex::Partition slices one index's
  /// catalog by shard and rebuilds each slice without re-running region
  /// extraction. Fails on duplicate image ids.
  [[nodiscard]] static Result<WalrusIndex> FromRecords(WalrusParams params,
                                         std::vector<ImageRecord> records);

  /// Materializes the Region objects of an indexed image.
  [[nodiscard]] Result<std::vector<Region>> ImageRegions(
      uint64_t image_id) const;

  /// Pixel area (width*height) of an indexed image.
  [[nodiscard]] Result<double> ImageArea(uint64_t image_id) const;

  /// Persists to `<path_prefix>.catalog` (page file) and
  /// `<path_prefix>.index` (params + R*-tree).
  [[nodiscard]] Status Save(const std::string& path_prefix) const;

  /// Loads an index previously written by Save.
  [[nodiscard]] static Result<WalrusIndex> Open(const std::string& path_prefix);

  /// Persists with a disk-resident page tree instead of the serialized
  /// in-memory tree: `<path_prefix>.catalog`, `<path_prefix>.pmeta`
  /// (params) and `<path_prefix>.ptree` (one R-tree node per page). An
  /// index opened with OpenPaged answers queries by reading tree pages
  /// through an LRU cache -- the paper's "disk-based index" deployment.
  [[nodiscard]] Status SavePaged(const std::string& path_prefix) const;

  /// Opens a paged index written by SavePaged. The returned index is
  /// read-only: AddImage/RemoveImage on it fail the id checks as usual but
  /// the page tree never changes.
  [[nodiscard]] static Result<WalrusIndex> OpenPaged(
      const std::string& path_prefix);

  /// Deep cross-layer validation: the catalog's own invariants
  /// (Catalog::Validate), the spatial backend's own invariants
  /// (RStarTree::Validate or DiskRStarTree::Validate, including the page
  /// checksum sweep when paged), and the bridge between them -- every
  /// region signature in the catalog must appear in the tree exactly once
  /// with the same rect and payload, and vice versa. O(index size);
  /// invoked from tests and, when DeepChecksEnabled(), after mutations.
  [[nodiscard]] Status ValidateConsistency() const;

 private:
  /// (Rect, payload) entries for every region in the catalog, in the
  /// layout the trees index.
  std::vector<std::pair<Rect, uint64_t>> CatalogEntries() const;

  WalrusParams params_;
  Catalog catalog_;
  RStarTree tree_;
  SignatureStore signatures_;
  std::optional<DiskRStarTree> disk_tree_;
};

/// Serializes params (used by Save/Open; exposed for tests).
void SerializeParams(const WalrusParams& params, BinaryWriter* writer);
[[nodiscard]] Result<WalrusParams> DeserializeParams(BinaryReader* reader);

}  // namespace walrus

#endif  // WALRUS_CORE_INDEX_H_
