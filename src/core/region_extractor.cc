#include "core/region_extractor.h"

#include <cmath>

#include "cluster/birch.h"
#include "cluster/kmeans.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timer.h"

namespace walrus {

namespace {

/// Extraction metrics: how many windows go in, how many regions come out.
struct ExtractorMetrics {
  Counter* extractions;
  Counter* windows;
  Counter* clusters;
  Counter* regions;

  static const ExtractorMetrics& Get() {
    static const ExtractorMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      ExtractorMetrics m;
      m.extractions = registry.GetCounter("walrus.extract.count");
      m.windows = registry.GetCounter("walrus.extract.windows");
      m.clusters = registry.GetCounter("walrus.extract.clusters");
      m.regions = registry.GetCounter("walrus.extract.regions");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

std::vector<Region> ExtractRegionsFromWindows(
    const WindowSignatureSet& set, int image_width, int image_height,
    const WalrusParams& params, ExtractionStats* stats,
    const WindowSignatureSet* refined_set, QueryTrace* trace) {
  WALRUS_CHECK_GT(set.Count(), 0);
  // Cluster the window signatures: BIRCH pre-clustering (the paper's
  // choice) or k-means (ablation).
  std::vector<std::vector<float>> centroids;
  std::vector<int> assignments;
  double cluster_seconds = 0.0;
  {
    TraceScope cluster_span(trace, "cluster");
    WallTimer cluster_timer;
    if (params.clusterer == ClustererKind::kKMeans) {
      KMeansParams kmeans;
      kmeans.k = params.kmeans_k > 0
                     ? params.kmeans_k
                     : std::max(2, static_cast<int>(
                                       std::sqrt(static_cast<double>(
                                           set.Count())) /
                                       2.0));
      kmeans.seed = 1;
      KMeansResult result =
          KMeansCluster(set.signatures.data(), set.Count(), set.dim, kmeans);
      centroids = std::move(result.centroids);
      assignments = std::move(result.assignments);
    } else {
      BirchParams birch;
      birch.threshold = params.cluster_epsilon;
      birch.branching = params.birch_branching;
      birch.leaf_entries = params.birch_leaf_entries;
      BirchResult result =
          BirchPreCluster(set.signatures.data(), set.Count(), set.dim, birch);
      centroids = std::move(result.centroids);
      assignments = std::move(result.assignments);
    }
    cluster_seconds = cluster_timer.ElapsedSeconds();
  }

  const int num_clusters = static_cast<int>(centroids.size());

  TraceScope assemble_span(trace, "assemble");
  WallTimer assemble_timer;

  // Signature bounding box and coverage bitmap per cluster, from the final
  // point assignments.
  std::vector<Rect> boxes(num_clusters, Rect::Empty(set.dim));
  std::vector<CoverageBitmap> bitmaps(num_clusters,
                                      CoverageBitmap(params.bitmap_side));
  std::vector<uint64_t> member_counts(num_clusters, 0);
  // Refined centroid accumulators (section 5.5).
  int refined_dim = 0;
  std::vector<std::vector<double>> refined_sums;
  if (refined_set != nullptr) {
    WALRUS_CHECK_EQ(refined_set->Count(), set.Count());
    refined_dim = refined_set->dim;
    refined_sums.assign(num_clusters, std::vector<double>(refined_dim, 0.0));
  }
  for (int i = 0; i < set.Count(); ++i) {
    int c = assignments[i];
    const float* sig = set.SignatureAt(i);
    boxes[c].ExpandToInclude(std::vector<float>(sig, sig + set.dim));
    const WindowPlacement& win = set.windows[i];
    bitmaps[c].MarkWindow(win.x, win.y, win.size, win.size, image_width,
                          image_height);
    ++member_counts[c];
    if (refined_set != nullptr) {
      const float* refined = refined_set->SignatureAt(i);
      for (int d = 0; d < refined_dim; ++d) refined_sums[c][d] += refined[d];
    }
  }

  std::vector<Region> regions;
  regions.reserve(num_clusters);
  for (int c = 0; c < num_clusters; ++c) {
    if (member_counts[c] < static_cast<uint64_t>(params.min_cluster_windows)) {
      continue;
    }
    if (member_counts[c] == 0) continue;  // empty after reassignment
    Region region;
    region.region_id = static_cast<uint32_t>(regions.size());
    region.centroid = centroids[c];
    region.bounding_box = boxes[c];
    region.bitmap = bitmaps[c];
    region.window_count = member_counts[c];
    if (refined_set != nullptr) {
      region.refined_centroid.resize(refined_dim);
      double inv = 1.0 / static_cast<double>(member_counts[c]);
      for (int d = 0; d < refined_dim; ++d) {
        region.refined_centroid[d] =
            static_cast<float>(refined_sums[c][d] * inv);
      }
    }
    regions.push_back(std::move(region));
  }

  const ExtractorMetrics& metrics = ExtractorMetrics::Get();
  metrics.extractions->Increment();
  metrics.windows->Increment(static_cast<uint64_t>(set.Count()));
  metrics.clusters->Increment(static_cast<uint64_t>(num_clusters));
  metrics.regions->Increment(regions.size());

  if (stats != nullptr) {
    stats->window_count = set.Count();
    stats->cluster_count = num_clusters;
    stats->region_count = static_cast<int>(regions.size());
    stats->birch_threshold = params.cluster_epsilon;
    stats->cluster_seconds = cluster_seconds;
    stats->assemble_seconds = assemble_timer.ElapsedSeconds();
  }
  return regions;
}

namespace {

/// Copies the windows of `set` that lie fully inside `scene` (same layout).
WindowSignatureSet FilterToScene(const WindowSignatureSet& set,
                                 const PixelRect& scene) {
  WindowSignatureSet filtered;
  filtered.dim = set.dim;
  for (int i = 0; i < set.Count(); ++i) {
    const WindowPlacement& win = set.windows[i];
    if (!scene.ContainsWindow(win.x, win.y, win.size)) continue;
    filtered.windows.push_back(win);
    const float* sig = set.SignatureAt(i);
    filtered.signatures.insert(filtered.signatures.end(), sig, sig + set.dim);
  }
  return filtered;
}

}  // namespace

Result<std::vector<Region>> ExtractSceneRegions(const ImageF& image,
                                                const PixelRect& scene,
                                                const WalrusParams& params,
                                                ExtractionStats* stats,
                                                QueryTrace* trace) {
  if (scene.width <= 0 || scene.height <= 0 || scene.x < 0 || scene.y < 0 ||
      scene.x + scene.width > image.width() ||
      scene.y + scene.height > image.height()) {
    return Status::InvalidArgument("scene rectangle outside the image");
  }
  WallTimer wavelet_timer;
  Result<WindowSignatureSet> set = Status::Internal("unreachable");
  {
    TraceScope wavelet_span(trace, "wavelet");
    set = ComputeWindowSignatures(image, params);
  }
  WALRUS_RETURN_IF_ERROR(set.status());
  WindowSignatureSet scene_set = FilterToScene(*set, scene);
  if (scene_set.Count() == 0) {
    return Status::InvalidArgument(
        "scene rectangle smaller than the minimum sliding window (" +
        std::to_string(params.min_window) + "px)");
  }
  if (params.refined_signature_size > 0) {
    WalrusParams refined_params = params;
    refined_params.signature_size = params.refined_signature_size;
    refined_params.refined_signature_size = 0;
    Result<WindowSignatureSet> refined = Status::Internal("unreachable");
    {
      TraceScope wavelet_span(trace, "wavelet_refined");
      refined = ComputeWindowSignatures(image, refined_params);
    }
    WALRUS_RETURN_IF_ERROR(refined.status());
    WindowSignatureSet scene_refined = FilterToScene(*refined, scene);
    double wavelet_seconds = wavelet_timer.ElapsedSeconds();
    auto regions =
        ExtractRegionsFromWindows(scene_set, image.width(), image.height(),
                                  params, stats, &scene_refined, trace);
    if (stats != nullptr) stats->wavelet_seconds = wavelet_seconds;
    return regions;
  }
  double wavelet_seconds = wavelet_timer.ElapsedSeconds();
  auto regions = ExtractRegionsFromWindows(
      scene_set, image.width(), image.height(), params, stats, nullptr,
      trace);
  if (stats != nullptr) stats->wavelet_seconds = wavelet_seconds;
  return regions;
}

Result<std::vector<Region>> ExtractRegions(const ImageF& image,
                                           const WalrusParams& params,
                                           ExtractionStats* stats,
                                           QueryTrace* trace) {
  WallTimer wavelet_timer;
  Result<WindowSignatureSet> set = Status::Internal("unreachable");
  {
    TraceScope wavelet_span(trace, "wavelet");
    set = ComputeWindowSignatures(image, params);
  }
  WALRUS_RETURN_IF_ERROR(set.status());
  if (params.refined_signature_size > 0) {
    WalrusParams refined_params = params;
    refined_params.signature_size = params.refined_signature_size;
    refined_params.refined_signature_size = 0;
    Result<WindowSignatureSet> refined = Status::Internal("unreachable");
    {
      TraceScope wavelet_span(trace, "wavelet_refined");
      refined = ComputeWindowSignatures(image, refined_params);
    }
    WALRUS_RETURN_IF_ERROR(refined.status());
    double wavelet_seconds = wavelet_timer.ElapsedSeconds();
    auto regions =
        ExtractRegionsFromWindows(*set, image.width(), image.height(),
                                  params, stats, &*refined, trace);
    if (stats != nullptr) stats->wavelet_seconds = wavelet_seconds;
    return regions;
  }
  double wavelet_seconds = wavelet_timer.ElapsedSeconds();
  auto regions = ExtractRegionsFromWindows(*set, image.width(),
                                           image.height(), params, stats,
                                           nullptr, trace);
  if (stats != nullptr) stats->wavelet_seconds = wavelet_seconds;
  return regions;
}

}  // namespace walrus
