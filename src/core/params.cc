#include "core/params.h"

#include "common/math_util.h"

namespace walrus {

int WalrusParams::Channels() const {
  return color_space == ColorSpace::kGray ? 1 : 3;
}

int WalrusParams::SignatureDim() const {
  return Channels() * signature_size * signature_size;
}

Status WalrusParams::Validate() const {
  if (signature_size < 1 ||
      !IsPowerOfTwo(static_cast<uint32_t>(signature_size))) {
    return Status::InvalidArgument("signature_size must be a power of two");
  }
  if (min_window < 2 || !IsPowerOfTwo(static_cast<uint32_t>(min_window))) {
    return Status::InvalidArgument("min_window must be a power of two >= 2");
  }
  if (max_window < min_window ||
      !IsPowerOfTwo(static_cast<uint32_t>(max_window))) {
    return Status::InvalidArgument(
        "max_window must be a power of two >= min_window");
  }
  if (slide_step < 1 || !IsPowerOfTwo(static_cast<uint32_t>(slide_step))) {
    return Status::InvalidArgument("slide_step must be a power of two >= 1");
  }
  if (signature_size > min_window) {
    return Status::InvalidArgument(
        "signature_size cannot exceed min_window");
  }
  if (cluster_epsilon < 0.0) {
    return Status::InvalidArgument("cluster_epsilon must be >= 0");
  }
  if (bitmap_side < 1 || bitmap_side > 1024) {
    return Status::InvalidArgument("bitmap_side out of range");
  }
  if (birch_branching < 2 || birch_leaf_entries < 2) {
    return Status::InvalidArgument("birch node capacities must be >= 2");
  }
  if (kmeans_k < 0) {
    return Status::InvalidArgument("kmeans_k must be >= 0");
  }
  if (min_cluster_windows < 1) {
    return Status::InvalidArgument("min_cluster_windows must be >= 1");
  }
  if (refined_signature_size != 0) {
    if (!IsPowerOfTwo(static_cast<uint32_t>(refined_signature_size)) ||
        refined_signature_size <= signature_size) {
      return Status::InvalidArgument(
          "refined_signature_size must be a power of two > signature_size");
    }
    if (refined_signature_size > min_window) {
      return Status::InvalidArgument(
          "refined_signature_size cannot exceed min_window");
    }
  }
  return Status::OK();
}

}  // namespace walrus
