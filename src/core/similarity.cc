#include "core/similarity.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "core/packed_store.h"

namespace walrus {

bool RegionsMatchCentroid(const float* a, const float* b, int dim,
                          float epsilon) {
  // The kernel computes the full ordered sum; with nonnegative terms,
  // "some prefix exceeds eps^2" and "the total exceeds eps^2" are the same
  // predicate, so this matches the historical early-exit loop exactly.
  const double eps2 = static_cast<double>(epsilon) * epsilon;
  return simd::Active().squared_l2_f32(a, b, dim) <= eps2;
}

bool RegionsMatchBBox(const Rect& a, const Rect& b, float epsilon) {
  return a.ExpandedIntersects(epsilon, b);
}

std::vector<RegionPair> FindMatchingPairs(const std::vector<Region>& query,
                                          const std::vector<Region>& target,
                                          float epsilon,
                                          bool use_bounding_box) {
  std::vector<RegionPair> pairs;
  if (query.empty() || target.empty()) return pairs;
  // Pack the target signatures once into SoA planes; each query region then
  // scores ALL targets with one batch kernel call instead of a pointer
  // chase per (query, target) pair. Match booleans are bit-identical to the
  // historical pair loop (see common/simd.h), and pair order is preserved:
  // query-major, targets ascending.
  const simd::KernelTable& kern = simd::Active();
  const int count = static_cast<int>(target.size());
  if (use_bounding_box) {
    const PackedSignatureStore pack =
        PackedSignatureStore::FromBoundingBoxes(target);
    const int dim = pack.dim();
    std::vector<uint64_t> mask((count + 63) / 64);
    std::vector<float> qlo(dim), qhi(dim);
    for (size_t qi = 0; qi < query.size(); ++qi) {
      const Rect& qbox = query[qi].bounding_box;
      WALRUS_DCHECK_EQ(qbox.dim(), dim);
      // Same float arithmetic as Rect::Expanded, hoisted out of the pair
      // loop.
      for (int d = 0; d < dim; ++d) {
        qlo[d] = qbox.lo(d) - epsilon;
        qhi[d] = qbox.hi(d) + epsilon;
      }
      kern.batch_intersects(pack.lo_planes(), pack.hi_planes(),
                            pack.stride(), dim, count, qlo.data(),
                            qhi.data(), mask.data());
      for (size_t w = 0; w < mask.size(); ++w) {
        uint64_t bits = mask[w];
        while (bits != 0) {
          const int ti = static_cast<int>(w) * 64 + std::countr_zero(bits);
          bits &= bits - 1;
          pairs.push_back({static_cast<int>(qi), ti});
        }
      }
    }
  } else {
    const PackedSignatureStore pack =
        PackedSignatureStore::FromCentroids(target);
    const int dim = pack.dim();
    std::vector<double> dist2(count);
    for (size_t qi = 0; qi < query.size(); ++qi) {
      WALRUS_DCHECK_EQ(static_cast<int>(query[qi].centroid.size()), dim);
      const double eps2 = static_cast<double>(epsilon) * epsilon;
      kern.batch_squared_l2(pack.lo_planes(), pack.stride(), dim, count,
                            query[qi].centroid.data(), dist2.data());
      for (int ti = 0; ti < count; ++ti) {
        if (dist2[ti] <= eps2) {
          pairs.push_back({static_cast<int>(qi), ti});
        }
      }
    }
  }
  return pairs;
}

double MatchResult::SimilarityAs(SimilarityNormalization norm,
                                 double query_area,
                                 double target_area) const {
  double numerator = covered_query_area + covered_target_area;
  double denominator = query_area + target_area;
  switch (norm) {
    case SimilarityNormalization::kBothImages:
      break;
    case SimilarityNormalization::kQueryOnly:
      numerator = covered_query_area;
      denominator = query_area;
      break;
    case SimilarityNormalization::kSmallerImage:
      denominator = 2.0 * std::min(query_area, target_area);
      break;
  }
  if (denominator <= 0.0) return 0.0;
  double value = numerator / denominator;
  return value > 1.0 ? 1.0 : value;
}

namespace {

/// Scales covered-cell counts into pixel areas and assembles Definition 4.3.
MatchResult AssembleResult(int covered_query_cells, int query_cells_total,
                           int covered_target_cells, int target_cells_total,
                           int pairs_used, double query_area,
                           double target_area) {
  MatchResult result;
  result.pairs_used = pairs_used;
  result.covered_query_area =
      query_area * covered_query_cells / std::max(1, query_cells_total);
  result.covered_target_area =
      target_area * covered_target_cells / std::max(1, target_cells_total);
  double denom = query_area + target_area;
  result.similarity =
      denom > 0.0
          ? (result.covered_query_area + result.covered_target_area) / denom
          : 0.0;
  return result;
}

/// Matcher invocation counters, by kind, plus the candidate pair volume
/// they chewed through (the greedy matcher is O(pairs^2): this counter is
/// the early-warning signal for pair explosion under a loose epsilon).
void RecordMatcherMetrics(const char* kind,
                          const std::vector<RegionPair>& pairs) {
  static Counter* const quick_calls =
      MetricsRegistry::Global().GetCounter("walrus.match.quick_calls");
  static Counter* const greedy_calls =
      MetricsRegistry::Global().GetCounter("walrus.match.greedy_calls");
  static Counter* const exact_calls =
      MetricsRegistry::Global().GetCounter("walrus.match.exact_calls");
  static Counter* const pairs_scored =
      MetricsRegistry::Global().GetCounter("walrus.match.pairs_scored");
  if (kind[0] == 'q') {
    quick_calls->Increment();
  } else if (kind[0] == 'g') {
    greedy_calls->Increment();
  } else {
    exact_calls->Increment();
  }
  pairs_scored->Increment(pairs.size());
}

}  // namespace

MatchResult QuickMatch(const std::vector<Region>& query,
                       const std::vector<Region>& target,
                       const std::vector<RegionPair>& pairs,
                       double query_area, double target_area) {
  RecordMatcherMetrics("quick", pairs);
  if (pairs.empty()) return MatchResult{};
  CoverageBitmap union_q(query[0].bitmap.side());
  CoverageBitmap union_t(target[0].bitmap.side());
  for (const RegionPair& pair : pairs) {
    union_q.UnionWith(query[pair.query_index].bitmap);
    union_t.UnionWith(target[pair.target_index].bitmap);
  }
  MatchResult result = AssembleResult(
      union_q.CountSet(), union_q.CellCount(), union_t.CountSet(),
      union_t.CellCount(), static_cast<int>(pairs.size()), query_area,
      target_area);
  result.used_pairs = pairs;
  return result;
}

MatchResult GreedyMatch(const std::vector<Region>& query,
                        const std::vector<Region>& target,
                        const std::vector<RegionPair>& pairs,
                        double query_area, double target_area) {
  RecordMatcherMetrics("greedy", pairs);
  if (pairs.empty()) return MatchResult{};
  CoverageBitmap union_q(query[0].bitmap.side());
  CoverageBitmap union_t(target[0].bitmap.side());
  // Per-cell pixel weights so marginal gains are in pixel units.
  double q_cell_area = query_area / union_q.CellCount();
  double t_cell_area = target_area / union_t.CellCount();

  std::vector<bool> query_used(query.size(), false);
  std::vector<bool> target_used(target.size(), false);
  std::vector<bool> pair_taken(pairs.size(), false);
  int pairs_used = 0;
  std::vector<RegionPair> chosen;

  for (;;) {
    double best_gain = 0.0;
    int best_pair = -1;
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (pair_taken[p]) continue;
      const RegionPair& pair = pairs[p];
      if (query_used[pair.query_index] || target_used[pair.target_index]) {
        continue;
      }
      int gain_q = CoverageBitmap::UnionCount(union_q,
                                              query[pair.query_index].bitmap) -
                   union_q.CountSet();
      int gain_t =
          CoverageBitmap::UnionCount(union_t,
                                     target[pair.target_index].bitmap) -
          union_t.CountSet();
      double gain = gain_q * q_cell_area + gain_t * t_cell_area;
      if (gain > best_gain) {
        best_gain = gain;
        best_pair = static_cast<int>(p);
      }
    }
    if (best_pair < 0) break;
    const RegionPair& pair = pairs[best_pair];
    pair_taken[best_pair] = true;
    query_used[pair.query_index] = true;
    target_used[pair.target_index] = true;
    union_q.UnionWith(query[pair.query_index].bitmap);
    union_t.UnionWith(target[pair.target_index].bitmap);
    chosen.push_back(pair);
    ++pairs_used;
  }
  MatchResult result = AssembleResult(
      union_q.CountSet(), union_q.CellCount(), union_t.CountSet(),
      union_t.CellCount(), pairs_used, query_area, target_area);
  result.used_pairs = std::move(chosen);
  return result;
}

namespace {

struct ExactState {
  const std::vector<Region>* query;
  const std::vector<Region>* target;
  const std::vector<RegionPair>* pairs;
  double q_cell_area;
  double t_cell_area;
  std::vector<bool> query_used;
  std::vector<bool> target_used;
  double best_value = -1.0;
  int best_q_cells = 0;
  int best_t_cells = 0;
  int best_pairs = 0;
  std::vector<RegionPair> current;
  std::vector<RegionPair> best_set;
};

void ExactSearch(ExactState* st, size_t next, CoverageBitmap* union_q,
                 CoverageBitmap* union_t, int pairs_used) {
  double value = union_q->CountSet() * st->q_cell_area +
                 union_t->CountSet() * st->t_cell_area;
  if (value > st->best_value) {
    st->best_value = value;
    st->best_q_cells = union_q->CountSet();
    st->best_t_cells = union_t->CountSet();
    st->best_pairs = pairs_used;
    st->best_set = st->current;
  }
  if (next >= st->pairs->size()) return;

  // Branch 1: skip this pair.
  ExactSearch(st, next + 1, union_q, union_t, pairs_used);

  // Branch 2: take it if both regions are free.
  const RegionPair& pair = (*st->pairs)[next];
  if (st->query_used[pair.query_index] || st->target_used[pair.target_index]) {
    return;
  }
  CoverageBitmap saved_q = *union_q;
  CoverageBitmap saved_t = *union_t;
  union_q->UnionWith((*st->query)[pair.query_index].bitmap);
  union_t->UnionWith((*st->target)[pair.target_index].bitmap);
  st->query_used[pair.query_index] = true;
  st->target_used[pair.target_index] = true;
  st->current.push_back(pair);
  ExactSearch(st, next + 1, union_q, union_t, pairs_used + 1);
  st->current.pop_back();
  st->query_used[pair.query_index] = false;
  st->target_used[pair.target_index] = false;
  *union_q = saved_q;
  *union_t = saved_t;
}

}  // namespace

MatchResult ExactMatch(const std::vector<Region>& query,
                       const std::vector<Region>& target,
                       const std::vector<RegionPair>& pairs,
                       double query_area, double target_area) {
  RecordMatcherMetrics("exact", pairs);
  if (pairs.empty()) return MatchResult{};
  WALRUS_CHECK_LE(pairs.size(), 24u)
      << "ExactMatch is exponential; use GreedyMatch";
  ExactState st;
  st.query = &query;
  st.target = &target;
  st.pairs = &pairs;
  CoverageBitmap union_q(query[0].bitmap.side());
  CoverageBitmap union_t(target[0].bitmap.side());
  st.q_cell_area = query_area / union_q.CellCount();
  st.t_cell_area = target_area / union_t.CellCount();
  st.query_used.assign(query.size(), false);
  st.target_used.assign(target.size(), false);
  ExactSearch(&st, 0, &union_q, &union_t, 0);
  MatchResult result = AssembleResult(
      st.best_q_cells, union_q.CellCount(), st.best_t_cells,
      union_t.CellCount(), st.best_pairs, query_area, target_area);
  result.used_pairs = std::move(st.best_set);
  return result;
}

MatchResult MatchImages(const std::vector<Region>& query,
                        const std::vector<Region>& target, float epsilon,
                        bool use_bounding_box, bool use_greedy,
                        double query_area, double target_area) {
  std::vector<RegionPair> pairs =
      FindMatchingPairs(query, target, epsilon, use_bounding_box);
  return use_greedy
             ? GreedyMatch(query, target, pairs, query_area, target_area)
             : QuickMatch(query, target, pairs, query_area, target_area);
}

}  // namespace walrus
