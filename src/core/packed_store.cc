#include "core/packed_store.h"

#include "common/check.h"

namespace walrus {

PackedSignatureStore PackedSignatureStore::FromCentroids(
    const std::vector<Region>& regions) {
  PackedSignatureStore store;
  store.count_ = static_cast<int>(regions.size());
  if (regions.empty()) return store;
  store.dim_ = static_cast<int>(regions[0].centroid.size());
  store.lo_.resize(static_cast<size_t>(store.dim_) * store.count_);
  for (int e = 0; e < store.count_; ++e) {
    const std::vector<float>& c = regions[e].centroid;
    WALRUS_CHECK_EQ(static_cast<int>(c.size()), store.dim_);
    for (int d = 0; d < store.dim_; ++d) {
      store.lo_[static_cast<size_t>(d) * store.count_ + e] = c[d];
    }
  }
  return store;
}

void PackedBitSignatures::Reset(int count, int words_per_sig) {
  count_ = count;
  words_per_sig_ = words_per_sig;
  const size_t need = static_cast<size_t>(count) * words_per_sig;
  if (planes_.size() < need) planes_.resize(need);
}

void PackedBitSignatures::SetRow(int e, const uint64_t* row) {
  WALRUS_CHECK(e >= 0 && e < count_);
  for (int w = 0; w < words_per_sig_; ++w) {
    planes_[static_cast<size_t>(w) * count_ + e] = row[w];
  }
}

PackedSignatureStore PackedSignatureStore::FromBoundingBoxes(
    const std::vector<Region>& regions) {
  PackedSignatureStore store;
  store.count_ = static_cast<int>(regions.size());
  if (regions.empty()) return store;
  store.dim_ = regions[0].bounding_box.dim();
  const size_t plane_floats = static_cast<size_t>(store.dim_) * store.count_;
  store.lo_.resize(plane_floats);
  store.hi_.resize(plane_floats);
  for (int e = 0; e < store.count_; ++e) {
    const Rect& box = regions[e].bounding_box;
    WALRUS_CHECK_EQ(box.dim(), store.dim_);
    for (int d = 0; d < store.dim_; ++d) {
      store.lo_[static_cast<size_t>(d) * store.count_ + e] = box.lo(d);
      store.hi_[static_cast<size_t>(d) * store.count_ + e] = box.hi(d);
    }
  }
  return store;
}

}  // namespace walrus
