#include "core/region.h"

#include "common/check.h"
#include "core/signature_filter.h"

namespace walrus {

Rect Region::IndexRect(bool use_bounding_box) const {
  if (use_bounding_box) {
    WALRUS_CHECK(!bounding_box.IsEmpty());
    return bounding_box;
  }
  return Rect::Point(centroid);
}

RegionRecord Region::ToRecord() const {
  RegionRecord record;
  record.region_id = region_id;
  record.centroid = centroid;
  record.refined_centroid = refined_centroid;
  record.bbox_lo = bounding_box.lo();
  record.bbox_hi = bounding_box.hi();
  record.bitmap = bitmap.ToBytes();
  record.bitmap_side = static_cast<uint32_t>(bitmap.side());
  record.window_count = window_count;
  // Derived, not stored on Region: the record is the persistence format,
  // so every producer (offline add, live ingest, WAL replay) carries the
  // same quantized words.
  record.signature = ComputeSignature(record.centroid);
  return record;
}

Region Region::FromRecord(const RegionRecord& record) {
  Region region;
  region.region_id = record.region_id;
  region.centroid = record.centroid;
  region.refined_centroid = record.refined_centroid;
  region.bounding_box = Rect::Bounds(record.bbox_lo, record.bbox_hi);
  region.bitmap =
      CoverageBitmap(static_cast<int>(record.bitmap_side), record.bitmap);
  region.window_count = record.window_count;
  return region;
}

}  // namespace walrus
