#include "core/bitmap.h"

#include <bit>

#include "common/check.h"

namespace walrus {

CoverageBitmap::CoverageBitmap(int side) : side_(side) {
  WALRUS_CHECK_GE(side, 1);
  words_.assign(WordCount(), 0);
}

CoverageBitmap::CoverageBitmap(int side, const std::vector<uint8_t>& packed)
    : CoverageBitmap(side) {
  WALRUS_CHECK_EQ(static_cast<int>(packed.size()), (side * side + 7) / 8);
  for (int bit = 0; bit < side * side; ++bit) {
    if ((packed[bit / 8] >> (bit % 8)) & 1) {
      words_[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }
}

void CoverageBitmap::SetCell(int cx, int cy) {
  int bit = BitIndex(cx, cy);
  words_[bit / 64] |= uint64_t{1} << (bit % 64);
}

bool CoverageBitmap::TestCell(int cx, int cy) const {
  int bit = BitIndex(cx, cy);
  return (words_[bit / 64] >> (bit % 64)) & 1;
}

void CoverageBitmap::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

void CoverageBitmap::MarkWindow(int x, int y, int w, int h, int image_w,
                                int image_h) {
  WALRUS_DCHECK(image_w > 0 && image_h > 0);
  for (int cy = 0; cy < side_; ++cy) {
    // Center pixel of the cell row (in image coordinates).
    double center_y = (cy + 0.5) * image_h / side_;
    if (center_y < y || center_y >= y + h) continue;
    for (int cx = 0; cx < side_; ++cx) {
      double center_x = (cx + 0.5) * image_w / side_;
      if (center_x < x || center_x >= x + w) continue;
      SetCell(cx, cy);
    }
  }
}

void CoverageBitmap::UnionWith(const CoverageBitmap& other) {
  WALRUS_CHECK_EQ(side_, other.side_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

int CoverageBitmap::CountSet() const {
  int count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

double CoverageBitmap::CoveredFraction() const {
  return static_cast<double>(CountSet()) / CellCount();
}

int CoverageBitmap::UnionCount(const CoverageBitmap& a,
                               const CoverageBitmap& b) {
  WALRUS_CHECK_EQ(a.side_, b.side_);
  int count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += std::popcount(a.words_[i] | b.words_[i]);
  }
  return count;
}

std::vector<uint8_t> CoverageBitmap::ToBytes() const {
  std::vector<uint8_t> packed((side_ * side_ + 7) / 8, 0);
  for (int bit = 0; bit < side_ * side_; ++bit) {
    if ((words_[bit / 64] >> (bit % 64)) & 1) {
      packed[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  return packed;
}

}  // namespace walrus
