#ifndef WALRUS_CORE_PACKED_STORE_H_
#define WALRUS_CORE_PACKED_STORE_H_

#include <vector>

#include "core/region.h"

namespace walrus {

/// Region signatures re-laid as contiguous SoA float planes for the batch
/// kernels in common/simd.h (DESIGN.md section 12).
///
/// The natural Region layout is an array of structs -- every centroid and
/// every Rect bound is its own heap vector, so a scan that compares one
/// query signature against N candidate signatures chases 2N+ pointers. A
/// PackedSignatureStore transposes one region list into dimension-major
/// planes: plane d occupies floats [d * count, (d + 1) * count), so entry e
/// of all regions sits at offset e of each plane and a batch kernel streams
/// lanes of adjacent entries. `stride()` equals `count()`; kernels handle
/// non-multiple-of-lane tails internally, so no padding is stored.
///
/// Centroid packs fill only the lo planes (a centroid is a point);
/// bounding-box packs fill lo and hi planes.
class PackedSignatureStore {
 public:
  PackedSignatureStore() = default;

  /// Packs `regions[i].centroid` into the lo planes. All centroids must
  /// share one dimensionality.
  static PackedSignatureStore FromCentroids(
      const std::vector<Region>& regions);

  /// Packs `regions[i].bounding_box` bounds into the lo and hi planes.
  static PackedSignatureStore FromBoundingBoxes(
      const std::vector<Region>& regions);

  int count() const { return count_; }
  int dim() const { return dim_; }
  /// Distance in floats between consecutive dimension planes.
  int stride() const { return count_; }
  /// True when hi planes are populated (bounding-box pack).
  bool has_bounds() const { return !hi_.empty(); }

  /// Base of the lo (or point-coordinate) planes.
  const float* lo_planes() const { return lo_.data(); }
  const float* hi_planes() const { return hi_.data(); }

 private:
  int count_ = 0;
  int dim_ = 0;
  std::vector<float> lo_;
  std::vector<float> hi_;
};

/// Binary region signatures re-laid as contiguous SoA 64-bit word planes
/// for the Hamming kernels (batch_hamming / batch_signature_lb in
/// common/simd.h): word plane w occupies u64s [w * count, (w + 1) * count),
/// so signature e of all entries sits at offset e of each plane and the
/// AVX2 kernel streams four adjacent entries per step. `stride()` equals
/// `count()`; kernels handle tails internally, so no padding is stored.
///
/// The persistent SignatureStore (core/signature_filter.h) keeps rows AoS
/// because the filter gathers scattered slots; this class is the per-batch
/// transpose buffer those gathers fill. Reset() + SetRow() reuse one
/// allocation across probe batches.
class PackedBitSignatures {
 public:
  PackedBitSignatures() = default;

  /// Clears to `count` signatures of `words_per_sig` words each (entries
  /// uninitialized until SetRow), growing the backing store as needed.
  void Reset(int count, int words_per_sig);

  /// Scatter row `e` (words_per_sig contiguous u64s, AoS) into the planes.
  void SetRow(int e, const uint64_t* row);

  int count() const { return count_; }
  int words_per_sig() const { return words_per_sig_; }
  /// Distance in u64s between consecutive word planes.
  int stride() const { return count_; }
  const uint64_t* planes() const { return planes_.data(); }

 private:
  int count_ = 0;
  int words_per_sig_ = 0;
  std::vector<uint64_t> planes_;
};

}  // namespace walrus

#endif  // WALRUS_CORE_PACKED_STORE_H_
