#include "core/sharded_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/metrics.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/query_pipeline.h"

namespace walrus {
namespace {

constexpr uint32_t kShardManifestMagic = 0x57534844;  // "WSHD"
constexpr uint32_t kShardManifestVersion = 1;

/// splitmix64 finalizer: routes sequential image-id ranges evenly across
/// shards (raw modulo would put a contiguous upload on one shard).
uint64_t Splitmix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The sharded engine feeds the same walrus.query.* funnel as the
/// single-index pipeline (the registry hands back the same instruments by
/// name), plus per-shard probe counters registered lazily per shard index.
struct ShardedMetrics {
  Counter* queries;
  Counter* regions_retrieved;
  Counter* candidate_images;
  Histogram* seconds;
  Histogram* extract_seconds;
  Histogram* fanout_seconds;

  static const ShardedMetrics& Get() {
    static const ShardedMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      std::vector<double> buckets = ExponentialBuckets(1e-6, 2.0, 36);
      ShardedMetrics m;
      m.queries = registry.GetCounter("walrus.query.count");
      m.regions_retrieved =
          registry.GetCounter("walrus.query.regions_retrieved");
      m.candidate_images =
          registry.GetCounter("walrus.query.candidate_images");
      m.seconds = registry.GetHistogram("walrus.query.seconds", buckets);
      m.extract_seconds =
          registry.GetHistogram("walrus.query.extract_seconds", buckets);
      m.fanout_seconds =
          registry.GetHistogram("walrus.sharded.fanout_seconds", buckets);
      return m;
    }();
    return metrics;
  }
};

std::vector<WalrusIndex> EmptyShards(const WalrusParams& params, int n) {
  std::vector<WalrusIndex> shards;
  shards.reserve(n);
  for (int s = 0; s < n; ++s) shards.emplace_back(params);
  return shards;
}

}  // namespace

int ShardedIndex::ShardOf(uint64_t image_id, int num_shards) {
  return static_cast<int>(Splitmix64(image_id) %
                          static_cast<uint64_t>(num_shards));
}

ShardedIndex::ShardedIndex(WalrusParams params, Options options)
    : ShardedIndex(params, options,
                   EmptyShards(params, std::max(1, options.num_shards))) {}

ShardedIndex::ShardedIndex(WalrusParams params, Options options,
                           std::vector<WalrusIndex> shards)
    : params_(std::move(params)),
      options_(options),
      shards_(std::move(shards)),
      shard_probe_regions_(shards_.size()) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity);
  }
  int n = num_shards();
  shard_probe_counters_.reserve(n);
  for (int s = 0; s < n; ++s) {
    shard_probe_counters_.push_back(MetricsRegistry::Global().GetCounter(
        "walrus.sharded.probe_regions.s" + std::to_string(s)));
  }
  if (n > 1) {
    int threads = options_.fanout_threads > 0
                      ? options_.fanout_threads
                      : std::min(n, ThreadPool::DefaultThreads()) - 1;
    if (threads >= 1) fanout_pool_ = std::make_unique<ThreadPool>(threads);
  }
}

Result<ShardedIndex> ShardedIndex::Partition(const WalrusIndex& source,
                                             Options options) {
  int n = std::max(1, options.num_shards);
  std::vector<std::vector<ImageRecord>> parts(n);
  for (const ImageRecord& record : source.catalog().images()) {
    parts[ShardOf(record.image_id, n)].push_back(record);
  }
  std::vector<WalrusIndex> shards;
  shards.reserve(n);
  for (int s = 0; s < n; ++s) {
    WALRUS_ASSIGN_OR_RETURN(
        WalrusIndex shard,
        WalrusIndex::FromRecords(source.params(), std::move(parts[s])));
    shards.push_back(std::move(shard));
  }
  options.num_shards = n;
  return ShardedIndex(source.params(), options, std::move(shards));
}

Result<std::vector<QueryMatch>> ShardedIndex::RunPipelineSharded(
    const std::vector<Region>& query_regions, double query_area,
    const QueryOptions& options, QueryStats* stats,
    QueryTrace* trace) const {
  WallTimer timer;
  const ShardedMetrics& metrics = ShardedMetrics::Get();
  const int n = num_shards();
  const bool use_bbox =
      params_.signature_kind == RegionSignatureKind::kBoundingBox;
  const bool knn = options.knn_per_region > 0 && !use_bbox;

  // Per-shard slots, written only by the shard's own task.
  std::vector<Status> shard_status(n, Status::OK());
  std::vector<ProbeDiagnostics> diags(n);
  std::vector<size_t> shard_candidates(n, 0);
  std::vector<std::vector<QueryMatch>> shard_matches(n);
  std::vector<std::vector<std::vector<std::pair<uint64_t, double>>>>
      shard_neighbors(knn ? n : 0);
  std::vector<double> shard_probe_seconds(n, 0.0);
  std::vector<double> shard_match_seconds(n, 0.0);

  auto run_shard = [&](int s) {
    const WalrusIndex& shard = shards_[s];
    WallTimer probe_timer;
    if (knn) {
      // Probe only: per-shard top-k lists must be merged globally before
      // anything is scored (the union of per-shard top-k is a superset of
      // the global top-k).
      auto neighbors = ProbeNearestPerRegion(
          shard, query_regions, options.knn_per_region, &diags[s]);
      shard_probe_seconds[s] = probe_timer.ElapsedSeconds();
      if (!neighbors.ok()) {
        shard_status[s] = neighbors.status();
        return;
      }
      shard_neighbors[s] = std::move(*neighbors);
    } else {
      auto candidates =
          ProbeCandidates(shard, query_regions, options, &diags[s]);
      // The signature tier timed itself inside the probe call; keep the
      // per-shard stage figures disjoint (filter rides in diags[s]).
      shard_probe_seconds[s] =
          probe_timer.ElapsedSeconds() - diags[s].filter_seconds;
      if (!candidates.ok()) {
        shard_status[s] = candidates.status();
        return;
      }
      shard_candidates[s] = candidates->size();
      WallTimer match_timer;
      auto matches = ScoreCandidates(shard, query_regions, query_area,
                                     options, *candidates);
      shard_match_seconds[s] = match_timer.ElapsedSeconds();
      if (!matches.ok()) {
        shard_status[s] = matches.status();
        return;
      }
      shard_matches[s] = std::move(*matches);
    }
    uint64_t retrieved = static_cast<uint64_t>(diags[s].regions_retrieved);
    shard_probe_regions_[s].fetch_add(retrieved, std::memory_order_relaxed);
    shard_probe_counters_[s]->Increment(retrieved);
  };

  // Fan out: shards 1..n-1 on the engine pool, shard 0 on the calling
  // thread, then wait on a per-call latch. The pool's global Wait() is
  // unusable here — concurrent queries share the pool, and Wait() would
  // block on *their* work too.
  double fanout_seconds = 0.0;
  {
    TraceScope fanout_span(trace, "fanout");
    WallTimer fanout_timer;
    if (n == 1 || fanout_pool_ == nullptr) {
      for (int s = 0; s < n; ++s) run_shard(s);
    } else {
      // Per-call latch: mu guards `remaining` (locals cannot carry
      // WALRUS_GUARDED_BY; the discipline here is by construction).
      Mutex mu;
      CondVar done;
      int remaining = n - 1;
      for (int s = 1; s < n; ++s) {
        fanout_pool_->Submit([&, s] {
          run_shard(s);
          MutexLock lock(mu);
          if (--remaining == 0) done.NotifyOne();
        });
      }
      run_shard(0);
      MutexLock lock(mu);
      while (remaining != 0) done.Wait(lock);
    }
    fanout_seconds = fanout_timer.ElapsedSeconds();
  }
  for (const Status& status : shard_status) {
    WALRUS_RETURN_IF_ERROR(status);
  }

  // Merge. Shards partition the image space, so match lists concatenate
  // disjointly; the global rank re-establishes the total order.
  std::vector<QueryMatch> matches;
  size_t distinct_images = 0;
  double match_seconds = 0.0;
  if (knn) {
    // Global top-k per query region, merged by (distance, payload).
    size_t num_q = query_regions.size();
    std::vector<std::vector<std::pair<uint64_t, double>>> merged(num_q);
    for (int s = 0; s < n; ++s) {
      for (size_t qi = 0; qi < num_q; ++qi) {
        merged[qi].insert(merged[qi].end(), shard_neighbors[s][qi].begin(),
                          shard_neighbors[s][qi].end());
      }
    }
    for (auto& per_region : merged) {
      std::sort(per_region.begin(), per_region.end(),
                [](const std::pair<uint64_t, double>& a,
                   const std::pair<uint64_t, double>& b) {
                  if (a.second != b.second) return a.second < b.second;
                  return a.first < b.first;
                });
      if (static_cast<int>(per_region.size()) > options.knn_per_region) {
        per_region.resize(options.knn_per_region);
      }
    }
    std::vector<CandidateImage> candidates = CandidatesFromNeighbors(merged);
    distinct_images = candidates.size();
    WallTimer match_timer;
    std::vector<std::vector<CandidateImage>> by_shard(n);
    for (CandidateImage& candidate : candidates) {
      by_shard[ShardOf(candidate.image_id, n)].push_back(
          std::move(candidate));
    }
    for (int s = 0; s < n; ++s) {
      if (by_shard[s].empty()) continue;
      WALRUS_ASSIGN_OR_RETURN(
          std::vector<QueryMatch> shard_result,
          ScoreCandidates(shards_[s], query_regions, query_area, options,
                          by_shard[s]));
      matches.insert(matches.end(),
                     std::make_move_iterator(shard_result.begin()),
                     std::make_move_iterator(shard_result.end()));
    }
    match_seconds = match_timer.ElapsedSeconds();
  } else {
    size_t total = 0;
    for (int s = 0; s < n; ++s) total += shard_matches[s].size();
    matches.reserve(total);
    for (int s = 0; s < n; ++s) {
      distinct_images += shard_candidates[s];
      matches.insert(matches.end(),
                     std::make_move_iterator(shard_matches[s].begin()),
                     std::make_move_iterator(shard_matches[s].end()));
      match_seconds = std::max(match_seconds, shard_match_seconds[s]);
    }
  }

  double rank_seconds = 0.0;
  {
    TraceScope rank_span(trace, "rank");
    WallTimer rank_timer;
    RankMatches(&matches, options.top_k);
    rank_seconds = rank_timer.ElapsedSeconds();
  }

  int64_t regions_retrieved = 0;
  double probe_seconds = 0.0;
  double filter_seconds = 0.0;
  ProbeDiagnostics total;
  for (int s = 0; s < n; ++s) {
    regions_retrieved += diags[s].regions_retrieved;
    total.nodes_visited += diags[s].nodes_visited;
    total.pages_read += diags[s].pages_read;
    total.cache_hits += diags[s].cache_hits;
    total.cache_misses += diags[s].cache_misses;
    total.prefilter_candidates_in += diags[s].prefilter_candidates_in;
    total.prefilter_pruned += diags[s].prefilter_pruned;
    total.prefilter_candidates_out += diags[s].prefilter_candidates_out;
    probe_seconds = std::max(probe_seconds, shard_probe_seconds[s]);
    filter_seconds = std::max(filter_seconds, diags[s].filter_seconds);
  }

  metrics.queries->Increment();
  metrics.regions_retrieved->Increment(
      static_cast<uint64_t>(regions_retrieved));
  metrics.candidate_images->Increment(distinct_images);
  metrics.seconds->Observe(timer.ElapsedSeconds());
  metrics.fanout_seconds->Observe(fanout_seconds);

  if (stats != nullptr) {
    stats->query_regions = static_cast<int>(query_regions.size());
    stats->regions_retrieved = regions_retrieved;
    stats->avg_regions_per_query_region =
        query_regions.empty()
            ? 0.0
            : static_cast<double>(regions_retrieved) / query_regions.size();
    stats->distinct_images = static_cast<int>(distinct_images);
    stats->seconds += timer.ElapsedSeconds();
    // Per-stage times report the fan-out critical path (max across
    // shards), not the sum — they answer "where did the wall time go".
    stats->probe_seconds = probe_seconds;
    stats->filter_seconds = filter_seconds;
    stats->match_seconds = match_seconds;
    stats->rank_seconds = rank_seconds;
    stats->prefilter_candidates_in = total.prefilter_candidates_in;
    stats->prefilter_pruned = total.prefilter_pruned;
    stats->prefilter_candidates_out = total.prefilter_candidates_out;
    stats->nodes_visited = total.nodes_visited;
    stats->pages_read = total.pages_read;
    stats->cache_hits = total.cache_hits;
    stats->cache_misses = total.cache_misses;
  }
  return matches;
}

Result<std::vector<QueryMatch>> ShardedIndex::RunQuery(
    const ImageF& query_image, const QueryOptions& options,
    QueryStats* stats) const {
  // Trace collection bypasses the cache: a cached answer has no pipeline
  // to trace, and spans are not part of the cached value.
  const bool cacheable = cache_ != nullptr && !options.collect_trace;
  if (stats != nullptr) stats->result_cache_hit = false;
  ResultCache::Key key;
  if (cacheable) {
    key = ResultCache::MakeKey(query_image, options);
    if (auto cached = cache_->Lookup(key)) {
      if (stats != nullptr) stats->result_cache_hit = true;
      return std::move(*cached);
    }
  }
  QueryTrace storage;
  QueryTrace* trace =
      options.collect_trace && stats != nullptr ? &storage : nullptr;
  WallTimer timer;
  WALRUS_ASSIGN_OR_RETURN(ExtractedQuery extracted,
                          ExtractQueryRegions(query_image, params_, trace));
  double extract_seconds = timer.ElapsedSeconds();
  ShardedMetrics::Get().extract_seconds->Observe(extract_seconds);
  if (stats != nullptr) {
    stats->seconds = extract_seconds;
    stats->extract_seconds = extract_seconds;
  }
  auto result = RunPipelineSharded(extracted.regions, extracted.query_area,
                                   options, stats, trace);
  if (trace != nullptr) stats->spans = trace->TakeSpans();
  if (cacheable && result.ok()) cache_->Insert(key, *result);
  return result;
}

Result<std::vector<QueryMatch>> ShardedIndex::RunSceneQuery(
    const ImageF& query_image, const PixelRect& scene,
    const QueryOptions& options, QueryStats* stats) const {
  const bool cacheable = cache_ != nullptr && !options.collect_trace;
  if (stats != nullptr) stats->result_cache_hit = false;
  ResultCache::Key key;
  if (cacheable) {
    key = ResultCache::MakeKey(query_image, scene, options);
    if (auto cached = cache_->Lookup(key)) {
      if (stats != nullptr) stats->result_cache_hit = true;
      return std::move(*cached);
    }
  }
  QueryTrace storage;
  QueryTrace* trace =
      options.collect_trace && stats != nullptr ? &storage : nullptr;
  WallTimer timer;
  WALRUS_ASSIGN_OR_RETURN(
      ExtractedQuery extracted,
      ExtractSceneQueryRegions(query_image, scene, params_, trace));
  double extract_seconds = timer.ElapsedSeconds();
  ShardedMetrics::Get().extract_seconds->Observe(extract_seconds);
  if (stats != nullptr) {
    stats->seconds = extract_seconds;
    stats->extract_seconds = extract_seconds;
  }
  auto result = RunPipelineSharded(extracted.regions, extracted.query_area,
                                   options, stats, trace);
  if (trace != nullptr) stats->spans = trace->TakeSpans();
  if (cacheable && result.ok()) cache_->Insert(key, *result);
  return result;
}

size_t ShardedIndex::ImageCount() const {
  size_t count = 0;
  for (const WalrusIndex& shard : shards_) count += shard.ImageCount();
  return count;
}

size_t ShardedIndex::RegionCount() const {
  size_t count = 0;
  for (const WalrusIndex& shard : shards_) count += shard.RegionCount();
  return count;
}

EngineStats ShardedIndex::Stats() const {
  EngineStats stats;
  stats.num_shards = num_shards();
  stats.shard_probes.reserve(shards_.size());
  for (const auto& probes : shard_probe_regions_) {
    stats.shard_probes.push_back(probes.load(std::memory_order_relaxed));
  }
  if (cache_ != nullptr) {
    stats.result_cache_hits = cache_->hits();
    stats.result_cache_misses = cache_->misses();
    stats.result_cache_entries = cache_->size();
    stats.result_cache_capacity = cache_->capacity();
  }
  return stats;
}

Status ShardedIndex::AddImage(uint64_t image_id, const std::string& name,
                              const ImageF& image) {
  if (cache_ != nullptr) cache_->Invalidate();
  return shards_[ShardOf(image_id, num_shards())].AddImage(image_id, name,
                                                           image);
}

Status ShardedIndex::AddImages(
    std::vector<WalrusIndex::PendingImage> images, int num_threads) {
  if (cache_ != nullptr) cache_->Invalidate();
  const int n = num_shards();
  // Cross-shard pre-validation so a duplicate in a late shard's slice
  // cannot leave earlier shards mutated.
  std::unordered_set<uint64_t> seen;
  for (const WalrusIndex::PendingImage& pending : images) {
    if (!seen.insert(pending.image_id).second ||
        shards_[ShardOf(pending.image_id, n)].catalog().FindImage(
            pending.image_id) != nullptr) {
      return Status::AlreadyExists("image id " +
                                   std::to_string(pending.image_id));
    }
  }
  std::vector<std::vector<WalrusIndex::PendingImage>> by_shard(n);
  for (WalrusIndex::PendingImage& pending : images) {
    by_shard[ShardOf(pending.image_id, n)].push_back(std::move(pending));
  }
  // Extraction failures can still leave earlier shards populated; each
  // shard's batch is individually atomic, the cross-shard batch is not.
  for (int s = 0; s < n; ++s) {
    if (by_shard[s].empty()) continue;
    WALRUS_RETURN_IF_ERROR(
        shards_[s].AddImages(std::move(by_shard[s]), num_threads));
  }
  return Status::OK();
}

Status ShardedIndex::RemoveImage(uint64_t image_id) {
  if (cache_ != nullptr) cache_->Invalidate();
  return shards_[ShardOf(image_id, num_shards())].RemoveImage(image_id);
}

Status ShardedIndex::Save(const std::string& path_prefix, bool paged) const {
  BinaryWriter writer;
  writer.PutU32(kShardManifestMagic);
  writer.PutU32(kShardManifestVersion);
  writer.PutU32(static_cast<uint32_t>(num_shards()));
  writer.PutU8(paged ? 1 : 0);
  WALRUS_RETURN_IF_ERROR(
      WriteFileBytes(path_prefix + ".smeta", writer.buffer()));
  for (int s = 0; s < num_shards(); ++s) {
    std::string shard_prefix = path_prefix + ".s" + std::to_string(s);
    WALRUS_RETURN_IF_ERROR(paged ? shards_[s].SavePaged(shard_prefix)
                                 : shards_[s].Save(shard_prefix));
  }
  return Status::OK();
}

Result<ShardedIndex> ShardedIndex::Open(const std::string& path_prefix) {
  return Open(path_prefix, Options());
}

Result<ShardedIndex> ShardedIndex::Open(const std::string& path_prefix,
                                        Options options) {
  WALRUS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          ReadFileBytes(path_prefix + ".smeta"));
  BinaryReader reader(bytes);
  WALRUS_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kShardManifestMagic) {
    return Status::Corruption("sharded index: bad manifest magic");
  }
  WALRUS_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kShardManifestVersion) {
    return Status::Corruption("sharded index: unsupported manifest version " +
                              std::to_string(version));
  }
  WALRUS_ASSIGN_OR_RETURN(uint32_t num_shards, reader.GetU32());
  if (num_shards == 0 || num_shards > 4096) {
    return Status::Corruption("sharded index: implausible shard count " +
                              std::to_string(num_shards));
  }
  WALRUS_ASSIGN_OR_RETURN(uint8_t paged, reader.GetU8());

  std::vector<WalrusIndex> shards;
  shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::string shard_prefix = path_prefix + ".s" + std::to_string(s);
    WALRUS_ASSIGN_OR_RETURN(WalrusIndex shard,
                            paged != 0
                                ? WalrusIndex::OpenPaged(shard_prefix)
                                : WalrusIndex::Open(shard_prefix));
    shards.push_back(std::move(shard));
  }
  WalrusParams params = shards.front().params();
  options.num_shards = static_cast<int>(num_shards);
  return ShardedIndex(std::move(params), options, std::move(shards));
}

}  // namespace walrus
