#ifndef WALRUS_CORE_REGION_EXTRACTOR_H_
#define WALRUS_CORE_REGION_EXTRACTOR_H_

#include <vector>

#include "common/trace.h"
#include "core/params.h"
#include "core/region.h"
#include "core/signature.h"
#include "image/image.h"

namespace walrus {

/// Diagnostics from one region extraction.
struct ExtractionStats {
  int window_count = 0;
  int cluster_count = 0;   // clusters before min_cluster_windows pruning
  int region_count = 0;    // regions actually produced
  double birch_threshold = 0.0;
  // Per-phase wall time (seconds): sliding-window wavelet signatures,
  // BIRCH/k-means clustering, and region assembly (boxes + bitmaps).
  double wavelet_seconds = 0.0;
  double cluster_seconds = 0.0;
  double assemble_seconds = 0.0;
};

/// Decomposes an image into regions: sliding-window signatures (DP wavelet
/// algorithm) -> BIRCH pre-clustering with radius threshold epsilon_c ->
/// one Region per surviving cluster, carrying the centroid, the signature
/// bounding box and the pixel-coverage bitmap of its member windows
/// (paper sections 5.1-5.3). `trace`, when non-null, receives
/// wavelet/cluster/assemble child spans.
Result<std::vector<Region>> ExtractRegions(const ImageF& image,
                                           const WalrusParams& params,
                                           ExtractionStats* stats = nullptr,
                                           QueryTrace* trace = nullptr);

/// Same, but starting from precomputed window signatures (used by tests and
/// by benchmarks that sweep clustering parameters over fixed signatures).
/// `refined_set`, when non-null, must enumerate the same windows at the
/// refined signature size; each region then gets a refined centroid
/// (paper section 5.5's refined matching phase).
std::vector<Region> ExtractRegionsFromWindows(
    const WindowSignatureSet& set, int image_width, int image_height,
    const WalrusParams& params, ExtractionStats* stats = nullptr,
    const WindowSignatureSet* refined_set = nullptr,
    QueryTrace* trace = nullptr);

/// Axis-aligned pixel rectangle [x, x+width) x [y, y+height) marking the
/// part of a query image the user cares about.
struct PixelRect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  bool ContainsWindow(int wx, int wy, int wsize) const {
    return wx >= x && wy >= y && wx + wsize <= x + width &&
           wy + wsize <= y + height;
  }
};

/// "User-specified scene" extraction (the WALRUS acronym): decomposes only
/// the part of `image` inside `scene` into regions -- the query then asks
/// for images containing *that scene*, wherever and at whatever size it
/// appears. Only sliding windows fully inside the rectangle participate.
/// Fails with InvalidArgument when the rectangle fits no window.
Result<std::vector<Region>> ExtractSceneRegions(const ImageF& image,
                                                const PixelRect& scene,
                                                const WalrusParams& params,
                                                ExtractionStats* stats =
                                                    nullptr,
                                                QueryTrace* trace = nullptr);

}  // namespace walrus

#endif  // WALRUS_CORE_REGION_EXTRACTOR_H_
