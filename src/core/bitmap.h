#ifndef WALRUS_CORE_BITMAP_H_
#define WALRUS_CORE_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace walrus {

/// Coarse pixel-coverage bitmap for a region (paper section 5.3): one bit
/// per k x k cell of the image, set when the cell is covered by at least one
/// window of the region's cluster. The image-matching step unions these
/// bitmaps to compute the area covered by (possibly overlapping) matched
/// regions. With the paper's defaults (16x16) this is 32 bytes per region.
class CoverageBitmap {
 public:
  /// All-clear bitmap with side x side cells.
  explicit CoverageBitmap(int side);

  /// Rebuilds from packed bytes produced by ToBytes().
  CoverageBitmap(int side, const std::vector<uint8_t>& packed);

  int side() const { return side_; }
  int CellCount() const { return side_ * side_; }

  void SetCell(int cx, int cy);
  bool TestCell(int cx, int cy) const;
  void Clear();

  /// Marks every cell whose center pixel falls inside the window
  /// [x, x+w) x [y, y+h) of an image_w x image_h image.
  void MarkWindow(int x, int y, int w, int h, int image_w, int image_h);

  /// ORs `other` into this bitmap (equal sides required).
  void UnionWith(const CoverageBitmap& other);

  /// Number of set cells.
  int CountSet() const;

  /// Fraction of cells set, i.e. the covered fraction of the image area.
  double CoveredFraction() const;

  /// Set cells in this OR other (without mutating either).
  static int UnionCount(const CoverageBitmap& a, const CoverageBitmap& b);

  /// Packs to ceil(side^2 / 8) bytes, row-major, LSB-first.
  std::vector<uint8_t> ToBytes() const;

  bool operator==(const CoverageBitmap& other) const {
    return side_ == other.side_ && words_ == other.words_;
  }

 private:
  int WordCount() const { return (side_ * side_ + 63) / 64; }
  int BitIndex(int cx, int cy) const {
    WALRUS_DCHECK(cx >= 0 && cx < side_ && cy >= 0 && cy < side_);
    return cy * side_ + cx;
  }

  int side_;
  std::vector<uint64_t> words_;
};

}  // namespace walrus

#endif  // WALRUS_CORE_BITMAP_H_
