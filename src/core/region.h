#ifndef WALRUS_CORE_REGION_H_
#define WALRUS_CORE_REGION_H_

#include <cstdint>
#include <vector>

#include "core/bitmap.h"
#include "spatial/rect.h"
#include "storage/catalog.h"

namespace walrus {

/// One extracted image region: a cluster of sliding windows with similar
/// wavelet signatures (paper section 5.3). Carries both signature variants
/// (centroid and bounding box) plus the pixel-coverage bitmap used by the
/// image-matching step.
struct Region {
  uint32_t region_id = 0;
  std::vector<float> centroid;
  /// Centroid of the refined (higher-resolution) window signatures; empty
  /// unless WalrusParams::refined_signature_size is set.
  std::vector<float> refined_centroid;
  Rect bounding_box;
  CoverageBitmap bitmap{1};
  uint64_t window_count = 0;

  /// The signature rect indexed in the R*-tree for the given kind: a point
  /// rect for centroids, the signature bounding box otherwise.
  Rect IndexRect(bool use_bounding_box) const;

  /// Fraction of the image covered by this region's windows.
  double CoveredFraction() const { return bitmap.CoveredFraction(); }

  RegionRecord ToRecord() const;
  static Region FromRecord(const RegionRecord& record);
};

}  // namespace walrus

#endif  // WALRUS_CORE_REGION_H_
