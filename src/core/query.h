#ifndef WALRUS_CORE_QUERY_H_
#define WALRUS_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/trace.h"
#include "core/index.h"
#include "core/similarity.h"

namespace walrus {

/// Which image matcher scores candidate targets.
enum class MatcherKind : uint8_t {
  kQuick = 0,   // union of all matched regions (relaxed Definition 4.2)
  kGreedy = 1,  // one-to-one greedy heuristic (strict Definition 4.2)
};

/// Per-query knobs.
struct QueryOptions {
  /// Region match envelope (Definition 4.1); the paper's retrieval run used
  /// 0.085 with YCC centroid signatures.
  float epsilon = 0.085f;
  /// Image similarity threshold tau (Definition 4.3); targets below it are
  /// dropped. 0 keeps every target with at least one matching region.
  double tau = 0.0;
  MatcherKind matcher = MatcherKind::kQuick;
  /// Definition 4.3 denominator variant (paper section 4, last paragraph).
  SimilarityNormalization normalization = SimilarityNormalization::kBothImages;
  /// When > 0, region matching switches from the epsilon-range probe to a
  /// k-nearest-neighbor probe: each query region retrieves its k closest
  /// database regions (centroid signatures only). Removes the need to tune
  /// epsilon at the cost of a fixed candidate budget per region.
  int knn_per_region = 0;
  /// Refined matching phase (paper section 5.5): when true and the index
  /// was built with refined_signature_size > 0, candidate region pairs are
  /// re-verified with the refined centroids before image matching.
  bool use_refinement = false;
  /// Envelope for the refined re-verification.
  float refined_epsilon = 0.12f;
  /// Truncate the ranked result to this many images (0 = no limit).
  int top_k = 0;
  /// When true, each QueryMatch carries the region pairs the matcher used
  /// (for explaining/visualizing results). Off by default: pair lists can
  /// be large under the quick matcher.
  bool collect_pairs = false;
  /// When true, QueryStats::spans receives the per-stage span tree of this
  /// query (extract -> wavelet/cluster/assemble, probe, match, rank). Over
  /// the wire the spans ride back with the results.
  bool collect_trace = false;
  /// Answer all query-region epsilon probes in one shared R*-tree
  /// traversal (RStarTree::RangeQueryBatch) instead of one descent per
  /// region. Candidates are identical either way (the batch is a set
  /// union); this is purely a throughput knob. Wire-transmitted since
  /// protocol v5 so clients can A/B the probe paths remotely; v4 servers
  /// simply apply their own default.
  bool batched_probe = true;
  /// Binary-signature prefilter tier (core/signature_filter.h, DESIGN.md
  /// section 16): epsilon-envelope hits are collected raw, Hamming-pruned
  /// against per-region thermometer signatures under an admissible lower
  /// bound, and the remainder batch-verified; candidate scoring then
  /// materializes only the target regions the matcher will read. Results
  /// are bit-identical on or off (the bound only discards candidates the
  /// exact test would reject); this is purely a throughput knob.
  /// Wire-transmitted since protocol v5.
  bool signature_prefilter = true;
};

/// One ranked target image.
struct QueryMatch {
  uint64_t image_id = 0;
  double similarity = 0.0;
  int matching_pairs = 0;   // region pairs found by the index probe
  int pairs_used = 0;       // pairs the matcher kept
  /// Populated only when QueryOptions::collect_pairs is set: the pairs the
  /// matcher used, as (query region index, target region id).
  std::vector<RegionPair> pairs;
};

/// Diagnostics for the Table 1 selectivity experiment plus the per-stage
/// breakdown the observability layer reports (DESIGN.md section 10).
struct QueryStats {
  int query_regions = 0;
  /// Total regions retrieved across all query-region probes.
  int64_t regions_retrieved = 0;
  /// regions_retrieved / query_regions.
  double avg_regions_per_query_region = 0.0;
  /// Distinct database images containing at least one matching region.
  int distinct_images = 0;
  /// End-to-end wall time in seconds (region extraction + probe + match).
  double seconds = 0.0;

  /// Per-stage wall time (seconds). extract covers sliding-window wavelets
  /// + BIRCH clustering + region assembly; probe the R*-tree range/kNN
  /// lookups; filter the signature prefilter tier (0 when the prefilter is
  /// off -- its time is then inside the probe's inline tests); match the
  /// quick/greedy image matcher; rank the final sort. The stages are
  /// disjoint: probe_seconds excludes filter_seconds.
  double extract_seconds = 0.0;
  double probe_seconds = 0.0;
  double filter_seconds = 0.0;
  double match_seconds = 0.0;
  double rank_seconds = 0.0;

  /// Signature prefilter tier traffic (0 when the tier did not run):
  /// candidates_in counts raw epsilon-envelope hits entering the tier,
  /// pruned those discarded by the admissible Hamming lower bound, and
  /// candidates_out the exact-verified survivors handed to scoring.
  int64_t prefilter_candidates_in = 0;
  int64_t prefilter_pruned = 0;
  int64_t prefilter_candidates_out = 0;

  /// Index-backend work done by this query's probes. For the in-memory
  /// tree nodes_visited counts R*-tree nodes touched; for a paged index
  /// pages_read / cache_hits / cache_misses are the page-IO deltas (under
  /// concurrent queries the per-query attribution is approximate; the
  /// process-wide truth lives in the metrics registry).
  int64_t nodes_visited = 0;
  int64_t pages_read = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  /// True when the query was answered from the engine's result cache (see
  /// core/result_cache.h) — the extract/probe/match stages were skipped and
  /// their per-stage timings above are zero.
  bool result_cache_hit = false;

  /// Span tree of this query; populated when QueryOptions::collect_trace.
  std::vector<TraceSpan> spans;
};

/// Runs the full WALRUS query pipeline (paper section 5.1): decompose the
/// query image into regions, probe the R*-tree with every region signature
/// expanded by epsilon, then score each candidate image with the selected
/// matcher and rank by similarity (descending; ties by image id).
Result<std::vector<QueryMatch>> ExecuteQuery(const WalrusIndex& index,
                                             const ImageF& query_image,
                                             const QueryOptions& options,
                                             QueryStats* stats = nullptr);

/// "User-specified scene" query (the system's namesake): only the part of
/// the query image inside `scene` is decomposed into regions, so the
/// ranking reflects how much of the marked scene each database image
/// contains. Combine with SimilarityNormalization::kQueryOnly to score by
/// the fraction of the *scene* that was found.
Result<std::vector<QueryMatch>> ExecuteSceneQuery(const WalrusIndex& index,
                                                  const ImageF& query_image,
                                                  const PixelRect& scene,
                                                  const QueryOptions& options,
                                                  QueryStats* stats = nullptr);

/// Runs many queries against one index, parallelizing across a thread pool
/// (region extraction dominates query cost and is independent per query;
/// probes are read-only). 0 threads = hardware concurrency. Result i
/// corresponds to queries[i]; on failure the first failing query's error is
/// returned, annotated with its index ("query <i> of <n>: ...").
Result<std::vector<std::vector<QueryMatch>>> ExecuteQueryBatch(
    const WalrusIndex& index, const std::vector<ImageF>& queries,
    const QueryOptions& options, int num_threads = 0);

class QueryEngine;

/// Batch entry point over any query engine (single index or sharded). Each
/// query runs on its own pool thread via QueryEngine::RunQuery — engines
/// must be thread-safe for concurrent queries (both implementations are).
Result<std::vector<std::vector<QueryMatch>>> ExecuteQueryBatch(
    const QueryEngine& engine, const std::vector<ImageF>& queries,
    const QueryOptions& options, int num_threads = 0);

/// Same pipeline starting from pre-extracted query regions (lets callers
/// reuse extraction across epsilon sweeps). `query_area` is the query image
/// pixel count.
Result<std::vector<QueryMatch>> ExecuteQueryWithRegions(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    double query_area, const QueryOptions& options,
    QueryStats* stats = nullptr);

}  // namespace walrus

#endif  // WALRUS_CORE_QUERY_H_
