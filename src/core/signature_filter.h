#ifndef WALRUS_CORE_SIGNATURE_FILTER_H_
#define WALRUS_CORE_SIGNATURE_FILTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/packed_store.h"
#include "storage/catalog.h"

namespace walrus {

/// Admissible binary-signature prefilter tier (DESIGN.md section 16).
///
/// Each region's centroid signature is quantized, per dimension, into a
/// 64-level thermometer code: level L maps to a 64-bit word whose low L
/// bits are set. With exactly one word per dimension, the per-word Hamming
/// distance between two signatures IS the level distance |Lq - Lt| of that
/// dimension, and because two values in the same or adjacent levels can be
/// arbitrarily close while values h levels apart differ by more than
/// (h - 1) * delta, the integer
///
///   lb_int = sum over dims of max(0, hamming(word) - 1)^2
///
/// satisfies lb_int * delta^2 <= ||q - t||^2 (clamping at the range ends
/// only understates level distances, so the bound survives out-of-range
/// coefficients). A candidate is pruned only when that lower bound strictly
/// exceeds epsilon^2, which the exact test would reject anyway -- the tier
/// never changes the surviving candidate set, so retrieval output stays
/// bit-identical with the filter on or off (enforced by the golden suite).
///
/// Constants: the quantizer range [-0.25, 1.0] brackets the observed
/// centroid coefficient range of the Table 1 workload ([-0.202, 0.805])
/// with margin; delta = 1.25/64 = 5 * 2^-8 is exactly representable, so
/// delta^2 and the integer prune threshold are exact in double.
inline constexpr int kSignatureLevels = 64;
inline constexpr float kSignatureQMin = -0.25f;
inline constexpr double kSignatureDelta = 1.25 / kSignatureLevels;

/// Thermometer word for one centroid coefficient.
uint64_t SignatureWord(float x);

/// Quantizes a centroid into its signature: one word per dimension.
void ComputeSignature(const float* centroid, int dim, uint64_t* out);
std::vector<uint64_t> ComputeSignature(const std::vector<float>& centroid);

/// Smallest lb_int value that admissibly proves distance^2 > eps2:
/// prune iff lb_int >= SignaturePruneThreshold(eps2). The tiny relative
/// margin keeps the threshold conservative against the rounding of
/// delta^2 * lb_int, so a prune decision never outruns the exact test.
uint32_t SignaturePruneThreshold(double eps2);

/// Per-call counters of one filter pass (aggregated into QueryStats and the
/// walrus.prefilter.* metrics).
struct SignatureFilterCounters {
  int64_t candidates_in = 0;   // envelope hits entering the tier
  int64_t hamming_pruned = 0;  // rejected by the signature lower bound
  int64_t verified_out = 0;    // exact-verified survivors leaving the tier
};

/// Reusable scratch so per-probe filter batches do not reallocate.
struct SignatureFilterScratch {
  std::vector<uint64_t> query_words;
  std::vector<uint32_t> slots;
  std::vector<uint32_t> lb;
  PackedBitSignatures packed;
  std::vector<float> centroid_soa;
  std::vector<double> d2;
};

/// The resident signature tier of one WalrusIndex: an AoS slot per region
/// (its thermometer words plus a copy of its centroid floats, so the
/// surviving-candidate verification runs off contiguous store rows instead
/// of re-touching tree pages). Slots of one image are contiguous at a base
/// offset and addressed by the image's dense region ids; image bases
/// resolve through a direct-indexed table for small ids with a hash-map
/// spill for sparse ones.
///
/// Not internally synchronized: same external synchronization contract as
/// the WalrusIndex that owns it (see CONCURRENCY contracts in index.h).
class SignatureStore {
 public:
  SignatureStore() = default;

  /// Signature dimensionality (words per region); 0 until first add.
  int dim() const { return dim_; }
  size_t image_count() const {
    return direct_live_ + by_id_.size();
  }

  void Clear();

  /// Appends one image's regions. Region ids must be dense [0, n). Uses the
  /// persisted record.signature words when present (offline and WAL-replay
  /// paths), else recomputes from the centroid (legacy catalogs) -- both
  /// agree because the signature is a pure function of the centroid.
  void AddImage(const ImageRecord& record);

  /// Drops an image's base entry. Its slots become unreachable garbage
  /// until the next Rebuild (live-ingest churn is bounded by WAL
  /// compaction, which rebuilds the owning index wholesale).
  void RemoveImage(uint64_t image_id);

  /// Rebuilds from a full catalog (index open / bulk load).
  void Rebuild(const Catalog& catalog);

  /// Slot row of (image, region), or nullptr when the image is unknown.
  /// The row holds dim() signature words; centroid floats are at
  /// CentroidRow of the same slot.
  const uint64_t* SignatureRow(uint64_t image_id, uint32_t region_id) const;

  /// The tier itself: compacts `payloads` (raw epsilon-envelope hits of one
  /// query region, encoded with EncodeRegionPayload) down to the exact
  /// survivors, i.e. candidates whose centroid distance^2 to
  /// `query_centroid` is <= eps2. Hamming-prunes via batch_signature_lb
  /// first, then batch-verifies the remainder with batch_squared_l2 in the
  /// scalar reference order, so the surviving set -- and the floats any
  /// later stage sees -- match the unfiltered inline test bit for bit.
  /// Returns the new payload count; `counters` accumulates tier traffic.
  size_t FilterCandidates(const std::vector<float>& query_centroid,
                          double eps2, std::vector<uint64_t>* payloads,
                          SignatureFilterScratch* scratch,
                          SignatureFilterCounters* counters) const;

 private:
  int64_t FindBase(uint64_t image_id) const;

  int dim_ = 0;
  // Per-slot AoS planes: slot s holds words_[s*dim_ .. ) and
  // centroids_[s*dim_ .. ).
  std::vector<uint64_t> words_;
  std::vector<float> centroids_;
  // image_id -> base slot; direct table for ids < kDirectLimit, map spill.
  static constexpr uint64_t kDirectLimit = 1u << 20;
  std::vector<int64_t> direct_;  // -1 = absent
  size_t direct_live_ = 0;
  std::unordered_map<uint64_t, int64_t> by_id_;
};

}  // namespace walrus

#endif  // WALRUS_CORE_SIGNATURE_FILTER_H_
