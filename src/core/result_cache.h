#ifndef WALRUS_CORE_RESULT_CACHE_H_
#define WALRUS_CORE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "core/query.h"
#include "image/image.h"

namespace walrus {

/// LRU cache of ranked query results, keyed by a digest of the query image
/// pixels (plus the scene rect for scene queries) and the QueryOptions that
/// shape the ranking. A hit skips the whole pipeline — extraction, probing,
/// and matching — which is what makes repeated hot queries cheap.
///
/// Invalidation is coarse by design: any index mutation (AddImage,
/// AddImages, RemoveImage) clears the entire cache via Invalidate().
/// Per-entry invalidation is impossible without re-running the query — a
/// newly added image can enter any cached ranking — so correctness requires
/// the big hammer. Sized in entries, not bytes; rankings are top_k-bounded
/// in every caching caller.
///
/// Thread-safe: a single mutex guards the map and the LRU list. Queries
/// under the quick matcher run in ~milliseconds, so a cache lookup is never
/// the contention point; the fan-out pool is.
class ResultCache {
 public:
  /// Cache key: 64-bit FNV-1a digest over the query content + a canonical
  /// encoding of the options. Collisions conflate two different queries
  /// (~2^-32 at a million distinct queries by birthday bound) — acceptable
  /// for a ranking cache, same tradeoff page caches make.
  struct Key {
    uint64_t digest = 0;
    bool operator==(const Key& other) const { return digest == other.digest; }
  };

  /// `capacity` = max cached rankings; 0 disables the cache entirely
  /// (Lookup always misses, Insert is a no-op).
  explicit ResultCache(size_t capacity);

  /// Digest of a whole-image query: image pixels + options.
  static Key MakeKey(const ImageF& image, const QueryOptions& options);
  /// Digest of a scene query: image pixels + scene rect + options.
  static Key MakeKey(const ImageF& image, const PixelRect& scene,
                     const QueryOptions& options);

  /// Returns the cached ranking and promotes the entry to most-recently
  /// used; nullopt on miss.
  std::optional<std::vector<QueryMatch>> Lookup(const Key& key)
      WALRUS_EXCLUDES(mu_);

  /// Stores a ranking, evicting the least-recently-used entry when full.
  /// No-op when capacity is 0.
  void Insert(const Key& key, std::vector<QueryMatch> matches)
      WALRUS_EXCLUDES(mu_);

  /// Drops every entry. Called on any index mutation.
  void Invalidate() WALRUS_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  size_t size() const WALRUS_EXCLUDES(mu_);
  uint64_t hits() const WALRUS_EXCLUDES(mu_);
  uint64_t misses() const WALRUS_EXCLUDES(mu_);
  uint64_t evictions() const WALRUS_EXCLUDES(mu_);
  uint64_t invalidations() const WALRUS_EXCLUDES(mu_);

 private:
  struct Entry {
    Key key;
    std::vector<QueryMatch> matches;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.digest);
    }
  };

  /// Evicts the least-recently-used entry (the cache must be non-empty).
  void EvictLRULocked() WALRUS_REQUIRES(mu_);

  const size_t capacity_;
  /// Process-global registry mirrors of the per-instance counters below
  /// (walrus.result_cache.{hits,misses,evictions,invalidations,entries}),
  /// so cache health shows up in walrusd METRICS alongside the query
  /// funnel. Shared across cache instances — cumulative by design.
  Counter* metric_hits_;
  Counter* metric_misses_;
  Counter* metric_evictions_;
  Counter* metric_invalidations_;
  Gauge* metric_entries_;
  mutable Mutex mu_;
  /// front = most recently used
  std::list<Entry> lru_ WALRUS_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_
      WALRUS_GUARDED_BY(mu_);
  uint64_t hits_ WALRUS_GUARDED_BY(mu_) = 0;
  uint64_t misses_ WALRUS_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ WALRUS_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ WALRUS_GUARDED_BY(mu_) = 0;
};

}  // namespace walrus

#endif  // WALRUS_CORE_RESULT_CACHE_H_
