#ifndef WALRUS_CORE_PARAMS_H_
#define WALRUS_CORE_PARAMS_H_

#include "cluster/birch.h"
#include "common/status.h"
#include "image/image.h"

namespace walrus {

/// Which clustering algorithm groups window signatures into regions.
/// The paper requires linear-time radius-bounded clustering and picks the
/// BIRCH pre-clustering phase; k-means is provided as an ablation baseline
/// (fixed k, multiple passes -- exactly the drawbacks section 5.3 cites).
enum class ClustererKind : uint8_t {
  kBirch = 0,
  kKMeans = 1,
};

/// Which signature represents a region in the index (paper Definition 4.1
/// offers both).
enum class RegionSignatureKind : uint8_t {
  /// Cluster centroid; regions match when centroid distance <= epsilon.
  kCentroid = 0,
  /// Bounding box of all member window signatures; regions match when one
  /// box expanded by epsilon overlaps the other.
  kBoundingBox = 1,
};

/// All WALRUS indexing knobs (paper section 5 and the section 6 defaults:
/// 64x64 windows, s = 2, epsilon_c = 0.05, YCC, centroid signatures,
/// 16x16 bitmaps).
struct WalrusParams {
  /// Color space signatures are computed in.
  ColorSpace color_space = ColorSpace::kYCC;
  /// Signature side s: each window keeps the s x s lowest-frequency band
  /// per channel, so signatures have 3*s*s dimensions for color images.
  int signature_size = 2;
  /// Smallest and largest sliding-window side (powers of two). The paper's
  /// retrieval experiments fix both to 64.
  int min_window = 64;
  int max_window = 64;
  /// Slide distance t between adjacent windows (power of two).
  int slide_step = 4;
  /// BIRCH radius threshold epsilon_c for clustering window signatures.
  double cluster_epsilon = 0.05;
  /// Coverage bitmap side k: one bit per (width/k) x (height/k) pixel block.
  int bitmap_side = 16;
  /// Centroid or bounding-box region signatures.
  RegionSignatureKind signature_kind = RegionSignatureKind::kCentroid;
  /// Clustering algorithm for the window signatures.
  ClustererKind clusterer = ClustererKind::kBirch;
  /// k for the k-means ablation clusterer; 0 derives k from the window
  /// count (sqrt(n)/2, at least 2).
  int kmeans_k = 0;
  /// CF-tree shape knobs (threshold comes from cluster_epsilon).
  int birch_branching = 8;
  int birch_leaf_entries = 8;
  /// Discard clusters holding fewer windows than this (noise suppression;
  /// 1 keeps everything, the paper does not prune).
  int min_cluster_windows = 1;
  /// Side of the optional refined signature (paper section 5.5: "an
  /// additional refined matching phase with more detailed signatures").
  /// 0 disables refinement; otherwise a power of two > signature_size.
  /// Regions then also carry a Channels()*r*r refined centroid.
  int refined_signature_size = 0;

  /// Channels implied by color_space (1 for gray, 3 otherwise).
  int Channels() const;
  /// Total signature dimensionality: Channels() * s * s.
  int SignatureDim() const;

  /// Verifies power-of-two constraints and ranges.
  Status Validate() const;
};

}  // namespace walrus

#endif  // WALRUS_CORE_PARAMS_H_
