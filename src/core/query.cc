#include "core/query.h"

#include <algorithm>
#include <map>

#include <memory>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace walrus {
namespace {

/// Region matches grouped by target image.
struct TargetCandidate {
  std::vector<RegionPair> pairs;
};

}  // namespace

Result<std::vector<QueryMatch>> ExecuteQueryWithRegions(
    const WalrusIndex& index, const std::vector<Region>& query_regions,
    double query_area, const QueryOptions& options, QueryStats* stats) {
  WallTimer timer;
  const WalrusParams& params = index.params();
  const bool use_bbox =
      params.signature_kind == RegionSignatureKind::kBoundingBox;

  // Region matching (section 5.4): one epsilon-expanded probe per query
  // region; centroid mode post-filters the L-infinity candidates down to
  // true Euclidean matches.
  std::map<uint64_t, TargetCandidate> candidates;
  int64_t regions_retrieved = 0;
  if (options.knn_per_region > 0 && !use_bbox) {
    // kNN probing: fixed candidate budget per query region.
    for (size_t qi = 0; qi < query_regions.size(); ++qi) {
      const Region& q = query_regions[qi];
      WALRUS_ASSIGN_OR_RETURN(
          auto neighbors,
          index.ProbeNearest(q.centroid, options.knn_per_region));
      for (const auto& [payload, distance] : neighbors) {
        (void)distance;
        uint64_t image_id;
        uint32_t region_id;
        DecodeRegionPayload(payload, &image_id, &region_id);
        ++regions_retrieved;
        candidates[image_id].pairs.push_back(
            {static_cast<int>(qi), static_cast<int>(region_id)});
      }
    }
  } else {
    for (size_t qi = 0; qi < query_regions.size(); ++qi) {
      const Region& q = query_regions[qi];
      Rect probe = q.IndexRect(use_bbox).Expanded(options.epsilon);
      WALRUS_RETURN_IF_ERROR(index.ProbeRange(
          probe, [&](const Rect& rect, uint64_t payload) {
            uint64_t image_id;
            uint32_t region_id;
            DecodeRegionPayload(payload, &image_id, &region_id);
            if (!use_bbox) {
              // Exact Euclidean test on the stored centroid (== rect.lo()).
              if (!RegionsMatchCentroid(
                      q.centroid.data(), rect.lo().data(),
                      static_cast<int>(q.centroid.size()), options.epsilon)) {
                return true;
              }
            }
            ++regions_retrieved;
            candidates[image_id].pairs.push_back(
                {static_cast<int>(qi), static_cast<int>(region_id)});
            return true;
          }));
    }
  }

  // Image matching (section 5.5).
  std::vector<QueryMatch> matches;
  matches.reserve(candidates.size());
  for (const auto& [image_id, candidate] : candidates) {
    WALRUS_ASSIGN_OR_RETURN(std::vector<Region> target_regions,
                            index.ImageRegions(image_id));
    WALRUS_ASSIGN_OR_RETURN(double target_area, index.ImageArea(image_id));
    // Refined matching phase (section 5.5): re-verify pairs with the more
    // detailed signatures where both sides carry them.
    const std::vector<RegionPair>* pairs = &candidate.pairs;
    std::vector<RegionPair> refined_pairs;
    if (options.use_refinement) {
      refined_pairs.reserve(candidate.pairs.size());
      for (const RegionPair& pair : candidate.pairs) {
        const std::vector<float>& q_ref =
            query_regions[pair.query_index].refined_centroid;
        const std::vector<float>& t_ref =
            target_regions[pair.target_index].refined_centroid;
        if (!q_ref.empty() && q_ref.size() == t_ref.size() &&
            !RegionsMatchCentroid(q_ref.data(), t_ref.data(),
                                  static_cast<int>(q_ref.size()),
                                  options.refined_epsilon)) {
          continue;  // refuted at the finer resolution
        }
        refined_pairs.push_back(pair);
      }
      pairs = &refined_pairs;
    }
    MatchResult result =
        options.matcher == MatcherKind::kGreedy
            ? GreedyMatch(query_regions, target_regions, *pairs,
                          query_area, target_area)
            : QuickMatch(query_regions, target_regions, *pairs,
                         query_area, target_area);
    double similarity = result.SimilarityAs(options.normalization,
                                            query_area, target_area);
    if (similarity < options.tau) continue;
    QueryMatch match;
    match.image_id = image_id;
    match.similarity = similarity;
    match.matching_pairs = static_cast<int>(pairs->size());
    match.pairs_used = result.pairs_used;
    if (options.collect_pairs) match.pairs = std::move(result.used_pairs);
    matches.push_back(std::move(match));
  }

  std::sort(matches.begin(), matches.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.image_id < b.image_id;
            });
  if (options.top_k > 0 &&
      static_cast<int>(matches.size()) > options.top_k) {
    matches.resize(options.top_k);
  }

  if (stats != nullptr) {
    stats->query_regions = static_cast<int>(query_regions.size());
    stats->regions_retrieved = regions_retrieved;
    stats->avg_regions_per_query_region =
        query_regions.empty()
            ? 0.0
            : static_cast<double>(regions_retrieved) / query_regions.size();
    stats->distinct_images = static_cast<int>(candidates.size());
    stats->seconds += timer.ElapsedSeconds();
  }
  return matches;
}

Result<std::vector<QueryMatch>> ExecuteSceneQuery(const WalrusIndex& index,
                                                  const ImageF& query_image,
                                                  const PixelRect& scene,
                                                  const QueryOptions& options,
                                                  QueryStats* stats) {
  WallTimer timer;
  WALRUS_ASSIGN_OR_RETURN(
      std::vector<Region> scene_regions,
      ExtractSceneRegions(query_image, scene, index.params()));
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  // Region bitmaps are image-relative, so the "query area" must be the
  // pixels the scene's windows can actually cover: the union of all scene
  // region bitmaps. With kQueryOnly normalization a perfect match then
  // scores 1 regardless of how small the marked scene is.
  if (scene_regions.empty()) {
    return Status::InvalidArgument("scene produced no regions");
  }
  CoverageBitmap coverable(scene_regions[0].bitmap.side());
  for (const Region& region : scene_regions) {
    coverable.UnionWith(region.bitmap);
  }
  double image_area =
      static_cast<double>(query_image.width()) * query_image.height();
  double effective_area = image_area * coverable.CoveredFraction();
  return ExecuteQueryWithRegions(index, scene_regions, effective_area,
                                 options, stats);
}

Result<std::vector<std::vector<QueryMatch>>> ExecuteQueryBatch(
    const WalrusIndex& index, const std::vector<ImageF>& queries,
    const QueryOptions& options, int num_threads) {
  std::vector<std::vector<QueryMatch>> results(queries.size());
  if (queries.empty()) return results;
  if (num_threads <= 0) num_threads = ThreadPool::DefaultThreads();
  num_threads = std::min<int>(num_threads, static_cast<int>(queries.size()));

  std::vector<std::unique_ptr<Result<std::vector<QueryMatch>>>> slots(
      queries.size());
  {
    ThreadPool pool(num_threads);
    pool.ParallelFor(static_cast<int>(queries.size()), [&](int i) {
      slots[i] = std::make_unique<Result<std::vector<QueryMatch>>>(
          ExecuteQuery(index, queries[i], options));
    });
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i]->ok()) {
      // Name the failing query: a caller batching hundreds of images needs
      // to know which one to drop or retry, not just that "one" failed.
      return Annotate(slots[i]->status(),
                      "query " + std::to_string(i) + " of " +
                          std::to_string(queries.size()));
    }
    results[i] = std::move(*slots[i]).value();
  }
  return results;
}

Result<std::vector<QueryMatch>> ExecuteQuery(const WalrusIndex& index,
                                             const ImageF& query_image,
                                             const QueryOptions& options,
                                             QueryStats* stats) {
  WallTimer timer;
  WALRUS_ASSIGN_OR_RETURN(std::vector<Region> query_regions,
                          ExtractRegions(query_image, index.params()));
  double extraction_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) stats->seconds = extraction_seconds;
  return ExecuteQueryWithRegions(
      index, query_regions,
      static_cast<double>(query_image.width()) * query_image.height(),
      options, stats);
}

}  // namespace walrus
